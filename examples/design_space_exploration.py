#!/usr/bin/env python3
"""Design-space exploration: window size versus area and storage.

The paper implements W = 64/128/256; this example sweeps a wider range
(including configurations the paper did not build) and reports each
point's mean indirect bandwidth on the deep-dive matrices next to its
coalescer area (kGE), total adapter area (mm², GF12) and on-chip
storage — the ablation DESIGN.md calls out for the W parameter, useful
for picking a window size under an area budget.

Run:  python examples/design_space_exploration.py [max_nnz]
"""

import sys

from repro.axipack import fast_indirect_stream
from repro.axipack.streams import matrix_index_stream
from repro.config import mlp_config
from repro.hw.area import AreaModel
from repro.hw.storage import adapter_storage_bytes
from repro.sparse import get_matrix
from repro.sparse.suite import FIG4_MATRICES

WINDOWS = (8, 16, 32, 64, 128, 256, 512, 1024)


def main() -> None:
    max_nnz = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    streams = [
        matrix_index_stream(get_matrix(name, max_nnz), "sell")
        for name in FIG4_MATRICES
    ]

    header = (
        f"{'W':>5s} {'mean BW (GB/s)':>15s} {'coal kGE':>9s} "
        f"{'total kGE':>10s} {'area mm2':>9s} {'storage KiB':>12s} "
        f"{'GB/s per kGE':>13s}"
    )
    print(header)
    print("-" * len(header))
    for window in WINDOWS:
        config = mlp_config(window)
        bws = [
            fast_indirect_stream(stream, config).indirect_bw_gbps
            for stream in streams
        ]
        mean_bw = sum(bws) / len(bws)
        area = AreaModel(config)
        storage_kib = adapter_storage_bytes(config) / 1024
        marginal = mean_bw / area.total_kge() * 1000
        print(
            f"{window:5d} {mean_bw:15.2f} {area.coalescer_kge():9.0f} "
            f"{area.total_kge():10.0f} {area.area_mm2():9.3f} "
            f"{storage_kib:12.1f} {marginal:13.2f}"
        )

    print(
        "\nThe paper's W=256 sits near the knee: beyond it, bandwidth "
        "saturates while the coalescer's area keeps growing linearly."
    )


if __name__ == "__main__":
    main()
