#!/usr/bin/env python3
"""End-to-end SpMV system comparison (Fig. 5 style).

Runs one matrix on the four systems of the paper's evaluation — the
LLC baseline and the three AXI-Pack vector-processor systems — and
prints runtime, speedup, the indirect-access share, off-chip traffic
versus ideal, and HBM bandwidth utilization.

Run:  python examples/spmv_system_comparison.py [matrix] [max_nnz]
      python examples/spmv_system_comparison.py G3_circuit 200000
"""

import sys

from repro.sparse import get_matrix
from repro.sparse.suite import get_spec
from repro.vpc import BaselineSystem, PackSystem, PACK_SYSTEMS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "G3_circuit"
    max_nnz = int(sys.argv[2]) if len(sys.argv) > 2 else 150_000

    spec = get_spec(name)
    matrix = get_matrix(name, max_nnz)
    llc_scale = matrix.nrows / spec.n
    print(
        f"matrix {name}: {matrix.nrows} rows, nnz={matrix.nnz} "
        f"(published {spec.n} rows, nnz={spec.nnz}; LLC scaled by "
        f"{llc_scale:.4f} to preserve the vector/cache ratio)\n"
    )

    base = BaselineSystem().run(matrix, name, llc_scale=llc_scale)
    results = [base] + [
        PackSystem(variant, name=system).run(matrix, name)
        for system, variant in PACK_SYSTEMS.items()
    ]

    header = (
        f"{'system':9s} {'cycles':>12s} {'speedup':>8s} {'indir%':>7s} "
        f"{'traffic/ideal':>14s} {'HBM util':>9s} {'GFLOP/s':>8s}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        speedup = base.runtime_cycles / result.runtime_cycles
        print(
            f"{result.system:9s} {result.runtime_cycles:12.0f} "
            f"{speedup:8.2f} {100 * result.indirect_fraction:7.1f} "
            f"{result.traffic_vs_ideal:14.2f} "
            f"{100 * result.bandwidth_utilization():9.1f} "
            f"{result.gflops:8.2f}"
        )

    print(
        "\nPaper shape: pack0 ~2.7x over base (prefetching hides latency "
        "but traffic is ~5.6x ideal);\npack256 ~3x over pack0 and ~10x "
        "over base, with traffic back down to ~1.3x ideal."
    )


if __name__ == "__main__":
    main()
