#!/usr/bin/env python3
"""Near-memory sparse transposition with the scatter path.

Sparse transposition (CSR -> CSC) is the motivating workload of MeNDA
(paper ref. [21]): it is a pure scatter — every nonzero is written to
a position derived from its column index.  This example transposes a
suite matrix functionally and accounts the indirect-write traffic with
and without write coalescing at different window sizes.

Run:  python examples/sparse_transpose.py [matrix] [max_nnz]
"""

import sys

import numpy as np

from repro.axipack import fast_indirect_scatter, run_indirect_scatter
from repro.config import mlp_config
from repro.sparse import get_matrix


def transpose_scatter_offsets(matrix) -> np.ndarray:
    """Destination slot of each CSR entry in the transposed (CSC)
    value array — the scatter index stream of the transposition."""
    counts = np.bincount(matrix.col_idx, minlength=matrix.ncols)
    col_ptr = np.zeros(matrix.ncols + 1, dtype=np.int64)
    np.cumsum(counts, out=col_ptr[1:])
    next_slot = col_ptr[:-1].copy()
    offsets = np.empty(matrix.nnz, dtype=np.uint32)
    for j, col in enumerate(matrix.col_idx):
        offsets[j] = next_slot[col]
        next_slot[col] += 1
    return offsets


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "G3_circuit"
    max_nnz = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    matrix = get_matrix(name, max_nnz)
    print(f"transposing {matrix} via near-memory scatter\n")
    offsets = transpose_scatter_offsets(matrix)

    # Functional check: scattering the values through the cycle model
    # must produce exactly the CSC value array.
    metrics = run_indirect_scatter(offsets, matrix.val, mlp_config(64))
    print(
        f"cycle model (MLP64): {metrics.cycles} cycles, "
        f"{metrics.elem_txns} wide writes for {matrix.nnz} narrow writes "
        f"(verified against numpy scatter)\n"
    )

    print(f"{'window':>7s} {'wide writes':>12s} {'coal rate':>10s} "
          f"{'write BW (GB/s)':>16s}")
    for window in (8, 32, 128, 256):
        fast = fast_indirect_scatter(offsets, mlp_config(window))
        print(
            f"{window:7d} {fast.elem_txns:12d} {fast.coalesce_rate:10.2f} "
            f"{fast.indirect_bw_gbps:16.2f}"
        )
    print(
        "\nCSC runs of one column land in the same wide block, so the "
        "write coalescer merges them exactly as the read coalescer "
        "merges gathers — sequential-window designs (MeNDA, SCU) leave "
        "most of that merging on the table."
    )


if __name__ == "__main__":
    main()
