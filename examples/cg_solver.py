#!/usr/bin/env python3
"""Conjugate-gradient solve with system-level cost accounting.

HPCG — one of the paper's motivating workloads — spends almost all of
its time in SpMV.  This example runs a real CG solve (functional, with
the repro SELL kernel) on an SPD operator built over the HPCG stencil
pattern, and accounts per iteration the simulated time the paper's
pack256 system and the LLC baseline would take for the SpMV, yielding
an end-to-end "solver speedup" estimate from the paper's architecture.

Run:  python examples/cg_solver.py [max_nnz] [iterations]
"""

import sys

import numpy as np

from repro.sparse import CsrMatrix, get_matrix, spmv_sell
from repro.sparse.suite import get_spec
from repro.vpc import BaselineSystem, PackSystem


def laplacian_like(pattern: CsrMatrix) -> CsrMatrix:
    """SPD operator on a sparsity pattern: -1 off-diagonal, degree+1 on
    the diagonal (graph Laplacian plus identity)."""
    val = np.full(pattern.nnz, -1.0)
    diag_mask = pattern.col_idx == np.repeat(
        np.arange(pattern.nrows), pattern.row_lengths()
    )
    val[diag_mask] = pattern.row_lengths().astype(float) + 1.0
    return CsrMatrix(pattern.nrows, pattern.ncols, pattern.row_ptr,
                     pattern.col_idx, val)


def conjugate_gradient(sell, b, iterations):
    """Plain CG on the SELL kernel; returns per-iteration residuals."""
    x = np.zeros_like(b)
    r = b - spmv_sell(sell, x)
    p = r.copy()
    rs = float(r @ r)
    residuals = []
    for _ in range(iterations):
        ap = spmv_sell(sell, p)
        alpha = rs / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        residuals.append(float(np.sqrt(rs_new)))
        if rs_new < 1e-24:
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, residuals


def main() -> None:
    max_nnz = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 25

    pattern = get_matrix("HPCG", max_nnz)
    matrix = laplacian_like(pattern)
    sell = matrix.to_sell(32)
    spec = get_spec("HPCG")
    print(f"HPCG stencil: {matrix} (27-point Laplacian, scaled from "
          f"n={spec.n})")

    # A non-trivial right-hand side (A @ ones is solved in one step).
    b = np.sin(np.linspace(0.0, 20.0, matrix.ncols))
    x, residuals = conjugate_gradient(sell, b, iterations)
    final = np.linalg.norm(matrix.spmv(x) - b)
    print(
        f"CG ran {len(residuals)} iterations; residual "
        f"{residuals[0]:.3e} -> {residuals[-1]:.3e} "
        f"(checked: |Ax-b| = {final:.3e})"
    )

    # Architectural accounting: one SpMV per CG iteration dominates.
    base = BaselineSystem().run(matrix, "HPCG", llc_scale=matrix.nrows / spec.n)
    pack = PackSystem("MLP256", name="pack256").run(matrix, "HPCG")
    vec_ops_cycles = 6 * matrix.nrows / 16  # axpy/dot traffic on 16 lanes

    base_iter = base.runtime_cycles + vec_ops_cycles
    pack_iter = pack.runtime_cycles + vec_ops_cycles
    print(
        f"\nper-iteration simulated cost: base={base_iter:,.0f} cycles, "
        f"pack256={pack_iter:,.0f} cycles"
    )
    print(
        f"CG solver speedup from near-memory coalescing: "
        f"{base_iter / pack_iter:.1f}x  "
        f"({len(residuals)} iterations: {len(residuals) * base_iter / 1e6:.1f}M "
        f"-> {len(residuals) * pack_iter / 1e6:.1f}M cycles)"
    )


if __name__ == "__main__":
    main()
