#!/usr/bin/env python3
"""Indirect stream analysis (Figs. 3 and 4 style).

Sweeps coalescer windows over chosen matrices in both CSR and SELL
formats and prints the bandwidth breakdown: how much of the 32 GB/s
HBM channel goes to element fetching versus index fetching, and how
the coalesce rate responds to the window size.

Run:  python examples/indirect_stream_analysis.py [matrix ...] [--nnz N]
      python examples/indirect_stream_analysis.py af_shell10 HPCG
"""

import sys

from repro.axipack import fast_indirect_stream
from repro.axipack.streams import FORMATS, matrix_index_stream
from repro.config import DramConfig, variant_config
from repro.sparse import get_matrix, list_matrices

VARIANTS = ("MLPnc", "MLP16", "MLP64", "MLP256", "SEQ256")


def analyse(name: str, max_nnz: int = 120_000) -> None:
    matrix = get_matrix(name, max_nnz)
    dram = DramConfig()
    print(f"\n=== {name}  ({matrix.nrows}x{matrix.ncols}, nnz={matrix.nnz}) ===")
    header = (
        f"{'fmt':5s} {'variant':8s} {'indir':>7s} {'elem':>7s} "
        f"{'index':>7s} {'loss':>7s} {'coal':>6s}"
    )
    print(header)
    print("-" * len(header))
    for fmt in FORMATS:
        indices = matrix_index_stream(matrix, fmt)
        for variant in VARIANTS:
            m = fast_indirect_stream(indices, variant_config(variant), dram)
            print(
                f"{fmt:5s} {variant:8s} {m.indirect_bw_gbps:7.2f} "
                f"{m.elem_bw_gbps:7.2f} {m.idx_bw_gbps:7.2f} "
                f"{m.loss_gbps(dram):7.2f} {m.coalesce_rate:6.2f}"
            )
    print("(all bandwidths in GB/s; elem+index+loss = 32 GB/s peak)")


def main() -> None:
    args = sys.argv[1:]
    max_nnz = 120_000
    if "--nnz" in args:
        flag = args.index("--nnz")
        if flag + 1 >= len(args) or not args[flag + 1].isdigit():
            raise SystemExit("--nnz needs a positive integer value")
        max_nnz = int(args[flag + 1])
        del args[flag : flag + 2]
    names = args or ["af_shell10", "adaptive", "HPCG"]
    known = set(list_matrices())
    for name in names:
        if name not in known:
            raise SystemExit(
                f"unknown matrix {name!r}; choose from: {', '.join(sorted(known))}"
            )
        analyse(name, max_nnz)


if __name__ == "__main__":
    main()
