#!/usr/bin/env python3
"""Quickstart: stream one sparse matrix's indirect accesses through the
AXI-Pack adapter, with and without the request coalescer.

This reproduces the paper's core experiment in miniature: build a
sparse matrix, take its SELL column-index stream, and compare the
no-coalescer adapter (MLPnc) with the 256-window parallel coalescer
(MLP256) on the cycle-accurate model over the HBM2 channel.

Run:  python examples/quickstart.py [max_nnz]
"""

import sys

import numpy as np

from repro.axipack import fast_indirect_stream, run_indirect_stream
from repro.axipack.streams import matrix_index_stream
from repro.config import variant_config
from repro.sparse import get_matrix, spmv_sell


def main() -> None:
    max_nnz = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    # 1. A paper-suite matrix, scaled to laptop size (structure-matched
    #    stand-in for the SuiteSparse original; see DESIGN.md).
    matrix = get_matrix("pwtk", max_nnz=max_nnz)
    print(f"matrix: {matrix}")

    # 2. SpMV itself is exact: the SELL kernel matches CSR.
    x = np.linspace(0.0, 1.0, matrix.ncols)
    sell = matrix.to_sell(32)
    assert np.allclose(spmv_sell(sell, x), matrix.spmv(x))
    print(f"SELL conversion: {sell} (padding {sell.padding_overhead:.2f}x)")

    # 3. The indirect stream the adapter must serve: vec[col_idx[j]].
    indices = matrix_index_stream(matrix, "sell")
    print(f"indirect stream: {len(indices)} narrow (64 b) element accesses\n")

    # 4. Cycle-accurate adapter + HBM2 channel, two configurations.
    for label in ("MLPnc", "MLP256"):
        metrics = run_indirect_stream(indices, variant_config(label), variant=label)
        print(
            f"{label:7s} cycles={metrics.cycles:8d}  "
            f"indirect BW={metrics.indirect_bw_gbps:6.2f} GB/s  "
            f"coalesce rate={metrics.coalesce_rate:5.2f}  "
            f"wide element accesses={metrics.elem_txns}"
        )

    # 5. The fast window-exact model gives the same coalescing at
    #    numpy speed — use it for big sweeps.
    fast = fast_indirect_stream(indices, variant_config("MLP256"))
    print(
        f"\nfast model (MLP256): {fast.indirect_bw_gbps:.2f} GB/s, "
        f"{fast.elem_txns} wide accesses"
    )
    print("\nEvery element was delivered in stream order and verified "
          "against vec[col_idx[j]].")


if __name__ == "__main__":
    main()
