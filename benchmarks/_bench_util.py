"""Benchmark harness helpers.

Formerly ``benchmarks/conftest.py`` — renamed so the module can never
shadow ``tests/conftest.py`` under the bare ``conftest`` import name
(which used to break tier-1 collection from the repo root).

Every paper table/figure has one benchmark module.  Each benchmark runs
the corresponding experiment once per round (the experiments are
deterministic), records the headline numbers in ``extra_info`` so they
appear in pytest-benchmark's report, and writes the full paper-style
table to ``results/<name>.txt``.

Knobs: ``REPRO_SCALE_NNZ`` (default 60000) and ``REPRO_ADAPTER_MODEL``
(``fast``/``cycle``) as in :mod:`repro.experiments`.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.common import format_table

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def record(benchmark, name: str, result: dict) -> None:
    """Attach summary to the benchmark and persist the full table."""
    for key, value in result["summary"].items():
        benchmark.extra_info[key] = value
    RESULTS_DIR.mkdir(exist_ok=True)
    table = format_table(result["rows"])
    summary = "\n".join(f"{k} = {v}" for k, v in result["summary"].items())
    (RESULTS_DIR / f"{name}.txt").write_text(
        f"# {name}\n\n{table}\n\nsummary:\n{summary}\n"
    )
