"""Benchmark harness helpers.

Formerly ``benchmarks/conftest.py`` — renamed so the module can never
shadow ``tests/conftest.py`` under the bare ``conftest`` import name
(which used to break tier-1 collection from the repo root).

Every paper table/figure has one benchmark module.  Each benchmark runs
the corresponding experiment once per round (the experiments are
deterministic), records the headline numbers in ``extra_info`` so they
appear in pytest-benchmark's report, and persists the full table
through the result store (:mod:`repro.report.store`) into
``results/full/<name>.csv`` + ``<name>.summary.json`` — the same
schema the committed quick-scale store under ``results/store/`` uses,
so full-scale and canary tables diff cleanly against each other.

Knobs: ``REPRO_SCALE_NNZ`` (default 60000) and ``REPRO_ADAPTER_MODEL``
(``fast``/``cycle``) as in :mod:`repro.experiments`.
"""

from __future__ import annotations

from pathlib import Path

from repro.report.store import ResultStore

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Full-scale store the benchmarks write into (gitignored; the
#: committed reference is the quick-scale ``results/store/``).
STORE = ResultStore(RESULTS_DIR / "full")


def record(benchmark, name: str, result: dict) -> None:
    """Attach summary to the benchmark and persist table + summary."""
    for key, value in result["summary"].items():
        benchmark.extra_info[key] = value
    STORE.write_table(name, result["rows"])
    STORE.write_summary(name, result["summary"])
