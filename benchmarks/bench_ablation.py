"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper figures — these probe *why* the design works:

* window sweep beyond the paper's range (does bandwidth saturate?),
* SELL vs CSR traversal order per structure class,
* DRAM policy ablations (open-adaptive idle close, refresh),
* lane-count (N) scaling at fixed window.
"""

import numpy as np
import pytest

from dataclasses import replace

from repro.axipack import fast_indirect_stream, run_indirect_stream
from repro.axipack.streams import matrix_index_stream
from repro.config import AdapterConfig, CoalescerConfig, DramConfig, mlp_config
from repro.engine import SweepExecutor, adapter_grid
from repro.sparse.suite import get_matrix

from _bench_util import record


def _stream(name="pwtk", fmt="sell", max_nnz=120_000):
    return matrix_index_stream(get_matrix(name, max_nnz), fmt)


def test_ablation_window_sweep(benchmark):
    """Bandwidth grows with W then saturates; the knee sits near the
    paper's W=256 pick.  Runs through the engine: one matrix group,
    eight window variants sharing the cached stream analysis."""
    variants = tuple(f"MLP{w}" for w in (8, 16, 32, 64, 128, 256, 512, 1024))

    def sweep():
        cells = SweepExecutor().run(
            adapter_grid(("pwtk",), variants, max_nnz=120_000)
        )
        return [
            {
                "window": int(cell["variant"][3:]),
                "bw_gbps": round(cell["indir_gbps"], 2),
                "coal_rate": round(cell["coal_rate"], 2),
            }
            for cell in cells
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record(benchmark, "ablation_window", {"rows": rows, "summary": {
        "bw_w8": rows[0]["bw_gbps"], "bw_w256": rows[5]["bw_gbps"],
        "bw_w1024": rows[7]["bw_gbps"],
    }})
    bws = [r["bw_gbps"] for r in rows]
    assert bws[5] > 1.5 * bws[0]  # W=256 well above W=8
    # saturation: the last doubling buys < 15 %.
    assert bws[7] <= 1.15 * bws[5]


def test_ablation_format_order(benchmark):
    """SELL's slice-column order coalesces at least as well as CSR on
    FEM matrices (row-group sharing lands inside the window)."""
    def run():
        out = {}
        for fmt in ("sell", "csr"):
            idx = _stream("af_shell10", fmt)
            out[fmt] = fast_indirect_stream(idx, mlp_config(256)).indirect_bw_gbps
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 2) for k, v in out.items()})
    assert out["sell"] >= 0.9 * out["csr"]


def test_ablation_refresh_costs_bandwidth(benchmark):
    """Disabling refresh must recover a few percent of bandwidth —
    and never lose any."""
    idx = _stream(max_nnz=60_000)

    def run():
        with_refresh = fast_indirect_stream(idx, mlp_config(64), DramConfig())
        without = fast_indirect_stream(
            idx, mlp_config(64), DramConfig(t_refi=0, t_rfc=0)
        )
        return with_refresh.indirect_bw_gbps, without.indirect_bw_gbps

    with_r, without_r = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["with_refresh"] = round(with_r, 2)
    benchmark.extra_info["without_refresh"] = round(without_r, 2)
    assert without_r >= with_r
    assert without_r <= 1.2 * with_r


def test_ablation_lane_count(benchmark):
    """Fewer request-generator lanes cap the parallel coalescer's
    request supply (N/cycle), mirroring the MLP-vs-coalescing
    interplay of Sec. IV-A."""
    idx = _stream(max_nnz=60_000)

    def run():
        out = {}
        for lanes in (2, 4, 8):
            cfg = AdapterConfig(
                lanes=lanes, coalescer=CoalescerConfig(window=64)
            )
            out[lanes] = fast_indirect_stream(idx, cfg).indirect_bw_gbps
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({f"lanes{k}": round(v, 2) for k, v in out.items()})
    assert out[2] <= out[4] * 1.01 <= out[8] * 1.02


def test_ablation_multichannel_scaling(benchmark):
    """A second HBM channel should nearly halve a bandwidth-bound
    sequential stream's time (the cycle-level multi-channel router)."""
    from repro.mem.backing_store import BackingStore
    from repro.mem.multichannel import MultiChannelMemory
    from repro.mem.dram import DramChannel
    from repro.mem.request import MemRequest
    from repro.sim.clock import Simulator

    def run(channels):
        store = BackingStore(1 << 20)
        memory = (
            DramChannel(store)
            if channels == 1
            else MultiChannelMemory(store, num_channels=channels)
        )
        components = [memory] if channels == 1 else memory.components()
        sim = Simulator(components)
        issued = 0
        while issued < 768:
            # Ideal requestor: saturate the request queue every cycle.
            while issued < 768 and memory.req.can_push():
                memory.req.push(MemRequest(addr=issued * 64, nbytes=64))
                issued += 1
            sim.step()
        sim.run_until(lambda: not memory.busy, max_cycles=200_000)
        return sim.cycle

    def sweep():
        return {channels: run(channels) for channels in (1, 2, 4)}

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update({f"ch{k}": v for k, v in cycles.items()})
    assert cycles[2] < 0.7 * cycles[1]
    assert cycles[4] < 0.7 * cycles[2]


def test_ablation_scatter_window_sweep(benchmark):
    """The write coalescer's window behaves like the read coalescer's:
    wide-write counts drop monotonically with W."""
    from repro.axipack import fast_indirect_scatter

    idx = _stream("G3_circuit", max_nnz=60_000)

    def sweep():
        return {
            window: fast_indirect_scatter(idx, mlp_config(window)).elem_txns
            for window in (8, 32, 128, 256)
        }

    txns = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info.update({f"w{k}": v for k, v in txns.items()})
    values = list(txns.values())
    assert values == sorted(values, reverse=True)


def test_ablation_metadata_depth_cycle_model(benchmark):
    """Shrinking the hitmap queue (outstanding warps) throttles the
    cycle-accurate adapter."""
    rng = np.random.default_rng(0)
    idx = np.clip(np.arange(3000) // 4 + rng.integers(-20, 21, 3000), 0, 6000).astype(
        np.uint32
    )

    def run():
        deep = run_indirect_stream(
            idx,
            AdapterConfig(coalescer=CoalescerConfig(window=64)),
        ).cycles
        cc = CoalescerConfig(window=64, hitmap_queue_depth=2)
        shallow = run_indirect_stream(
            idx, AdapterConfig(coalescer=cc)
        ).cycles
        return deep, shallow

    deep, shallow = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["deep_cycles"] = deep
    benchmark.extra_info["shallow_cycles"] = shallow
    assert shallow >= deep
