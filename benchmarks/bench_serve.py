"""Sweep-as-a-service acceptance gate.

The serve PR claims a repeated request against a warm ``JobManager``
beats a cold CLI invocation of the identical sweep — the cold path
pays interpreter start, imports, and per-matrix analysis on every
call; the warm path answers from the response cache.  The gates:

* the warm repeated request is **>= 10x** faster than the cold
  ``python -m repro sweep`` subprocess, with served rows
  byte-identical to a serial :class:`SweepExecutor` run;
* the service sustains a modest floor of cache-hit jobs/sec, so the
  request path (canonicalize → key → cache lookup → replay) never
  silently regresses into re-computation.

Both cases run on any core count — the warm path's win is cached
state, not parallel hardware.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.engine import SweepExecutor, adapter_grid

from _bench_util import record

REPO_ROOT = Path(__file__).resolve().parent.parent
MATRICES = ("msc01440", "pwtk")
VARIANTS = ("MLPnc", "MLP64")
NNZ = 12_000
SWEEP_REQUEST = {
    "cmd": "sweep",
    "matrices": list(MATRICES),
    "variants": list(VARIANTS),
    "max_nnz": NNZ,
}


def cold_cli_seconds() -> float:
    """One full ``python -m repro sweep`` subprocess, wall clock."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    started = time.perf_counter()
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "sweep",
            ",".join(MATRICES), ",".join(VARIANTS), "--nnz", str(NNZ),
        ],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, check=False,
    )
    elapsed = time.perf_counter() - started
    assert proc.returncode == 0, proc.stderr
    return elapsed


def test_bench_warm_repeat_beats_cold_cli(benchmark):
    """Warm cache-hit >= 10x faster than a cold CLI run, rows identical."""
    from repro.serve import JobManager

    cold_seconds = cold_cli_seconds()

    manager = JobManager(executor=SweepExecutor(workers=1))
    try:
        first = manager.submit(SWEEP_REQUEST)
        assert first["source"] == "computed"

        def warm_repeat():
            return manager.submit(SWEEP_REQUEST)

        result = benchmark.pedantic(warm_repeat, rounds=5, iterations=1)
        warm_seconds = benchmark.stats.stats.min
        assert result["source"] == "cache"

        # Byte-identical to the serial engine (reassembled in point order;
        # chunks stream per matrix group).
        points = adapter_grid(MATRICES, VARIANTS, max_nnz=NNZ)
        serial = SweepExecutor(workers=1).run(points)
        by_key = {(r["matrix"], r["variant"]): r for r in result["rows"]}
        assert [by_key[(p.matrix, p.variant)] for p in points] == serial

        speedup = cold_seconds / warm_seconds
        assert speedup >= 10.0, (
            f"warm repeat only {speedup:.1f}x faster than cold CLI "
            f"({warm_seconds * 1e3:.2f} ms vs {cold_seconds * 1e3:.0f} ms)"
        )
        record(
            benchmark,
            "serve_warm_vs_cold",
            {
                "rows": [
                    {
                        "path": "cold_cli",
                        "seconds": round(cold_seconds, 4),
                        "source": "subprocess",
                    },
                    {
                        "path": "warm_repeat",
                        "seconds": round(warm_seconds, 6),
                        "source": result["source"],
                    },
                ],
                "summary": {
                    "cold_cli_s": round(cold_seconds, 4),
                    "warm_repeat_s": round(warm_seconds, 6),
                    "speedup_x": round(speedup, 1),
                    "gate": ">= 10x",
                },
            },
        )
    finally:
        manager.close()


def test_bench_sustained_cache_hit_rate(benchmark):
    """Sustained jobs/sec through the warm request path."""
    from repro.serve import JobManager

    manager = JobManager(executor=SweepExecutor(workers=1))
    try:
        manager.submit(SWEEP_REQUEST)  # prime the response cache
        batch = 50

        def drain_batch():
            for _ in range(batch):
                assert manager.submit(SWEEP_REQUEST)["source"] == "cache"

        benchmark.pedantic(drain_batch, rounds=3, iterations=1)
        jobs_per_second = batch / benchmark.stats.stats.min
        # Floor, not a target: a cache hit is a dict lookup plus row
        # copies — double digits means the path degraded to recompute.
        assert jobs_per_second >= 20.0, f"only {jobs_per_second:.0f} jobs/s"
        record(
            benchmark,
            "serve_sustained_rate",
            {
                "rows": [
                    {
                        "batch_jobs": batch,
                        "jobs_per_second": round(jobs_per_second, 1),
                    }
                ],
                "summary": {
                    "jobs_per_second": round(jobs_per_second, 1),
                    "requests": manager.stats["requests"],
                    "response_hits": manager.stats["response_hits"],
                },
            },
        )
    finally:
        manager.close()
