"""Bank-state timeline runtime gates.

The timeline (:func:`repro.mem.timeline.service_timeline`) replaced the
two-term analytic DRAM bound in every fast-model hot path, so its cost
rides on every sweep cell.  The acceptance gate for that swap: the
vectorized replay must stay within a small constant factor (<= 8x) of
the legacy bound's runtime — the legacy bound is one stable sort, the
timeline is three sorts plus segmented reductions, so a blow-up beyond
that signals an accidental de-vectorization.  The walking oracle
comparison is recorded for context, and the results must stay
bit-exact against it.
"""

import time

import numpy as np

from repro.axipack.reference import service_timeline_reference
from repro.config import DramConfig
from repro.mem.timeline import analytic_dram_bound, service_timeline

from _bench_util import record

#: transaction-stream size for the runtime gate (full-scale sweeps see
#: streams of this order per matrix).
STREAM_SIZE = 500_000
#: slice replayed through the pure-Python oracle (it is O(n) but slow).
ORACLE_SLICE = 40_000
#: allowed runtime multiple over the legacy analytic bound.
MAX_FACTOR = 8.0


def _mixed_stream(size: int) -> np.ndarray:
    """Realistic mixture: mostly local runs with scattered excursions,
    the block-id shape coalesced suite streams produce."""
    rng = np.random.default_rng(42)
    local = np.cumsum(rng.integers(-2, 3, size)) + (1 << 16)
    scattered = rng.integers(0, 1 << 22, size)
    take_scattered = rng.random(size) < 0.2
    return np.where(take_scattered, scattered, local).astype(np.int64)


def test_bench_timeline_vs_analytic_bound(benchmark):
    """<= 8x the legacy bound's runtime; bit-exact vs the oracle."""
    dram = DramConfig()
    blocks = _mixed_stream(STREAM_SIZE)

    result = benchmark.pedantic(
        lambda: service_timeline(blocks, dram), rounds=3, iterations=1
    )
    timeline_seconds = benchmark.stats.stats.min

    t0 = time.perf_counter()
    for _ in range(3):
        analytic_dram_bound(blocks, dram)
    legacy_seconds = (time.perf_counter() - t0) / 3

    t0 = time.perf_counter()
    oracle = service_timeline_reference(blocks[:ORACLE_SLICE], dram)
    oracle_seconds = (time.perf_counter() - t0) * (STREAM_SIZE / ORACLE_SLICE)

    sliced = service_timeline(blocks[:ORACLE_SLICE], dram)
    assert sliced.cycles == oracle.cycles
    assert sliced.stats == oracle.stats
    assert np.array_equal(sliced.bank_busy, oracle.bank_busy)

    factor = timeline_seconds / legacy_seconds
    record(
        benchmark,
        "timeline_runtime",
        {
            "rows": [
                {
                    "stream_size": STREAM_SIZE,
                    "timeline_s": round(timeline_seconds, 4),
                    "legacy_bound_s": round(legacy_seconds, 4),
                    "oracle_s_scaled": round(oracle_seconds, 3),
                }
            ],
            "summary": {
                "factor_vs_legacy": round(factor, 2),
                "speedup_vs_oracle": round(oracle_seconds / timeline_seconds, 1),
            },
        },
    )
    assert factor <= MAX_FACTOR, (
        f"timeline costs {factor:.1f}x the legacy analytic bound "
        f"(gate {MAX_FACTOR}x)"
    )


def test_bench_timeline_scales_linearithmically(benchmark):
    """Doubling the stream must not blow the per-transaction cost up
    (guards against accidental quadratic group handling)."""
    dram = DramConfig()
    small = _mixed_stream(STREAM_SIZE // 4)
    large = _mixed_stream(STREAM_SIZE)

    benchmark.pedantic(lambda: service_timeline(large, dram), rounds=2, iterations=1)
    large_seconds = benchmark.stats.stats.min
    t0 = time.perf_counter()
    for _ in range(2):
        service_timeline(small, dram)
    small_seconds = (time.perf_counter() - t0) / 2

    per_txn_ratio = (large_seconds / len(large)) / (small_seconds / len(small))
    benchmark.extra_info["per_txn_ratio_4x"] = round(per_txn_ratio, 2)
    assert per_txn_ratio <= 2.5
