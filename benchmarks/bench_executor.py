"""Sharded sweep executor acceptance gate.

The PR that introduced backend sharding claims a single-matrix sweep —
the shape of every fig4-style ablation, previously a single serial
pool task — now saturates the worker pool.  The gate: with
``REPRO_WORKERS=4`` and ``--shards auto``, a one-matrix window sweep
through the cycle-accurate adapter model must run **>= 2.5x** faster
than the serial executor, while producing byte-identical rows.

A second, gate-free case records the fast-model stream-sharding path
(window-aligned chunk extraction + exact carry merge) so its overhead
stays visible in the benchmark history.

Skipped when the host has fewer than 4 cores — a parallel speedup
cannot be demonstrated without parallel hardware.
"""

import os
import time

import pytest

from repro.engine import SweepExecutor, adapter_grid

from _bench_util import record

CORES = os.cpu_count() or 1

#: fig4-style single-matrix window ablation: one matrix group, eight
#: window variants — exactly the sweep shape that could not scale
#: before intra-matrix sharding.
MATRIX = "msc01440"
VARIANTS = tuple(f"MLP{w}" for w in (8, 16, 32, 64, 128, 256, 512, 1024))
CYCLE_NNZ = 12_000


@pytest.mark.skipif(CORES < 4, reason=f"needs >= 4 cores, have {CORES}")
def test_bench_sharded_single_matrix_speedup(benchmark, monkeypatch):
    """>= 2.5x wall-clock at REPRO_WORKERS=4 / shards auto, rows equal."""
    monkeypatch.setenv("REPRO_WORKERS", "4")
    points = adapter_grid((MATRIX,), VARIANTS, max_nnz=CYCLE_NNZ, model="cycle")

    t0 = time.perf_counter()
    serial_rows = SweepExecutor(workers=1, shards=1).run(points)
    serial_seconds = time.perf_counter() - t0

    def sharded():
        return SweepExecutor(shards="auto").run(points)  # workers from env

    sharded_rows = benchmark.pedantic(sharded, rounds=3, iterations=1)
    sharded_seconds = benchmark.stats.stats.min
    assert sharded_rows == serial_rows  # sharding must not change a bit

    speedup = serial_seconds / sharded_seconds
    record(
        benchmark,
        "executor_sharded_speedup",
        {
            "rows": [
                {
                    "variant": row["variant"],
                    "cycles": row["cycles"],
                    "elem_txns": row["elem_txns"],
                }
                for row in serial_rows
            ],
            "summary": {
                "matrix": MATRIX,
                "model": "cycle",
                "workers": 4,
                "serial_s": round(serial_seconds, 3),
                "sharded_s": round(sharded_seconds, 3),
                "speedup": round(speedup, 2),
            },
        },
    )
    assert speedup >= 2.5, f"only {speedup:.2f}x over the serial executor"


def test_bench_stream_chunk_merge_overhead(benchmark):
    """Fast-model stream sharding: chunk extraction + exact carry merge
    must stay within 3x of the unsharded fast path (it re-sorts each
    chunk instead of reusing the whole-stream analysis) and match it
    byte-for-byte.  Runs serially so the overhead is isolated from pool
    scheduling."""
    points = adapter_grid(("af_shell10",), ("MLP256",), max_nnz=120_000)
    serial_exec = SweepExecutor(workers=1, shards=1)
    serial_rows = serial_exec.run(points)

    t0 = time.perf_counter()
    serial_exec.run(points)  # warm cache timing baseline
    serial_seconds = time.perf_counter() - t0

    chunked_exec = SweepExecutor(workers=1, shards=8)
    chunked_rows = benchmark.pedantic(
        lambda: chunked_exec.run(points), rounds=3, iterations=1
    )
    chunked_seconds = benchmark.stats.stats.min
    assert chunked_rows == serial_rows

    overhead = chunked_seconds / max(serial_seconds, 1e-9)
    record(
        benchmark,
        "executor_chunk_overhead",
        {
            "rows": [{"shards": 8, "chunk_tasks": chunked_exec.last_stats["tasks"]}],
            "summary": {
                "serial_warm_s": round(serial_seconds, 4),
                "chunked_warm_s": round(chunked_seconds, 4),
                "overhead_x": round(overhead, 2),
            },
        },
    )
    assert overhead <= 3.0, f"chunked path {overhead:.2f}x slower than serial"
