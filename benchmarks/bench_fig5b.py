"""Fig. 5b: off-chip traffic and HBM bandwidth utilization."""

import pytest

from repro.experiments.fig5b import run_fig5b

from _bench_util import record


@pytest.fixture(scope="module")
def fig5b_result():
    return run_fig5b()


def test_fig5b_full_grid(benchmark, fig5b_result):
    result = benchmark.pedantic(run_fig5b, rounds=1, iterations=1)
    record(benchmark, "fig5b", result)
    assert len(result["rows"]) == 6 * 4
    summary = result["summary"]
    # Headline paper claims (base ~5.9 % min util, pack0 ~5.6x traffic
    # at ~66 % util, pack256 ~1.29x traffic at ~61 % util).
    assert summary["base_util_min_pct"] <= 10.0
    assert 4.0 <= summary["pack0_traffic_vs_ideal_mean"] <= 7.0
    assert summary["pack256_traffic_vs_ideal_mean"] <= 2.0
    assert summary["pack256_util_mean_pct"] >= 50.0


def test_fig5b_base_utilization_is_poor(fig5b_result):
    """Paper: base utilization as low as ~5.9 %."""
    assert fig5b_result["summary"]["base_util_min_pct"] <= 10.0
    assert fig5b_result["summary"]["base_util_mean_pct"] <= 20.0


def test_fig5b_pack0_high_util_high_traffic(fig5b_result):
    """Paper: pack0 utilises the channel best (~65.8 %) but moves
    ~5.6x the ideal traffic."""
    summary = fig5b_result["summary"]
    assert summary["pack0_util_mean_pct"] >= 50.0
    assert 4.0 <= summary["pack0_traffic_vs_ideal_mean"] <= 7.0


def test_fig5b_pack256_cuts_traffic(fig5b_result):
    """Paper: 256-window coalescing cuts traffic to ~1.29x ideal while
    keeping ~61 % utilization."""
    summary = fig5b_result["summary"]
    assert summary["pack256_traffic_vs_ideal_mean"] <= 2.0
    assert summary["pack256_util_mean_pct"] >= 50.0


def test_fig5b_base_traffic_near_ideal(fig5b_result):
    """The big LLC keeps base's off-chip traffic low."""
    assert fig5b_result["summary"]["base_traffic_vs_ideal_mean"] <= 2.5


def test_fig5b_traffic_ordering(fig5b_result):
    for matrix in {r["matrix"] for r in fig5b_result["rows"]}:
        rows = {r["system"]: r for r in fig5b_result["rows"] if r["matrix"] == matrix}
        assert (
            rows["pack256"]["traffic_vs_ideal"]
            <= rows["pack64"]["traffic_vs_ideal"]
            <= rows["pack0"]["traffic_vs_ideal"]
        )
