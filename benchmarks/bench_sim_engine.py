"""Event-batched engine runtime gates (fig-scale cycle sweep).

The batched engine (:mod:`repro.sim.batched`) exists to make
cycle-accurate runs affordable where the step engine burns its time
ticking idle components: DRAM-latency-bound streams whose quiet spans
are t_RC/t_RCD waits.  The gated sweep drives fig-scale row-thrash
streams through a raw :class:`~repro.mem.dram.DramChannel` — a
single-bank row hammer at full queue depth and a dependent pointer
chase (one request in flight) — and requires the batched engine to be
at least ``MIN_SPEEDUP`` faster in aggregate, bit-exact against the
step oracle on cycles, stats and occupancy.

Bus-saturated cells — where DRAM and the coalescer act nearly every
cycle and plain cycle-skipping is structurally parity — are gated too
since bulk transfer mode landed: the batched engine must now be
strictly *faster* than step on them.  The honest ceiling there is
modest and measured, not aspirational: profiling shows the per-cycle
tick work (coalescer window matching, reorder forwarding) is shared
verbatim between engines and accounts for over half of step's runtime
on the adapter cell, so even a zero-overhead scheduler caps below 2x.
What bulk mode actually removes is the DRAM FR-FCFS scan and the
dispatch overhead on saturated spans (measured: DRAM profile share
~35% -> ~16%), which lands the adapter cell at ~1.2x and the raw
sequential-block stream (bus utilization ~0.9) at ~1.3x.  The gates
below sit under those measurements with noise margin; they would fail
on any regression back to parity.
"""

import time

import numpy as np

from repro.config import DramConfig, mlp_config
from repro.axipack.adapter import run_indirect_stream
from repro.mem.backing_store import BackingStore
from repro.mem.dram import DramChannel
from repro.mem.request import MemRequest
from repro.sim import Simulator
from repro.sim.component import Component

from _bench_util import record

#: fig-scale stream length (DEFAULT_SCALE_NNZ of the paper sweeps).
STREAM_N = 60_000
#: rows hammered within the single bank (all accesses conflict).
THRASH_ROWS = 250
#: required aggregate batched-vs-step speedup on the gated sweep.
MIN_SPEEDUP = 5.0
#: required batched-vs-step speedup on the bus-saturated adapter cell
#: (measured ~1.2x with bulk mode; floor leaves noise margin).
MIN_SATURATED_SPEEDUP = 1.05
#: required speedup on the bus-saturated raw sequential-block stream
#: (measured ~1.3x with bulk mode).
MIN_SEQ_BLOCKS_SPEEDUP = 1.1


class _Driver(Component):
    """Feeds a block stream to a raw DRAM channel; ``depth`` bounds the
    requests in flight (1 == dependent pointer chase)."""

    def __init__(self, blocks, dram: DramChannel, access_bytes: int, depth: int):
        super().__init__("driver")
        self.addrs = [int(b) * access_bytes for b in blocks]
        self.dram = dram
        self.depth = depth
        self.sent = 0
        self.received = 0

    def tick(self) -> None:
        while self.dram.rsp.can_pop():
            self.dram.rsp.pop()
            self.received += 1
        while (
            self.sent < len(self.addrs)
            and self.sent - self.received < self.depth
            and self.dram.req.can_push()
        ):
            self.dram.req.push(
                MemRequest(addr=self.addrs[self.sent], nbytes=64, seq=self.sent)
            )
            self.sent += 1

    def next_event(self):
        if self.dram.rsp.can_pop():
            return self.cycle
        if (
            self.sent < len(self.addrs)
            and self.sent - self.received < self.depth
            and self.dram.req.can_push()
        ):
            return self.cycle
        return None

    def wake_fifos(self):
        return [self.dram.req, self.dram.rsp], []

    @property
    def done(self) -> bool:
        return self.received == len(self.addrs)

    @property
    def busy(self) -> bool:
        return not self.done


def _thrash_stream(n: int) -> np.ndarray:
    """Single-bank row thrash: every access activates a different row
    of bank 0, so service time is t_RC-bound quiet spans."""
    cfg = DramConfig()
    return (np.arange(n) % THRASH_ROWS) * (cfg.num_banks * cfg.blocks_per_row)


def _run_raw_dram(engine: str, blocks, depth: int):
    cfg = DramConfig()
    store = BackingStore(1 << 22)
    dram = DramChannel(store, cfg)
    driver = _Driver(blocks, dram, cfg.access_bytes, depth)
    sim = Simulator([driver, dram], engine=engine)
    t0 = time.perf_counter()
    cycles = sim.run_until(lambda: driver.done, max_cycles=200_000_000)
    seconds = time.perf_counter() - t0
    return cycles, dict(dram.stats.as_dict()), dram.req.max_occupancy, seconds


def test_bench_engine_row_thrash_speedup(benchmark):
    """Gated sweep: >= 5x aggregate on fig-scale row-thrash streams,
    bit-exact against the step oracle."""
    blocks = _thrash_stream(STREAM_N)
    workloads = {"hammer-full-depth": 1 << 30, "pointer-chase": 1}

    rows = []
    step_total = batched_total = 0.0
    for name, depth in workloads.items():
        step = _run_raw_dram("step", blocks, depth)
        batched = _run_raw_dram("batched", blocks, depth)
        assert step[:3] == batched[:3], f"{name}: engines diverge"
        rows.append(
            {
                "workload": name,
                "cycles": step[0],
                "step_s": round(step[3], 3),
                "batched_s": round(batched[3], 3),
                "speedup": round(step[3] / batched[3], 2),
            }
        )
        step_total += step[3]
        batched_total += batched[3]

    # pytest-benchmark timing row: the batched engine on the heavier
    # workload (the number the gate protects).
    benchmark.pedantic(
        lambda: _run_raw_dram("batched", blocks, 1 << 30), rounds=1, iterations=1
    )

    speedup = step_total / batched_total
    record(
        benchmark,
        "sim_engine_runtime",
        {
            "rows": rows,
            "summary": {
                "stream_n": STREAM_N,
                "aggregate_speedup": round(speedup, 2),
            },
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine {speedup:.2f}x on the row-thrash sweep "
        f"(gate {MIN_SPEEDUP}x)"
    )


def _best_of(fn, rounds: int = 3) -> float:
    """Minimum wall-clock over ``rounds`` runs (noise-robust pairing for
    speedup gates — both engines get the same treatment)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_engine_saturated_speedup(benchmark):
    """Gate: the previously-parity bus-saturated adapter cell.  With
    bulk transfer mode the batched engine must be strictly faster than
    step here, not merely non-pathological.  The floor is set from the
    measured ~1.2x (see module docstring for why the structural ceiling
    is far below the latency-bound cells' 5x+): the gate's job is to
    catch a regression back to parity, where bulk spans stop being
    granted on saturated DRAM traffic."""
    rng = np.random.default_rng(7)
    n = 4096
    idx = rng.integers(0, n * 4, n).astype(np.uint32)
    config = mlp_config(64)

    step = run_indirect_stream(idx, config, engine="step")
    batched = run_indirect_stream(idx, config, engine="batched")
    assert step.cycles == batched.cycles, "engines diverge on saturated cell"

    step_seconds = _best_of(lambda: run_indirect_stream(idx, config, engine="step"))
    benchmark.pedantic(
        lambda: run_indirect_stream(idx, config, engine="batched"),
        rounds=3,
        iterations=1,
    )
    batched_seconds = benchmark.stats.stats.min

    speedup = step_seconds / batched_seconds
    record(
        benchmark,
        "sim_engine_saturated",
        {
            "rows": [
                {
                    "workload": "adapter-random-MLP64",
                    "cycles": step.cycles,
                    "step_s": round(step_seconds, 3),
                    "batched_s": round(batched_seconds, 3),
                    "speedup": round(speedup, 2),
                }
            ],
            "summary": {
                "stream_n": n,
                "saturated_speedup": round(speedup, 2),
            },
        },
    )
    assert speedup >= MIN_SATURATED_SPEEDUP, (
        f"batched engine {speedup:.2f}x on the saturated adapter cell "
        f"(gate {MIN_SATURATED_SPEEDUP}x)"
    )


def test_bench_engine_seq_blocks_speedup():
    """Gate: bus-saturated raw sequential-block stream (row hits nearly
    every access, bus utilization ~0.9) — the densest traffic the DRAM
    bulk path handles, a grant every t_burst cycles inside bulk spans."""
    blocks = np.arange(20_000) % (1 << 14)
    step = _run_raw_dram("step", blocks, 1 << 30)
    batched = _run_raw_dram("batched", blocks, 1 << 30)
    assert step[:3] == batched[:3], "engines diverge on seq-blocks stream"

    step_seconds = _best_of(lambda: _run_raw_dram("step", blocks, 1 << 30))
    batched_seconds = _best_of(lambda: _run_raw_dram("batched", blocks, 1 << 30))
    speedup = step_seconds / batched_seconds
    assert speedup >= MIN_SEQ_BLOCKS_SPEEDUP, (
        f"batched engine {speedup:.2f}x on the seq-blocks stream "
        f"(gate {MIN_SEQ_BLOCKS_SPEEDUP}x)"
    )
