"""Event-batched engine runtime gates (fig-scale cycle sweep).

The batched engine (:mod:`repro.sim.batched`) exists to make
cycle-accurate runs affordable where the step engine burns its time
ticking idle components: DRAM-latency-bound streams whose quiet spans
are t_RC/t_RCD waits.  The gated sweep drives fig-scale row-thrash
streams through a raw :class:`~repro.mem.dram.DramChannel` — a
single-bank row hammer at full queue depth and a dependent pointer
chase (one request in flight) — and requires the batched engine to be
at least ``MIN_SPEEDUP`` faster in aggregate, bit-exact against the
step oracle on cycles, stats and occupancy.

A saturated adapter-pipeline cell is recorded as context (not gated):
there the DRAM and coalescer act nearly every cycle, so cycle-skipping
is structurally near-parity — the sanity bound only guards against the
batched path becoming pathologically slower than step.
"""

import time

import numpy as np

from repro.config import DramConfig, mlp_config
from repro.axipack.adapter import run_indirect_stream
from repro.mem.backing_store import BackingStore
from repro.mem.dram import DramChannel
from repro.mem.request import MemRequest
from repro.sim import Simulator
from repro.sim.component import Component

from _bench_util import record

#: fig-scale stream length (DEFAULT_SCALE_NNZ of the paper sweeps).
STREAM_N = 60_000
#: rows hammered within the single bank (all accesses conflict).
THRASH_ROWS = 250
#: required aggregate batched-vs-step speedup on the gated sweep.
MIN_SPEEDUP = 5.0
#: saturated-pipeline context cell must stay within this factor of step.
MAX_SATURATED_SLOWDOWN = 2.0


class _Driver(Component):
    """Feeds a block stream to a raw DRAM channel; ``depth`` bounds the
    requests in flight (1 == dependent pointer chase)."""

    def __init__(self, blocks, dram: DramChannel, access_bytes: int, depth: int):
        super().__init__("driver")
        self.addrs = [int(b) * access_bytes for b in blocks]
        self.dram = dram
        self.depth = depth
        self.sent = 0
        self.received = 0

    def tick(self) -> None:
        while self.dram.rsp.can_pop():
            self.dram.rsp.pop()
            self.received += 1
        while (
            self.sent < len(self.addrs)
            and self.sent - self.received < self.depth
            and self.dram.req.can_push()
        ):
            self.dram.req.push(
                MemRequest(addr=self.addrs[self.sent], nbytes=64, seq=self.sent)
            )
            self.sent += 1

    def next_event(self):
        if self.dram.rsp.can_pop():
            return self.cycle
        if (
            self.sent < len(self.addrs)
            and self.sent - self.received < self.depth
            and self.dram.req.can_push()
        ):
            return self.cycle
        return None

    def wake_fifos(self):
        return [self.dram.req, self.dram.rsp], []

    @property
    def done(self) -> bool:
        return self.received == len(self.addrs)

    @property
    def busy(self) -> bool:
        return not self.done


def _thrash_stream(n: int) -> np.ndarray:
    """Single-bank row thrash: every access activates a different row
    of bank 0, so service time is t_RC-bound quiet spans."""
    cfg = DramConfig()
    return (np.arange(n) % THRASH_ROWS) * (cfg.num_banks * cfg.blocks_per_row)


def _run_raw_dram(engine: str, blocks, depth: int):
    cfg = DramConfig()
    store = BackingStore(1 << 22)
    dram = DramChannel(store, cfg)
    driver = _Driver(blocks, dram, cfg.access_bytes, depth)
    sim = Simulator([driver, dram], engine=engine)
    t0 = time.perf_counter()
    cycles = sim.run_until(lambda: driver.done, max_cycles=200_000_000)
    seconds = time.perf_counter() - t0
    return cycles, dict(dram.stats.as_dict()), dram.req.max_occupancy, seconds


def test_bench_engine_row_thrash_speedup(benchmark):
    """Gated sweep: >= 5x aggregate on fig-scale row-thrash streams,
    bit-exact against the step oracle."""
    blocks = _thrash_stream(STREAM_N)
    workloads = {"hammer-full-depth": 1 << 30, "pointer-chase": 1}

    rows = []
    step_total = batched_total = 0.0
    for name, depth in workloads.items():
        step = _run_raw_dram("step", blocks, depth)
        batched = _run_raw_dram("batched", blocks, depth)
        assert step[:3] == batched[:3], f"{name}: engines diverge"
        rows.append(
            {
                "workload": name,
                "cycles": step[0],
                "step_s": round(step[3], 3),
                "batched_s": round(batched[3], 3),
                "speedup": round(step[3] / batched[3], 2),
            }
        )
        step_total += step[3]
        batched_total += batched[3]

    # pytest-benchmark timing row: the batched engine on the heavier
    # workload (the number the gate protects).
    benchmark.pedantic(
        lambda: _run_raw_dram("batched", blocks, 1 << 30), rounds=1, iterations=1
    )

    speedup = step_total / batched_total
    record(
        benchmark,
        "sim_engine_runtime",
        {
            "rows": rows,
            "summary": {
                "stream_n": STREAM_N,
                "aggregate_speedup": round(speedup, 2),
            },
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine {speedup:.2f}x on the row-thrash sweep "
        f"(gate {MIN_SPEEDUP}x)"
    )


def test_bench_engine_saturated_parity(benchmark):
    """Context: a bus-saturated adapter cell is near parity by design;
    the bound only catches the batched path going pathologically slow."""
    rng = np.random.default_rng(7)
    n = 4096
    idx = rng.integers(0, n * 4, n).astype(np.uint32)
    config = mlp_config(64)

    t0 = time.perf_counter()
    step = run_indirect_stream(idx, config, engine="step")
    step_seconds = time.perf_counter() - t0

    batched = benchmark.pedantic(
        lambda: run_indirect_stream(idx, config, engine="batched"),
        rounds=2,
        iterations=1,
    )
    batched_seconds = benchmark.stats.stats.min

    assert step.cycles == batched.cycles
    ratio = batched_seconds / step_seconds
    benchmark.extra_info["saturated_ratio_vs_step"] = round(ratio, 2)
    assert ratio <= MAX_SATURATED_SLOWDOWN
