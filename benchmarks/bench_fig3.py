"""Fig. 3: indirect stream bandwidth, 20 matrices x 8 variants x 2
formats.

Paper shape asserted: ~8x mean indirect-bandwidth boost at MLP256,
MLPnc in the few-GB/s range, most matrices above 70 % of peak with the
large parallel coalescer, and SEQ256 capped under ~8 GB/s.
"""

import pytest

from repro.experiments.fig3 import run_fig3

from _bench_util import record


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3()


def test_fig3_full_grid(benchmark, fig3_result):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    record(benchmark, "fig3", result)
    assert len(result["rows"]) == 40  # 20 matrices x 2 formats
    summary = result["summary"]
    # Headline paper claims, asserted here so --benchmark-only runs
    # still validate the figure's shape.
    assert 2.0 <= summary["sell_mlpnc_mean_gbps"] <= 4.5  # paper 2.9
    assert 6.0 <= summary["sell_mlp256_boost"] <= 11.0  # paper 8.4x
    assert summary["sell_above_70pct_peak"] >= 10  # paper 12/20
    assert summary["sell_seq256_max_gbps"] <= 8.2  # paper <8 GB/s


def test_fig3_mlpnc_bandwidth_is_low(fig3_result):
    """Paper: without coalescence ~2.9 GB/s of 32 GB/s on average."""
    mean = fig3_result["summary"]["sell_mlpnc_mean_gbps"]
    assert 2.0 <= mean <= 4.5


def test_fig3_mlp256_boost_near_8x(fig3_result):
    boost = fig3_result["summary"]["sell_mlp256_boost"]
    assert 6.0 <= boost <= 11.0  # paper: 8.4x


def test_fig3_csr_boost_same_magnitude(fig3_result):
    boost = fig3_result["summary"]["csr_mlp256_boost"]
    assert 5.0 <= boost <= 11.0  # paper: 8.6x


def test_fig3_majority_above_70pct_peak(fig3_result):
    """Paper: 12 of 20 matrices above 70 % of peak at MLP256."""
    assert fig3_result["summary"]["sell_above_70pct_peak"] >= 10


def test_fig3_seq256_capped_under_8gbps(fig3_result):
    assert fig3_result["summary"]["sell_seq256_max_gbps"] <= 8.2


def test_fig3_seq_vs_parallel_gap(fig3_result):
    """Paper: parallel is ~3x the sequential at the same window."""
    ratio = fig3_result["summary"]["sell_mlp256_vs_seq256"]
    assert 2.0 <= ratio <= 5.5
