"""Fig. 6a: adapter area breakdown (GF12 implementation model)."""

import pytest

from repro.experiments.fig6a import run_fig6a

from _bench_util import record


@pytest.fixture(scope="module")
def fig6a_result():
    return run_fig6a()


def test_fig6a_breakdown(benchmark, fig6a_result):
    result = benchmark.pedantic(run_fig6a, rounds=1, iterations=1)
    record(benchmark, "fig6a", result)
    assert [r["adapter"] for r in result["rows"]] == ["AP64", "AP128", "AP256"]


def test_fig6a_published_coalescer_kge(fig6a_result):
    """Sec. IV-C: 307 / 617 / 1035 kGE for W = 64/128/256."""
    summary = fig6a_result["summary"]
    assert summary["coal_kge_w64"] == pytest.approx(307, rel=0.02)
    assert summary["coal_kge_w128"] == pytest.approx(617, rel=0.02)
    assert summary["coal_kge_w256"] == pytest.approx(1035, rel=0.02)


def test_fig6a_published_areas(fig6a_result):
    """Sec. IV-C: 0.19 / 0.26 / 0.34 mm2."""
    summary = fig6a_result["summary"]
    assert summary["area_mm2_w64"] == pytest.approx(0.19)
    assert summary["area_mm2_w128"] == pytest.approx(0.26)
    assert summary["area_mm2_w256"] == pytest.approx(0.34)


def test_fig6a_index_queues_largest_block(fig6a_result):
    """Sec. IV-C: the index queues take the largest share (754 kGE)."""
    for row in fig6a_result["rows"]:
        assert row["idx_que_kge"] == pytest.approx(754.0)
        if row["adapter"] != "AP256":
            assert row["idx_que_kge"] >= row["coal_kge"]
