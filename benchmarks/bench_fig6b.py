"""Fig. 6b: SpMV efficiency versus SX-Aurora and A64FX."""

import pytest

from repro.experiments.fig6b import run_fig6b

from _bench_util import record


@pytest.fixture(scope="module")
def fig6b_result():
    return run_fig6b()


def test_fig6b_comparison(benchmark, fig6b_result):
    result = benchmark.pedantic(run_fig6b, rounds=1, iterations=1)
    record(benchmark, "fig6b", result)
    machines = [r["machine"] for r in result["rows"]]
    assert "SX-Aurora" in machines and "A64FX" in machines
    assert "This Work" in machines


def test_fig6b_onchip_efficiency_ratios(fig6b_result):
    """Paper: 1.4x / 2.6x better on-chip efficiency."""
    summary = fig6b_result["summary"]
    assert summary["onchip_eff_vs_sx_aurora"] == pytest.approx(1.4, abs=0.3)
    assert summary["onchip_eff_vs_a64fx"] == pytest.approx(2.6, abs=0.5)


def test_fig6b_performance_efficiency_retained(fig6b_result):
    """Paper: ~1x of SX-Aurora and ~0.9x of A64FX."""
    summary = fig6b_result["summary"]
    assert summary["perf_eff_vs_sx_aurora"] == pytest.approx(1.0, abs=0.3)
    assert summary["perf_eff_vs_a64fx"] == pytest.approx(0.9, abs=0.3)
