"""Fig. 5a: end-to-end SpMV runtime on base/pack0/pack64/pack256."""

import pytest

from repro.experiments.fig5a import run_fig5a

from _bench_util import record


@pytest.fixture(scope="module")
def fig5a_result():
    return run_fig5a()


def test_fig5a_full_grid(benchmark, fig5a_result):
    result = benchmark.pedantic(run_fig5a, rounds=1, iterations=1)
    record(benchmark, "fig5a", result)
    assert len(result["rows"]) == 6 * 4
    summary = result["summary"]
    # Headline paper claims (pack0 ~2.7x, pack256 ~10x, ratio ~3x).
    assert 1.5 <= summary["pack0_speedup_geomean"] <= 4.0
    assert 6.0 <= summary["pack256_speedup_geomean"] <= 14.0
    assert 2.0 <= summary["pack256_vs_pack0"] <= 5.0


def test_fig5a_pack0_speedup_over_base(fig5a_result):
    """Paper: pack0 averages ~2.7x over the base system."""
    speedup = fig5a_result["summary"]["pack0_speedup_geomean"]
    assert 1.5 <= speedup <= 4.0


def test_fig5a_pack256_speedup_over_base(fig5a_result):
    """Paper: pack256 averages ~10x over the base system."""
    speedup = fig5a_result["summary"]["pack256_speedup_geomean"]
    assert 6.0 <= speedup <= 14.0


def test_fig5a_pack256_over_pack0_near_3x(fig5a_result):
    ratio = fig5a_result["summary"]["pack256_vs_pack0"]
    assert 2.0 <= ratio <= 5.0


def test_fig5a_speedup_monotone_in_window(fig5a_result):
    for matrix in {r["matrix"] for r in fig5a_result["rows"]}:
        rows = {r["system"]: r for r in fig5a_result["rows"] if r["matrix"] == matrix}
        assert (
            rows["pack0"]["speedup_vs_base"]
            <= rows["pack64"]["speedup_vs_base"] * 1.01
            <= rows["pack256"]["speedup_vs_base"] * 1.02
        )


def test_fig5a_indirect_time_shrinks(fig5a_result):
    """The coalescer's point: indirect access stops dominating."""
    for matrix in {r["matrix"] for r in fig5a_result["rows"]}:
        rows = {r["system"]: r for r in fig5a_result["rows"] if r["matrix"] == matrix}
        indir0 = rows["pack0"]["indir_fraction"] * rows["pack0"]["runtime_cycles"]
        indir256 = (
            rows["pack256"]["indir_fraction"] * rows["pack256"]["runtime_cycles"]
        )
        assert indir256 < 0.6 * indir0
