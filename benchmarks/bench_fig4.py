"""Fig. 4: bandwidth breakdown and coalesce rate (6 matrices x 5
variants, SELL)."""

import pytest

from repro.experiments.fig4 import run_fig4

from _bench_util import record


@pytest.fixture(scope="module")
def fig4_result():
    return run_fig4()


def test_fig4_full_grid(benchmark, fig4_result):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    record(benchmark, "fig4", result)
    assert len(result["rows"]) == 6 * 5
    summary = result["summary"]
    # Headline paper claims (see module docstring).
    assert summary["af_shell10_mlp256_index_gbps"] > 10.0  # paper 13.2
    assert summary["seq256_mean_index_gbps"] <= 4.2  # paper ~4
    # The large window makes every fetched element byte useful more
    # than once on average (MLPnc is pinned at 8/64 = 0.125).
    assert summary["mlp256_mean_coal_rate"] > 1.0


def test_fig4_bandwidth_identity(fig4_result):
    """elem + index + loss must equal the 32 GB/s channel peak."""
    for row in fig4_result["rows"]:
        total = row["elem_gbps"] + row["index_gbps"] + row["loss_gbps"]
        assert total == pytest.approx(32.0, abs=0.05)


def test_fig4_mlpnc_element_fetch_dominates(fig4_result):
    """Paper: without a coalescer, element fetching monopolises the
    channel and squeezes out index fetching."""
    for row in fig4_result["rows"]:
        if row["variant"] == "MLPnc":
            assert row["elem_gbps"] > 6 * row["index_gbps"]


def test_fig4_coal_rate_grows_with_window(fig4_result):
    for matrix in {r["matrix"] for r in fig4_result["rows"]}:
        rates = {
            r["variant"]: r["coal_rate"]
            for r in fig4_result["rows"]
            if r["matrix"] == matrix
        }
        assert rates["MLPnc"] <= rates["MLP16"] <= rates["MLP64"] * 1.01
        assert rates["MLP64"] <= rates["MLP256"] * 1.01


def test_fig4_seq_same_coal_rate_less_index_bw(fig4_result):
    """Paper: SEQ256 reaches the MLP256 coalesce rate but its index
    fetch bandwidth is capped near 4 GB/s (one request per cycle)."""
    for matrix in {r["matrix"] for r in fig4_result["rows"]}:
        rows = {r["variant"]: r for r in fig4_result["rows"] if r["matrix"] == matrix}
        assert rows["SEQ256"]["coal_rate"] == pytest.approx(
            rows["MLP256"]["coal_rate"], rel=0.1
        )
        assert rows["SEQ256"]["index_gbps"] <= 4.2


def test_fig4_af_shell10_index_fetch_surges(fig4_result):
    """Paper: af_shell10 at MLP256 fetches indices at ~13 GB/s,
    i.e. >3 coalesced requests generated per cycle."""
    row = next(
        r
        for r in fig4_result["rows"]
        if r["matrix"] == "af_shell10" and r["variant"] == "MLP256"
    )
    assert row["index_gbps"] > 10.0
