"""Vectorized coalescing engine vs the retained reference oracle.

Acceptance benchmark for the vectorization PR: the fig4 window sweep
(every coalescer window over a fig4 deep-dive matrix's SELL stream)
must run >= 10x faster through the vectorized kernel — with the
by-value sort shared across the sweep via ``analyze_stream``, exactly
as the engine runs it — than through the seed per-window loop kept in
:mod:`repro.axipack.reference`.
"""

import time

from repro.axipack.fastmodel import analyze_stream, coalesce_window_exact
from repro.axipack.reference import coalesce_window_reference
from repro.axipack.streams import matrix_index_stream
from repro.config import DramConfig
from repro.sparse.suite import get_matrix

from _bench_util import record

#: the fig4 window axis: the paper's W=16/64/256 picks plus the
#: surrounding octaves the ablation sweeps.
WINDOWS = (8, 16, 32, 64, 128, 256, 512, 1024)


def _stream(name="af_shell10", max_nnz=120_000):
    return matrix_index_stream(get_matrix(name, max_nnz), "sell")


def test_bench_fig4_window_sweep_speedup(benchmark):
    """>= 10x wall-clock on the fig4 window sweep, bit-exact results."""
    idx = _stream()
    epb = DramConfig().access_bytes // 8  # 8 B elements

    def vectorized():
        analysis = analyze_stream(idx, epb)
        return [
            coalesce_window_exact(analysis.blocks, w, analysis.order)
            for w in WINDOWS
        ]

    def reference():
        blocks = analyze_stream(idx, epb).blocks
        return [coalesce_window_reference(blocks, w) for w in WINDOWS]

    vec_results = benchmark.pedantic(vectorized, rounds=3, iterations=1)
    vec_seconds = benchmark.stats.stats.min

    t0 = time.perf_counter()
    ref_results = reference()
    ref_seconds = time.perf_counter() - t0

    for (vec_count, vec_tags), (ref_count, ref_tags) in zip(
        vec_results, ref_results
    ):
        assert vec_count == ref_count
        assert (vec_tags == ref_tags).all()

    speedup = ref_seconds / vec_seconds
    rows = [
        {
            "window": w,
            "wide_accesses": count,
        }
        for w, (count, _) in zip(WINDOWS, vec_results)
    ]
    record(
        benchmark,
        "coalescer_speedup",
        {
            "rows": rows,
            "summary": {
                "reference_s": round(ref_seconds, 3),
                "vectorized_s": round(vec_seconds, 4),
                "speedup": round(speedup, 1),
            },
        },
    )
    assert speedup >= 10.0, f"only {speedup:.1f}x over the seed loop"


def test_bench_single_window_no_shared_sort(benchmark):
    """Even without the shared sort (one-off calls), the vectorized
    kernel beats the loop at every window size."""
    idx = _stream(max_nnz=60_000)
    blocks = analyze_stream(idx, 8).blocks

    def vectorized_all():
        return [coalesce_window_exact(blocks, w) for w in WINDOWS]

    benchmark.pedantic(vectorized_all, rounds=2, iterations=1)
    vec_seconds = benchmark.stats.stats.min
    t0 = time.perf_counter()
    [coalesce_window_reference(blocks, w) for w in WINDOWS]
    ref_seconds = time.perf_counter() - t0
    benchmark.extra_info["speedup_unshared"] = round(ref_seconds / vec_seconds, 1)
    assert ref_seconds > vec_seconds
