"""Table I: model parameters (configuration consistency check)."""

from repro.experiments.table1 import run_table1

from _bench_util import record


def test_table1_parameters(benchmark):
    result = benchmark(run_table1)
    record(benchmark, "table1", result)
    summary = result["summary"]
    assert summary["index_queue_depth"] == 256
    assert summary["hitmap_queue_depth"] == 128
    assert summary["vpc_lanes"] == 16
    assert summary["dram_peak_gbps"] == 32.0
    # Table I: 27 KB on-chip storage at W=256 (within 10 %).
    assert abs(summary["storage_kib"] - 27.0) / 27.0 < 0.10
