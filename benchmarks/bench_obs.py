"""Telemetry overhead guard on the fig4 window sweep.

Two gates keep ``repro.obs`` honest about its headline promise
("free when off, cheap when on"):

* **disabled <= 2%** — with no tracer configured every instrumented
  call site hands out the shared no-op span.  The gate multiplies the
  measured per-call null-span cost by the number of spans a traced run
  of the same sweep actually emits, and requires that worst-case total
  to stay under 2% of the sweep's wall-time.  This bounds the overhead
  deterministically instead of trying to resolve a sub-percent delta
  between two noisy end-to-end timings.
* **enabled <= 10%** — a fully traced run (NDJSON sink, profiler on)
  must stay within 10% of the untraced wall-time, best-of-N both
  sides.

Both run the quick-scale fig4 grid (3 matrices x 5 window variants)
serially, so the numbers measure instrumentation, not pool spawns.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.engine import SweepExecutor
from repro.experiments.common import QUICK_MATRICES, QUICK_NNZ
from repro.experiments.fig4 import FIG4_VARIANTS, run_fig4
from repro.obs import profiler, trace

ROUNDS = 3


def _sweep() -> dict:
    with SweepExecutor(workers=1) as executor:
        return run_fig4(
            matrices=QUICK_MATRICES,
            variants=FIG4_VARIANTS,
            max_nnz=QUICK_NNZ,
            executor=executor,
        )


def _best_of(rounds: int, run) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _null_span_cost(iterations: int = 200_000) -> float:
    """Measured per-call cost of the disabled ``span()`` path."""
    started = time.perf_counter()
    for _ in range(iterations):
        with obs.span("bench.null", key=1):
            pass
    return (time.perf_counter() - started) / iterations


def _traced_span_count() -> int:
    """Spans one traced sweep emits (the disabled path's call count)."""
    sink = obs.CollectingSink()
    trace.configure(sink)
    profiler.enable()
    try:
        _sweep()
    finally:
        profiler.disable()
        trace.shutdown()
    return len(sink.records)


def test_disabled_overhead_bounded(benchmark):
    untraced = benchmark.pedantic(_sweep, rounds=ROUNDS, iterations=1)
    assert len(untraced["rows"]) == len(QUICK_MATRICES) * len(FIG4_VARIANTS)

    baseline_s = min(benchmark.stats.stats.data)
    spans = _traced_span_count()
    per_call_s = _null_span_cost()
    worst_case_s = spans * per_call_s

    benchmark.extra_info["spans_per_sweep"] = spans
    benchmark.extra_info["null_span_ns"] = round(per_call_s * 1e9, 1)
    benchmark.extra_info["disabled_overhead_pct"] = round(
        100 * worst_case_s / baseline_s, 4
    )
    assert worst_case_s <= 0.02 * baseline_s


def test_enabled_overhead_bounded(tmp_path):
    untraced_s = _best_of(ROUNDS, _sweep)

    def traced(round_index=[0]) -> None:
        round_index[0] += 1
        with obs.tracing(tmp_path / f"fig4-{round_index[0]}.ndjson", root="bench.fig4"):
            _sweep()

    traced_s = _best_of(ROUNDS, traced)
    assert traced_s <= 1.10 * untraced_s, (
        f"traced {traced_s:.3f}s vs untraced {untraced_s:.3f}s "
        f"({traced_s / untraced_s:.2%})"
    )


def test_tracing_leaves_results_identical(tmp_path):
    plain = _sweep()
    with obs.tracing(tmp_path / "fig4.ndjson", root="bench.fig4"):
        traced = _sweep()
    assert traced["rows"] == plain["rows"]
    assert traced["summary"] == plain["summary"]


@pytest.fixture(autouse=True)
def clean_telemetry():
    obs.reset_registry()
    trace.shutdown()
    profiler.disable()
    yield
    obs.reset_registry()
    trace.shutdown()
    profiler.disable()
