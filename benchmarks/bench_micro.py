"""Micro-benchmarks: the substrates' raw throughput.

These track the Python models' own performance (cycles simulated per
second, kernel throughput), so regressions in the simulator itself are
visible next to the paper-figure benchmarks.
"""

import numpy as np
import pytest

from repro.axipack import fast_indirect_stream, run_indirect_stream
from repro.config import mlp_config, nocoalescer_config
from repro.mem.backing_store import BackingStore
from repro.mem.dram import DramChannel
from repro.mem.request import MemRequest
from repro.sim.clock import Simulator
from repro.sparse.suite import get_matrix
from repro.sparse.spmv import spmv_csr, spmv_sell


def _banded(count):
    rng = np.random.default_rng(1)
    return np.clip(
        np.arange(count) // 4 + rng.integers(-20, 21, count), 0, count
    ).astype(np.uint32)


def test_bench_cycle_adapter_mlp64(benchmark):
    idx = _banded(4000)
    result = benchmark.pedantic(
        run_indirect_stream, args=(idx, mlp_config(64)), rounds=2, iterations=1
    )
    benchmark.extra_info["cycles"] = result.cycles
    assert result.count == 4000


def test_bench_cycle_adapter_mlpnc(benchmark):
    idx = _banded(2000)
    result = benchmark.pedantic(
        run_indirect_stream, args=(idx, nocoalescer_config()), rounds=2, iterations=1
    )
    benchmark.extra_info["cycles"] = result.cycles


def test_bench_fast_adapter_full_matrix(benchmark):
    matrix = get_matrix("pwtk", max_nnz=250_000)
    idx = matrix.to_sell(32).index_stream()
    result = benchmark(fast_indirect_stream, idx, mlp_config(256))
    benchmark.extra_info["indirect_bw_gbps"] = round(result.indirect_bw_gbps, 2)


def test_bench_dram_channel_stream(benchmark):
    def run():
        store = BackingStore(1 << 20)
        dram = DramChannel(store)
        sim = Simulator([dram])
        issued = 0
        while issued < 512:
            if dram.req.can_push():
                dram.req.push(MemRequest(addr=(issued * 64) % (1 << 20), nbytes=64))
                issued += 1
            sim.step()
        sim.run_until(lambda: not dram.busy, max_cycles=100_000)
        return sim.cycle

    cycles = benchmark.pedantic(run, rounds=2, iterations=1)
    assert cycles < 512 * 2 + 500


def test_bench_spmv_csr_kernel(benchmark):
    matrix = get_matrix("pwtk", max_nnz=250_000)
    x = np.random.default_rng(0).normal(size=matrix.ncols)
    y = benchmark(spmv_csr, matrix, x)
    assert y.shape == (matrix.nrows,)


def test_bench_spmv_sell_kernel(benchmark):
    matrix = get_matrix("pwtk", max_nnz=250_000).to_sell(32)
    x = np.random.default_rng(0).normal(size=matrix.ncols)
    y = benchmark(spmv_sell, matrix, x)
    assert y.shape == (matrix.nrows,)


def test_bench_sell_conversion(benchmark):
    matrix = get_matrix("hood", max_nnz=120_000)
    sell = benchmark(matrix.to_sell, 32)
    assert sell.true_nnz == matrix.nnz
