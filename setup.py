"""Setuptools shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Near-Memory Parallel Indexing and Coalescing: "
        "Enabling Highly Efficient Indirect Access for SpMV' (DATE 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
