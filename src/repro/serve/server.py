"""The long-lived sweep service: HTTP and stdin/JSON-lines front ends.

Both front ends speak the same NDJSON event stream over one
:class:`~repro.serve.jobs.JobManager`:

* **HTTP** (``python -m repro serve``) — a
  :class:`http.server.ThreadingHTTPServer`.  ``POST /sweep`` and
  ``POST /experiment`` take a JSON request body (the ``cmd`` field
  defaults from the path) and answer with one JSON object per line:
  ``accepted`` → ``rows`` chunks (streamed as matrix groups complete)
  → ``done``.  ``GET /healthz`` and ``GET /stats`` are JSON probes.
  The response is written incrementally and the connection closed to
  delimit it (HTTP/1.0 semantics), so a curl reader sees rows as they
  are computed.
* **stdio** (``python -m repro serve --stdio``) — one JSON request
  per stdin line, the same events on stdout; ``{"cmd": "shutdown"}``
  ends the loop.  This is the deterministic harness the tests drive.

Errors in either front end become ``{"event": "error", ...}``
responses (HTTP status 400 for malformed requests, 500 for
computation failures); the server survives them.
"""

from __future__ import annotations

import json
import signal
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ReproError, ServeError
from ..obs import metrics as obs_metrics
from ..obs import names as obs_names
from ..obs import trace as obs_trace
from .jobs import JobManager
from .protocol import json_default


def _dumps(event: dict) -> bytes:
    return (json.dumps(event, default=json_default) + "\n").encode()


class ReproRequestHandler(BaseHTTPRequestHandler):
    """One NDJSON-streaming handler per connection (threaded server)."""

    server_version = "repro-serve"
    # HTTP/1.0 + connection close delimits the streamed body; no
    # chunked framing needed and curl still renders lines as they come.
    protocol_version = "HTTP/1.0"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:  # type: ignore[attr-defined]
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )

    def _respond_json(self, status: int, payload: dict) -> None:
        body = _dumps(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._respond_json(200, {"ok": True})
        elif self.path == "/stats":
            self._respond_json(200, service_stats(self.manager))
        elif self.path == "/metrics":
            body = render_metrics(self.manager).encode()
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self._respond_json(404, {"event": "error", "error": f"no route {self.path}"})

    def do_POST(self) -> None:
        if self.path not in ("/sweep", "/experiment", "/corpus", "/job"):
            self._respond_json(404, {"event": "error", "error": f"no route {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._respond_json(400, {"event": "error", "error": "body must be JSON"})
            return
        if isinstance(payload, dict) and self.path != "/job":
            payload.setdefault("cmd", self.path[1:])
        try:
            events = self.manager.stream(payload)
            first = next(events)
        except ServeError as exc:
            self._respond_json(400, {"event": "error", "error": str(exc)})
            return
        except ReproError as exc:
            self._respond_json(500, {"event": "error", "error": str(exc)})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            self.wfile.write(_dumps(first))
            self.wfile.flush()
            for event in events:
                self.wfile.write(_dumps(event))
                self.wfile.flush()
        except ReproError as exc:
            # Headers are gone; the error becomes the stream's last event.
            self.wfile.write(_dumps({"event": "error", "error": str(exc)}))


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`JobManager`."""

    daemon_threads = True

    def __init__(self, address, manager: JobManager, verbose: bool = False):
        super().__init__(address, ReproRequestHandler)
        self.manager = manager
        self.verbose = verbose


def _refresh_gauges(manager: JobManager) -> None:
    """Bring scrape-time gauges up to date in the default registry."""
    registry = obs_metrics.get_registry()
    registry.set_gauge(
        obs_names.ENGINE_WORKERS,
        manager.executor.workers,
        help="engine worker processes",
    )
    registry.set_gauge(
        obs_names.SERVE_RESPONSE_CACHE_ENTRIES,
        len(manager._responses),
        help="response cache entries",
    )
    tracer = obs_trace.get_tracer()
    if tracer is not None:
        registry.set_gauge(
            obs_names.TRACE_SPANS_TOTAL,
            tracer.spans_written,
            help="spans written to the trace sink",
        )


def render_metrics(manager: JobManager) -> str:
    """The ``GET /metrics`` body: Prometheus text exposition of the
    default registry, with scrape-time gauges refreshed first."""
    _refresh_gauges(manager)
    return obs_metrics.get_registry().render()


def service_stats(manager: JobManager) -> dict:
    """The ``/stats`` payload: job layers + engine totals, plus the
    active trace id (if the server runs under ``--trace``) and a
    JSON snapshot of the metrics registry."""
    _refresh_gauges(manager)
    return {
        "jobs": dict(manager.stats),
        "engine": dict(manager.executor.stats),
        "engine_last": dict(manager.executor.last_stats),
        "workers": manager.executor.workers,
        "shards": manager.executor.shards,
        "response_cache_size": manager.cache_size,
        "trace": obs_trace.current_trace_id(),
        "metrics": obs_metrics.get_registry().snapshot(),
    }


def serve_stdio(manager: JobManager, inp=None, out=None) -> int:
    """JSON-lines loop: one request per line, NDJSON events out.

    Returns the number of requests served.  ``{"cmd": "shutdown"}``
    (or EOF) ends the loop after a ``bye`` event.
    """
    inp = sys.stdin if inp is None else inp
    out = sys.stdout if out is None else out

    def emit(event: dict) -> None:
        out.write(_dumps(event).decode())
        out.flush()

    served = 0
    for line in inp:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            emit({"event": "error", "error": f"bad JSON: {exc}"})
            continue
        if isinstance(payload, dict) and payload.get("cmd") == "shutdown":
            emit({"event": "bye", "served": served})
            break
        try:
            for event in manager.stream(payload):
                emit(event)
            served += 1
        except ReproError as exc:
            emit({"event": "error", "error": str(exc)})
    return served


def serve_http(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8787,
    stream=None,
    verbose: bool = False,
) -> int:
    """Run the HTTP front end until SIGTERM/SIGINT; returns 0 on a
    clean shutdown.

    Prints ``serving on http://HOST:PORT`` once bound (``--port 0``
    binds an ephemeral port and this line is how callers learn it).
    """
    stream = sys.stdout if stream is None else stream
    server = ReproServer((host, port), manager, verbose=verbose)

    def _terminate(signum, frame):
        # serve_forever() is blocked in its poll loop on this same
        # thread; raising unwinds it so the finally below runs and the
        # process exits 0 — calling server.shutdown() here would
        # deadlock (it joins the loop the handler interrupted).
        raise SystemExit(0)

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        bound_host, bound_port = server.server_address[:2]
        print(f"serving on http://{bound_host}:{bound_port}", file=stream)
        stream.flush()
        server.serve_forever(poll_interval=0.1)
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        manager.close()
    return 0
