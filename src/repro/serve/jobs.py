"""Job scheduling: single-flight dedup, response cache, store reads.

:class:`JobManager` sits between the wire protocols
(:mod:`repro.serve.server`) and the engine.  Every request resolves to
a canonical job key (:mod:`repro.serve.protocol`) and is served from
the first of four layers that can answer it:

1. **response cache** — a bounded LRU of completed job results
   (``source="cache"``); the warm path a repeated request hits.
2. **result store** — experiment requests whose resolved
   configuration matches the committed store manifest are answered by
   reading the stored table (``source="store"``): a repeated
   quick-scale request is a disk read, never a recompute.
3. **single-flight coalescing** — a request whose key is already
   computing does not start a second computation; it waits on the
   in-flight job and shares its rows (``source="coalesced"``).
4. **the engine** — everything else computes through the shared
   persistent :class:`~repro.engine.executor.SweepExecutor`
   (``source="computed"``), whose pool and per-worker analysis caches
   stay warm across jobs.

:meth:`JobManager.stream` is the primitive: it yields protocol events
(``accepted`` → zero or more ``rows`` chunks → ``done``), with sweep
rows streaming per completed matrix group straight off
:meth:`SweepExecutor.run_stream`.  :meth:`JobManager.submit` is the
collected form used by tests and benchmarks.

Thread safety: the manager may be driven from many server threads.
Bookkeeping is guarded by one lock; engine computations serialise on a
second (the executor and its stats are not reentrant) — identical
concurrent requests coalesce on layer 3, distinct ones queue for the
engine.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict
from pathlib import Path

from ..engine import SweepExecutor
from ..errors import ExperimentError, ReproError
from ..obs import metrics as obs_metrics
from ..obs import names as obs_names
from ..obs import trace as obs_trace
from ..report.runner import DEFAULT_STORE_DIR, RUNNERS
from ..report.store import ResultStore
from .protocol import (
    CorpusRequest,
    ExperimentRequest,
    Request,
    SweepRequest,
    canonicalize,
)

logger = logging.getLogger(__name__)


class _Job:
    """One in-flight computation: the leader computes, followers wait."""

    def __init__(self, key: tuple) -> None:
        self.key = key
        self.done = threading.Event()
        self.rows: list[dict] | None = None
        self.error: BaseException | None = None


class JobManager:
    """Serve sweep/experiment jobs through the four cache layers.

    ``executor`` defaults to a fresh :class:`SweepExecutor` built from
    the environment knobs; pass one explicitly to control fan-out.
    ``store_dir`` names the result store consulted for experiment
    requests (the committed ``results/store`` by default).
    ``cache_size`` bounds the response cache (LRU, counted per job
    key).
    """

    def __init__(
        self,
        executor: SweepExecutor | None = None,
        store_dir: Path | str | None = None,
        cache_size: int = 128,
    ) -> None:
        if cache_size < 1:
            raise ExperimentError("response cache needs at least one slot")
        self.executor = executor if executor is not None else SweepExecutor()
        self.store_dir = Path(store_dir) if store_dir else DEFAULT_STORE_DIR
        self.cache_size = cache_size
        self._lock = threading.Lock()
        self._engine_lock = threading.Lock()
        self._inflight: dict[tuple, _Job] = {}
        self._responses: OrderedDict[tuple, list[dict]] = OrderedDict()
        self.stats = {
            "requests": 0,
            "computed": 0,
            "response_hits": 0,
            "store_hits": 0,
            "coalesced": 0,
            "response_evictions": 0,
            "errors": 0,
        }

    # -- public API --------------------------------------------------------

    def submit(self, payload) -> dict:
        """Serve one request to completion.

        Returns ``{"key", "source", "rows", "elapsed_s"}`` where
        ``rows`` are per-point copies (mutating them never corrupts the
        cache) and ``source`` names the layer that answered
        (``cache`` / ``store`` / ``coalesced`` / ``computed``).
        """
        source = "computed"
        rows: list[dict] = []
        key: tuple = ()
        started = time.perf_counter()
        for event in self.stream(payload):
            if event["event"] == "accepted":
                key = event["key"]
                source = event["source"]
            elif event["event"] == "rows":
                rows.extend(event["rows"])
            elif event["event"] == "done":
                source = event["source"]
        return {
            "key": key,
            "source": source,
            "rows": [dict(row) for row in rows],
            "elapsed_s": time.perf_counter() - started,
        }

    def stream(self, payload):
        """Yield protocol events for one request.

        ``accepted`` (with the job key and the answering layer), then
        ``rows`` chunks — per completed matrix group for computed
        sweeps, one chunk otherwise — then ``done``.  Rows inside a
        chunk are final result rows; concatenated across chunks they
        cover the request exactly once, in input order for every
        source except a freshly computed sweep (whose groups land in
        completion order; each row is self-describing).  Raises
        :class:`~repro.errors.ReproError` subclasses on bad requests
        or failed computations, after counting the error.

        With tracing enabled the whole request runs under a
        ``serve.request`` span whose trace id is echoed in the
        ``accepted`` and ``done`` events, so a client can join its
        response to the server-side trace; request latency is always
        recorded in the :data:`~repro.obs.names.SERVE_REQUEST_SECONDS`
        histogram, labeled by the answering layer.
        """
        started = time.perf_counter()
        source = "error"
        with obs_trace.span("serve.request") as span:
            try:
                request = canonicalize(payload)
                span.set(kind=type(request).__name__)
                trace_id = obs_trace.current_trace_id()
                for event in self._stream_request(request):
                    if event["event"] == "done":
                        source = event["source"]
                    if trace_id is not None and event["event"] in (
                        "accepted",
                        "done",
                    ):
                        event = {**event, "trace": trace_id}
                    yield event
            except ReproError:
                with self._lock:
                    self._count("errors")
                raise
            finally:
                obs_metrics.get_registry().observe(
                    obs_names.SERVE_REQUEST_SECONDS,
                    time.perf_counter() - started,
                    help="serve request latency by answering layer",
                    source=source,
                )

    def close(self) -> None:
        """Release the engine's persistent pool."""
        self.executor.close()

    def _count(self, name: str, value: int = 1) -> None:
        """Bump one layer counter (caller holds ``_lock``) and mirror
        it into the metrics registry under its canonical name."""
        self.stats[name] += value
        obs_metrics.get_registry().inc(
            obs_names.stat_metric(name), value, help="serve layer counters"
        )

    # -- layers ------------------------------------------------------------

    def _stream_request(self, request: Request):
        key = request.job_key
        with self._lock:
            self._count("requests")
            cached = self._responses.get(key)
            if cached is not None:
                self._responses.move_to_end(key)
                self._count("response_hits")
        if cached is not None:
            yield from self._replay(key, "cache", cached)
            return

        stored = self._store_lookup(request)
        if stored is not None:
            with self._lock:
                self._count("store_hits")
            self._remember(key, stored)
            yield from self._replay(key, "store", stored)
            return

        with self._lock:
            job = self._inflight.get(key)
            leader = job is None
            if leader:
                job = _Job(key)
                self._inflight[key] = job
            else:
                self._count("coalesced")

        if not leader:
            job.done.wait()
            if job.error is not None:
                raise job.error
            assert job.rows is not None
            yield from self._replay(key, "coalesced", job.rows)
            return

        try:
            yield {"event": "accepted", "key": key, "source": "computed"}
            rows: list[dict] = []
            with self._engine_lock:
                for chunk in self._compute_chunks(request):
                    rows.extend(chunk)
                    # copies: the cache keeps `rows`, the consumer may
                    # mutate what it is handed
                    yield {"event": "rows", "rows": [dict(r) for r in chunk]}
            job.rows = rows
            with self._lock:
                self._count("computed")
            self._remember(key, rows)
            yield {"event": "done", "source": "computed", "row_count": len(rows)}
        except BaseException as exc:
            job.error = exc
            logger.warning(
                "single-flight leader failed for job %s: %s", key, exc
            )
            raise
        finally:
            job.done.set()
            with self._lock:
                self._inflight.pop(key, None)

    def _replay(self, key: tuple, source: str, rows: list[dict]):
        yield {"event": "accepted", "key": key, "source": source}
        yield {"event": "rows", "rows": [dict(row) for row in rows]}
        yield {"event": "done", "source": source, "row_count": len(rows)}

    def _remember(self, key: tuple, rows: list[dict]) -> None:
        with self._lock:
            self._responses[key] = rows
            self._responses.move_to_end(key)
            while len(self._responses) > self.cache_size:
                self._responses.popitem(last=False)
                self._count("response_evictions")

    # -- computation -------------------------------------------------------

    def _compute_chunks(self, request: Request):
        """Yield lists of result rows (chunked for streaming)."""
        if isinstance(request, SweepRequest):
            for _key, _variants, rows in self.executor.run_stream(request.points()):
                yield [dict(row) for row in rows]
            return
        if isinstance(request, CorpusRequest):
            # Ephemeral (no journal/store): the manager's own cache
            # layers provide the warm path for repeated corpus jobs.
            from ..corpus import CorpusRunner
            from ..sparse.corpus import get_corpus

            runner = CorpusRunner(
                get_corpus(request.corpus),
                executor=self.executor,
                kind=request.kind,
                variants=request.variants,
                fmt=request.fmt,
                max_nnz=request.max_nnz,
                model=request.model,
            )
            for _entry, _status, rows in runner.iter_groups():
                if rows:
                    yield [dict(row) for row in rows]
            return
        result = RUNNERS[request.name](**self._experiment_kwargs(request))
        yield [dict(row) for row in result["rows"]]

    def _experiment_kwargs(self, request: ExperimentRequest) -> dict:
        kwargs = request.runner_kwargs()
        if kwargs:
            kwargs["executor"] = self.executor
        return kwargs

    def _store_lookup(self, request: Request) -> list[dict] | None:
        """Experiment rows from the committed store, if it matches."""
        if not isinstance(request, ExperimentRequest):
            return None
        store = ResultStore(self.store_dir)
        try:
            manifest = store.read_manifest()
        except ExperimentError:
            return None
        if request.name not in manifest.get("experiments", {}):
            return None
        if not request.paramless:
            committed = manifest.get("matrices")
            if (
                manifest.get("scale_nnz") != request.scale_nnz
                or manifest.get("adapter_model") != request.model
                or (tuple(committed) if committed else None) != request.matrices
            ):
                return None
        try:
            return store.read_table(request.name)
        except ExperimentError:
            return None
