"""Sweep-as-a-service: the warm-path executor behind a server.

``python -m repro serve`` keeps one persistent
:class:`~repro.engine.executor.SweepExecutor` — its process pool and
each worker's :class:`~repro.engine.cache.AnalysisCache` — warm across
requests, instead of paying a cold CLI start (interpreter + imports +
pool spawn + per-matrix analysis) per sweep.  The layers:

* :mod:`repro.serve.protocol` — request canonicalization and job
  keys: field order and defaulted knobs never split identical jobs.
* :mod:`repro.serve.jobs` — :class:`JobManager`: bounded response
  cache → committed-store read → single-flight coalescing → engine.
* :mod:`repro.serve.server` — the HTTP (NDJSON-streaming) and
  stdin/JSON-lines front ends.
* :mod:`repro.serve.client` — :class:`ServeClient`: the scripted HTTP
  consumer (streamed NDJSON iteration, client-side job-key reuse).

``benchmarks/bench_serve.py`` gates the point of it all: a warm
repeated request must be ≥10× faster than a cold CLI invocation, with
served rows byte-identical to a serial :class:`SweepExecutor` run.
"""

from .client import ServeClient
from .jobs import JobManager
from .protocol import (
    ExperimentRequest,
    SweepRequest,
    canonicalize,
    json_default,
)
from .server import ReproServer, serve_http, serve_stdio, service_stats

__all__ = [
    "JobManager",
    "ServeClient",
    "SweepRequest",
    "ExperimentRequest",
    "canonicalize",
    "json_default",
    "ReproServer",
    "serve_http",
    "serve_stdio",
    "service_stats",
]
