"""Client for the sweep service: streamed NDJSON plus job-key reuse.

:class:`ServeClient` is the scripted counterpart of ``curl`` against a
running ``python -m repro serve``: it wraps ``POST /sweep``,
``POST /experiment`` and ``POST /corpus`` behind one
:meth:`~ServeClient.stream`/:meth:`~ServeClient.submit` pair.

* :meth:`ServeClient.stream` POSTs one request and yields the NDJSON
  protocol events (``accepted`` → ``rows`` chunks → ``done``) as they
  arrive on the socket — a long sweep's completed matrix groups are
  visible before the run finishes, exactly as the server emits them.
* :meth:`ServeClient.submit` collects a stream into the same
  ``{"key", "source", "rows"}`` shape :meth:`JobManager.submit`
  returns, and adds the client-side layer of the job-key contract:
  the request is canonicalized *locally* with the very
  :func:`~repro.serve.protocol.canonicalize` the server runs, so a
  repeated request resolves to its job key before any bytes hit the
  wire and is answered from the client's own memo
  (``source="client"``) without a round trip.  Pass ``reuse=False``
  to force the round trip (the server then answers from its response
  cache).  Malformed payloads raise
  :class:`~repro.errors.ServeError` client-side — the same error,
  same message, no network needed.

The transport is stdlib ``urllib`` only; HTTP 400/500 answers and
mid-stream ``{"event": "error"}`` lines both surface as
:class:`~repro.errors.ServeError`.  ``tools/serve_smoke.py`` drives
this client against a real server subprocess in CI.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from ..errors import ServeError
from .protocol import canonicalize


def _freeze(value):
    """JSON round-tripped job keys come back as nested lists; freeze
    them to the tuples :attr:`SweepRequest.job_key` produces so server
    keys and locally canonicalized keys compare (and hash) equal."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


class ServeClient:
    """One sweep-service endpoint plus a per-client job-key memo.

    ``base_url`` names the server (e.g. ``http://127.0.0.1:8787``);
    ``timeout`` is the per-request socket timeout in seconds.  The
    memo holds completed results keyed by canonical job key and is
    unbounded — a client lives for one scripting session, not a
    server's lifetime; call :meth:`forget` to drop it.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._results: dict[tuple, tuple[str, list[dict]]] = {}

    # -- transport ---------------------------------------------------------

    def _request(self, path: str, payload: dict | None = None):
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            headers={} if data is None else {"Content-Type": "application/json"},
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            body = exc.read().decode(errors="replace")
            try:
                message = json.loads(body)["error"]
            except (json.JSONDecodeError, KeyError, TypeError):
                message = body.strip() or f"HTTP {exc.code}"
            raise ServeError(f"server rejected {path}: {message}") from exc
        except OSError as exc:
            raise ServeError(f"cannot reach {self.base_url}{path}: {exc}") from exc

    def _get_json(self, path: str) -> dict:
        with self._request(path) as response:
            return json.loads(response.read().decode())

    # -- probes ------------------------------------------------------------

    def healthy(self) -> bool:
        """True when ``GET /healthz`` answers ``{"ok": true}``."""
        try:
            return self._get_json("/healthz") == {"ok": True}
        except ServeError:
            return False

    def stats(self) -> dict:
        """The server's ``GET /stats`` payload (job + engine layers)."""
        return self._get_json("/stats")

    def metrics(self) -> str:
        """The server's ``GET /metrics`` body — Prometheus text
        exposition of every layer's counters, gauges and histograms."""
        with self._request("/metrics") as response:
            return response.read().decode()

    # -- jobs --------------------------------------------------------------

    def stream(self, payload: dict, path: str | None = None):
        """POST one request; yield protocol events as lines arrive.

        ``path`` defaults from the payload's ``cmd`` (itself defaulting
        to ``sweep``), mirroring how the server defaults ``cmd`` from
        the path.  A mid-stream ``{"event": "error"}`` line raises
        :class:`~repro.errors.ServeError` — events yielded before it
        remain valid (completed groups of a partially failed sweep).
        """
        if path is None:
            cmd = payload.get("cmd", "sweep") if isinstance(payload, dict) else "sweep"
            path = f"/{cmd}"
        with self._request(path, payload if payload is not None else {}) as response:
            for raw in response:
                line = raw.decode().strip()
                if not line:
                    continue
                event = json.loads(line)
                if event.get("event") == "error":
                    raise ServeError(event.get("error", "unspecified server error"))
                yield event

    def submit(self, payload: dict, reuse: bool = True) -> dict:
        """Serve one request to completion.

        Returns ``{"key", "source", "rows"}``; ``rows`` are per-row
        copies, safe to mutate.  With ``reuse`` (the default) a job
        key this client has already collected is answered from its
        memo as ``source="client"`` with no network traffic; the
        canonical key is computed locally, so spelling out defaulted
        knobs or reordering fields never defeats the memo — the same
        guarantee the server's own layers hang off.
        """
        key = canonicalize(payload).job_key
        if reuse and key in self._results:
            source, rows = self._results[key]
            return {"key": key, "source": "client", "rows": [dict(r) for r in rows]}

        source = "computed"
        rows: list[dict] = []
        for event in self.stream(payload):
            if event["event"] == "accepted":
                key = _freeze(event["key"])
            elif event["event"] == "rows":
                rows.extend(event["rows"])
            elif event["event"] == "done":
                source = event["source"]
        self._results[key] = (source, rows)
        return {"key": key, "source": source, "rows": [dict(r) for r in rows]}

    def forget(self) -> None:
        """Drop the client-side job-key memo."""
        self._results.clear()
