"""Request canonicalization and the job-key contract.

Every request the sweep service accepts is a JSON object with a
``cmd`` discriminator:

* ``{"cmd": "sweep", "matrices": [...], "variants": [...], ...}`` —
  an ad-hoc engine sweep through any registered backend kind (the
  JSON twin of ``python -m repro sweep``);
* ``{"cmd": "experiment", "name": "fig3", "quick": true}`` — one
  registered experiment runner, servable straight from the committed
  result store when the store manifest matches the resolved
  configuration;
* ``{"cmd": "corpus", "corpus": "quick", ...}`` — a registered matrix
  corpus (:mod:`repro.sparse.corpus`) swept offline through the corpus
  runner, rows streaming per completed entry.  The job key embeds the
  corpus *digest*, so editing a manifest's entry set splits the key.

:func:`canonicalize` turns such a payload into a frozen request
object: defaults are filled in, list fields become tuples, comma
strings are split, and unknown fields are rejected with
:class:`~repro.errors.ServeError`.  The point is the **job key**
(:attr:`SweepRequest.job_key`): two payloads that differ only in JSON
field order or in spelling out a defaulted knob canonicalize to the
*same* key, and the key is built from exactly the identity the engine
already dedups on — a sweep key is the set of
:attr:`~repro.engine.points.SweepPoint.row_key` inputs (kind,
matrices, variants, formats, scale, model), an experiment key is the
identity subset of the store manifest (name, scale, model, matrices).
Single-flight dedup and the response cache (:mod:`repro.serve.jobs`)
both hang off this key.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import grid_points, registered_kinds
from ..errors import ServeError
from ..experiments.common import QUICK_MATRICES, QUICK_NNZ
from ..report.runner import PARAMLESS, RUNNERS
from ..sparse.suite import DEFAULT_MAX_NNZ

#: Backend kinds whose grids take a traversal-format axis; for any
#: other kind a ``formats`` field is rejected rather than silently
#: ignored (it would split otherwise-identical job keys).
KINDS_WITH_FORMATS = ("adapter", "multichannel", "scatter")

_SWEEP_FIELDS = frozenset(
    {"cmd", "kind", "matrices", "variants", "formats", "max_nnz", "model", "quick"}
)
_EXPERIMENT_FIELDS = frozenset(
    {"cmd", "name", "matrices", "max_nnz", "model", "quick"}
)
_CORPUS_FIELDS = frozenset(
    {"cmd", "corpus", "kind", "variants", "fmt", "max_nnz", "model", "quick"}
)


@dataclass(frozen=True)
class SweepRequest:
    """A canonical ad-hoc sweep: one grid through one backend kind."""

    kind: str
    matrices: tuple[str, ...]
    variants: tuple[str, ...]
    formats: tuple[str, ...]
    max_nnz: int
    model: str

    @property
    def job_key(self) -> tuple:
        return (
            "sweep", self.kind, self.matrices, self.variants, self.formats,
            self.max_nnz, self.model,
        )

    def points(self) -> list:
        """The request's grid, built through the backend registry."""
        kwargs: dict = {"max_nnz": self.max_nnz, "model": self.model}
        if self.formats:
            kwargs["formats"] = self.formats
        return grid_points(self.kind, self.matrices, self.variants, **kwargs)


@dataclass(frozen=True)
class ExperimentRequest:
    """A canonical experiment-runner request (one figure/table)."""

    name: str
    scale_nnz: int
    model: str
    matrices: tuple[str, ...] | None

    @property
    def paramless(self) -> bool:
        return self.name in PARAMLESS

    @property
    def job_key(self) -> tuple:
        if self.paramless:
            return ("experiment", self.name)
        return ("experiment", self.name, self.scale_nnz, self.model, self.matrices)

    def runner_kwargs(self) -> dict:
        if self.paramless:
            return {}
        kwargs: dict = {"max_nnz": self.scale_nnz, "model": self.model}
        if self.matrices is not None:
            kwargs["matrices"] = self.matrices
        return kwargs


@dataclass(frozen=True)
class CorpusRequest:
    """A canonical corpus sweep: one variant set over a named corpus.

    ``digest`` is the corpus's entry-identity digest, resolved at
    canonicalization — two requests naming the same corpus share a key
    only while the corpus's entry set is unchanged.  Corpus jobs always
    run offline (only cached/local matrices); enabling fetches is a CLI
    decision, not a wire-request one.
    """

    corpus: str
    digest: str
    kind: str
    variants: tuple[str, ...]
    fmt: str
    max_nnz: int
    model: str

    @property
    def job_key(self) -> tuple:
        return (
            "corpus", self.corpus, self.digest, self.kind, self.variants,
            self.fmt, self.max_nnz, self.model,
        )


Request = SweepRequest | ExperimentRequest | CorpusRequest


def _str_tuple(payload: dict, field: str, default=None) -> tuple[str, ...] | None:
    """A tuple-of-names field: list/tuple of strings, or one
    comma-separated string (the CLI's spelling, handy under curl)."""
    if field not in payload:
        return default
    value = payload[field]
    if isinstance(value, str):
        value = [part for part in value.split(",") if part]
    if not isinstance(value, (list, tuple)) or not value or not all(
        isinstance(item, str) and item for item in value
    ):
        raise ServeError(f"{field} must be a non-empty list of names")
    return tuple(value)


def _int_field(payload: dict, field: str, default=None, minimum: int = 1):
    if field not in payload:
        return default
    value = payload[field]
    # bool is an int subclass; reject it explicitly.
    if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
        raise ServeError(f"{field} must be an integer >= {minimum}")
    return value


def _bool_field(payload: dict, field: str) -> bool:
    value = payload.get(field, False)
    if not isinstance(value, bool):
        raise ServeError(f"{field} must be a boolean")
    return value


def _model_field(payload: dict) -> str:
    model = payload.get("model", "fast")
    if model not in ("fast", "cycle"):
        raise ServeError(f"unknown adapter model {model!r}; expected fast or cycle")
    return model


def _check_fields(payload: dict, allowed: frozenset) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ServeError(
            f"unknown request fields {unknown}; allowed: {sorted(allowed)}"
        )


def canonicalize(payload) -> Request:
    """Validate a request payload into its canonical frozen form.

    Raises :class:`~repro.errors.ServeError` on anything malformed.
    Canonicalization is *total* on the job identity: every knob that
    affects the result is resolved here (defaults included), so two
    requests that would compute the same rows share one
    :attr:`~SweepRequest.job_key`.
    """
    if not isinstance(payload, dict):
        raise ServeError("request must be a JSON object")
    cmd = payload.get("cmd", "sweep")
    if cmd == "sweep":
        return _canonicalize_sweep(payload)
    if cmd == "experiment":
        return _canonicalize_experiment(payload)
    if cmd == "corpus":
        return _canonicalize_corpus(payload)
    raise ServeError(
        f"unknown cmd {cmd!r}; expected sweep, experiment or corpus"
    )


def _canonicalize_sweep(payload: dict) -> SweepRequest:
    _check_fields(payload, _SWEEP_FIELDS)
    kind = payload.get("kind", "adapter")
    if kind not in registered_kinds():
        raise ServeError(
            f"unknown sweep backend {kind!r}; "
            f"registered: {', '.join(registered_kinds())}"
        )
    matrices = _str_tuple(payload, "matrices")
    variants = _str_tuple(payload, "variants")
    if matrices is None or variants is None:
        raise ServeError("sweep requests need matrices and variants")
    if kind in KINDS_WITH_FORMATS:
        formats = _str_tuple(payload, "formats", default=("sell",))
    elif "formats" in payload:
        raise ServeError(f"formats does not apply to kind {kind!r}")
    else:
        formats = ()
    quick = _bool_field(payload, "quick")
    max_nnz = _int_field(
        payload, "max_nnz",
        default=QUICK_NNZ if quick else DEFAULT_MAX_NNZ, minimum=1000,
    )
    return SweepRequest(
        kind=kind, matrices=matrices, variants=variants, formats=formats,
        max_nnz=max_nnz, model=_model_field(payload),
    )


def _canonicalize_experiment(payload: dict) -> ExperimentRequest:
    _check_fields(payload, _EXPERIMENT_FIELDS)
    name = payload.get("name")
    if name not in RUNNERS:
        raise ServeError(
            f"unknown experiment {name!r}; registered: {', '.join(RUNNERS)}"
        )
    quick = _bool_field(payload, "quick")
    if name in PARAMLESS:
        if any(field in payload for field in ("matrices", "max_nnz")) or quick:
            raise ServeError(f"{name} has no matrix grid; scale knobs do not apply")
        # model/scale slots are fixed for paramless runners; they are
        # excluded from the job key.
        return ExperimentRequest(
            name=name, scale_nnz=0, model="fast", matrices=None
        )
    matrices = _str_tuple(
        payload, "matrices", default=QUICK_MATRICES if quick else None
    )
    scale = _int_field(
        payload, "max_nnz",
        default=QUICK_NNZ if quick else DEFAULT_MAX_NNZ, minimum=1000,
    )
    return ExperimentRequest(
        name=name, scale_nnz=scale, model=_model_field(payload),
        matrices=matrices,
    )


def _canonicalize_corpus(payload: dict) -> CorpusRequest:
    from ..corpus import CORPUS_KINDS, DEFAULT_VARIANTS
    from ..errors import CorpusError
    from ..sparse.corpus import get_corpus

    _check_fields(payload, _CORPUS_FIELDS)
    name = payload.get("corpus", "quick")
    if not isinstance(name, str) or not name:
        raise ServeError("corpus must be a corpus name")
    try:
        corpus = get_corpus(name)
    except CorpusError as exc:
        raise ServeError(str(exc)) from exc
    kind = payload.get("kind", "adapter")
    if kind not in CORPUS_KINDS:
        raise ServeError(
            f"corpus sweeps support kinds {', '.join(CORPUS_KINDS)}, "
            f"not {kind!r}"
        )
    fmt = payload.get("fmt", "sell")
    if not isinstance(fmt, str) or not fmt:
        raise ServeError("fmt must be a format name")
    quick = _bool_field(payload, "quick")
    max_nnz = _int_field(
        payload, "max_nnz",
        default=QUICK_NNZ if quick else DEFAULT_MAX_NNZ, minimum=1000,
    )
    return CorpusRequest(
        corpus=name,
        digest=corpus.digest,
        kind=kind,
        variants=_str_tuple(payload, "variants", default=DEFAULT_VARIANTS),
        fmt=fmt,
        max_nnz=max_nnz,
        model=_model_field(payload),
    )


def json_default(value):
    """``json.dumps(..., default=json_default)`` hook for engine rows —
    NumPy scalars (and arrays, defensively) serialise as their Python
    equivalents so streamed rows round-trip as plain JSON numbers."""
    import numpy as np

    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")
