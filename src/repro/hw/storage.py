"""On-chip storage accounting (paper Table I: 27 kB at W = 256).

``adapter_storage_breakdown`` derives the adapter's SRAM/flop storage
from the configuration's queue geometry; at the paper's configuration
it lands at the published ~27 kB.  ``system_onchip_storage`` sums the
whole vector-processor system's on-chip memory the way Fig. 6b counts
it for the efficiency comparison (register file, L1, L2/SPM, LLC).
"""

from __future__ import annotations

from ..config import AdapterConfig, VpcConfig
from ..units import KIB


def adapter_storage_breakdown(config: AdapterConfig) -> dict[str, float]:
    """Bytes of on-chip storage per adapter structure."""
    lanes = config.lanes
    idx_bytes = config.index_bytes
    elem_bytes = config.element_bytes
    breakdown: dict[str, float] = {
        # N per-lane index queues (dual-port SRAM macros).
        "index_queues": lanes * config.index_queue_depth * idx_bytes,
        # wide response staging for index and element returns.
        "response_staging": 2 * 16 * config.bus_bytes,
        # element packer beat assembly.
        "packer": 2 * config.bus_bytes,
    }
    cc = config.coalescer
    if cc is not None:
        window = cc.window
        breakdown.update(
            {
                # W upsizer request queues: address + stream metadata.
                "request_queues": window * cc.sizer_queue_depth * 12,
                # hitmap queue: one W-bit map per outstanding warp.
                "hitmap_queue": cc.hitmap_queue_depth * window / 8,
                # W shallow offset FIFOs (byte-aligned offsets).
                "offsets_queues": cc.offsets_total_entries * 1,
                # W element queues.
                "element_queues": window * cc.sizer_queue_depth * elem_bytes,
                # downsizer lane buffers.
                "lane_buffers": lanes * cc.sizer_queue_depth * elem_bytes,
                # the CSHR itself: tag + W offsets + W-bit hitmap.
                "cshr": 8 + window + window / 8,
            }
        )
    breakdown["total"] = sum(v for k, v in breakdown.items() if k != "total")
    return breakdown


def adapter_storage_bytes(config: AdapterConfig) -> float:
    return adapter_storage_breakdown(config)["total"]


def system_onchip_storage(
    adapter: AdapterConfig | None = None,
    vpc: VpcConfig | None = None,
) -> dict[str, float]:
    """Our system's total on-chip memory, in bytes, counted the way
    Fig. 6b counts the comparison machines' (entire memory system:
    vector register file, L1, L2/SPM)."""
    adapter = adapter or AdapterConfig()
    vpc = vpc or VpcConfig()
    vlen_bits = vpc.lanes * 1024  # Ara: VLEN scales with the lane count
    vrf_bytes = 32 * vlen_bits // 8  # 32 vector registers
    breakdown = {
        "l2_spm": float(vpc.l2_spm_bytes),
        "adapter": adapter_storage_bytes(adapter),
        "cva6_l1": 2 * 32 * KIB,  # 32 KiB I$ + 32 KiB D$
        "ara_vrf": float(vrf_bytes),
    }
    breakdown["total"] = sum(breakdown.values())
    return breakdown
