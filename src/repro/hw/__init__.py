"""Implementation-quality models: area, on-chip storage, and
state-of-the-art comparisons (paper Sec. IV-C, Fig. 6)."""

from .area import AreaModel, adapter_area_breakdown
from .soa import SOA_PROCESSORS, efficiency_comparison
from .storage import adapter_storage_breakdown, system_onchip_storage

__all__ = [
    "AreaModel",
    "adapter_area_breakdown",
    "SOA_PROCESSORS",
    "efficiency_comparison",
    "adapter_storage_breakdown",
    "system_onchip_storage",
]
