"""State-of-the-art comparison data and efficiency metrics (Fig. 6b).

The paper compares against two leading HBM-based vector processors
using published measurements:

* **NEC SX-Aurora TSUBASA** — Gomez et al., "Efficiently running SpMV
  on long vector architectures", PPoPP 2021 (paper ref. [15]).
* **Fujitsu A64FX** — Alappat et al., "Performance modeling of
  streaming kernels and sparse matrix-vector multiplication on A64FX",
  PMBS 2020 (paper ref. [16]).

Metrics (both normalised by STREAM-copy main-memory bandwidth):

* on-chip cost: kB of on-chip memory per GB/s,
* SpMV performance efficiency: GFLOP/s per GB/s.

The comparison machines' numbers are cited constants; *our* system's
numbers come from the simulation results and the storage model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AdapterConfig, VpcConfig
from .storage import system_onchip_storage


@dataclass(frozen=True)
class ProcessorDatum:
    """Published figures for one comparison machine."""

    name: str
    #: STREAM-copy main-memory bandwidth, GB/s.
    stream_copy_gbps: float
    #: total on-chip memory (register files, L1, L2, LLC), KiB.
    onchip_kib: float
    #: average SpMV performance on the evaluation set, GFLOP/s.
    spmv_gflops: float
    source: str

    @property
    def onchip_cost_kb_per_gbps(self) -> float:
        return self.onchip_kib / self.stream_copy_gbps

    @property
    def perf_efficiency_gflops_per_gbps(self) -> float:
        return self.spmv_gflops / self.stream_copy_gbps


#: cited comparison machines (paper refs. [15], [16]).
SOA_PROCESSORS: dict[str, ProcessorDatum] = {
    "SX-Aurora": ProcessorDatum(
        name="SX-Aurora",
        stream_copy_gbps=1000.0,
        onchip_kib=24 * 1024,  # 16 MiB LLC + per-core VRF/scratch
        spmv_gflops=98.0,
        source="Gomez et al., PPoPP 2021 (ref. [15])",
    ),
    "A64FX": ProcessorDatum(
        name="A64FX",
        stream_copy_gbps=830.0,
        onchip_kib=35.5 * 1024,  # 32 MiB L2 + 48 x 64 KiB L1
        spmv_gflops=90.0,
        source="Alappat et al., PMBS 2020 (ref. [16])",
    ),
}


def our_processor_datum(
    measured_avg_gflops: float,
    adapter: AdapterConfig | None = None,
    vpc: VpcConfig | None = None,
    stream_copy_gbps: float = 32.0,
) -> ProcessorDatum:
    """Build our system's datum from simulated SpMV GFLOP/s."""
    storage = system_onchip_storage(adapter, vpc)
    return ProcessorDatum(
        name="This Work",
        stream_copy_gbps=stream_copy_gbps,
        onchip_kib=storage["total"] / 1024,
        spmv_gflops=measured_avg_gflops,
        source="simulated (this reproduction)",
    )


def efficiency_comparison(measured_avg_gflops: float) -> list[dict[str, float]]:
    """Fig. 6b rows: every machine's two efficiency metrics plus the
    ratios relative to our system."""
    ours = our_processor_datum(measured_avg_gflops)
    rows = []
    for datum in [*SOA_PROCESSORS.values(), ours]:
        rows.append(
            {
                "name": datum.name,
                "gflops_per_gbps": round(datum.perf_efficiency_gflops_per_gbps, 4),
                "kb_per_gbps": round(datum.onchip_cost_kb_per_gbps, 2),
                "onchip_efficiency_vs_ours": round(
                    datum.onchip_cost_kb_per_gbps / ours.onchip_cost_kb_per_gbps, 2
                ),
                "perf_efficiency_vs_ours": round(
                    datum.perf_efficiency_gflops_per_gbps
                    / ours.perf_efficiency_gflops_per_gbps,
                    2,
                )
                if ours.perf_efficiency_gflops_per_gbps
                else 0.0,
            }
        )
    return rows
