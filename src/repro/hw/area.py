"""Adapter area model, calibrated to the paper's GF12 implementation.

The paper implements the AXI-Pack adapter with Synopsys Fusion Compiler
for GlobalFoundries' 12 nm FinFET at 1 GHz (worst case) and reports
(Sec. IV-C):

* index queues up to **754 kGE** (dual-port SRAM macros),
* coalescer logic of **307 / 617 / 1035 kGE** for W = 64 / 128 / 256
  (the paper calls the growth linear in the window; ~3.3-4.8 kGE per
  window entry between the published points),
* total design area **0.19 / 0.26 / 0.34 mm²** at standard-cell
  utilization **60.5 / 56.5 / 56.4 %**.

This module reproduces those published points exactly and extends them
with a linear-in-W analytic model for other configurations, which the
design-space exploration example uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AdapterConfig, CoalescerConfig

#: published coalescer logic area per window size (Sec. IV-C).
PUBLISHED_COAL_KGE: dict[int, float] = {64: 307.0, 128: 617.0, 256: 1035.0}

#: index queues at the paper's configuration (N = 8 lanes x 256 x 32 b,
#: dual-port SRAM macros): 754 kGE.
IDX_QUEUE_KGE_REFERENCE = 754.0
IDX_QUEUE_REFERENCE_BITS = 8 * 256 * 32

#: element request generator and remaining glue (packer, fetcher,
#: AXI interfaces) — the paper's "ele_gen" and "others" bars.
ELE_GEN_KGE = 95.0
OTHERS_KGE = 180.0

#: published implementation points: window -> (mm^2, utilization %).
PUBLISHED_IMPLEMENTATIONS: dict[int, tuple[float, float]] = {
    64: (0.19, 60.5),
    128: (0.26, 56.5),
    256: (0.34, 56.4),
}


@dataclass(frozen=True)
class AreaModel:
    """Analytic adapter area in kGE and mm² (GF12)."""

    config: AdapterConfig

    def coalescer_kge(self) -> float:
        """Published points exactly; piecewise-linear between them,
        proportional below W=64 and last-segment slope above W=256."""
        cc = self.config.coalescer
        if cc is None:
            return 0.0
        window = cc.window
        points = sorted(PUBLISHED_COAL_KGE.items())
        if window in PUBLISHED_COAL_KGE:
            return PUBLISHED_COAL_KGE[window]
        if window < points[0][0]:
            return points[0][1] * window / points[0][0]
        for (w0, a0), (w1, a1) in zip(points, points[1:]):
            if w0 < window < w1:
                return a0 + (a1 - a0) * (window - w0) / (w1 - w0)
        (w0, a0), (w1, a1) = points[-2], points[-1]
        slope = (a1 - a0) / (w1 - w0)
        return a1 + slope * (window - w1)

    def index_queue_kge(self) -> float:
        bits = (
            self.config.lanes
            * self.config.index_queue_depth
            * self.config.index_bytes
            * 8
        )
        return IDX_QUEUE_KGE_REFERENCE * bits / IDX_QUEUE_REFERENCE_BITS

    def element_gen_kge(self) -> float:
        return ELE_GEN_KGE * self.config.lanes / 8

    def others_kge(self) -> float:
        return OTHERS_KGE

    def total_kge(self) -> float:
        return (
            self.coalescer_kge()
            + self.index_queue_kge()
            + self.element_gen_kge()
            + self.others_kge()
        )

    def area_mm2(self) -> float:
        """Design area; exact published value when the configuration
        matches an implemented point, linear interpolation otherwise."""
        cc = self.config.coalescer
        window = cc.window if cc is not None else 0
        if (
            window in PUBLISHED_IMPLEMENTATIONS
            and self.config.lanes == 8
            and self.config.index_queue_depth == 256
        ):
            return PUBLISHED_IMPLEMENTATIONS[window][0]
        # Linear fit through (64, 0.19 mm^2) and (256, 0.34 mm^2); the
        # window-independent intercept covers the index queues and glue,
        # so the coalescer-less design lands at the intercept.
        slope = (0.34 - 0.19) / (256 - 64)
        base = 0.19 - slope * 64
        return base + slope * window

    def utilization_percent(self) -> float:
        cc = self.config.coalescer
        window = cc.window if cc is not None else 0
        if window in PUBLISHED_IMPLEMENTATIONS:
            return PUBLISHED_IMPLEMENTATIONS[window][1]
        return 58.0  # representative of the published range


def adapter_area_breakdown(window: int, lanes: int = 8) -> dict[str, float]:
    """Fig. 6a bar: kGE per block for an AP<window> adapter."""
    config = AdapterConfig(
        lanes=lanes,
        coalescer=CoalescerConfig(window=window) if window else None,
    )
    model = AreaModel(config)
    return {
        "others": model.others_kge(),
        "ele_gen": model.element_gen_kge(),
        "idx_que": model.index_queue_kge(),
        "coal": model.coalescer_kge(),
        "total": model.total_kge(),
        "area_mm2": model.area_mm2(),
        "utilization_pct": model.utilization_percent(),
    }
