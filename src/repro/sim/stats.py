"""Lightweight statistics primitives used by the hardware models."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0


@dataclass
class StatSet:
    """A named bundle of counters with on-demand creation.

    >>> stats = StatSet("dram")
    >>> stats.add("row_hits", 3)
    >>> stats["row_hits"]
    3
    """

    name: str
    counters: dict[str, Counter] = field(default_factory=dict)

    def counter(self, key: str) -> Counter:
        if key not in self.counters:
            self.counters[key] = Counter(f"{self.name}.{key}")
        return self.counters[key]

    def add(self, key: str, amount: int = 1) -> None:
        self.counter(key).add(amount)

    def __getitem__(self, key: str) -> int:
        return self.counters[key].value if key in self.counters else 0

    def as_dict(self) -> dict[str, int]:
        return {key: counter.value for key, counter in self.counters.items()}

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()
