"""The simulator loop driving all components cycle by cycle."""

from __future__ import annotations

from typing import Callable, Iterable

from ..errors import DeadlockError
from .component import Component


class Simulator:
    """Drives a set of :class:`Component` instances.

    Each cycle, every component's ``tick`` runs (in registration order),
    then every owned FIFO commits.  Because pushes are invisible until
    commit, tick order does not affect results.

    Parameters
    ----------
    components:
        Blocks to simulate, in any order.
    deadlock_horizon:
        Abort with :class:`~repro.errors.DeadlockError` if this many
        consecutive cycles elapse with no FIFO activity anywhere while
        some component still reports ``busy``.
    """

    def __init__(
        self,
        components: Iterable[Component],
        deadlock_horizon: int = 100_000,
    ) -> None:
        self.components: list[Component] = list(components)
        self.deadlock_horizon = deadlock_horizon
        self.cycle = 0
        self._idle_cycles = 0

    def add(self, component: Component) -> Component:
        """Register one more component."""
        self.components.append(component)
        return component

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` cycles."""
        from .fifo import Fifo

        for _ in range(cycles):
            activity_before = Fifo.global_ops
            for component in self.components:
                component.tick()
            for component in self.components:
                component.commit()
            self.cycle += 1
            if Fifo.global_ops == activity_before:
                self._idle_cycles += 1
                if (
                    self._idle_cycles >= self.deadlock_horizon
                    and any(c.busy for c in self.components)
                ):
                    busy = [c.name for c in self.components if c.busy]
                    raise DeadlockError(
                        f"no progress for {self._idle_cycles} cycles; "
                        f"busy components: {busy}"
                    )
            else:
                self._idle_cycles = 0

    def run_until(
        self,
        done: Callable[[], bool],
        max_cycles: int = 50_000_000,
    ) -> int:
        """Step until ``done()`` returns True; returns the cycle count.

        Raises :class:`DeadlockError` when ``max_cycles`` elapse first,
        since the hardware models are expected to converge.
        """
        start = self.cycle
        while not done():
            if self.cycle - start >= max_cycles:
                raise DeadlockError(
                    f"run_until exceeded {max_cycles} cycles without finishing"
                )
            self.step()
        return self.cycle - start
