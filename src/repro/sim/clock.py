"""The simulator loop driving all components cycle by cycle."""

from __future__ import annotations

import os
from typing import Callable, Iterable

from ..errors import BudgetExceededError, ConfigError, DeadlockError
from ..obs import profiler as obs_profiler
from .component import Component

ENGINES = ("step", "batched")


def default_engine() -> str:
    """Engine used by the high-level runners when none is requested:
    ``$REPRO_SIM_ENGINE`` if set, otherwise the batched engine."""
    engine = os.environ.get("REPRO_SIM_ENGINE", "batched")
    if engine not in ENGINES:
        raise ConfigError(
            f"REPRO_SIM_ENGINE must be one of {ENGINES}, got {engine!r}"
        )
    return engine


class Simulator:
    """Drives a set of :class:`Component` instances.

    Each cycle, every component's ``tick`` runs (in registration order),
    then every owned FIFO commits.  Because pushes are invisible until
    commit, tick order does not affect results.

    Parameters
    ----------
    components:
        Blocks to simulate, in any order.
    deadlock_horizon:
        Abort with :class:`~repro.errors.DeadlockError` if this many
        consecutive cycles elapse with no FIFO activity anywhere while
        some component still reports ``busy``.
    engine:
        ``"step"`` ticks every component every cycle (the oracle);
        ``"batched"`` makes :meth:`run_until` jump quiet spans via
        :mod:`repro.sim.batched`.  Both produce bit-identical results;
        :meth:`step` always uses the step path.
    """

    def __init__(
        self,
        components: Iterable[Component],
        deadlock_horizon: int = 100_000,
        engine: str = "step",
    ) -> None:
        if engine not in ENGINES:
            raise ConfigError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.components: list[Component] = list(components)
        self.deadlock_horizon = deadlock_horizon
        self.engine = engine
        self.cycle = 0
        self._idle_cycles = 0
        #: shared push/pop counter cell for every FIFO owned by this
        #: simulator's components (per-simulator idle detection — two
        #: live simulators must not mask each other's deadlocks).
        self._ops: list[int] = [0]
        for component in self.components:
            self._share_ops(component)

    def _share_ops(self, component: Component) -> None:
        for fifo in component.fifos:
            fifo._ops = self._ops

    def add(self, component: Component) -> Component:
        """Register one more component."""
        self.components.append(component)
        self._share_ops(component)
        return component

    @property
    def fifo_ops(self) -> int:
        """Total FIFO pushes plus pops across this simulator so far."""
        return self._ops[0]

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` cycles.

        With the cycle profiler enabled (:func:`repro.obs.profiled`),
        every executed cycle is charged as one ``tick`` per component —
        including the cycle that trips the deadlock detector, so the
        bins stay exact on the error path too.
        """
        ops = self._ops
        profiler = obs_profiler.active()
        executed = 0
        try:
            for _ in range(cycles):
                activity_before = ops[0]
                for component in self.components:
                    component.tick()
                for component in self.components:
                    component.commit()
                self.cycle += 1
                executed += 1
                if ops[0] == activity_before:
                    self._idle_cycles += 1
                    if (
                        self._idle_cycles >= self.deadlock_horizon
                        and any(c.busy for c in self.components)
                    ):
                        busy = [c.name for c in self.components if c.busy]
                        raise DeadlockError(
                            f"no progress for {self._idle_cycles} cycles; "
                            f"busy components: {busy}"
                        )
                else:
                    self._idle_cycles = 0
        finally:
            if profiler is not None and executed:
                for component in self.components:
                    profiler.add(component.name, "tick", executed)

    def run_until(
        self,
        done: Callable[[], bool],
        max_cycles: int = 50_000_000,
    ) -> int:
        """Step until ``done()`` returns True; returns the cycle count.

        Raises :class:`~repro.errors.BudgetExceededError` when
        ``max_cycles`` elapse first and :class:`DeadlockError` when the
        idle detector trips, since the hardware models are expected to
        converge.
        """
        if self.engine == "batched":
            from .batched import BatchedEngine

            return BatchedEngine(self).run(done, max_cycles)
        start = self.cycle
        while not done():
            if self.cycle - start >= max_cycles:
                raise BudgetExceededError(
                    max_cycles, [c.name for c in self.components if c.busy]
                )
            self.step()
        return self.cycle - start
