"""Cycle-driven simulation kernel.

The kernel follows a two-phase update discipline: during a cycle every
component's :meth:`~repro.sim.component.Component.tick` runs and may pop
from and push into :class:`~repro.sim.fifo.Fifo` instances; pushes only
become visible after the simulator commits the cycle.  This makes
simulation results independent of the order in which components tick,
mirroring how registered hardware samples its inputs on a clock edge.

Two interchangeable engines drive the kernel: the per-cycle step engine
(the oracle) and the event-batched engine in :mod:`repro.sim.batched`,
selected by the ``engine`` knob on :class:`Simulator` (high-level
runners default to :func:`default_engine`).
"""

from .batched import BatchedEngine
from .clock import Simulator, default_engine
from .component import Component, FAR_FUTURE
from .fifo import Fifo
from .stats import Counter, StatSet

__all__ = [
    "Simulator",
    "BatchedEngine",
    "Component",
    "Fifo",
    "Counter",
    "StatSet",
    "FAR_FUTURE",
    "default_engine",
]
