"""Cycle-driven simulation kernel.

The kernel follows a two-phase update discipline: during a cycle every
component's :meth:`~repro.sim.component.Component.tick` runs and may pop
from and push into :class:`~repro.sim.fifo.Fifo` instances; pushes only
become visible after the simulator commits the cycle.  This makes
simulation results independent of the order in which components tick,
mirroring how registered hardware samples its inputs on a clock edge.
"""

from .clock import Simulator
from .component import Component
from .fifo import Fifo
from .stats import Counter, StatSet

__all__ = ["Simulator", "Component", "Fifo", "Counter", "StatSet"]
