"""Event-batched simulation engine.

Between stall points the step engine burns most of its time ticking
components that provably cannot act.  This engine advances the clock in
one jump across those quiet spans: each component exposes a
``next_event()`` horizon (the earliest cycle its tick could act), the
engine keeps the min over all horizons, and whenever that minimum lies
in the future the clock jumps straight to it.  Inside contended windows
it degrades to per-cycle ticking of exactly the due components.

Correctness contract (see ARCHITECTURE.md, "The two-engine contract"):

* ticking a component on a cycle where it does nothing is always safe —
  the step engine ticks everything every cycle, so only *skipping* a
  tick ever needs justification;
* a component is skipped on cycle ``T`` only if its declared horizon
  lies beyond ``T`` and nothing it observes changed since the horizon
  was computed.  The engine re-arms due times on every push, pop and
  commit of a FIFO the component owns or ``watches()``, and on explicit
  ``wake()`` calls (non-FIFO channels such as credit returns);
* a push or pop on cycle ``T`` wakes a waiter positioned *after* the
  mutating component at ``T`` (the step engine would tick it later the
  same cycle and it would observe the change) and a waiter positioned
  before it at ``T+1`` (its step-engine tick this cycle already ran, or
  would have seen pre-change state);
* staged pushes become visible at commit, so committing a FIFO at the
  end of cycle ``T`` wakes its waiters at ``T+1`` — without this a
  consumer woken at ``T`` would peek an uncommitted FIFO, conclude
  nothing is there, and sleep through the data forever;
* pure time counters (watchdog and regulator waits) advance during
  skipped cycles via ``Component.advance``, which replays exactly what
  the skipped no-op ticks would have done to them.

Under this contract the batched engine is bit-exact against the step
engine: identical final cycle counts, stats, FIFO counters, and
identical :class:`DeadlockError` / :class:`BudgetExceededError`
behaviour.  The differential suite in ``tests/test_sim_engines.py``
pins the equivalence; ``Simulator.step`` always uses the step path, so
the oracle stays available in-process.
"""

from __future__ import annotations

from typing import Callable

from ..errors import BudgetExceededError, DeadlockError
from ..obs import profiler as obs_profiler
from .clock import Simulator
from .component import FAR_FUTURE
from .fifo import Fifo

#: consecutive all-due process cycles before the engine fuses into the
#: step-identical inner loop (wake bookkeeping suspended), and the
#: period at which the fused loop re-polls horizons to decide whether
#: the pipeline has gone quiet again.
FUSE_STREAK = 8
FUSE_POLL = 32


class BatchedEngine:
    """One batched ``run_until`` over a :class:`Simulator`.

    The engine is transient: it rewires FIFO dirty sinks and wake hooks
    for the duration of :meth:`run` and restores them (and catches every
    component up to the final cycle) before returning, so ``step()`` and
    further ``run_until`` calls can be freely mixed with batched runs.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.components = list(sim.components)
        n = len(self.components)
        now = sim.cycle
        #: earliest cycle each component must tick; FAR_FUTURE = asleep.
        self.due = [now] * n
        #: cycle up to which each component's state is caught up
        #: (== last ticked-or-advanced cycle + 1).
        self.synced = [now] * n
        #: FIFOs with staged pushes awaiting end-of-cycle commit.
        self.dirty: list[Fifo] = []
        #: cursor of the component currently ticking (len(components)
        #: outside a pass) — drives the T-vs-T+1 wake rule.
        self._pos = n
        self._now = now
        self._saved: list[tuple[Fifo, list[Fifo] | None]] = []
        #: wake hooks installed at attach, suspended while fused.
        self._wake_hooks: list[tuple[Fifo, tuple]] = []
        #: cycle-attribution bins (None = profiling off).  Bins are
        #: charged at exactly the points where ``synced`` moves, so per
        #: component they sum to the cycles this run elapses — the
        #: exactness contract ``tests/test_obs.py`` pins.
        self.profiler = obs_profiler.active()

    # -- wiring ----------------------------------------------------------

    def _attach(self) -> None:
        sim = self.sim
        waiters: dict[int, tuple[Fifo, list[int], list[int]]] = {}
        for pos, comp in enumerate(self.components):
            comp._engine = self
            comp._engine_pos = pos
            comp.cycle = sim.cycle
            any_op, push_sensitive = comp.wake_fifos()
            for fifo in any_op:
                entry = waiters.setdefault(id(fifo), (fifo, [], []))
                if pos not in entry[1]:
                    entry[1].append(pos)
            for fifo in push_sensitive:
                entry = waiters.setdefault(id(fifo), (fifo, [], []))
                if pos not in entry[1]:
                    entry[1].append(pos)
                if pos not in entry[2]:
                    entry[2].append(pos)
        seen: set[int] = set(waiters)
        for comp in self.components:
            # Every owned FIFO must commit through the engine even when
            # no component asked to be woken for it.
            for fifo in comp.fifos:
                if id(fifo) not in seen:
                    seen.add(id(fifo))
                    waiters[id(fifo)] = (fifo, [], [])
        for fifo, any_positions, push_positions in waiters.values():
            self._saved.append((fifo, fifo._dirty_sink))
            fifo._dirty_sink = self.dirty
            hook = (self, tuple(any_positions), tuple(push_positions))
            fifo._wake = hook
            self._wake_hooks.append((fifo, hook))
        for comp in self.components:
            comp.set_bulk(True)
        # Pushes staged before this run (e.g. the fetcher's initial
        # burst descriptor) must still commit at the end of the first
        # processed cycle.
        for comp in self.components:
            if comp._dirty:
                for fifo in comp._dirty:
                    if fifo not in self.dirty:
                        self.dirty.append(fifo)
                comp._dirty.clear()

    def _detach(self) -> None:
        sim = self.sim
        for fifo, sink in self._saved:
            fifo._wake = None
            fifo._dirty_sink = sink
        self._saved.clear()
        self._wake_hooks.clear()
        for comp in self.components:
            comp.set_bulk(False)
        # Catch every component up to the global clock so its state —
        # pure time counters included — is exactly what the step engine
        # would hold at this cycle.
        profiler = self.profiler
        for pos, comp in enumerate(self.components):
            lag = sim.cycle - self.synced[pos]
            if lag > 0:
                comp.advance(lag)
                self.synced[pos] = sim.cycle
                if profiler is not None:
                    profiler.add(comp.name, "advance", lag)
            comp.cycle = sim.cycle
            comp._engine = None
            comp._engine_pos = -1

    # -- wake plumbing ---------------------------------------------------

    def notify(self, positions: tuple[int, ...]) -> None:
        """A FIFO saw a push or pop: re-arm its waiters' due times."""
        due = self.due
        now = self._now
        pos = self._pos
        after = now + 1
        for p in positions:
            t = now if p > pos else after
            if t < due[p]:
                due[p] = t

    def wake(self, position: int) -> None:
        """Explicit re-evaluation request from a component."""
        self.notify((position,))

    # -- the loop --------------------------------------------------------

    def run(self, done: Callable[[], bool], max_cycles: int) -> int:
        self._attach()
        try:
            return self._run(done, max_cycles)
        finally:
            self._detach()

    def _run(self, done: Callable[[], bool], max_cycles: int) -> int:
        sim = self.sim
        comps = self.components
        due = self.due
        synced = self.synced
        horizon = sim.deadlock_horizon
        ops = sim._ops
        start = sim.cycle
        budget_end = start + max_cycles
        fuse_streak = 0
        n = len(comps)
        while not done():
            target = min(due, default=FAR_FUTURE)
            if target > sim.cycle:
                # Quiet span: no component can act before `target`.
                # Jump, clamped by the cycle budget, reproducing the
                # step engine's idle bookkeeping along the way.
                span_end = min(target, budget_end)
                quiet = span_end - sim.cycle
                if quiet > 0:
                    idle = sim._idle_cycles
                    if idle + quiet >= horizon:
                        need = horizon - idle
                        if 0 < need <= quiet and any(c.busy for c in comps):
                            sim.cycle += need
                            sim._idle_cycles = horizon
                            busy = [c.name for c in comps if c.busy]
                            raise DeadlockError(
                                f"no progress for {horizon} cycles; "
                                f"busy components: {busy}"
                            )
                    sim._idle_cycles = idle + quiet
                    sim.cycle = span_end
            if sim.cycle >= budget_end:
                raise BudgetExceededError(
                    max_cycles, [c.name for c in comps if c.busy]
                )
            cycle = sim.cycle
            # Burst span: a single due component whose next cycles are a
            # provably regular, FIFO-silent burst executes them as one
            # bulk transfer instead of per-cycle ticks.  Sound because
            # every other component sleeps through the span (their due
            # times bound it) and the max_bulk contract forbids any
            # externally observable effect inside it.
            solo = -1
            gap = FAR_FUTURE
            for pos in range(n):
                d = due[pos]
                if d <= cycle:
                    if solo >= 0:
                        solo = -2
                        break
                    solo = pos
                elif d < gap:
                    gap = d
            if solo >= 0:
                limit = min(gap - cycle, budget_end - cycle,
                            horizon - sim._idle_cycles - 1)
                if limit > 1:
                    comp = comps[solo]
                    # Sync before asking: max_bulk measures the span
                    # from comp.cycle, so catch up any lag first (a no-
                    # op replay, same as _process would do; _process
                    # sees lag 0 afterwards if the span is refused).
                    lag = cycle - synced[solo]
                    if lag > 0:
                        comp.advance(lag)
                        synced[solo] = cycle
                        if self.profiler is not None:
                            self.profiler.add(comp.name, "advance", lag)
                    comp.cycle = cycle
                    span = comp.max_bulk(limit)
                    if span > 1:
                        comp.bulk_tick(span)
                        if self.profiler is not None:
                            self.profiler.add(comp.name, "bulk", span)
                        end = cycle + span
                        comp.cycle = end
                        synced[solo] = end
                        nxt = comp.next_event()
                        due[solo] = (
                            FAR_FUTURE if nxt is None
                            else (nxt if nxt > end else end)
                        )
                        sim.cycle = end
                        # FIFO-silent by contract: replay the step
                        # engine's idle count for `span` op-free cycles
                        # (the limit clamp keeps it below the horizon).
                        sim._idle_cycles += span
                        fuse_streak = 0
                        continue
            activity_before = ops[0]
            ticked = self._process(cycle)
            sim.cycle += 1
            if ops[0] == activity_before:
                sim._idle_cycles += 1
                if sim._idle_cycles >= horizon and any(c.busy for c in comps):
                    busy = [c.name for c in comps if c.busy]
                    raise DeadlockError(
                        f"no progress for {sim._idle_cycles} cycles; "
                        f"busy components: {busy}"
                    )
            else:
                sim._idle_cycles = 0
            # Saturated pipeline: when (nearly) every component is due
            # cycle after cycle, per-component wake bookkeeping is pure
            # overhead over the step loop — fuse into it.
            if ticked * 4 >= n * 3:
                fuse_streak += 1
                if fuse_streak >= FUSE_STREAK and not done():
                    self._run_fused(done, budget_end, max_cycles)
                    fuse_streak = 0
            else:
                fuse_streak = 0
        return sim.cycle - start

    def _run_fused(
        self, done: Callable[[], bool], budget_end: int, max_cycles: int
    ) -> None:
        """Step-identical inner loop: tick everything every cycle with
        wake hooks suspended (nobody sleeps, so wakes convey nothing),
        until a horizon poll shows components going quiet again.

        Ticking a component on a cycle where it does nothing is always
        safe, so fusing is bit-exact by the same argument as the step
        engine itself; the poll merely decides when the per-cycle cost
        of ticking sleepers outweighs the saved bookkeeping.
        """
        sim = self.sim
        comps = self.components
        horizon = sim.deadlock_horizon
        ops = sim._ops
        dirty = self.dirty
        entry = sim.cycle
        for fifo, _hook in self._wake_hooks:
            fifo._wake = None
        self._pos = len(comps)
        try:
            countdown = FUSE_POLL
            while not done():
                cycle = sim.cycle
                if cycle >= budget_end:
                    raise BudgetExceededError(
                        max_cycles, [c.name for c in comps if c.busy]
                    )
                activity_before = ops[0]
                for comp in comps:
                    comp.cycle = cycle
                    comp.tick()
                if dirty:
                    for fifo in dirty:
                        fifo.commit()
                    dirty.clear()
                sim.cycle = cycle + 1
                if ops[0] == activity_before:
                    sim._idle_cycles += 1
                    if sim._idle_cycles >= horizon and any(
                        c.busy for c in comps
                    ):
                        busy = [c.name for c in comps if c.busy]
                        raise DeadlockError(
                            f"no progress for {sim._idle_cycles} cycles; "
                            f"busy components: {busy}"
                        )
                else:
                    sim._idle_cycles = 0
                countdown -= 1
                if countdown == 0:
                    countdown = FUSE_POLL
                    after = sim.cycle
                    due = self.due
                    due_now = 0
                    for pos, comp in enumerate(comps):
                        comp.cycle = after
                        nxt = comp.next_event()
                        due[pos] = (
                            FAR_FUTURE if nxt is None
                            else (nxt if nxt > after else after)
                        )
                        if due[pos] <= after:
                            due_now += 1
                    if due_now * 4 < len(comps) * 3:
                        return
        finally:
            after = sim.cycle
            synced = self.synced
            profiler = self.profiler
            for pos in range(len(comps)):
                if profiler is not None:
                    # A component that was not due on the entry cycle
                    # arrives with a 1-cycle sync gap the fused loop
                    # absorbs; charge it as replay, and the fused
                    # cycles themselves as ticks, so the bins still sum
                    # to exactly the cycles this component elapsed.
                    gap = entry - synced[pos]
                    if gap > 0:
                        profiler.add(comps[pos].name, "advance", gap)
                    if after > entry:
                        profiler.add(comps[pos].name, "tick", after - entry)
                synced[pos] = after
            for fifo, hook in self._wake_hooks:
                fifo._wake = hook

    def _process(self, cycle: int) -> int:
        """Tick every due component for ``cycle``, then commit; returns
        the number of components ticked (the fuse heuristic input)."""
        due = self.due
        synced = self.synced
        profiler = self.profiler
        self._now = cycle
        after = cycle + 1
        ticked = 0
        # Catch-up pass BEFORE any cycle-`cycle` tick runs: advance()
        # replays skipped no-op ticks from the component's own counters,
        # and those reads are only exact while the state is still
        # end-of-previous-cycle state.  Deferring a replay past another
        # component's tick would leak same-cycle mutations (e.g. a
        # generator's accept() bumping the coalescer's queued count)
        # into cycles the step engine ran with the old values.
        for pos, comp in enumerate(self.components):
            lag = cycle - synced[pos]
            if lag > 0:
                comp.advance(lag)
                synced[pos] = cycle
                if profiler is not None:
                    profiler.add(comp.name, "advance", lag)
        for pos, comp in enumerate(self.components):
            if due[pos] <= cycle:
                ticked += 1
                self._pos = pos
                comp.cycle = cycle
                comp.tick()
                comp.cycle = after
                synced[pos] = after
                if profiler is not None:
                    profiler.add(comp.name, "tick", 1)
                nxt = comp.next_event()
                # next_event sees post-tick state, so it supersedes any
                # same-cycle wakes this component received mid-pass.
                due[pos] = (
                    FAR_FUTURE if nxt is None else (nxt if nxt > cycle else after)
                )
        self._pos = len(self.components)
        dirty = self.dirty
        if dirty:
            for fifo in dirty:
                fifo.commit()
                wake = fifo._wake
                if wake is not None:
                    for p in wake[1]:
                        if after < due[p]:
                            due[p] = after
            dirty.clear()
        return ticked
