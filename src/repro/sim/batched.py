"""Event-batched simulation engine.

Between stall points the step engine burns most of its time ticking
components that provably cannot act.  This engine advances the clock in
one jump across those quiet spans: each component exposes a
``next_event()`` horizon (the earliest cycle its tick could act), the
engine keeps the min over all horizons, and whenever that minimum lies
in the future the clock jumps straight to it.  Inside contended windows
it degrades to per-cycle ticking of exactly the due components.

Correctness contract (see ARCHITECTURE.md, "The two-engine contract"):

* ticking a component on a cycle where it does nothing is always safe —
  the step engine ticks everything every cycle, so only *skipping* a
  tick ever needs justification;
* a component is skipped on cycle ``T`` only if its declared horizon
  lies beyond ``T`` and nothing it observes changed since the horizon
  was computed.  The engine re-arms due times on every push, pop and
  commit of a FIFO the component owns or ``watches()``, and on explicit
  ``wake()`` calls (non-FIFO channels such as credit returns);
* a push or pop on cycle ``T`` wakes a waiter positioned *after* the
  mutating component at ``T`` (the step engine would tick it later the
  same cycle and it would observe the change) and a waiter positioned
  before it at ``T+1`` (its step-engine tick this cycle already ran, or
  would have seen pre-change state);
* staged pushes become visible at commit, so committing a FIFO at the
  end of cycle ``T`` wakes its waiters at ``T+1`` — without this a
  consumer woken at ``T`` would peek an uncommitted FIFO, conclude
  nothing is there, and sleep through the data forever;
* pure time counters (watchdog and regulator waits) advance during
  skipped cycles via ``Component.advance``, which replays exactly what
  the skipped no-op ticks would have done to them.

Under this contract the batched engine is bit-exact against the step
engine: identical final cycle counts, stats, FIFO counters, and
identical :class:`DeadlockError` / :class:`BudgetExceededError`
behaviour.  The differential suite in ``tests/test_sim_engines.py``
pins the equivalence; ``Simulator.step`` always uses the step path, so
the oracle stays available in-process.
"""

from __future__ import annotations

from typing import Callable

from ..errors import BudgetExceededError, DeadlockError
from .clock import Simulator
from .component import FAR_FUTURE
from .fifo import Fifo


class BatchedEngine:
    """One batched ``run_until`` over a :class:`Simulator`.

    The engine is transient: it rewires FIFO dirty sinks and wake hooks
    for the duration of :meth:`run` and restores them (and catches every
    component up to the final cycle) before returning, so ``step()`` and
    further ``run_until`` calls can be freely mixed with batched runs.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.components = list(sim.components)
        n = len(self.components)
        now = sim.cycle
        #: earliest cycle each component must tick; FAR_FUTURE = asleep.
        self.due = [now] * n
        #: cycle up to which each component's state is caught up
        #: (== last ticked-or-advanced cycle + 1).
        self.synced = [now] * n
        #: FIFOs with staged pushes awaiting end-of-cycle commit.
        self.dirty: list[Fifo] = []
        #: cursor of the component currently ticking (len(components)
        #: outside a pass) — drives the T-vs-T+1 wake rule.
        self._pos = n
        self._now = now
        self._saved: list[tuple[Fifo, list[Fifo] | None]] = []

    # -- wiring ----------------------------------------------------------

    def _attach(self) -> None:
        sim = self.sim
        waiters: dict[int, tuple[Fifo, list[int], list[int]]] = {}
        for pos, comp in enumerate(self.components):
            comp._engine = self
            comp._engine_pos = pos
            comp.cycle = sim.cycle
            any_op, push_sensitive = comp.wake_fifos()
            for fifo in any_op:
                entry = waiters.setdefault(id(fifo), (fifo, [], []))
                if pos not in entry[1]:
                    entry[1].append(pos)
            for fifo in push_sensitive:
                entry = waiters.setdefault(id(fifo), (fifo, [], []))
                if pos not in entry[1]:
                    entry[1].append(pos)
                if pos not in entry[2]:
                    entry[2].append(pos)
        seen: set[int] = set(waiters)
        for comp in self.components:
            # Every owned FIFO must commit through the engine even when
            # no component asked to be woken for it.
            for fifo in comp.fifos:
                if id(fifo) not in seen:
                    seen.add(id(fifo))
                    waiters[id(fifo)] = (fifo, [], [])
        for fifo, any_positions, push_positions in waiters.values():
            self._saved.append((fifo, fifo._dirty_sink))
            fifo._dirty_sink = self.dirty
            fifo._wake = (self, tuple(any_positions), tuple(push_positions))
        # Pushes staged before this run (e.g. the fetcher's initial
        # burst descriptor) must still commit at the end of the first
        # processed cycle.
        for comp in self.components:
            if comp._dirty:
                for fifo in comp._dirty:
                    if fifo not in self.dirty:
                        self.dirty.append(fifo)
                comp._dirty.clear()

    def _detach(self) -> None:
        sim = self.sim
        for fifo, sink in self._saved:
            fifo._wake = None
            fifo._dirty_sink = sink
        self._saved.clear()
        # Catch every component up to the global clock so its state —
        # pure time counters included — is exactly what the step engine
        # would hold at this cycle.
        for pos, comp in enumerate(self.components):
            lag = sim.cycle - self.synced[pos]
            if lag > 0:
                comp.advance(lag)
                self.synced[pos] = sim.cycle
            comp.cycle = sim.cycle
            comp._engine = None
            comp._engine_pos = -1

    # -- wake plumbing ---------------------------------------------------

    def notify(self, positions: tuple[int, ...]) -> None:
        """A FIFO saw a push or pop: re-arm its waiters' due times."""
        due = self.due
        now = self._now
        pos = self._pos
        after = now + 1
        for p in positions:
            t = now if p > pos else after
            if t < due[p]:
                due[p] = t

    def wake(self, position: int) -> None:
        """Explicit re-evaluation request from a component."""
        self.notify((position,))

    # -- the loop --------------------------------------------------------

    def run(self, done: Callable[[], bool], max_cycles: int) -> int:
        self._attach()
        try:
            return self._run(done, max_cycles)
        finally:
            self._detach()

    def _run(self, done: Callable[[], bool], max_cycles: int) -> int:
        sim = self.sim
        comps = self.components
        due = self.due
        horizon = sim.deadlock_horizon
        ops = sim._ops
        start = sim.cycle
        budget_end = start + max_cycles
        while not done():
            target = min(due, default=FAR_FUTURE)
            if target > sim.cycle:
                # Quiet span: no component can act before `target`.
                # Jump, clamped by the cycle budget, reproducing the
                # step engine's idle bookkeeping along the way.
                span_end = min(target, budget_end)
                quiet = span_end - sim.cycle
                if quiet > 0:
                    idle = sim._idle_cycles
                    if idle + quiet >= horizon:
                        need = horizon - idle
                        if 0 < need <= quiet and any(c.busy for c in comps):
                            sim.cycle += need
                            sim._idle_cycles = horizon
                            busy = [c.name for c in comps if c.busy]
                            raise DeadlockError(
                                f"no progress for {horizon} cycles; "
                                f"busy components: {busy}"
                            )
                    sim._idle_cycles = idle + quiet
                    sim.cycle = span_end
            if sim.cycle >= budget_end:
                raise BudgetExceededError(
                    max_cycles, [c.name for c in comps if c.busy]
                )
            activity_before = ops[0]
            self._process(sim.cycle)
            sim.cycle += 1
            if ops[0] == activity_before:
                sim._idle_cycles += 1
                if sim._idle_cycles >= horizon and any(c.busy for c in comps):
                    busy = [c.name for c in comps if c.busy]
                    raise DeadlockError(
                        f"no progress for {sim._idle_cycles} cycles; "
                        f"busy components: {busy}"
                    )
            else:
                sim._idle_cycles = 0
        return sim.cycle - start

    def _process(self, cycle: int) -> None:
        """Tick every due component for ``cycle``, then commit."""
        due = self.due
        synced = self.synced
        self._now = cycle
        after = cycle + 1
        # Catch-up pass BEFORE any cycle-`cycle` tick runs: advance()
        # replays skipped no-op ticks from the component's own counters,
        # and those reads are only exact while the state is still
        # end-of-previous-cycle state.  Deferring a replay past another
        # component's tick would leak same-cycle mutations (e.g. a
        # generator's accept() bumping the coalescer's queued count)
        # into cycles the step engine ran with the old values.
        for pos, comp in enumerate(self.components):
            lag = cycle - synced[pos]
            if lag > 0:
                comp.advance(lag)
                synced[pos] = cycle
        for pos, comp in enumerate(self.components):
            if due[pos] <= cycle:
                self._pos = pos
                comp.cycle = cycle
                comp.tick()
                comp.cycle = after
                synced[pos] = after
                nxt = comp.next_event()
                # next_event sees post-tick state, so it supersedes any
                # same-cycle wakes this component received mid-pass.
                due[pos] = (
                    FAR_FUTURE if nxt is None else (nxt if nxt > cycle else after)
                )
        self._pos = len(self.components)
        dirty = self.dirty
        if dirty:
            for fifo in dirty:
                fifo.commit()
                wake = fifo._wake
                if wake is not None:
                    for p in wake[1]:
                        if after < due[p]:
                            due[p] = after
            dirty.clear()
