"""Component base class for the cycle-driven kernel."""

from __future__ import annotations

from .fifo import Fifo

#: horizon sentinel used by ``next_event`` implementations when folding
#: several candidate due times with ``min``; any accumulated value at or
#: beyond this means "no self-scheduled event" and maps to ``None``.
FAR_FUTURE = 1 << 62


class Component:
    """A clocked hardware block.

    Subclasses implement :meth:`tick`, which runs once per cycle and may
    pop from input FIFOs and push into output FIFOs.  FIFOs owned by a
    component (created through :meth:`make_fifo` or registered with
    :meth:`adopt_fifo`) are committed automatically by the simulator.

    Components may additionally implement the batched-engine protocol
    (:meth:`next_event`, :meth:`advance`, :meth:`watches`) — see
    :mod:`repro.sim.batched` and the two-engine contract in
    ARCHITECTURE.md.  The defaults are always safe: a component that
    does not override :meth:`next_event` is ticked every cycle by the
    batched engine, exactly as under the step engine.
    """

    #: batched-engine attachment; set by repro.sim.batched for the
    #: duration of a batched run, None under the step engine.
    _engine = None
    _engine_pos = -1

    def __init__(self, name: str) -> None:
        self.name = name
        self.fifos: list[Fifo] = []
        self.cycle = 0
        #: FIFOs with staged pushes this cycle (commit fast path).
        self._dirty: list[Fifo] = []

    def make_fifo(self, capacity: int | None, label: str) -> Fifo:
        """Create and register a FIFO owned by this component."""
        fifo = Fifo(capacity, f"{self.name}.{label}")
        fifo._dirty_sink = self._dirty
        self.fifos.append(fifo)
        return fifo

    def adopt_fifo(self, fifo: Fifo) -> Fifo:
        """Register an externally created FIFO for commit by this
        component's simulator."""
        fifo._dirty_sink = self._dirty
        self.fifos.append(fifo)
        return fifo

    def tick(self) -> None:
        """Advance one cycle.  Subclasses override."""
        raise NotImplementedError

    def commit(self) -> None:
        """End-of-cycle commit of the FIFOs that staged pushes."""
        if self._dirty:
            for fifo in self._dirty:
                fifo.commit()
            self._dirty.clear()
        self.cycle += 1

    # -- batched-engine protocol ----------------------------------------

    def next_event(self) -> int | None:
        """Earliest absolute cycle (``>= self.cycle``) at which
        :meth:`tick` could act or mutate state, given current state.

        Called by the batched engine immediately after this component's
        tick, with ``self.cycle`` already advanced to the next cycle.
        Return ``None`` to sleep until activity on an owned or watched
        FIFO (or an explicit :meth:`wake`).  The default — "always due"
        — degrades to per-cycle ticking and is safe for any component.
        """
        return self.cycle

    def advance(self, cycles: int) -> None:
        """Replay ``cycles`` guaranteed-no-op cycles of internal
        bookkeeping (pure time counters such as watchdog waits).

        The batched engine calls this before re-ticking a component it
        skipped; the contract is that the skipped ticks would not have
        touched FIFOs or any state other than what ``advance``
        reproduces.  Default: nothing to replay.

        Telemetry: with the cycle profiler on
        (:func:`repro.obs.profiled`), replayed cycles are charged to
        this component's ``advance`` bin, per-cycle ticks to ``tick``
        and bulk spans to ``bulk`` — the three bins always sum to the
        cycles the component elapsed, on either engine.
        """

    def set_bulk(self, enabled: bool) -> None:
        """Toggle the component's bulk-transfer machinery.

        The batched engine enables bulk mode on every component for the
        duration of a run and disables it on detach.  Components with a
        bulk fast path (e.g. the DRAM channel's incremental FR-FCFS
        mirror) build their auxiliary state here; the step engine never
        calls this, so the oracle always executes the plain per-cycle
        code paths and differential tests genuinely compare the two.
        Default: nothing to build.
        """

    def max_bulk(self, limit: int) -> int:
        """Length of the provably regular burst starting at
        ``self.cycle`` that :meth:`bulk_tick` may execute in one call,
        capped at ``limit``; 0 or 1 means "tick me per cycle".

        Contract: across the declared span, with every other component
        frozen, this component's ticks must perform **no FIFO
        operations** (no pushes, pops or commits — so no wakes, no op
        counting, no occupancy changes) and must not change the value
        of any externally read predicate (``busy``, ``done`` states).
        Only internal state — bank timings, schedulers, pure counters —
        may evolve.  The engine grants a span only while every other
        component sleeps through it, so regular internal evolution is
        unobservable and :meth:`bulk_tick` replacing the per-cycle
        ticks is bit-exact by construction.
        """
        return 0

    def bulk_tick(self, cycles: int) -> None:
        """Execute ``cycles`` ticks' worth of internal evolution as one
        bulk transfer (see :meth:`max_bulk`).  ``self.cycle`` holds the
        first cycle of the span; the engine advances it past the span
        afterwards."""
        raise NotImplementedError

    def watches(self) -> list[Fifo]:
        """FIFOs owned by *other* components whose activity must wake
        this component under the batched engine (inputs it pops, remote
        queues whose fill level gates its tick)."""
        return []

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        """``(any_op, push_sensitive)`` — the FIFOs this component must
        be woken for under the batched engine.

        ``any_op``: pops wake this component the same cycle (pops are
        immediately visible) and commits wake it the next cycle (staged
        pushes become poppable then).  ``push_sensitive`` (a subset):
        *staged* pushes also wake it the same cycle — only needed when
        the component observes a FIFO's pre-commit state, e.g. capacity
        or an attribute updated alongside the push (the coalescers'
        ``accept`` side channel).  The default — everything it owns or
        watches, with every owned FIFO push-sensitive — is safe for any
        component; overriding with tighter sets only saves wake-ups.
        """
        return [*self.fifos, *self.watches()], list(self.fifos)

    def wake(self) -> None:
        """Ask the batched engine to re-evaluate this component (for
        non-FIFO input channels, e.g. credit returns).  No-op under the
        step engine."""
        engine = self._engine
        if engine is not None:
            engine.wake(self._engine_pos)

    @property
    def busy(self) -> bool:
        """True while the component still holds in-flight state.

        The simulator uses this for idle detection; the default
        implementation reports busy while any owned FIFO holds entries.
        """
        return any(not fifo.is_empty for fifo in self.fifos)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} @cycle {self.cycle}>"
