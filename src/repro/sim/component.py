"""Component base class for the cycle-driven kernel."""

from __future__ import annotations

from .fifo import Fifo


class Component:
    """A clocked hardware block.

    Subclasses implement :meth:`tick`, which runs once per cycle and may
    pop from input FIFOs and push into output FIFOs.  FIFOs owned by a
    component (created through :meth:`make_fifo` or registered with
    :meth:`adopt_fifo`) are committed automatically by the simulator.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.fifos: list[Fifo] = []
        self.cycle = 0
        #: FIFOs with staged pushes this cycle (commit fast path).
        self._dirty: list[Fifo] = []

    def make_fifo(self, capacity: int | None, label: str) -> Fifo:
        """Create and register a FIFO owned by this component."""
        fifo = Fifo(capacity, f"{self.name}.{label}")
        fifo._dirty_sink = self._dirty
        self.fifos.append(fifo)
        return fifo

    def adopt_fifo(self, fifo: Fifo) -> Fifo:
        """Register an externally created FIFO for commit by this
        component's simulator."""
        fifo._dirty_sink = self._dirty
        self.fifos.append(fifo)
        return fifo

    def tick(self) -> None:
        """Advance one cycle.  Subclasses override."""
        raise NotImplementedError

    def commit(self) -> None:
        """End-of-cycle commit of the FIFOs that staged pushes."""
        if self._dirty:
            for fifo in self._dirty:
                fifo.commit()
            self._dirty.clear()
        self.cycle += 1

    @property
    def busy(self) -> bool:
        """True while the component still holds in-flight state.

        The simulator uses this for idle detection; the default
        implementation reports busy while any owned FIFO holds entries.
        """
        return any(not fifo.is_empty for fifo in self.fifos)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} @cycle {self.cycle}>"
