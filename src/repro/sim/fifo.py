"""Two-phase FIFO: the basic wiring element between components.

A :class:`Fifo` behaves like a registered hardware queue.  Entries pushed
during a cycle are staged and only become poppable after the simulator
calls :meth:`commit` at the end of the cycle, so a value written in
cycle *k* is readable in cycle *k+1* regardless of component tick order.
Pops take effect immediately (an entry popped this cycle cannot be
popped twice, and the freed slot is reusable within the cycle — a
fall-through full-side, as in a FIFO with combinational ready).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generic, Iterable, Iterator, TypeVar

from ..errors import ProtocolError

T = TypeVar("T")


class Fifo(Generic[T]):
    """Bounded FIFO with end-of-cycle commit semantics.

    Parameters
    ----------
    capacity:
        Maximum number of committed plus staged entries.  ``None`` means
        unbounded (useful for modelling ideal sinks in tests).
    name:
        Label used in error messages and statistics.
    """

    def __init__(self, capacity: int | None, name: str = "fifo") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"{name}: capacity must be >= 1 or None")
        self.capacity = capacity
        self.name = name
        self._committed: deque[T] = deque()
        self._staged: list[T] = []
        self.total_pushed = 0
        self.total_popped = 0
        self.max_occupancy = 0
        #: push/pop counter cell.  A standalone FIFO gets its own cell;
        #: the owning :class:`~repro.sim.clock.Simulator` rebinds it to a
        #: cell shared by all of its FIFOs so the idle detector reads one
        #: integer per cycle instead of walking every FIFO.
        self._ops: list[int] = [0]
        #: owning component's dirty list (set by Component.make_fifo) so
        #: commits only visit FIFOs that actually staged pushes.
        self._dirty_sink: list["Fifo"] | None = None
        #: batched-engine wake hook while a batched run is in progress:
        #: ``(engine, any_op_waiters, push_waiters)`` position tuples,
        #: else None (see repro.sim.batched).
        self._wake: tuple[Any, tuple[int, ...], tuple[int, ...]] | None = None

    # -- producer side -------------------------------------------------

    def can_push(self, count: int = 1) -> bool:
        """True if ``count`` more entries fit this cycle."""
        if self.capacity is None:
            return True
        return len(self._committed) + len(self._staged) + count <= self.capacity

    def push(self, item: T) -> None:
        """Stage one entry for commit at end of cycle."""
        if not self.can_push():
            raise ProtocolError(f"{self.name}: push into full FIFO")
        if not self._staged and self._dirty_sink is not None:
            self._dirty_sink.append(self)
        self._staged.append(item)
        self.total_pushed += 1
        self._ops[0] += 1
        occupancy = len(self._committed) + len(self._staged)
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy
        wake = self._wake
        if wake is not None and wake[2]:
            wake[0].notify(wake[2])

    def push_many(self, items: Iterable[T]) -> None:
        """Stage several entries in order; all must fit."""
        items = list(items)
        if not items:
            return
        if not self.can_push(len(items)):
            raise ProtocolError(f"{self.name}: push_many overflows FIFO")
        if not self._staged and self._dirty_sink is not None:
            self._dirty_sink.append(self)
        self._staged.extend(items)
        self.total_pushed += len(items)
        self._ops[0] += len(items)
        occupancy = len(self._committed) + len(self._staged)
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy
        wake = self._wake
        if wake is not None and wake[2]:
            wake[0].notify(wake[2])

    # -- consumer side -------------------------------------------------

    def can_pop(self) -> bool:
        """True if a committed entry is available this cycle."""
        return bool(self._committed)

    def peek(self) -> T:
        """Return the oldest committed entry without removing it."""
        if not self._committed:
            raise ProtocolError(f"{self.name}: peek on empty FIFO")
        return self._committed[0]

    def pop(self) -> T:
        """Remove and return the oldest committed entry."""
        if not self._committed:
            raise ProtocolError(f"{self.name}: pop on empty FIFO")
        self.total_popped += 1
        self._ops[0] += 1
        wake = self._wake
        if wake is not None and wake[1]:
            wake[0].notify(wake[1])
        return self._committed.popleft()

    def pop_run(self, count: int) -> list[T]:
        """Remove and return the ``count`` oldest committed entries as
        one bulk transfer.

        Counter bookkeeping replays ``count`` single pops exactly:
        ``total_popped`` and the shared op cell advance by ``count`` and
        waiters receive one (idempotent) wake covering the whole run —
        the batched engine's due-time updates are min-folds, so one
        notification is indistinguishable from ``count`` repeats.
        ``max_occupancy`` is push-sampled and therefore untouched, as
        under single pops.
        """
        if count <= 0:
            return []
        if count > len(self._committed):
            raise ProtocolError(f"{self.name}: pop_run past committed entries")
        committed = self._committed
        items = [committed.popleft() for _ in range(count)]
        self.total_popped += count
        self._ops[0] += count
        wake = self._wake
        if wake is not None and wake[1]:
            wake[0].notify(wake[1])
        return items

    # -- simulator side ------------------------------------------------

    def commit(self) -> None:
        """Make this cycle's staged pushes visible.  Called by the
        simulator at end of cycle."""
        if self._staged:
            self._committed.extend(self._staged)
            self._staged.clear()

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        """Number of committed (poppable) entries."""
        return len(self._committed)

    @property
    def occupancy(self) -> int:
        """Committed plus staged entries (space actually consumed)."""
        return len(self._committed) + len(self._staged)

    @property
    def is_empty(self) -> bool:
        """True if no entry is committed or staged."""
        return not self._committed and not self._staged

    def __iter__(self) -> Iterator[T]:
        return iter(self._committed)

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"Fifo({self.name!r}, {len(self._committed)}+{len(self._staged)}/{cap})"


def drain(fifo: Fifo[T]) -> list[T]:
    """Pop every committed entry (test helper)."""
    items: list[Any] = []
    while fifo.can_pop():
        items.append(fifo.pop())
    return items
