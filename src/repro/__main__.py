"""Command-line entry point.

::

    python -m repro suite                 # list the 20-matrix suite
    python -m repro report run --quick    # run experiments, write the
                                          #   result store + EXPERIMENTS.md
    python -m repro report render         # rewrite EXPERIMENTS.md from
                                          #   the store alone (no runs)
    python -m repro report check          # re-run the committed config,
                                          #   exit 1 on any drift
    python -m repro fig3|fig4|fig5a|...   # one experiment's table
    python -m repro stream pwtk MLP256    # one adapter run
    python -m repro sweep pwtk,hood MLP64,MLP256   # ad-hoc engine sweep
    python -m repro sweep pwtk ch1,ch2,ch4 --backend multichannel
    python -m repro serve                 # long-lived sweep service (HTTP)
    python -m repro serve --stdio         # same service over JSON lines
    python -m repro corpus list           # registered matrix corpora
    python -m repro corpus run --quick    # resumable corpus sweep (offline)
    python -m repro corpus run --full     # regenerate the committed
                                          #   results/full/ corpus tier
    python -m repro corpus check          # re-run the committed corpus
                                          #   tier, exit 1 on drift

Experiment, sweep and report commands accept engine flags:

``--workers N``   fan the grid out over N worker processes
``--shards S``    split each matrix group into S shard tasks
                  (``auto`` = one per worker; intra-matrix sharding)
``--nnz N``       per-matrix nonzero budget (overrides REPRO_SCALE_NNZ)
``--model M``     adapter timing model, ``fast`` or ``cycle``
``--quick``       tiny canary run (3 small matrices, 12k nonzeros)
``--trace PATH``  write an NDJSON span trace of the run (also honoured
                  by serve/corpus; ``REPRO_TRACE`` supplies a default;
                  render it with ``tools/trace_summary.py``)

``sweep`` additionally accepts ``--backend K`` to pick the sweep
backend kind (``adapter`` default, ``system``, ``multichannel``,
``scatter``, ``strided``); the variants argument is interpreted by the
chosen backend (adapter labels, system names, ``ch<N>`` channel
counts, ``s<bytes>`` strides).

``report`` additionally accepts:

``--store DIR``   result-store directory (default ``results/store``
                  for --quick/render/check, ``results/full`` otherwise)
``--out PATH``    document to write (default ``EXPERIMENTS.md`` for
                  --quick/render/check, ``results/full/EXPERIMENTS.md``)
``--check``       flag form of the ``check`` subcommand

``serve`` keeps one process pool and its per-worker analysis caches
warm across requests (see ARCHITECTURE.md, "Sweep as a service"):

``--host H --port P``  HTTP bind address (default 127.0.0.1:8787;
                       port 0 binds an ephemeral port and prints it)
``--stdio``            JSON-lines over stdin/stdout instead of HTTP
``--cache N``          response-cache slots (default 128)
``--workers/--shards/--store``  as above (``--store`` names the result
                       store served as the experiment response cache)

``corpus`` sweeps a declared matrix corpus resumably (own grammar):

``list [NAME]``        registered corpora, or one corpus's entries
``run``                sweep a corpus; with ``--store`` (or ``--full``)
                       each completed matrix group is journaled and a
                       re-invocation resumes, skipping completed groups
``check``              re-run the committed corpus tier offline and
                       byte-compare every ``corpus_*`` file
``--corpus NAME``      a registered corpus (``quick``/``builtin``/
                       ``full``/``suitesparse-demo``) or a JSON manifest path
``--full``             corpus ``full`` into ``results/full`` with
                       corpus-claim scoring (the committed tier)
``--kind K``           sweep backend: adapter (default), multichannel,
                       scatter
``--variants A,B``     variant list (default MLPnc,MLP64,MLP256,SEQ256)
``--cache DIR``        fast-load cache directory (default
                       ``results/corpus_cache`` or REPRO_CORPUS_CACHE)
``--offline/--fetch``  offline is the default: only cached/local
                       matrices; ``--fetch`` allows downloads
``--keep-going``       record failed entries and continue

Bare ``report`` means ``report run``.  Environment knobs
``REPRO_SCALE_NNZ``, ``REPRO_ADAPTER_MODEL``, ``REPRO_WORKERS`` and
``REPRO_SHARDS`` supply defaults wherever the matching flag is
omitted.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from pathlib import Path

from . import obs
from .engine import SweepExecutor, grid_points, registered_kinds
from .errors import ReproError
from .experiments import format_table
from .experiments.common import QUICK_MATRICES, QUICK_NNZ

# The single experiment registry (and its no-grid subset) lives next
# to the report orchestration so `fig7` is only ever added once.
from .report.runner import PARAMLESS as _PARAMLESS
from .report.runner import RUNNERS as _RUNNERS

_REPORT_MODES = ("run", "render", "check")


@dataclass
class _Options:
    workers: int | None = None
    shards: int | str | None = None
    nnz: int | None = None
    model: str | None = None
    backend: str | None = None
    quick: bool = False
    check: bool = False
    store: str | None = None
    out: str | None = None
    trace: str | None = None


def _trace_path(explicit: str | None) -> str | None:
    """The NDJSON trace destination: ``--trace`` flag, then the
    ``REPRO_TRACE`` environment knob, else tracing stays off."""
    return explicit or os.environ.get("REPRO_TRACE") or None


def _parse_flags(args: list[str]) -> tuple[list[str], _Options]:
    """Split positional arguments from engine flags."""
    positional: list[str] = []
    opts = _Options()
    it = iter(args)
    for arg in it:
        if arg == "--quick":
            opts.quick = True
        elif arg == "--check":
            opts.check = True
        elif arg in (
            "--workers", "--shards", "--nnz", "--model", "--backend",
            "--store", "--out", "--trace",
        ):
            try:
                value = next(it)
            except StopIteration:
                raise ReproError(f"{arg} needs a value") from None
            if arg in ("--model", "--backend", "--store", "--out", "--trace"):
                setattr(opts, arg[2:], value)
            elif arg == "--shards":
                if value == "auto":
                    opts.shards = "auto"
                else:
                    try:
                        opts.shards = int(value)
                    except ValueError:
                        raise ReproError(
                            f"--shards needs an integer or 'auto', got {value!r}"
                        ) from None
            else:
                try:
                    setattr(opts, arg[2:], int(value))
                except ValueError:
                    raise ReproError(f"{arg} needs an integer, got {value!r}") from None
        elif arg.startswith("--"):
            raise ReproError(f"unknown flag {arg!r}")
        else:
            positional.append(arg)
    if opts.workers is not None and opts.workers < 1:
        raise ReproError("--workers must be >= 1")
    if isinstance(opts.shards, int) and opts.shards < 1:
        raise ReproError("--shards must be >= 1 or 'auto'")
    if opts.nnz is not None and opts.nnz < 1000:
        raise ReproError("--nnz must be >= 1000")
    if opts.model not in (None, "fast", "cycle"):
        raise ReproError(f"unknown adapter model {opts.model!r}")
    if opts.backend is not None and opts.backend not in registered_kinds():
        raise ReproError(
            f"unknown sweep backend {opts.backend!r}; "
            f"registered: {', '.join(registered_kinds())}"
        )
    return positional, opts


def _reject_report_flags(command: str, opts: _Options) -> None:
    if opts.check or opts.store or opts.out:
        raise ReproError(
            f"{command} does not accept --check/--store/--out; "
            "they belong to the report command"
        )


def _reject_backend_flag(command: str, opts: _Options) -> None:
    if opts.backend:
        raise ReproError(
            f"{command} does not accept --backend; it selects the kind "
            "of an ad-hoc `sweep`"
        )


def _experiment_kwargs(name: str, opts: _Options) -> dict:
    if name in _PARAMLESS:
        if opts != _Options(trace=opts.trace):
            raise ReproError(
                f"{name} has no matrix grid; engine flags do not apply"
            )
        return {}
    _reject_report_flags(name, opts)
    _reject_backend_flag(name, opts)
    kwargs: dict = {}
    if opts.workers or opts.shards:
        kwargs["executor"] = SweepExecutor(opts.workers, shards=opts.shards)
    if opts.nnz:
        kwargs["max_nnz"] = opts.nnz
    if opts.model:
        kwargs["model"] = opts.model
    if opts.quick:
        kwargs.setdefault("max_nnz", QUICK_NNZ)
        kwargs["matrices"] = QUICK_MATRICES
    return kwargs


def _cmd_suite() -> int:
    from .sparse.suite import suite_summary

    print(format_table(suite_summary()))
    return 0


def _report_paths(mode: str, opts: _Options) -> tuple[Path, Path]:
    """Store/document locations for one report invocation.

    ``render``/``check`` and *canonical* quick runs (``--quick`` with
    no ``--nnz``/``--model`` override) target the committed pair
    (``results/store`` + ``EXPERIMENTS.md``); every other run defaults
    to the uncommitted ``results/full`` so it can never make the
    committed quick-scale reference drift by accident.
    """
    from .report import (
        DEFAULT_DOC_PATH,
        DEFAULT_STORE_DIR,
        FULL_DOC_PATH,
        FULL_STORE_DIR,
    )

    canonical_quick = opts.quick and opts.nnz is None and opts.model is None
    committed = mode in ("render", "check") or canonical_quick
    store = Path(opts.store) if opts.store else (
        DEFAULT_STORE_DIR if committed else FULL_STORE_DIR
    )
    if opts.out:
        out = Path(opts.out)
    elif opts.store:
        # An explicit non-default store must never default its document
        # onto the committed EXPERIMENTS.md; keep the pair together.
        out = store / "EXPERIMENTS.md"
    else:
        out = DEFAULT_DOC_PATH if committed else FULL_DOC_PATH
    return store, out


def _cmd_report(args: list[str], opts: _Options) -> int:
    from .report import check_report, render_report, run_report

    _reject_backend_flag("report", opts)
    if len(args) > 1 or (args and args[0] not in _REPORT_MODES):
        raise ReproError(
            f"report takes one of {'/'.join(_REPORT_MODES)}, got {args}"
        )
    mode = args[0] if args else "run"
    if opts.check:
        if mode == "render":
            raise ReproError("--check does not combine with report render")
        mode = "check"

    store, out = _report_paths(mode, opts)
    if mode == "render":
        if opts != _Options(store=opts.store, out=opts.out, trace=opts.trace):
            raise ReproError(
                "report render rewrites the document from the store alone; "
                "only --store/--out apply"
            )
        render_report(store, out)
        return 0
    kwargs = dict(
        quick=opts.quick,
        max_nnz=opts.nnz,
        model=opts.model,
        workers=opts.workers,
        shards=opts.shards,
    )
    if mode == "check":
        return 1 if check_report(store, out, **kwargs) else 0
    run_report(store, out, **kwargs)
    return 0


def _cmd_experiment(name: str, opts: _Options) -> int:
    result = _RUNNERS[name](**_experiment_kwargs(name, opts))
    print(format_table(result["rows"]))
    print("\nsummary:")
    for key, value in result["summary"].items():
        print(f"  {key} = {value}")
    return 0


def _cmd_stream(matrix: str, variant: str, opts: _Options) -> int:
    from .axipack import fast_indirect_stream, run_indirect_stream
    from .axipack.streams import matrix_index_stream
    from .config import variant_config
    from .sparse import get_matrix
    from .sparse.suite import DEFAULT_MAX_NNZ

    _reject_report_flags("stream", opts)
    if opts.workers or opts.shards or opts.backend or opts.quick:
        raise ReproError("stream runs one point; only --nnz/--model apply")
    indices = matrix_index_stream(
        get_matrix(matrix, opts.nnz or DEFAULT_MAX_NNZ), "sell"
    )
    run = run_indirect_stream if opts.model == "cycle" else fast_indirect_stream
    metrics = run(indices, variant_config(variant), variant=variant)
    for key, value in metrics.summary().items():
        print(f"{key} = {value}")
    return 0


def _cmd_sweep(matrices: str, variants: str, opts: _Options) -> int:
    """Ad-hoc sweep through any registered engine backend."""
    from .engine import get_backend
    from .sparse.suite import DEFAULT_MAX_NNZ

    _reject_report_flags("sweep", opts)
    executor = SweepExecutor(opts.workers, shards=opts.shards)
    kind = opts.backend or "adapter"
    points = grid_points(
        kind,
        tuple(matrices.split(",")),
        tuple(variants.split(",")),
        max_nnz=opts.nnz or (QUICK_NNZ if opts.quick else DEFAULT_MAX_NNZ),
        model=opts.model or "fast",
    )
    # Each backend declares its own projection; None = all row columns.
    columns = get_backend(kind).display_columns
    rows = [
        {
            key: (round(value, 3) if isinstance(value, float) else value)
            for key, value in cell.items()
            if columns is None or key in columns
        }
        for cell in executor.run(points)
    ]
    print(format_table(rows, list(columns) if columns else None))
    stats = executor.last_stats
    print(
        f"engine: {stats['groups']} groups, {stats['tasks']} tasks, "
        f"cache {stats['cache_hits']} hits / {stats['cache_misses']} misses "
        f"/ {stats['cache_evictions']} evictions "
        f"(workers={executor.workers}, shards={executor.shards})"
    )
    return 0


def _cmd_serve(args: list[str]) -> int:
    """Long-lived sweep service (its own flag grammar: --port etc.)."""
    from .serve import JobManager, serve_http, serve_stdio

    def integer(flag: str, value: str, minimum: int) -> int:
        try:
            number = int(value)
        except ValueError:
            raise ReproError(f"{flag} needs an integer, got {value!r}") from None
        if number < minimum:
            raise ReproError(f"{flag} must be >= {minimum}")
        return number

    host, port, stdio, verbose = "127.0.0.1", 8787, False, False
    workers: int | None = None
    shards: int | str | None = None
    store: str | None = None
    trace: str | None = None
    cache = 128
    it = iter(args)
    for arg in it:
        if arg == "--stdio":
            stdio = True
            continue
        if arg == "--verbose":
            verbose = True
            continue
        if arg not in (
            "--host", "--port", "--workers", "--shards", "--store",
            "--cache", "--trace",
        ):
            raise ReproError(f"serve does not understand {arg!r}")
        try:
            value = next(it)
        except StopIteration:
            raise ReproError(f"{arg} needs a value") from None
        if arg == "--host":
            host = value
        elif arg == "--store":
            store = value
        elif arg == "--trace":
            trace = value
        elif arg == "--port":
            port = integer(arg, value, 0)
        elif arg == "--workers":
            workers = integer(arg, value, 1)
        elif arg == "--cache":
            cache = integer(arg, value, 1)
        elif arg == "--shards":
            shards = "auto" if value == "auto" else integer(arg, value, 1)

    obs.logging_setup(1 if verbose else 0)
    with obs.tracing(_trace_path(trace), root="cli.serve"):
        manager = JobManager(
            executor=SweepExecutor(workers, shards=shards),
            store_dir=store,
            cache_size=cache,
        )
        if stdio:
            try:
                serve_stdio(manager)
            finally:
                manager.close()
            return 0
        return serve_http(manager, host=host, port=port, verbose=verbose)


def _cmd_corpus(args: list[str]) -> int:
    """Resumable corpus sweeps (own flag grammar, like serve)."""
    from .corpus import (
        CORPUS_KINDS,
        DEFAULT_VARIANTS,
        CorpusRunner,
        check_corpus,
    )
    from .experiments.common import QUICK_NNZ
    from .report import FULL_STORE_DIR
    from .sparse.corpus import MatrixCache, corpus_names, get_corpus
    from .sparse.suite import DEFAULT_MAX_NNZ

    def integer(flag: str, value: str, minimum: int) -> int:
        try:
            number = int(value)
        except ValueError:
            raise ReproError(f"{flag} needs an integer, got {value!r}") from None
        if number < minimum:
            raise ReproError(f"{flag} must be >= {minimum}")
        return number

    modes = ("list", "run", "check")
    positional: list[str] = []
    corpus_name: str | None = None
    store: str | None = None
    trace: str | None = None
    cache_dir: str | None = None
    kind = "adapter"
    variants: str | None = None
    fmt = "sell"
    nnz: int | None = None
    model = "fast"
    workers: int | None = None
    shards: int | str | None = None
    full = quick = fetch = keep_going = False
    it = iter(args)
    for arg in it:
        if arg == "--full":
            full = True
        elif arg == "--quick":
            quick = True
        elif arg == "--offline":
            fetch = False
        elif arg == "--fetch":
            fetch = True
        elif arg == "--keep-going":
            keep_going = True
        elif arg in (
            "--corpus", "--store", "--cache", "--kind", "--variants",
            "--fmt", "--nnz", "--model", "--workers", "--shards", "--trace",
        ):
            try:
                value = next(it)
            except StopIteration:
                raise ReproError(f"{arg} needs a value") from None
            if arg == "--corpus":
                corpus_name = value
            elif arg == "--store":
                store = value
            elif arg == "--trace":
                trace = value
            elif arg == "--cache":
                cache_dir = value
            elif arg == "--kind":
                if value not in CORPUS_KINDS:
                    raise ReproError(
                        f"corpus sweeps support kinds "
                        f"{', '.join(CORPUS_KINDS)}, not {value!r}"
                    )
                kind = value
            elif arg == "--variants":
                variants = value
            elif arg == "--fmt":
                fmt = value
            elif arg == "--nnz":
                nnz = integer(arg, value, 1000)
            elif arg == "--model":
                if value not in ("fast", "cycle"):
                    raise ReproError(f"unknown adapter model {value!r}")
                model = value
            elif arg == "--workers":
                workers = integer(arg, value, 1)
            elif arg == "--shards":
                shards = "auto" if value == "auto" else integer(arg, value, 1)
        elif arg.startswith("--"):
            raise ReproError(f"corpus does not understand {arg!r}")
        else:
            positional.append(arg)
    if not positional or positional[0] not in modes:
        raise ReproError(f"corpus takes one of {'/'.join(modes)}, got {positional}")
    mode, *positional = positional
    if full and quick:
        raise ReproError("--full and --quick are mutually exclusive")

    cache = MatrixCache(cache_dir) if cache_dir else MatrixCache()
    if mode == "list":
        if positional or corpus_name:
            corpus = get_corpus(positional[0] if positional else corpus_name)
            print(format_table([
                {
                    "name": e.name, "family": e.family, "source": e.source,
                    "where": e.path or e.url or "generator",
                }
                for e in corpus.entries
            ]))
        else:
            print(format_table([
                {"corpus": name, "entries": len(get_corpus(name).entries)}
                for name in corpus_names()
            ]))
        return 0

    if mode == "check":
        if positional:
            raise ReproError(f"corpus check takes no positionals: {positional}")
        with obs.tracing(_trace_path(trace), root="cli.corpus"):
            drift = check_corpus(
                Path(store) if store else FULL_STORE_DIR,
                cache=cache,
                executor=SweepExecutor(workers, shards=shards),
                stream=sys.stdout,
            )
        for line in drift:
            print(f"DRIFT: {line}")
        print("corpus tier matches a fresh run" if not drift
              else f"{len(drift)} corpus file(s) drifted")
        return 1 if drift else 0

    if positional:
        raise ReproError(f"corpus run takes no positionals: {positional}")
    if full:
        corpus_name = corpus_name or "full"
        store = store or str(FULL_STORE_DIR)
    corpus = get_corpus(corpus_name or "quick")
    runner = CorpusRunner(
        corpus,
        executor=SweepExecutor(workers, shards=shards),
        store_dir=store,
        cache=cache,
        kind=kind,
        variants=tuple(variants.split(",")) if variants else DEFAULT_VARIANTS,
        fmt=fmt,
        max_nnz=nnz or (QUICK_NNZ if quick else DEFAULT_MAX_NNZ),
        model=model,
        offline=not fetch,
        keep_going=keep_going,
        claims=full,
        stream=sys.stdout,
    )
    with obs.tracing(_trace_path(trace), root="cli.corpus"):
        result = runner.run()
    print()
    print(format_table(result["rollup"]))
    if "claims" in result:
        print()
        print(format_table(result["claims"]))
    stats = runner.executor.stats
    print(
        "corpus: {corpus_groups} groups — {corpus_computed} computed, "
        "{corpus_skipped} skipped, {corpus_failed} failed".format(**{
            k: stats.get(k, 0) for k in (
                "corpus_groups", "corpus_computed",
                "corpus_skipped", "corpus_failed",
            )
        })
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 2
    if argv[0] in ("--help", "-h", "help"):
        print(__doc__)
        return 0
    command, *rest = argv
    obs.logging_setup(0)
    try:
        if command == "serve":
            # serve owns its flag grammar (--port/--host/--stdio/...).
            return _cmd_serve(rest)
        if command == "corpus":
            # corpus owns its flag grammar too (--corpus/--fetch/...).
            return _cmd_corpus(rest)
        args, opts = _parse_flags(rest)
        if command in ("suite", *_RUNNERS) and args:
            # Catches stray positionals and single-dash typos such as
            # `fig4 -workers 4`, which would otherwise run the default
            # configuration while looking like a flagged invocation.
            raise ReproError(f"{command} takes no positional arguments: {args}")
        if command == "suite":
            if opts != _Options(trace=opts.trace):
                raise ReproError("suite takes no flags")
            return _cmd_suite()
        with obs.tracing(_trace_path(opts.trace), root=f"cli.{command}"):
            if command == "report":
                return _cmd_report(args, opts)
            if command in _RUNNERS:
                return _cmd_experiment(command, opts)
            if command == "stream" and len(args) == 2:
                return _cmd_stream(args[0], args[1], opts)
            if command == "sweep" and len(args) == 2:
                return _cmd_sweep(args[0], args[1], opts)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
