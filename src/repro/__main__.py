"""Command-line entry point.

::

    python -m repro suite                 # list the 20-matrix suite
    python -m repro report                # regenerate all experiments
    python -m repro fig3|fig4|fig5a|...   # one experiment's table
    python -m repro stream pwtk MLP256    # one adapter run
"""

from __future__ import annotations

import sys

from .experiments import (
    format_table,
    run_fig3,
    run_fig4,
    run_fig5a,
    run_fig5b,
    run_fig6a,
    run_fig6b,
    run_table1,
)
from .experiments.report import run_all

_RUNNERS = {
    "table1": run_table1,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5a": run_fig5a,
    "fig5b": run_fig5b,
    "fig6a": run_fig6a,
    "fig6b": run_fig6b,
}


def _cmd_suite() -> int:
    from .sparse.suite import suite_summary

    print(format_table(suite_summary()))
    return 0


def _cmd_report() -> int:
    run_all()
    return 0


def _cmd_experiment(name: str) -> int:
    result = _RUNNERS[name]()
    print(format_table(result["rows"]))
    print("\nsummary:")
    for key, value in result["summary"].items():
        print(f"  {key} = {value}")
    return 0


def _cmd_stream(matrix: str, variant: str) -> int:
    from .axipack import fast_indirect_stream
    from .axipack.streams import matrix_index_stream
    from .config import variant_config
    from .sparse import get_matrix

    indices = matrix_index_stream(get_matrix(matrix), "sell")
    metrics = fast_indirect_stream(indices, variant_config(variant), variant=variant)
    for key, value in metrics.summary().items():
        print(f"{key} = {value}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 2
    command, *args = argv
    if command == "suite":
        return _cmd_suite()
    if command == "report":
        return _cmd_report()
    if command in _RUNNERS:
        return _cmd_experiment(command)
    if command == "stream" and len(args) == 2:
        return _cmd_stream(args[0], args[1])
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
