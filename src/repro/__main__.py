"""Command-line entry point.

::

    python -m repro suite                 # list the 20-matrix suite
    python -m repro report                # regenerate all experiments
    python -m repro fig3|fig4|fig5a|...   # one experiment's table
    python -m repro stream pwtk MLP256    # one adapter run
    python -m repro sweep pwtk,hood MLP64,MLP256   # ad-hoc engine sweep

Experiment and sweep commands accept engine flags:

``--workers N``   fan the grid out over N worker processes
``--nnz N``       per-matrix nonzero budget (overrides REPRO_SCALE_NNZ)
``--model M``     adapter timing model, ``fast`` or ``cycle``
``--quick``       tiny canary run (3 small matrices, 12k nonzeros)
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from .engine import SweepExecutor, adapter_grid
from .errors import ReproError
from .experiments import (
    format_table,
    run_fig3,
    run_fig4,
    run_fig5a,
    run_fig5b,
    run_fig6a,
    run_fig6b,
    run_table1,
)
from .experiments.report import run_all

_RUNNERS = {
    "table1": run_table1,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5a": run_fig5a,
    "fig5b": run_fig5b,
    "fig6a": run_fig6a,
    "fig6b": run_fig6b,
}

#: runners without a matrix grid (no engine flags apply).
_PARAMLESS = ("table1", "fig6a")

#: small, fast suite members for ``--quick`` canary runs.
QUICK_MATRICES = ("pwtk", "G3_circuit", "msc01440")
QUICK_NNZ = 12_000


@dataclass
class _Options:
    workers: int | None = None
    nnz: int | None = None
    model: str | None = None
    quick: bool = False


def _parse_flags(args: list[str]) -> tuple[list[str], _Options]:
    """Split positional arguments from engine flags."""
    positional: list[str] = []
    opts = _Options()
    it = iter(args)
    for arg in it:
        if arg == "--quick":
            opts.quick = True
        elif arg in ("--workers", "--nnz", "--model"):
            try:
                value = next(it)
            except StopIteration:
                raise ReproError(f"{arg} needs a value") from None
            if arg == "--model":
                opts.model = value
            else:
                try:
                    setattr(opts, arg[2:], int(value))
                except ValueError:
                    raise ReproError(f"{arg} needs an integer, got {value!r}") from None
        elif arg.startswith("--"):
            raise ReproError(f"unknown flag {arg!r}")
        else:
            positional.append(arg)
    if opts.workers is not None and opts.workers < 1:
        raise ReproError("--workers must be >= 1")
    if opts.nnz is not None and opts.nnz < 1000:
        raise ReproError("--nnz must be >= 1000")
    return positional, opts


def _experiment_kwargs(name: str, opts: _Options) -> dict:
    if name in _PARAMLESS:
        if opts != _Options():
            raise ReproError(
                f"{name} has no matrix grid; engine flags do not apply"
            )
        return {}
    kwargs: dict = {}
    if opts.workers:
        kwargs["executor"] = SweepExecutor(opts.workers)
    if opts.nnz:
        kwargs["max_nnz"] = opts.nnz
    if opts.model:
        kwargs["model"] = opts.model
    if opts.quick:
        kwargs.setdefault("max_nnz", QUICK_NNZ)
        kwargs["matrices"] = QUICK_MATRICES
    return kwargs


def _cmd_suite() -> int:
    from .sparse.suite import suite_summary

    print(format_table(suite_summary()))
    return 0


def _cmd_report() -> int:
    run_all()
    return 0


def _cmd_experiment(name: str, opts: _Options) -> int:
    result = _RUNNERS[name](**_experiment_kwargs(name, opts))
    print(format_table(result["rows"]))
    print("\nsummary:")
    for key, value in result["summary"].items():
        print(f"  {key} = {value}")
    return 0


def _cmd_stream(matrix: str, variant: str, opts: _Options) -> int:
    from .axipack import fast_indirect_stream, run_indirect_stream
    from .axipack.streams import matrix_index_stream
    from .config import variant_config
    from .sparse import get_matrix
    from .sparse.suite import DEFAULT_MAX_NNZ

    if opts.workers or opts.quick:
        raise ReproError("stream runs one point; only --nnz/--model apply")
    if opts.model not in (None, "fast", "cycle"):
        raise ReproError(f"unknown adapter model {opts.model!r}")
    indices = matrix_index_stream(
        get_matrix(matrix, opts.nnz or DEFAULT_MAX_NNZ), "sell"
    )
    run = run_indirect_stream if opts.model == "cycle" else fast_indirect_stream
    metrics = run(indices, variant_config(variant), variant=variant)
    for key, value in metrics.summary().items():
        print(f"{key} = {value}")
    return 0


def _cmd_sweep(matrices: str, variants: str, opts: _Options) -> int:
    """Ad-hoc adapter sweep straight through the engine."""
    from .sparse.suite import DEFAULT_MAX_NNZ

    executor = SweepExecutor(opts.workers) if opts.workers else SweepExecutor()
    points = adapter_grid(
        tuple(matrices.split(",")),
        tuple(variants.split(",")),
        max_nnz=opts.nnz or (QUICK_NNZ if opts.quick else DEFAULT_MAX_NNZ),
        model=opts.model or "fast",
    )
    rows = [
        {
            "matrix": cell["matrix"],
            "variant": cell["variant"],
            "indir_gbps": round(cell["indir_gbps"], 2),
            "coal_rate": round(cell["coal_rate"], 3),
            "elem_txns": cell["elem_txns"],
            "cycles": cell["cycles"],
        }
        for cell in executor.run(points)
    ]
    print(format_table(rows))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 2
    command, *rest = argv
    try:
        args, opts = _parse_flags(rest)
        if command in ("suite", "report", *_RUNNERS) and args:
            # Catches stray positionals and single-dash typos such as
            # `fig4 -workers 4`, which would otherwise run the default
            # configuration while looking like a flagged invocation.
            raise ReproError(f"{command} takes no positional arguments: {args}")
        if command == "suite":
            if opts != _Options():
                raise ReproError("suite takes no flags")
            return _cmd_suite()
        if command == "report":
            if opts != _Options():
                raise ReproError(
                    "report is driven by env knobs (REPRO_SCALE_NNZ, "
                    "REPRO_ADAPTER_MODEL, REPRO_WORKERS); flags do not apply"
                )
            return _cmd_report()
        if command in _RUNNERS:
            return _cmd_experiment(command, opts)
        if command == "stream" and len(args) == 2:
            return _cmd_stream(args[0], args[1], opts)
        if command == "sweep" and len(args) == 2:
            return _cmd_sweep(args[0], args[1], opts)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
