"""Set-associative LRU cache model (the baseline's 1 MiB LLC)."""

from __future__ import annotations

from ..config import BaselineConfig
from ..errors import ConfigError
from ..sim.stats import StatSet
from ..units import is_power_of_two


class LruCache:
    """A classic set-associative LRU cache over 64 B lines.

    The model tracks hits and misses only (no timing); the baseline
    system converts miss counts into DRAM time and off-chip traffic.
    """

    def __init__(self, size_bytes: int, ways: int = 8, line_bytes: int = 64) -> None:
        if size_bytes % (ways * line_bytes):
            raise ConfigError("cache size must divide into ways * line size")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        if not is_power_of_two(self.num_sets):
            raise ConfigError("set count must be a power of two")
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = StatSet("llc")

    @classmethod
    def from_config(cls, config: BaselineConfig) -> "LruCache":
        return cls(config.llc_bytes, config.llc_ways, config.line_bytes)

    def access(self, addr: int) -> bool:
        """Touch one address; returns True on hit.  LRU update on hit,
        LRU eviction on miss."""
        line = addr // self.line_bytes
        ways = self._sets[line & (self.num_sets - 1)]
        try:
            ways.remove(line)
            ways.append(line)
            self.stats.add("hits")
            return True
        except ValueError:
            ways.append(line)
            if len(ways) > self.ways:
                ways.pop(0)
                self.stats.add("evictions")
            self.stats.add("misses")
            return False

    def access_block_stream(self, lines: list[int] | "object") -> tuple[int, int]:
        """Touch a sequence of line ids; returns (hits, misses)."""
        hits = misses = 0
        for line_id in lines:
            if self.access(int(line_id) * self.line_bytes):
                hits += 1
            else:
                misses += 1
        return hits, misses

    @property
    def hit_rate(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats.reset()
