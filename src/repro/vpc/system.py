"""Pack systems: VPC + L2 SPM + AXI-Pack adapter (paper Sec. II-C).

``pack0`` / ``pack64`` / ``pack256`` differ only in the adapter variant
(no coalescer, 64-window, 256-window parallel coalescer).  Execution is
the paper's tiled SELL SpMV: the prefetcher double-buffers tiles in the
L2 SPM while Ara computes, so steady-state runtime per tile is
``max(compute, prefetch)`` and the end-to-end runtime adds the first
fill and last drain.
"""

from __future__ import annotations

import numpy as np

from ..axipack import fast_indirect_stream, run_indirect_stream
from ..axipack.metrics import AdapterMetrics
from ..config import AdapterConfig, DramConfig, VpcConfig, variant_config
from ..errors import ExperimentError
from ..sparse.csr import CsrMatrix
from ..sparse.sell import SellMatrix
from .ara import AraTimingModel
from .prefetcher import plan_tiles
from .result import SpmvRunResult

#: the three pack systems of Fig. 5 with their adapter variants.
PACK_SYSTEMS: dict[str, str] = {
    "pack0": "MLPnc",
    "pack64": "MLP64",
    "pack256": "MLP256",
}


class PackSystem:
    """One AXI-Pack-enabled vector processor system."""

    def __init__(
        self,
        adapter: AdapterConfig | str = "MLP256",
        vpc: VpcConfig | None = None,
        dram: DramConfig | None = None,
        adapter_model: str = "fast",
        name: str | None = None,
        engine: str | None = None,
    ) -> None:
        if isinstance(adapter, str):
            self.adapter_label = adapter
            self.adapter_config = variant_config(adapter)
        else:
            self.adapter_config = adapter
            self.adapter_label = "custom"
        if adapter_model not in ("fast", "cycle"):
            raise ExperimentError("adapter_model must be 'fast' or 'cycle'")
        self.adapter_model = adapter_model
        #: simulation engine for ``adapter_model="cycle"`` runs
        #: (``"step"``/``"batched"``; None = default_engine()).
        self.engine = engine
        self.vpc = vpc or VpcConfig()
        self.dram = dram or DramConfig()
        self.ara = AraTimingModel(self.vpc)
        self.name = name or self._default_name()

    def _default_name(self) -> str:
        for system, label in PACK_SYSTEMS.items():
            if label == self.adapter_label:
                return system
        return f"pack[{self.adapter_label}]"

    # -- adapter invocation ---------------------------------------------------

    def stream_metrics(self, indices: np.ndarray) -> AdapterMetrics:
        """Adapter metrics for the matrix's whole indirect stream."""
        if self.adapter_model == "cycle":
            return run_indirect_stream(
                indices,
                self.adapter_config,
                self.dram,
                variant=self.adapter_label,
                engine=self.engine,
            )
        return fast_indirect_stream(
            indices, self.adapter_config, self.dram, variant=self.adapter_label
        )

    # -- end-to-end SpMV ----------------------------------------------------------

    def run(self, matrix: CsrMatrix | SellMatrix, matrix_name: str = "") -> SpmvRunResult:
        """Execute one tiled SELL SpMV and report timing and traffic."""
        sell = matrix if isinstance(matrix, SellMatrix) else matrix.to_sell(32)
        indices = sell.index_stream()
        metrics = self.stream_metrics(indices)

        footprint = sell.footprint_bytes()
        result_bytes = 8 * sell.nrows
        stream_bytes = footprint["val"] + footprint["slice_ptr"] + result_bytes

        schedule = plan_tiles(
            sell.padded_nnz, metrics, stream_bytes, self.vpc, self.dram
        )
        slices_per_tile = max(1, sell.nslices // schedule.num_tiles)
        compute_per_tile = self.ara.sell_compute_cycles(
            schedule.entries_per_tile, slices_per_tile, sell.chunk
        )

        steady = (
            max(compute_per_tile, schedule.prefetch_cycles_per_tile)
            + self.vpc.tile_sync_cycles
        )
        runtime = (
            schedule.prefetch_cycles_per_tile  # first tile fill
            + steady * schedule.num_tiles
            + compute_per_tile  # last tile drain
        )
        indirect_total = min(schedule.total_indirect_cycles, runtime)

        traffic = float(metrics.total_fetch_bytes + stream_bytes)
        ideal = (
            footprint["val"]
            + footprint["col_idx"]
            + footprint["slice_ptr"]
            + 8 * sell.ncols
            + result_bytes
        )
        return SpmvRunResult(
            system=self.name,
            matrix=matrix_name,
            fmt="sell",
            nnz=sell.true_nnz,
            entries=sell.padded_nnz,
            runtime_cycles=runtime,
            indirect_cycles=indirect_total,
            traffic_bytes=traffic,
            ideal_traffic_bytes=float(ideal),
            freq_hz=self.vpc.freq_hz,
            breakdown={
                "compute_per_tile": compute_per_tile,
                "prefetch_per_tile": schedule.prefetch_cycles_per_tile,
                "num_tiles": float(schedule.num_tiles),
                "adapter_cycles": float(metrics.cycles),
                "coalesce_rate": metrics.coalesce_rate,
                "indirect_bw_gbps": metrics.indirect_bw_gbps,
            },
        )
