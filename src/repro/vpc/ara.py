"""Ara vector-core timing model.

The paper's VPC couples a CVA6 scalar core with the Ara vector
coprocessor (16 lanes, one 64 b FMA per lane per cycle).  For tiled
SELL SpMV the kernel is a stream of vector multiply-accumulate (VMAC)
operations over slice columns: each slice column is a ``chunk``-element
vector op that retires ``lanes`` elements per cycle.

For the baseline's naive CSR kernel the dominant cost is the coupled
indexed gather (``vluxei``), which Ara processes roughly one element
per cycle when data is on chip, plus a per-row strip-mine/reduction
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import VpcConfig
from ..units import ceil_div


@dataclass(frozen=True)
class AraTimingModel:
    """Analytic Ara timing for the kernels of the evaluation."""

    config: VpcConfig

    def sell_compute_cycles(self, entries: int, nslices: int, chunk: int = 32) -> float:
        """Cycles to VMAC ``entries`` stored SELL entries.

        ``entries / lanes`` covers the arithmetic; each slice pays a
        bookkeeping overhead (slice-pointer handling, ``vsetvl``), and
        each slice column an issue overhead amortised by chaining.
        """
        if entries == 0:
            return 0.0
        vmac = entries / self.config.lanes
        slice_cols = ceil_div(entries, chunk)
        issue = slice_cols * self.config.vector_issue_overhead / 8  # chained
        bookkeeping = nslices * self.config.slice_overhead_cycles
        return vmac + issue + bookkeeping

    def csr_row_overhead_cycles(self, nrows: int) -> float:
        """Per-row strip-mine + reduction overhead of the naive CSR
        kernel (scalar loop control on CVA6, vector reduction on Ara)."""
        per_row = 2 * self.config.vector_issue_overhead + 3
        return nrows * per_row

    def csr_arithmetic_cycles(self, nnz: int) -> float:
        """VMAC cycles of the naive kernel (same FLOPs, vector lanes)."""
        return nnz / self.config.lanes

    def gather_cycles_on_hit(self, elements: int, cpi: float = 1.0) -> float:
        """Coupled indexed-gather cost when elements are on chip: Ara's
        VLSU sustains about one indexed element per cycle."""
        return elements * cpi
