"""Result record shared by the pack and baseline system models."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DramConfig
from ..units import GB


@dataclass
class SpmvRunResult:
    """Timing and traffic of one SpMV execution on a system model."""

    system: str
    matrix: str
    fmt: str
    nnz: int
    #: stored entries the kernel actually processes (padded for SELL).
    entries: int
    runtime_cycles: float
    #: cycles attributable to transferring the indirect stream (paper:
    #: counted from the prefetcher on pack systems, from the VLSU's
    #: index fetch + gather on the base system).
    indirect_cycles: float
    #: total off-chip traffic in bytes.
    traffic_bytes: float
    #: minimum possible off-chip traffic (every byte moved once).
    ideal_traffic_bytes: float
    freq_hz: float = 1.0e9
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.runtime_cycles / self.freq_hz

    @property
    def gflops(self) -> float:
        """SpMV performance: 2 FLOPs per true nonzero."""
        return 2 * self.nnz / self.seconds / 1e9

    @property
    def traffic_vs_ideal(self) -> float:
        """Fig. 5b metric: off-chip traffic relative to the ideal."""
        if self.ideal_traffic_bytes <= 0:
            return 0.0
        return self.traffic_bytes / self.ideal_traffic_bytes

    def bandwidth_utilization(self, dram: DramConfig | None = None) -> float:
        """Fig. 5b metric: mean off-chip bandwidth / channel peak."""
        peak = (dram or DramConfig()).peak_bandwidth_gbps
        achieved = self.traffic_bytes / self.seconds / GB
        return min(1.0, achieved / peak)

    @property
    def indirect_fraction(self) -> float:
        """Fraction of runtime spent on indirect access (Fig. 5a)."""
        if self.runtime_cycles <= 0:
            return 0.0
        return min(1.0, self.indirect_cycles / self.runtime_cycles)

    def summary(self) -> dict[str, float]:
        return {
            "system": self.system,
            "matrix": self.matrix,
            "runtime_cycles": round(self.runtime_cycles),
            "indirect_fraction": round(self.indirect_fraction, 3),
            "gflops": round(self.gflops, 3),
            "traffic_vs_ideal": round(self.traffic_vs_ideal, 3),
            "bw_utilization": round(self.bandwidth_utilization(), 3),
        }
