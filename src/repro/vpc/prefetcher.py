"""L2-SPM prefetcher timing (paper Sec. II-C).

The prefetcher splits the working set into tiles sized by the six
equally sized L2 SPM arrays and issues, per tile, one contiguous
AXI-Pack stream for the nonzeros and one indirect AXI-Pack burst for
the indexed vector elements (up to two outstanding requests).  Both
streams share the single HBM channel, so a tile's prefetch time is the
larger of the indirect-stream time (from the adapter model, which
already accounts for its own DRAM share) and the total DRAM service
time of every byte the tile moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..axipack.metrics import AdapterMetrics
from ..config import DramConfig, VpcConfig
from ..units import ceil_div

#: DRAM efficiency of the mixed prefetch traffic (long streams + the
#: coalescer's wide accesses: predominantly row hits, with some
#: inter-stream bank interference).
PREFETCH_DRAM_EFFICIENCY = 0.84


@dataclass(frozen=True)
class TileSchedule:
    """Steady-state per-tile timing of the double-buffered pipeline."""

    num_tiles: int
    entries_per_tile: int
    indirect_cycles_per_tile: float
    prefetch_cycles_per_tile: float

    @property
    def total_indirect_cycles(self) -> float:
        return self.indirect_cycles_per_tile * self.num_tiles

    @property
    def total_prefetch_cycles(self) -> float:
        return self.prefetch_cycles_per_tile * self.num_tiles


def plan_tiles(
    entries: int,
    adapter_metrics: AdapterMetrics,
    total_stream_bytes: float,
    vpc: VpcConfig | None = None,
    dram: DramConfig | None = None,
) -> TileSchedule:
    """Derive the per-tile prefetch schedule for one SpMV.

    ``adapter_metrics`` is the adapter model's result for the matrix's
    whole indirect stream; its average element rate sets the indirect
    transfer time per tile.  ``total_stream_bytes`` covers the
    contiguous arrays the prefetcher also moves (nonzeros, slice
    pointers, results written back).
    """
    vpc = vpc or VpcConfig()
    dram = dram or DramConfig()

    entries_per_tile = max(1, vpc.l2_array_bytes // 8)  # 64 b nonzeros
    num_tiles = ceil_div(entries, entries_per_tile)
    entries_per_tile = min(entries_per_tile, entries)

    indirect_rate = adapter_metrics.requests_per_cycle  # elements / cycle
    indirect_per_tile = entries_per_tile / max(indirect_rate, 1e-9)

    tile_indirect_bytes = (
        adapter_metrics.total_fetch_bytes * entries_per_tile / adapter_metrics.count
    )
    tile_stream_bytes = total_stream_bytes / num_tiles
    dram_per_tile = (tile_indirect_bytes + tile_stream_bytes) / (
        dram.bus_bytes_per_cycle * PREFETCH_DRAM_EFFICIENCY
    )
    prefetch_per_tile = max(indirect_per_tile, dram_per_tile)
    return TileSchedule(
        num_tiles=num_tiles,
        entries_per_tile=entries_per_tile,
        indirect_cycles_per_tile=indirect_per_tile,
        prefetch_cycles_per_tile=prefetch_per_tile,
    )
