"""Baseline system: 1 MiB LLC + naive coupled CSR SpMV (paper Sec. III).

The baseline runs the Fig. 1 CSR pseudocode on the vector processor
with *coupled* indirect access: the VLSU fetches indices, performs the
gather through the cache hierarchy, and only then can the arithmetic
retire.  Streams (``val``, ``col_idx``, ``row_ptr``) pass through the
LLC where they evict vector lines — the cache-pollution effect the
paper's Sec. I calls out.

The LLC interaction is simulated access-by-access on the interleaved
stream/gather trace; timing converts hit/miss counts into cycles with
a limited-MLP miss overlap model.

One fidelity note (see DESIGN.md): when suite matrices are scaled down
for Python runtime, the LLC is scaled by the same factor so that the
vector-to-cache size ratio — which decides the baseline's gather hit
rate — matches the published configuration.
"""

from __future__ import annotations

import numpy as np

from ..config import BaselineConfig, DramConfig, VpcConfig
from ..sparse.csr import CsrMatrix
from .ara import AraTimingModel
from .llc import LruCache
from .result import SpmvRunResult

#: effective DRAM efficiency of the baseline's miss traffic (isolated
#: line fills with poor row locality).
BASE_DRAM_EFFICIENCY = 0.7


def scaled_llc_bytes(config: BaselineConfig, scale: float) -> int:
    """Scale the LLC with the matrix (keeps the vector-to-LLC capacity
    ratio at its published value, which decides the gather hit rate).

    Rounds down to a power-of-two set count and floors at 4 KiB (eight
    64 B sets of eight ways).
    """
    target = max(4 * 1024, int(config.llc_bytes * min(1.0, scale)))
    way_bytes = config.llc_ways * config.line_bytes
    sets = max(1, target // way_bytes)
    sets = 1 << (sets.bit_length() - 1)
    return sets * way_bytes


class BaselineSystem:
    """The paper's base system."""

    def __init__(
        self,
        baseline: BaselineConfig | None = None,
        vpc: VpcConfig | None = None,
        dram: DramConfig | None = None,
    ) -> None:
        self.baseline = baseline or BaselineConfig()
        self.vpc = vpc or VpcConfig()
        self.dram = dram or DramConfig()
        self.ara = AraTimingModel(self.vpc)

    def run(
        self,
        matrix: CsrMatrix,
        matrix_name: str = "",
        llc_scale: float = 1.0,
    ) -> SpmvRunResult:
        """Execute one naive CSR SpMV and report timing and traffic."""
        line = self.baseline.line_bytes
        llc = LruCache(
            scaled_llc_bytes(self.baseline, llc_scale),
            self.baseline.llc_ways,
            line,
        )
        vec_hits, vec_misses = self._simulate_cache(matrix, llc, line)

        footprint = matrix.footprint_bytes()
        stream_bytes = sum(footprint.values())
        vec_bytes = 8 * matrix.ncols
        result_bytes = 8 * matrix.nrows

        # --- timing ----------------------------------------------------
        gather_cycles = (
            self.ara.gather_cycles_on_hit(vec_hits, self.baseline.gather_hit_cpi)
            + vec_misses * self.baseline.miss_latency / self.baseline.gather_mlp
        )
        index_fetch_cycles = footprint["col_idx"] / self.dram.bus_bytes_per_cycle
        indirect_cycles = gather_cycles + index_fetch_cycles

        compute_cycles = self.ara.csr_arithmetic_cycles(matrix.nnz)
        row_cycles = self.ara.csr_row_overhead_cycles(matrix.nrows)
        core_cycles = indirect_cycles + compute_cycles + row_cycles

        traffic = (
            stream_bytes + vec_misses * line + result_bytes
        )
        dram_cycles = traffic / self.dram.bus_bytes_per_cycle / BASE_DRAM_EFFICIENCY
        runtime = max(core_cycles, dram_cycles)

        ideal = stream_bytes + vec_bytes + result_bytes
        return SpmvRunResult(
            system="base",
            matrix=matrix_name,
            fmt="csr",
            nnz=matrix.nnz,
            entries=matrix.nnz,
            runtime_cycles=runtime,
            indirect_cycles=min(indirect_cycles, runtime),
            traffic_bytes=traffic,
            ideal_traffic_bytes=ideal,
            freq_hz=self.vpc.freq_hz,
            breakdown={
                "gather_cycles": gather_cycles,
                "compute_cycles": compute_cycles,
                "row_cycles": row_cycles,
                "dram_cycles": dram_cycles,
                "vec_hits": float(vec_hits),
                "vec_misses": float(vec_misses),
                "llc_bytes": float(llc.size_bytes),
            },
        )

    def _simulate_cache(
        self, matrix: CsrMatrix, llc: LruCache, line: int
    ) -> tuple[int, int]:
        """Interleaved stream + gather trace through the LLC.

        Streaming lines (val/idx) are injected at their natural cadence
        (one idx line per 16 entries, one val line per 8) so they evict
        vector lines exactly as a real unified LLC would suffer.
        """
        idx_per_line = line // 4
        val_per_line = line // 8
        # Distinct address regions (line ids offset far apart).
        vec_region = 0
        idx_region = 1 << 40
        val_region = 1 << 41

        vec_lines = (matrix.col_idx.astype(np.int64) * 8) // line
        hits = misses = 0
        for j in range(matrix.nnz):
            if j % idx_per_line == 0:
                llc.access(idx_region + (j // idx_per_line) * line)
            if j % val_per_line == 0:
                llc.access(val_region + (j // val_per_line) * line)
            if llc.access(vec_region + int(vec_lines[j]) * line):
                hits += 1
            else:
                misses += 1
        return hits, misses
