"""Vector-processor system models (paper Sec. II-C and Sec. III).

* :class:`~repro.vpc.system.PackSystem` — CVA6 + Ara behind an L2 SPM
  with a double-buffering AXI-Pack prefetcher (the paper's pack0 /
  pack64 / pack256 systems, parameterised by adapter variant).
* :class:`~repro.vpc.baseline.BaselineSystem` — the same core behind a
  1 MiB LLC running naive coupled CSR SpMV (the paper's base system).

Both produce a :class:`~repro.vpc.result.SpmvRunResult` with runtime,
indirect-access time, off-chip traffic, and bandwidth utilization — the
quantities of Figs. 5a and 5b.
"""

from .baseline import BaselineSystem
from .llc import LruCache
from .result import SpmvRunResult
from .system import PackSystem, PACK_SYSTEMS

__all__ = [
    "BaselineSystem",
    "LruCache",
    "SpmvRunResult",
    "PackSystem",
    "PACK_SYSTEMS",
]
