"""Keyed per-matrix analysis cache.

One suite matrix feeds every variant of a sweep, and most of the cost
of a design point is *not* the variant-specific model evaluation but
the shared per-matrix work:

* synthesising the scaled matrix (``get_matrix``),
* deriving the format-ordered index stream,
* the stream's wide-block analysis (block ids + stable by-value sort,
  :class:`repro.axipack.fastmodel.StreamAnalysis`),
* CSR layout statistics used for result-table annotation.

The cache keys each artifact by the exact inputs that determine it, so
a grid of V variants over M matrices does the heavy work M times, not
M×V times.  There is one process-wide instance
(:data:`repro.engine.executor._PROCESS_CACHE`): every serial executor
in a process shares it, and each pool worker inherits/builds its own
copy that survives across the tasks that worker serves.
"""

from __future__ import annotations

import numpy as np

from ..axipack.fastmodel import StreamAnalysis, analyze_stream
from ..axipack.streams import matrix_index_stream
from ..sparse.csr import CsrMatrix
from ..sparse.suite import get_matrix


class AnalysisCache:
    """Memoised per-matrix artifacts, keyed by their defining inputs.

    Each artifact family is bounded to ``maxsize`` entries with
    oldest-first eviction, so a long-lived process sweeping many
    (matrix, fmt, scale) combinations cannot grow without limit.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self._streams: dict[tuple, np.ndarray] = {}
        self._analyses: dict[tuple, StreamAnalysis] = {}
        self._layouts: dict[tuple, dict] = {}

    def _put(self, store: dict, key: tuple, value) -> None:
        if len(store) >= self.maxsize:
            store.pop(next(iter(store)))
        store[key] = value

    def matrix(self, name: str, max_nnz: int) -> CsrMatrix:
        """The scaled suite matrix (already memoised upstream)."""
        return get_matrix(name, max_nnz)

    def stream(self, name: str, fmt: str, max_nnz: int) -> np.ndarray:
        """The format-ordered column-index stream for one matrix."""
        key = (name, fmt, max_nnz)
        if key not in self._streams:
            self._put(
                self._streams, key, matrix_index_stream(self.matrix(name, max_nnz), fmt)
            )
        return self._streams[key]

    def analysis(
        self, name: str, fmt: str, max_nnz: int, elements_per_block: int
    ) -> StreamAnalysis:
        """Block-id stream + stable sort, shared across window sizes."""
        key = (name, fmt, max_nnz, elements_per_block)
        if key not in self._analyses:
            self._put(
                self._analyses,
                key,
                analyze_stream(self.stream(name, fmt, max_nnz), elements_per_block),
            )
        return self._analyses[key]

    def layout_stats(self, name: str, fmt: str, max_nnz: int) -> dict:
        """CSR/SELL layout statistics for result-table annotation."""
        key = (name, fmt, max_nnz)
        if key not in self._layouts:
            matrix = self.matrix(name, max_nnz)
            stream = self.stream(name, fmt, max_nnz)
            self._put(
                self._layouts,
                key,
                {
                    "nrows": matrix.nrows,
                    "ncols": matrix.ncols,
                    "nnz": matrix.nnz,
                    "avg_row": round(matrix.avg_row_length, 2),
                    "stream_len": int(stream.size),
                },
            )
        return dict(self._layouts[key])

    def clear(self) -> None:
        self._streams.clear()
        self._analyses.clear()
        self._layouts.clear()
