"""Keyed per-matrix analysis cache.

One suite matrix feeds every variant of a sweep, and most of the cost
of a design point is *not* the variant-specific model evaluation but
the shared per-matrix work:

* synthesising the scaled matrix (``get_matrix``),
* deriving the format-ordered index stream,
* the stream's wide-block analysis (block ids + stable by-value sort,
  :class:`repro.axipack.fastmodel.StreamAnalysis`),
* CSR layout statistics used for result-table annotation.

The cache keys each artifact by the exact inputs that determine it, so
a grid of V variants over M matrices does the heavy work M times, not
M×V times.  There is one process-wide instance
(:data:`repro.engine.executor._PROCESS_CACHE`): every serial executor
in a process shares it, and each pool worker inherits/builds its own
copy that survives across the tasks that worker serves.
"""

from __future__ import annotations

import numpy as np

from ..axipack.fastmodel import StreamAnalysis, analyze_stream
from ..obs import trace as obs_trace
from ..axipack.streams import matrix_index_stream
from ..sparse import corpus as corpus_io
from ..sparse.csr import CsrMatrix
from ..sparse.suite import get_matrix


class AnalysisCache:
    """Memoised per-matrix artifacts, keyed by their defining inputs.

    Cache keys are exactly the inputs that determine each artifact —
    ``(name, fmt, max_nnz)`` for streams and layout stats, plus
    ``elements_per_block`` for the wide-block analysis — so no knob
    change can ever serve a stale artifact.  Example::

        >>> cache = AnalysisCache()
        >>> stream = cache.stream("pwtk", "sell", 12_000)   # built once
        >>> stream is cache.stream("pwtk", "sell", 12_000)  # cache hit
        True
        >>> cache.stream("pwtk", "sell", 24_000) is stream  # new scale
        False

    Each artifact family is bounded to ``maxsize`` entries with
    oldest-first eviction, so a long-lived process sweeping many
    (matrix, fmt, scale) combinations cannot grow without limit.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self._streams: dict[tuple, np.ndarray] = {}
        self._analyses: dict[tuple, StreamAnalysis] = {}
        self._layouts: dict[tuple, dict] = {}
        self._matrices: dict[tuple, CsrMatrix] = {}
        #: lookup counters (every stream/analysis/layout_stats call is
        #: one hit or one miss, and every insert into a full artifact
        #: family is one eviction); the executor snapshots these around
        #: each shard task and surfaces the totals in run stats and the
        #: report manifest, so a long-lived server can watch cache
        #: pressure build as the matrix working set outgrows
        #: ``maxsize``.
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _put(self, store: dict, key: tuple, value) -> None:
        if len(store) >= self.maxsize:
            store.pop(next(iter(store)))
            self.evictions += 1
        store[key] = value

    def _count(self, store: dict, key: tuple) -> bool:
        present = key in store
        if present:
            self.hits += 1
        else:
            self.misses += 1
        return present

    def counters(self) -> dict[str, int]:
        """Current ``{"hits": …, "misses": …, "evictions": …}`` totals."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def matrix(self, name: str, max_nnz: int) -> CsrMatrix:
        """The scaled suite matrix, or a cached corpus artifact.

        Suite names delegate to :func:`repro.sparse.suite.get_matrix`,
        which is itself ``lru_cache``-memoised.  ``corpus:<path>``
        names (see :mod:`repro.sparse.corpus`) load the checksummed
        fast-load artifact once per cache instance — ``max_nnz`` is
        ignored for them (the file *is* the scale), which is why corpus
        sweep points carry ``max_nnz=0``.
        """
        if corpus_io.is_corpus_name(name):
            key = (name,)
            if not self._count(self._matrices, key):
                self._put(self._matrices, key, corpus_io.load_corpus_name(name))
            return self._matrices[key]
        return get_matrix(name, max_nnz)

    def stream(
        self,
        name: str,
        fmt: str,
        max_nnz: int,
        chunk: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """The format-ordered column-index stream for one matrix.

        ``fmt`` selects the traversal order (``"sell"`` or ``"csr"``);
        the returned array is the cached instance, so treat it as
        read-only.  ``chunk=(start, stop)`` names one contiguous slice
        of the stream — a *distinct* cache entry keyed by the chunk
        bounds, so a sharded run can never be served the whole-matrix
        artifact in place of a chunk (or vice versa).
        """
        key = (name, fmt, max_nnz, chunk)
        if not self._count(self._streams, key):
            if chunk is None:
                value = matrix_index_stream(self.matrix(name, max_nnz), fmt)
            else:
                value = self.stream(name, fmt, max_nnz)[chunk[0] : chunk[1]]
            self._put(self._streams, key, value)
        return self._streams[key]

    def analysis(
        self,
        name: str,
        fmt: str,
        max_nnz: int,
        elements_per_block: int,
        chunk: tuple[int, int] | None = None,
    ) -> StreamAnalysis:
        """Block-id stream + stable sort, shared across window sizes.

        ``elements_per_block`` is the DRAM access width in elements
        (``dram.access_bytes // config.element_bytes``); every window
        size of one variant family shares the same analysis, which is
        what makes the vectorized ``coalesce_window_exact`` ~24× faster
        than the reference loop on the fig4 window sweep.  As with
        :meth:`stream`, ``chunk`` bounds are part of the key: the
        analysis of a stream chunk is never conflated with the
        whole-stream analysis.
        """
        key = (name, fmt, max_nnz, elements_per_block, chunk)
        if not self._count(self._analyses, key):
            with obs_trace.span(
                "cache.analysis", matrix=name, fmt=fmt, chunk=str(chunk)
            ):
                value = analyze_stream(
                    self.stream(name, fmt, max_nnz, chunk), elements_per_block
                )
            self._put(self._analyses, key, value)
        return self._analyses[key]

    def layout_stats(self, name: str, fmt: str, max_nnz: int) -> dict:
        """CSR/SELL layout statistics for result-table annotation.

        Returns a fresh dict per call (``nrows``/``ncols``/``nnz``/
        ``avg_row``/``stream_len``), so callers may annotate and mutate
        it without corrupting the cache.
        """
        key = (name, fmt, max_nnz)
        if not self._count(self._layouts, key):
            matrix = self.matrix(name, max_nnz)
            stream = self.stream(name, fmt, max_nnz)
            self._put(
                self._layouts,
                key,
                {
                    "nrows": matrix.nrows,
                    "ncols": matrix.ncols,
                    "nnz": matrix.nnz,
                    "avg_row": round(matrix.avg_row_length, 2),
                    "stream_len": int(stream.size),
                },
            )
        return dict(self._layouts[key])

    def clear(self) -> None:
        """Drop every cached artifact (tests use this for isolation)."""
        self._streams.clear()
        self._analyses.clear()
        self._layouts.clear()
        self._matrices.clear()
