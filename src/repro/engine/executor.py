"""Batched sweep executor with per-matrix dedup, sharding and fan-out.

:class:`SweepExecutor` turns a list of :class:`~repro.engine.points.
SweepPoint` into a tidy result table (one dict per point, in input
order).  Points are grouped by :attr:`SweepPoint.group_key`, each group
is handed to its registered backend (:mod:`repro.engine.backends`) to
**split** into shard tasks — variant chunks, and for fast-model
adapter kinds window-aligned stream chunks — and the shard tasks run
either serially in-process or across a
``concurrent.futures.ProcessPoolExecutor``.  Finished shards are
**merged** by the backend and reassembled in point order.

The pool is a *persistent* resource: it is spawned lazily on the first
pooled :meth:`SweepExecutor.run` and reused by every later run of the
same executor, which is what lets a long-lived server
(:mod:`repro.serve`) keep worker processes — and the per-worker
:class:`AnalysisCache` each of them accumulates — warm across
requests.  :meth:`SweepExecutor.close` (or using the executor as a
context manager) releases the pool; a pool that dies mid-run
(``BrokenProcessPool``) is respawned once and the lost tasks rerun, so
the historical per-``run()`` respawn survives only as that fallback.

Shard tasks are dispatched largest-first over ``submit`` /
``as_completed`` (heaviest model × scale × span first), which cuts the
straggler tail when shard tasks are uneven — a cycle-model group no
longer waits at the end of an ordered ``pool.map`` behind a queue of
trivial fast-model shards.

Determinism: the result table depends only on the input points — the
per-shard work is pure (seeded generators, analytic models), the merge
re-runs the exact serial carry/metric computation on the shard
payloads, and rows are reassembled in point order, so serial, pooled,
and sharded execution return byte-identical tables
(``tests/test_engine.py`` and ``tests/test_engine_backends.py`` pin
this for every registered backend).  Completion *order* is the only
thing scheduling may change, and nothing downstream observes it.

Worker processes are started with the default (fork on Linux) start
method; each worker keeps a module-level :class:`AnalysisCache` that
persists across the tasks it serves, with shard/chunk identity baked
into every cache key.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from typing import Iterator, Sequence

from .. import obs
from ..errors import ExperimentError
from ..obs import profiler as obs_profiler
from ..obs import trace as obs_trace
from .backends import ShardTask, get_backend
from .cache import AnalysisCache
from .points import SweepPoint

logger = logging.getLogger(__name__)

#: per-process cache: the serial executor and every pool worker reuse
#: matrix artifacts across all the shard tasks they run.
_PROCESS_CACHE = AnalysisCache()

#: Relative weight of a cycle-model shard task against a fast-model one
#: at equal scale, for largest-first dispatch.  The exact value only
#: orders the queue (correctness never depends on it); cycle shards are
#: typically 1–3 orders of magnitude slower, so any large constant puts
#: them first.
_CYCLE_TASK_WEIGHT = 1000.0


def workers_from_env(default: int = 1) -> int:
    """Worker-count knob from ``REPRO_WORKERS`` (1 = serial).

    ::

        $ REPRO_WORKERS=4 python -m repro fig3    # pooled sweep
        >>> workers_from_env()                    # REPRO_WORKERS unset
        1

    Raises :class:`~repro.errors.ExperimentError` on a non-integer or
    non-positive value rather than silently running serial.
    """
    raw = os.environ.get("REPRO_WORKERS", "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ExperimentError(f"bad REPRO_WORKERS={raw!r}") from exc
    if value < 1:
        raise ExperimentError("REPRO_WORKERS must be >= 1")
    return value


def shards_from_env(default: int | str = 1) -> int | str:
    """Shard knob from ``REPRO_SHARDS``: an integer or ``auto``.

    ``auto`` resolves to the worker count at executor construction
    (one shard task per worker and matrix group); ``1`` (the default)
    keeps whole-group tasks.
    """
    raw = os.environ.get("REPRO_SHARDS", "")
    if not raw:
        return default
    if raw == "auto":
        return "auto"
    try:
        value = int(raw)
    except ValueError as exc:
        raise ExperimentError(f"bad REPRO_SHARDS={raw!r} (integer or 'auto')") from exc
    if value < 1:
        raise ExperimentError("REPRO_SHARDS must be >= 1")
    return value


def resolve_shards(shards: int | str | None, workers: int) -> int:
    """Normalise a shard setting (``None`` → env knob, ``"auto"`` →
    ``workers``) to a concrete positive integer."""
    if shards is None:
        shards = shards_from_env()
    if shards == "auto":
        return max(1, workers)
    try:
        value = int(shards)
    except (TypeError, ValueError) as exc:
        raise ExperimentError(f"bad shard count {shards!r}") from exc
    if value < 1:
        raise ExperimentError("shard count must be >= 1")
    return value


def _init_worker(config: dict) -> None:
    """Pool initializer: seed worker-local telemetry state.

    Runs unconditionally in every worker so fork-inherited tracer state
    (the parent's open NDJSON sink) is always replaced.
    """
    obs.seed_worker(config)


def _run_shard_task(
    task: ShardTask,
) -> tuple[object, dict[str, int], list[dict], dict]:
    """One pool task: evaluate a shard through its backend.

    Returns the backend payload, the cache hit/miss/eviction delta this
    task incurred, and — in pool workers with telemetry on — the spans
    and profiler bins buffered during the task.  Workers own private
    caches/tracers/profilers, so all three travel back with the payload
    for the executor to aggregate; in-process (serial) runs feed the
    global tracer/profiler directly and ship empties.
    """
    backend = get_backend(task.group_key[0])
    before = _PROCESS_CACHE.counters()
    with obs_trace.span(
        "engine.shard",
        backend=task.group_key[0],
        variants=len(task.variants),
        chunk=str(task.chunk),
    ):
        payload = backend.run_shard(task, _PROCESS_CACHE)
    after = _PROCESS_CACHE.counters()
    delta = {key: after[key] - before[key] for key in after}
    spans, bins = obs.drain_worker_telemetry()
    return payload, delta, spans, bins


def _task_weight(task: ShardTask) -> float:
    """Dispatch weight of one shard task (bigger = scheduled earlier).

    A deterministic cost *estimate*, never a correctness input: scale
    (the group's ``max_nnz`` slot) × the task's span of it (variant
    count, or ``1/pieces`` of one variant for a stream chunk), with
    cycle-model tasks boosted by :data:`_CYCLE_TASK_WEIGHT` since a
    cycle simulation dwarfs any fast-model evaluation of the same
    stream.
    """
    key = task.group_key
    scale = float(key[3]) if len(key) > 3 and isinstance(key[3], int) else 1.0
    if task.chunk is not None:
        span = 1.0 / max(1, task.chunk[1])
    else:
        span = float(max(1, len(task.variants)))
    model_boost = (
        _CYCLE_TASK_WEIGHT if len(key) > 4 and key[4] == "cycle" else 1.0
    )
    return scale * span * model_boost


class SweepExecutor:
    """Run a grid of sweep points with dedup, sharding and fan-out.

    ``workers=1`` (the default, or ``REPRO_WORKERS`` unset) runs
    serially in-process; ``workers>1`` fans shard tasks out over a
    process pool that is spawned lazily on the first pooled run and
    then **reused** by every subsequent :meth:`run` until
    :meth:`close` (the executor is also a context manager).  ``shards``
    sets how many shard tasks each matrix group splits into (``"auto"``
    = one per worker, so a single-matrix sweep saturates the pool;
    default 1 = whole-group tasks, ``REPRO_SHARDS`` supplies the
    default).  Results are byte-identical for every (workers, shards)
    combination.

    Example — the README's two-matrix adapter sweep::

        >>> from repro.engine import SweepExecutor, adapter_grid
        >>> points = adapter_grid(("pwtk", "hood"), ("MLPnc", "MLP256"),
        ...                       max_nnz=12_000)
        >>> with SweepExecutor(workers=2) as executor:
        ...     rows = executor.run(points)
        >>> [round(r["indir_gbps"], 1) for r in rows[:2]]   # pwtk cells
        [3.5, 27.9]
    """

    def __init__(
        self, workers: int | None = None, shards: int | str | None = None
    ) -> None:
        self.workers = workers_from_env() if workers is None else int(workers)
        if self.workers < 1:
            raise ExperimentError("SweepExecutor needs at least one worker")
        self.shards = resolve_shards(shards, self.workers)
        self._pool: ProcessPoolExecutor | None = None
        #: run() statistics — per last call and accumulated totals.
        self.last_stats: dict[str, int] = {}
        self.stats = {
            "groups": 0,
            "tasks": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions": 0,
            "pool_spawns": 0,
        }

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent pool, spawning it on first pooled use.

        Workers are initialized with the parent's telemetry snapshot
        (:func:`repro.obs.worker_config`), so a pool spawned under an
        active ``--trace`` buffers worker spans for ship-back.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(obs.worker_config(),),
            )
            self.stats["pool_spawns"] += 1
            obs.get_registry().inc(
                obs.names.stat_metric("pool_spawns"),
                help="process pools spawned",
            )
        return self._pool

    def _respawn_pool(self) -> ProcessPoolExecutor:
        """Fallback for a pool that died mid-run: drop it, spawn fresh."""
        if self._pool is not None:
            logger.warning(
                "respawning broken process pool (workers=%d)", self.workers
            )
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        return self._ensure_pool()

    def close(self, wait: bool = True) -> None:
        """Shut the persistent pool down (idempotent).

        The executor stays usable — the next pooled :meth:`run`
        respawns a fresh pool — so a long-lived service can recycle
        workers without replacing the executor.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close(wait=False)
        except Exception:
            pass

    # -- execution ---------------------------------------------------------

    def _plan(
        self, points: Sequence[SweepPoint]
    ) -> tuple[dict[tuple, list[str]], list[ShardTask], dict[tuple, slice]]:
        """Bucket points into groups and split each into shard tasks."""
        groups: dict[tuple, list[str]] = {}
        for point in points:
            variants = groups.setdefault(point.group_key, [])
            if point.variant not in variants:
                variants.append(point.variant)

        tasks: list[ShardTask] = []
        group_slices: dict[tuple, slice] = {}
        for key, variants in groups.items():
            split = get_backend(key[0]).split(key, tuple(variants), self.shards)
            group_slices[key] = slice(len(tasks), len(tasks) + len(split))
            tasks.extend(split)
        return groups, tasks, group_slices

    def _pooled_outcomes(
        self, tasks: list[ShardTask]
    ) -> Iterator[tuple[int, tuple]]:
        """Yield ``(task index, outcome)`` as shard tasks complete.

        Tasks are submitted largest-first (:func:`_task_weight`; ties
        keep input order, so the schedule is deterministic even though
        completion order is not).  A ``BrokenProcessPool`` triggers one
        respawn-and-retry of the tasks that never completed; a second
        failure propagates.
        """
        order = sorted(
            range(len(tasks)), key=lambda i: (-_task_weight(tasks[i]), i)
        )
        done: set[int] = set()
        for attempt in (1, 2):
            pool = self._ensure_pool()
            try:
                pending = {
                    pool.submit(_run_shard_task, tasks[i]): i
                    for i in order
                    if i not in done
                }
                while pending:
                    finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in finished:
                        index = pending.pop(future)
                        yield index, future.result()
                        done.add(index)
                return
            except BrokenProcessPool:
                logger.warning(
                    "process pool broke mid-run; retrying %d unfinished "
                    "shard task(s)",
                    len(tasks) - len(done),
                )
                self._respawn_pool()
                if attempt == 2:
                    raise

    def run_stream(
        self, points: Sequence[SweepPoint]
    ) -> Iterator[tuple[tuple, tuple[str, ...], list[dict]]]:
        """Yield ``(group_key, variants, rows)`` as groups complete.

        The incremental form of :meth:`run`: each yielded triple is one
        fully merged matrix group — its ``rows`` align with
        ``variants`` and are exactly the rows a serial run would
        produce for that group.  Groups arrive in *completion* order
        (serial execution completes them in input order); callers that
        need the full input-ordered table use :meth:`run`, streaming
        consumers (:mod:`repro.serve`) forward each group as it lands.

        ``last_stats`` is finalised when the generator is exhausted.
        """
        groups, tasks, group_slices = self._plan(points)

        outcomes: list[tuple[object, dict[str, int]] | None] = [None] * len(tasks)
        slice_of_group = {key: group_slices[key] for key in groups}
        remaining = {
            key: window.stop - window.start
            for key, window in slice_of_group.items()
        }
        task_group: list[tuple] = [()] * len(tasks)
        for key, window in slice_of_group.items():
            for index in range(window.start, window.stop):
                task_group[index] = key

        if self.workers == 1 or len(tasks) <= 1:
            completions: Iterator[tuple[int, tuple]] = (
                (index, _run_shard_task(task)) for index, task in enumerate(tasks)
            )
        else:
            completions = self._pooled_outcomes(tasks)

        for index, outcome in completions:
            payload, delta, spans, bins = outcome
            if spans:
                obs.adopt_spans(spans)
            if bins:
                profiler = obs_profiler.active()
                if profiler is not None:
                    profiler.merge(bins)
            outcomes[index] = (payload, delta)
            key = task_group[index]
            remaining[key] -= 1
            if remaining[key]:
                continue
            window = slice_of_group[key]
            variants = tuple(groups[key])
            rows = get_backend(key[0]).merge(
                key,
                variants,
                tasks[window],
                [payload for payload, _ in outcomes[window]],  # type: ignore[misc]
            )
            yield key, variants, rows

        self.last_stats = {
            "groups": len(groups),
            "tasks": len(tasks),
            "cache_hits": sum(delta["hits"] for _, delta in outcomes),  # type: ignore[misc]
            "cache_misses": sum(delta["misses"] for _, delta in outcomes),  # type: ignore[misc]
            "cache_evictions": sum(delta["evictions"] for _, delta in outcomes),  # type: ignore[misc]
        }
        for key, value in self.last_stats.items():
            self.stats[key] += value
        obs.inc_stats(self.last_stats, help="engine sweep counters")

    def run(self, points: Sequence[SweepPoint]) -> list[dict]:
        """Evaluate every point; one result row per point, input order.

        Fan-out semantics: points are bucketed by
        :attr:`~repro.engine.points.SweepPoint.group_key` (duplicate
        variants within a group are evaluated once), each group is
        split by its backend into up to ``shards`` shard tasks, the
        tasks run — serially in-process, or largest-first over the
        persistent process pool when ``workers>1`` — and the backend
        merges each group's shards back into rows.  Finished rows are
        reassembled by
        :attr:`~repro.engine.points.SweepPoint.row_key` so the output
        table always matches the input order, including points that
        repeat the same cell.  Row dicts are per-point copies; mutating
        one never aliases another.
        """
        by_key: dict[tuple, dict] = {}
        with obs_trace.span(
            "engine.run", points=len(points), workers=self.workers
        ) as run_span:
            for key, variants, rows in self.run_stream(points):
                for variant, row in zip(variants, rows):
                    by_key[(*key, variant)] = row
            run_span.set(**self.last_stats)
        return [dict(by_key[point.row_key]) for point in points]

    def add_stats(self, **counters: int) -> None:
        """Fold externally tallied counters into the run statistics.

        Drivers that orchestrate *around* the executor — the corpus
        runner tallies groups skipped via the store manifest versus
        computed versus failed — report their counters here so a single
        ``last_stats``/``stats`` read shows the whole run.  Each
        counter adds to both the last-run snapshot and the accumulated
        totals, creating the key when first seen.
        """
        for key, value in counters.items():
            self.last_stats[key] = self.last_stats.get(key, 0) + int(value)
            self.stats[key] = self.stats.get(key, 0) + int(value)
        obs.inc_stats(counters, help="driver-reported counters")
