"""Batched sweep executor with per-matrix dedup and process fan-out.

:class:`SweepExecutor` turns a list of :class:`~repro.engine.points.
SweepPoint` into a tidy result table (one dict per point, in input
order).  Points are grouped by :attr:`SweepPoint.group_key` so all
variants sharing one matrix/format/scale reuse the same cached stream
analysis, then groups run either serially in-process or across a
``concurrent.futures.ProcessPoolExecutor``.

Determinism: the result table depends only on the input points — the
per-group work is pure (seeded generators, analytic models) and rows
are reassembled in point order, so serial and pooled execution return
identical tables (``tests/test_engine.py`` pins this).

Worker processes are started with the default (fork on Linux) start
method; each worker keeps a module-level :class:`AnalysisCache` that
persists across the tasks it serves.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from ..axipack import fast_indirect_stream, run_indirect_stream
from ..axipack.metrics import AdapterMetrics
from ..config import DramConfig, variant_config
from ..errors import ExperimentError
from ..sparse.suite import get_spec
from .cache import AnalysisCache
from .points import ADAPTER_KIND, SYSTEM_KIND, SweepPoint

#: per-process cache: the serial executor and every pool worker reuse
#: matrix artifacts across all the groups they run.
_PROCESS_CACHE = AnalysisCache()


def workers_from_env(default: int = 1) -> int:
    """Worker-count knob from ``REPRO_WORKERS`` (1 = serial).

    ::

        $ REPRO_WORKERS=4 python -m repro fig3    # pooled sweep
        >>> workers_from_env()                    # REPRO_WORKERS unset
        1

    Raises :class:`~repro.errors.ExperimentError` on a non-integer or
    non-positive value rather than silently running serial.
    """
    raw = os.environ.get("REPRO_WORKERS", "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ExperimentError(f"bad REPRO_WORKERS={raw!r}") from exc
    if value < 1:
        raise ExperimentError("REPRO_WORKERS must be >= 1")
    return value


def _adapter_row(
    point_base: tuple, variant: str, metrics: AdapterMetrics, dram: DramConfig
) -> dict:
    kind, matrix, fmt, max_nnz, model = point_base
    return {
        "kind": kind,
        "matrix": matrix,
        "format": fmt,
        "variant": variant,
        "model": model,
        "max_nnz": max_nnz,
        "count": metrics.count,
        "cycles": metrics.cycles,
        "idx_txns": metrics.idx_txns,
        "elem_txns": metrics.elem_txns,
        "indir_gbps": metrics.indirect_bw_gbps,
        "elem_gbps": metrics.elem_bw_gbps,
        "index_gbps": metrics.idx_bw_gbps,
        "loss_gbps": metrics.loss_gbps(dram),
        "coal_rate": metrics.coalesce_rate,
    }


def _run_adapter_group(group_key: tuple, variants: tuple[str, ...]) -> list[dict]:
    kind, matrix, fmt, max_nnz, model = group_key
    dram = DramConfig()
    indices = _PROCESS_CACHE.stream(matrix, fmt, max_nnz)
    rows = []
    for variant in variants:
        config = variant_config(variant)
        if model == "cycle":
            metrics = run_indirect_stream(indices, config, dram, variant=variant)
        else:
            analysis = _PROCESS_CACHE.analysis(
                matrix, fmt, max_nnz, dram.access_bytes // config.element_bytes
            )
            metrics = fast_indirect_stream(
                indices, config, dram, variant=variant, analysis=analysis
            )
        rows.append(_adapter_row(group_key, variant, metrics, dram))
    return rows


def _run_system_group(group_key: tuple, systems: tuple[str, ...]) -> list[dict]:
    # Imported here so adapter-only sweeps never pay for the vpc stack.
    from ..vpc import BaselineSystem, PACK_SYSTEMS, PackSystem

    kind, matrix, fmt, max_nnz, model = group_key
    spec = get_spec(matrix)
    csr = _PROCESS_CACHE.matrix(matrix, max_nnz)
    rows = []
    for system in systems:
        if system == "base":
            result = BaselineSystem().run(
                csr, matrix, llc_scale=csr.nrows / spec.n
            )
        else:
            variant = PACK_SYSTEMS.get(system, system)
            result = PackSystem(variant, adapter_model=model, name=system).run(
                csr, matrix
            )
        rows.append(
            {
                "kind": kind,
                "matrix": matrix,
                "system": system,
                "model": model,
                "max_nnz": max_nnz,
                "runtime_cycles": result.runtime_cycles,
                "indirect_fraction": result.indirect_fraction,
                "gflops": result.gflops,
                "traffic_vs_ideal": result.traffic_vs_ideal,
                "bw_utilization": result.bandwidth_utilization(),
            }
        )
    return rows


def _run_group(task: tuple[tuple, tuple[str, ...]]) -> list[dict]:
    """One pool task: every variant of one (matrix, fmt, scale) group."""
    group_key, variants = task
    kind = group_key[0]
    if kind == ADAPTER_KIND:
        return _run_adapter_group(group_key, variants)
    if kind == SYSTEM_KIND:
        return _run_system_group(group_key, variants)
    raise ExperimentError(f"unknown sweep point kind {kind!r}")


class SweepExecutor:
    """Run a grid of sweep points with dedup and optional fan-out.

    ``workers=1`` (the default, or ``REPRO_WORKERS`` unset) runs
    serially in-process; ``workers>1`` fans matrix groups out over a
    process pool.  Results are identical either way.

    Example — the README's two-matrix adapter sweep::

        >>> from repro.engine import SweepExecutor, adapter_grid
        >>> points = adapter_grid(("pwtk", "hood"), ("MLPnc", "MLP256"),
        ...                       max_nnz=12_000)
        >>> rows = SweepExecutor(workers=2).run(points)
        >>> [round(r["indir_gbps"], 1) for r in rows[:2]]   # pwtk cells
        [3.5, 27.9]
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = workers_from_env() if workers is None else int(workers)
        if self.workers < 1:
            raise ExperimentError("SweepExecutor needs at least one worker")

    def run(self, points: Sequence[SweepPoint]) -> list[dict]:
        """Evaluate every point; one result row per point, input order.

        Fan-out semantics: points are bucketed by
        :attr:`~repro.engine.points.SweepPoint.group_key` (duplicate
        variants within a group are evaluated once), each group becomes
        one task — serial in-process, or one
        ``ProcessPoolExecutor.map`` task per group when ``workers>1`` —
        and finished rows are reassembled by
        :attr:`~repro.engine.points.SweepPoint.row_key` so the output
        table always matches the input order, including points that
        repeat the same cell.  Row dicts are per-point copies; mutating
        one never aliases another.
        """
        groups: dict[tuple, list[str]] = {}
        for point in points:
            variants = groups.setdefault(point.group_key, [])
            if point.variant not in variants:
                variants.append(point.variant)
        tasks = [(key, tuple(variants)) for key, variants in groups.items()]

        if self.workers == 1 or len(tasks) <= 1:
            results = [_run_group(task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                results = list(pool.map(_run_group, tasks))

        by_key: dict[tuple, dict] = {}
        for (group_key, variants), rows in zip(tasks, results):
            for variant, row in zip(variants, rows):
                by_key[(*group_key, variant)] = row
        return [dict(by_key[point.row_key]) for point in points]
