"""Batched sweep executor with per-matrix dedup, sharding and fan-out.

:class:`SweepExecutor` turns a list of :class:`~repro.engine.points.
SweepPoint` into a tidy result table (one dict per point, in input
order).  Points are grouped by :attr:`SweepPoint.group_key`, each group
is handed to its registered backend (:mod:`repro.engine.backends`) to
**split** into shard tasks — variant chunks, and for fast-model
adapter kinds window-aligned stream chunks — and the shard tasks run
either serially in-process or across a
``concurrent.futures.ProcessPoolExecutor``.  Finished shards are
**merged** by the backend and reassembled in point order.

Determinism: the result table depends only on the input points — the
per-shard work is pure (seeded generators, analytic models), the merge
re-runs the exact serial carry/metric computation on the shard
payloads, and rows are reassembled in point order, so serial, pooled,
and sharded execution return byte-identical tables
(``tests/test_engine.py`` and ``tests/test_engine_backends.py`` pin
this for every registered backend).

Worker processes are started with the default (fork on Linux) start
method; each worker keeps a module-level :class:`AnalysisCache` that
persists across the tasks it serves, with shard/chunk identity baked
into every cache key.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from ..errors import ExperimentError
from .backends import ShardTask, get_backend
from .cache import AnalysisCache
from .points import SweepPoint

#: per-process cache: the serial executor and every pool worker reuse
#: matrix artifacts across all the shard tasks they run.
_PROCESS_CACHE = AnalysisCache()


def workers_from_env(default: int = 1) -> int:
    """Worker-count knob from ``REPRO_WORKERS`` (1 = serial).

    ::

        $ REPRO_WORKERS=4 python -m repro fig3    # pooled sweep
        >>> workers_from_env()                    # REPRO_WORKERS unset
        1

    Raises :class:`~repro.errors.ExperimentError` on a non-integer or
    non-positive value rather than silently running serial.
    """
    raw = os.environ.get("REPRO_WORKERS", "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ExperimentError(f"bad REPRO_WORKERS={raw!r}") from exc
    if value < 1:
        raise ExperimentError("REPRO_WORKERS must be >= 1")
    return value


def shards_from_env(default: int | str = 1) -> int | str:
    """Shard knob from ``REPRO_SHARDS``: an integer or ``auto``.

    ``auto`` resolves to the worker count at executor construction
    (one shard task per worker and matrix group); ``1`` (the default)
    keeps whole-group tasks.
    """
    raw = os.environ.get("REPRO_SHARDS", "")
    if not raw:
        return default
    if raw == "auto":
        return "auto"
    try:
        value = int(raw)
    except ValueError as exc:
        raise ExperimentError(f"bad REPRO_SHARDS={raw!r} (integer or 'auto')") from exc
    if value < 1:
        raise ExperimentError("REPRO_SHARDS must be >= 1")
    return value


def resolve_shards(shards: int | str | None, workers: int) -> int:
    """Normalise a shard setting (``None`` → env knob, ``"auto"`` →
    ``workers``) to a concrete positive integer."""
    if shards is None:
        shards = shards_from_env()
    if shards == "auto":
        return max(1, workers)
    try:
        value = int(shards)
    except (TypeError, ValueError) as exc:
        raise ExperimentError(f"bad shard count {shards!r}") from exc
    if value < 1:
        raise ExperimentError("shard count must be >= 1")
    return value


def _run_shard_task(task: ShardTask) -> tuple[object, dict[str, int]]:
    """One pool task: evaluate a shard through its backend.

    Returns the backend payload plus the cache hit/miss delta this task
    incurred (workers own private caches, so deltas travel back with
    the payload for the executor to aggregate).
    """
    backend = get_backend(task.group_key[0])
    before = _PROCESS_CACHE.counters()
    payload = backend.run_shard(task, _PROCESS_CACHE)
    after = _PROCESS_CACHE.counters()
    return payload, {key: after[key] - before[key] for key in after}


class SweepExecutor:
    """Run a grid of sweep points with dedup, sharding and fan-out.

    ``workers=1`` (the default, or ``REPRO_WORKERS`` unset) runs
    serially in-process; ``workers>1`` fans shard tasks out over a
    process pool.  ``shards`` sets how many shard tasks each matrix
    group splits into (``"auto"`` = one per worker, so a single-matrix
    sweep saturates the pool; default 1 = whole-group tasks,
    ``REPRO_SHARDS`` supplies the default).  Results are byte-identical
    for every (workers, shards) combination.

    Example — the README's two-matrix adapter sweep::

        >>> from repro.engine import SweepExecutor, adapter_grid
        >>> points = adapter_grid(("pwtk", "hood"), ("MLPnc", "MLP256"),
        ...                       max_nnz=12_000)
        >>> rows = SweepExecutor(workers=2).run(points)
        >>> [round(r["indir_gbps"], 1) for r in rows[:2]]   # pwtk cells
        [3.5, 27.9]
    """

    def __init__(
        self, workers: int | None = None, shards: int | str | None = None
    ) -> None:
        self.workers = workers_from_env() if workers is None else int(workers)
        if self.workers < 1:
            raise ExperimentError("SweepExecutor needs at least one worker")
        self.shards = resolve_shards(shards, self.workers)
        #: run() statistics — per last call and accumulated totals.
        self.last_stats: dict[str, int] = {}
        self.stats = {"groups": 0, "tasks": 0, "cache_hits": 0, "cache_misses": 0}

    def run(self, points: Sequence[SweepPoint]) -> list[dict]:
        """Evaluate every point; one result row per point, input order.

        Fan-out semantics: points are bucketed by
        :attr:`~repro.engine.points.SweepPoint.group_key` (duplicate
        variants within a group are evaluated once), each group is
        split by its backend into up to ``shards`` shard tasks, the
        tasks run — serially in-process, or one
        ``ProcessPoolExecutor.map`` task each when ``workers>1`` — and
        the backend merges each group's shards back into rows.
        Finished rows are reassembled by
        :attr:`~repro.engine.points.SweepPoint.row_key` so the output
        table always matches the input order, including points that
        repeat the same cell.  Row dicts are per-point copies; mutating
        one never aliases another.
        """
        groups: dict[tuple, list[str]] = {}
        for point in points:
            variants = groups.setdefault(point.group_key, [])
            if point.variant not in variants:
                variants.append(point.variant)

        tasks: list[ShardTask] = []
        group_slices: dict[tuple, slice] = {}
        for key, variants in groups.items():
            split = get_backend(key[0]).split(key, tuple(variants), self.shards)
            group_slices[key] = slice(len(tasks), len(tasks) + len(split))
            tasks.extend(split)

        if self.workers == 1 or len(tasks) <= 1:
            outcomes = [_run_shard_task(task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(_run_shard_task, tasks))

        self.last_stats = {
            "groups": len(groups),
            "tasks": len(tasks),
            "cache_hits": sum(delta["hits"] for _, delta in outcomes),
            "cache_misses": sum(delta["misses"] for _, delta in outcomes),
        }
        for key, value in self.last_stats.items():
            self.stats[key] += value

        by_key: dict[tuple, dict] = {}
        for key, variants in groups.items():
            window = group_slices[key]
            rows = get_backend(key[0]).merge(
                key,
                tuple(variants),
                tasks[window],
                [payload for payload, _ in outcomes[window]],
            )
            for variant, row in zip(variants, rows):
                by_key[(*key, variant)] = row
        return [dict(by_key[point.row_key]) for point in points]
