"""Sweep design points and grid builders.

A :class:`SweepPoint` names one cell of an experiment grid.  Its
``kind`` selects the sweep backend that evaluates it (see
:mod:`repro.engine.backends` for the protocol and registry).  The
built-in kinds:

* ``adapter`` points run one adapter variant over one matrix's index
  stream (Figs. 3/4, window ablations) — ``variant`` is an adapter
  label such as ``"MLP256"`` and ``fmt`` selects the traversal order;
* ``system`` points run one end-to-end SpMV system over one matrix
  (Figs. 5a/5b/6b) — ``variant`` is a system name (``"base"``,
  ``"pack0"``, ``"pack64"``, ``"pack256"``) and ``fmt`` is unused;
* ``multichannel`` points run the paper's adapter in front of a
  block-interleaved multi-channel HBM — ``variant`` is a channel count
  label (``"ch2"``, ``"ch4"``, …);
* ``scatter`` points run the indirect *write* (scatter) path of one
  coalescer variant over one matrix's index stream;
* ``strided`` points run an AXI-Pack strided burst — ``variant`` is a
  stride label (``"s16"`` = 16-byte stride) and ``max_nnz`` is the
  element count (``matrix`` is a free-form workload label).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExperimentError
from ..sparse.suite import DEFAULT_MAX_NNZ

ADAPTER_KIND = "adapter"
SYSTEM_KIND = "system"
MULTICHANNEL_KIND = "multichannel"
SCATTER_KIND = "scatter"
STRIDED_KIND = "strided"


@dataclass(frozen=True)
class SweepPoint:
    """One (matrix × variant) cell of a sweep grid.

    Example — the pwtk/MLP256 cell of a fast-model adapter sweep::

        >>> SweepPoint("pwtk", "MLP256", fmt="sell", max_nnz=12_000)
        SweepPoint(matrix='pwtk', variant='MLP256', fmt='sell',
                   max_nnz=12000, model='fast', kind='adapter')

    ``kind`` names the sweep backend that evaluates the point; it must
    be registered in :mod:`repro.engine.backends` (an unknown kind
    raises :class:`~repro.errors.ExperimentError` listing the
    registered kinds).  New backends plug in by registering a
    :class:`~repro.engine.backends.SweepBackend` — see ARCHITECTURE.md.
    """

    matrix: str
    variant: str
    fmt: str = "sell"
    max_nnz: int = DEFAULT_MAX_NNZ
    model: str = "fast"
    kind: str = ADAPTER_KIND

    def __post_init__(self) -> None:
        if self.model not in ("fast", "cycle"):
            raise ExperimentError(
                f"unknown adapter model {self.model!r}; expected fast or cycle"
            )
        # The registry owns the kind list; imported here (not at module
        # top) because backends.py imports this module's constants.
        from .backends import require_backend

        require_backend(self.kind)

    @property
    def group_key(self) -> tuple:
        """Points sharing this key share all per-matrix analysis.

        The executor runs one pool task per distinct group key (or a
        set of shard tasks when sharding is enabled), so the key
        deliberately excludes ``variant``: every variant of one
        (kind, matrix, fmt, scale, model) combination reuses the same
        cached stream/analysis.

        >>> SweepPoint("pwtk", "MLP256").group_key
        ('adapter', 'pwtk', 'sell', 60000, 'fast')
        """
        return (self.kind, self.matrix, self.fmt, self.max_nnz, self.model)

    @property
    def row_key(self) -> tuple:
        """``group_key`` plus the variant — unique per result row.

        The executor reassembles pooled results into input order by
        looking each point's ``row_key`` up in the finished groups.
        """
        return (*self.group_key, self.variant)


def adapter_grid(
    matrices: tuple[str, ...],
    variants: tuple[str, ...],
    formats: tuple[str, ...] = ("sell",),
    max_nnz: int = DEFAULT_MAX_NNZ,
    model: str = "fast",
) -> list[SweepPoint]:
    """The full (format × matrix × variant) adapter grid, figure order.

    Format-major, then matrix, then variant — the iteration order the
    figures tabulate in, preserved by the executor's result table::

        >>> points = adapter_grid(("pwtk", "hood"), ("MLPnc", "MLP256"))
        >>> [(p.matrix, p.variant) for p in points]
        [('pwtk', 'MLPnc'), ('pwtk', 'MLP256'),
         ('hood', 'MLPnc'), ('hood', 'MLP256')]
    """
    return [
        SweepPoint(matrix, variant, fmt, max_nnz, model, ADAPTER_KIND)
        for fmt in formats
        for matrix in matrices
        for variant in variants
    ]


def system_grid(
    matrices: tuple[str, ...],
    systems: tuple[str, ...],
    max_nnz: int = DEFAULT_MAX_NNZ,
    model: str = "fast",
) -> list[SweepPoint]:
    """The (matrix × system) end-to-end SpMV grid, figure order.

    ``systems`` mixes the baseline and pack systems freely::

        >>> points = system_grid(("pwtk",), ("base", "pack256"))
        >>> [(p.variant, p.kind) for p in points]
        [('base', 'system'), ('pack256', 'system')]
    """
    return [
        SweepPoint(matrix, system, "", max_nnz, model, SYSTEM_KIND)
        for matrix in matrices
        for system in systems
    ]


def multichannel_grid(
    matrices: tuple[str, ...],
    channels: tuple[str, ...] = ("ch1", "ch2", "ch4"),
    formats: tuple[str, ...] = ("sell",),
    max_nnz: int = DEFAULT_MAX_NNZ,
    model: str = "fast",
) -> list[SweepPoint]:
    """The (format × matrix × channel-count) multi-channel DRAM grid.

    ``channels`` entries are ``"ch<N>"`` labels; each point runs the
    paper's MLP256 adapter against an N-channel block-interleaved HBM
    (:func:`repro.mem.multichannel.fast_multichannel_stream`)::

        >>> [p.variant for p in multichannel_grid(("pwtk",))]
        ['ch1', 'ch2', 'ch4']
    """
    return [
        SweepPoint(matrix, label, fmt, max_nnz, model, MULTICHANNEL_KIND)
        for fmt in formats
        for matrix in matrices
        for label in channels
    ]


def scatter_grid(
    matrices: tuple[str, ...],
    variants: tuple[str, ...] = ("MLP64", "MLP256", "SEQ256"),
    formats: tuple[str, ...] = ("sell",),
    max_nnz: int = DEFAULT_MAX_NNZ,
    model: str = "fast",
) -> list[SweepPoint]:
    """The (format × matrix × coalescer-variant) scatter-write grid.

    Scatter requires a coalescer, so ``variants`` must be ``MLPx`` /
    ``SEQx`` labels (no ``MLPnc``).
    """
    return [
        SweepPoint(matrix, variant, fmt, max_nnz, model, SCATTER_KIND)
        for fmt in formats
        for matrix in matrices
        for variant in variants
    ]


def strided_grid(
    strides: tuple[str, ...] = ("s8", "s16", "s32", "s64"),
    count: int = DEFAULT_MAX_NNZ,
    label: str = "linear",
    model: str = "fast",
) -> list[SweepPoint]:
    """The stride-sweep grid for AXI-Pack strided bursts.

    ``strides`` entries are ``"s<bytes>"`` labels; ``count`` rides in
    the point's ``max_nnz`` slot (elements per burst) and ``label`` is
    a free-form workload tag stored as the point's ``matrix``.
    """
    return [
        SweepPoint(label, stride, "", count, model, STRIDED_KIND)
        for stride in strides
    ]
