"""Sweep design points and grid builders.

A :class:`SweepPoint` names one cell of an experiment grid.  Two kinds
exist:

* ``adapter`` points run one adapter variant over one matrix's index
  stream (Figs. 3/4, window ablations) — ``variant`` is an adapter
  label such as ``"MLP256"`` and ``fmt`` selects the traversal order;
* ``system`` points run one end-to-end SpMV system over one matrix
  (Figs. 5a/5b/6b) — ``variant`` is a system name (``"base"``,
  ``"pack0"``, ``"pack64"``, ``"pack256"``) and ``fmt`` is unused.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExperimentError
from ..sparse.suite import DEFAULT_MAX_NNZ

ADAPTER_KIND = "adapter"
SYSTEM_KIND = "system"


@dataclass(frozen=True)
class SweepPoint:
    """One (matrix × variant) cell of a sweep grid."""

    matrix: str
    variant: str
    fmt: str = "sell"
    max_nnz: int = DEFAULT_MAX_NNZ
    model: str = "fast"
    kind: str = ADAPTER_KIND

    def __post_init__(self) -> None:
        if self.model not in ("fast", "cycle"):
            raise ExperimentError(
                f"unknown adapter model {self.model!r}; expected fast or cycle"
            )
        if self.kind not in (ADAPTER_KIND, SYSTEM_KIND):
            raise ExperimentError(f"unknown sweep point kind {self.kind!r}")

    @property
    def group_key(self) -> tuple:
        """Points sharing this key share all per-matrix analysis."""
        return (self.kind, self.matrix, self.fmt, self.max_nnz, self.model)

    @property
    def row_key(self) -> tuple:
        return (*self.group_key, self.variant)


def adapter_grid(
    matrices: tuple[str, ...],
    variants: tuple[str, ...],
    formats: tuple[str, ...] = ("sell",),
    max_nnz: int = DEFAULT_MAX_NNZ,
    model: str = "fast",
) -> list[SweepPoint]:
    """The full (format × matrix × variant) adapter grid, figure order."""
    return [
        SweepPoint(matrix, variant, fmt, max_nnz, model, ADAPTER_KIND)
        for fmt in formats
        for matrix in matrices
        for variant in variants
    ]


def system_grid(
    matrices: tuple[str, ...],
    systems: tuple[str, ...],
    max_nnz: int = DEFAULT_MAX_NNZ,
    model: str = "fast",
) -> list[SweepPoint]:
    """The (matrix × system) end-to-end SpMV grid, figure order."""
    return [
        SweepPoint(matrix, system, "", max_nnz, model, SYSTEM_KIND)
        for matrix in matrices
        for system in systems
    ]
