"""Sweep design points and grid builders.

A :class:`SweepPoint` names one cell of an experiment grid.  Two kinds
exist:

* ``adapter`` points run one adapter variant over one matrix's index
  stream (Figs. 3/4, window ablations) — ``variant`` is an adapter
  label such as ``"MLP256"`` and ``fmt`` selects the traversal order;
* ``system`` points run one end-to-end SpMV system over one matrix
  (Figs. 5a/5b/6b) — ``variant`` is a system name (``"base"``,
  ``"pack0"``, ``"pack64"``, ``"pack256"``) and ``fmt`` is unused.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExperimentError
from ..sparse.suite import DEFAULT_MAX_NNZ

ADAPTER_KIND = "adapter"
SYSTEM_KIND = "system"


@dataclass(frozen=True)
class SweepPoint:
    """One (matrix × variant) cell of a sweep grid.

    Example — the pwtk/MLP256 cell of a fast-model adapter sweep::

        >>> SweepPoint("pwtk", "MLP256", fmt="sell", max_nnz=12_000)
        SweepPoint(matrix='pwtk', variant='MLP256', fmt='sell',
                   max_nnz=12000, model='fast', kind='adapter')

    ``kind`` is the executor's dispatch seam: ``"adapter"`` points run
    one adapter variant over the matrix's index stream, ``"system"``
    points run one end-to-end SpMV system.  New backends (multi-channel
    DRAM sweeps, scatter grids, strided streams) plug in by adding a
    kind here and a matching group runner in
    :mod:`repro.engine.executor` — see ARCHITECTURE.md.
    """

    matrix: str
    variant: str
    fmt: str = "sell"
    max_nnz: int = DEFAULT_MAX_NNZ
    model: str = "fast"
    kind: str = ADAPTER_KIND

    def __post_init__(self) -> None:
        if self.model not in ("fast", "cycle"):
            raise ExperimentError(
                f"unknown adapter model {self.model!r}; expected fast or cycle"
            )
        if self.kind not in (ADAPTER_KIND, SYSTEM_KIND):
            raise ExperimentError(f"unknown sweep point kind {self.kind!r}")

    @property
    def group_key(self) -> tuple:
        """Points sharing this key share all per-matrix analysis.

        The executor runs one pool task per distinct group key, so the
        key deliberately excludes ``variant``: every variant of one
        (kind, matrix, fmt, scale, model) combination reuses the same
        cached stream/analysis.

        >>> SweepPoint("pwtk", "MLP256").group_key
        ('adapter', 'pwtk', 'sell', 60000, 'fast')
        """
        return (self.kind, self.matrix, self.fmt, self.max_nnz, self.model)

    @property
    def row_key(self) -> tuple:
        """``group_key`` plus the variant — unique per result row.

        The executor reassembles pooled results into input order by
        looking each point's ``row_key`` up in the finished groups.
        """
        return (*self.group_key, self.variant)


def adapter_grid(
    matrices: tuple[str, ...],
    variants: tuple[str, ...],
    formats: tuple[str, ...] = ("sell",),
    max_nnz: int = DEFAULT_MAX_NNZ,
    model: str = "fast",
) -> list[SweepPoint]:
    """The full (format × matrix × variant) adapter grid, figure order.

    Format-major, then matrix, then variant — the iteration order the
    figures tabulate in, preserved by the executor's result table::

        >>> points = adapter_grid(("pwtk", "hood"), ("MLPnc", "MLP256"))
        >>> [(p.matrix, p.variant) for p in points]
        [('pwtk', 'MLPnc'), ('pwtk', 'MLP256'),
         ('hood', 'MLPnc'), ('hood', 'MLP256')]
    """
    return [
        SweepPoint(matrix, variant, fmt, max_nnz, model, ADAPTER_KIND)
        for fmt in formats
        for matrix in matrices
        for variant in variants
    ]


def system_grid(
    matrices: tuple[str, ...],
    systems: tuple[str, ...],
    max_nnz: int = DEFAULT_MAX_NNZ,
    model: str = "fast",
) -> list[SweepPoint]:
    """The (matrix × system) end-to-end SpMV grid, figure order.

    ``systems`` mixes the baseline and pack systems freely::

        >>> points = system_grid(("pwtk",), ("base", "pack256"))
        >>> [(p.variant, p.kind) for p in points]
        [('base', 'system'), ('pack256', 'system')]
    """
    return [
        SweepPoint(matrix, system, "", max_nnz, model, SYSTEM_KIND)
        for matrix in matrices
        for system in systems
    ]
