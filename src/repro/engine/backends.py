"""Sweep backend protocol and registry.

A *backend* owns one :attr:`SweepPoint.kind`: it declares how to build
grid points for that kind, how to evaluate every variant of one matrix
group, how to **split** a group into shard tasks that fan out across
the process pool, and how to **merge** shard results back into the
exact rows a serial run would produce.  The executor
(:mod:`repro.engine.executor`) is kind-agnostic — it buckets points,
asks the registered backend to split each bucket, schedules the shard
tasks, and hands the results back to the backend to merge.

Built-in backends:

========================  ==================================================
kind                      evaluates
========================  ==================================================
``adapter``               one adapter variant over a matrix index stream
                          (fast or cycle model)
``system``                one end-to-end SpMV system over a matrix
``multichannel``          the MLP256 adapter against an N-channel
                          block-interleaved HBM (fast or cycle model)
``scatter``               the indirect *write* path of one coalescer
                          variant over a matrix index stream
``strided``               an AXI-Pack strided burst at one stride
========================  ==================================================

Sharding contract: for any registered backend, any shard count, and any
worker count, ``merge(split(...))`` must reproduce the serial result
table **byte-for-byte** (``tests/test_engine_backends.py`` property-
tests this for every registered kind).  Two sharding axes exist:

* *variant sharding* (every backend, via the base class): a group's
  variant list splits into contiguous chunks, one shard task each;
* *stream sharding* (``adapter`` and ``multichannel``, fast model): a
  single variant's index stream splits at window-aligned boundaries;
  each shard extracts its chunk's window-local warp candidates
  (:func:`repro.axipack.fastmodel.window_candidates`) and the merge
  resolves the carry chain over the concatenated candidates
  (:func:`~repro.axipack.fastmodel.resolve_window_carry`) — exactly
  the computation the serial path performs, so the merged metrics are
  bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..axipack import fast_indirect_stream, run_indirect_stream
from ..axipack.fastmodel import (
    fast_metrics_from_tags,
    resolve_window_carry,
    window_candidates,
)
from ..axipack.metrics import AdapterMetrics
from ..config import AdapterConfig, DramConfig, variant_config
from ..errors import ExperimentError
from ..sparse.suite import DEFAULT_MAX_NNZ, get_spec
from ..units import ceil_div
from .cache import AnalysisCache
from .points import (
    ADAPTER_KIND,
    MULTICHANNEL_KIND,
    SCATTER_KIND,
    STRIDED_KIND,
    SYSTEM_KIND,
    SweepPoint,
    adapter_grid,
    multichannel_grid,
    scatter_grid,
    strided_grid,
    system_grid,
)


@dataclass(frozen=True)
class ShardTask:
    """One schedulable unit of a sweep group.

    ``chunk is None`` → evaluate ``variants`` over the whole matrix
    (variant sharding); ``chunk == (i, k)`` → evaluate the single
    variant in ``variants`` over stream chunk ``i`` of ``k`` (stream
    sharding), returning a mergeable partial payload instead of rows.
    """

    group_key: tuple
    variants: tuple[str, ...]
    chunk: tuple[int, int] | None = None


class SweepBackend:
    """Protocol base for sweep backends (one per ``SweepPoint.kind``).

    Subclasses set :attr:`kind`, implement :meth:`run_group`, and may
    override :meth:`split` / :meth:`run_shard` / :meth:`merge` to shard
    below variant granularity.  The base implementation shards the
    variant list into contiguous chunks and merges by reassembling rows
    per variant — correct for any backend whose rows are independent
    across variants (all of the built-ins).
    """

    kind: str = ""

    #: column projection for ad-hoc CLI sweeps (``None`` = all row
    #: keys); lives here so the display schema stays next to the row
    #: builder that defines it.
    display_columns: tuple[str, ...] | None = None

    # -- grid construction ------------------------------------------------

    def build_points(
        self,
        matrices: tuple[str, ...],
        variants: tuple[str, ...],
        formats: tuple[str, ...] = ("sell",),
        max_nnz: int = DEFAULT_MAX_NNZ,
        model: str = "fast",
    ) -> list[SweepPoint]:
        """Grid points for this kind, figure order (fmt → matrix →
        variant).  Backends reinterpret arguments as documented by
        their grid builder in :mod:`repro.engine.points`."""
        raise NotImplementedError

    # -- evaluation --------------------------------------------------------

    def run_group(
        self, group_key: tuple, variants: tuple[str, ...], cache: AnalysisCache
    ) -> list[dict]:
        """Evaluate every variant of one group; one row dict each."""
        raise NotImplementedError

    # -- sharding ----------------------------------------------------------

    def split(
        self, group_key: tuple, variants: tuple[str, ...], shards: int
    ) -> list[ShardTask]:
        """Split one group into at most ``shards`` shard tasks."""
        pieces = max(1, min(shards, len(variants)))
        if pieces == 1:
            return [ShardTask(group_key, tuple(variants))]
        bounds = np.linspace(0, len(variants), pieces + 1).astype(int)
        return [
            ShardTask(group_key, tuple(variants[lo:hi]))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]

    def run_shard(self, task: ShardTask, cache: AnalysisCache):
        """Evaluate one shard task (in a worker process)."""
        if task.chunk is not None:
            raise ExperimentError(
                f"backend {self.kind!r} does not support stream chunking"
            )
        return self.run_group(task.group_key, task.variants, cache)

    def merge(
        self,
        group_key: tuple,
        variants: tuple[str, ...],
        tasks: list[ShardTask],
        payloads: list,
    ) -> list[dict]:
        """Reassemble shard payloads into rows, one per ``variants``
        entry in order.  Must reproduce :meth:`run_group` byte-for-
        byte for every shard configuration."""
        by_variant: dict[str, dict] = {}
        for task, rows in zip(tasks, payloads):
            if task.chunk is not None:
                raise ExperimentError(
                    f"backend {self.kind!r} cannot merge chunked payloads"
                )
            for variant, row in zip(task.variants, rows):
                by_variant[variant] = row
        return [by_variant[variant] for variant in variants]


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, SweepBackend] = {}


def register_backend(backend: SweepBackend, replace: bool = False) -> SweepBackend:
    """Register ``backend`` under its :attr:`~SweepBackend.kind`.

    Duplicate registration is rejected (``replace=True`` swaps an
    existing backend deliberately, e.g. to instrument one in a test).
    """
    kind = backend.kind
    if not kind:
        raise ExperimentError(
            f"backend {type(backend).__name__} declares no kind"
        )
    if kind in _REGISTRY and not replace:
        raise ExperimentError(
            f"sweep backend kind {kind!r} is already registered "
            f"({type(_REGISTRY[kind]).__name__}); pass replace=True to swap it"
        )
    _REGISTRY[kind] = backend
    return backend


def registered_kinds() -> tuple[str, ...]:
    """Registered backend kinds, registration order."""
    return tuple(_REGISTRY)


def require_backend(kind: str) -> None:
    """Validate ``kind`` without returning the backend (point init)."""
    if kind not in _REGISTRY:
        raise ExperimentError(
            f"unknown sweep backend kind {kind!r}; registered kinds: "
            f"{', '.join(registered_kinds())}"
        )


def get_backend(kind: str) -> SweepBackend:
    """The registered backend for ``kind``; raises with the registered
    names on an unknown kind."""
    require_backend(kind)
    return _REGISTRY[kind]


def grid_points(kind: str, *args, **kwargs) -> list[SweepPoint]:
    """Build grid points through the registry:
    ``grid_points("adapter", matrices, variants, ...)`` —
    the experiments' single entry point for grid construction."""
    return get_backend(kind).build_points(*args, **kwargs)


# -- adapter (and multichannel) backends ------------------------------------


def _adapter_row(
    point_base: tuple, variant: str, metrics: AdapterMetrics, dram: DramConfig
) -> dict:
    kind, matrix, fmt, max_nnz, model = point_base
    return {
        "kind": kind,
        "matrix": matrix,
        "format": fmt,
        "variant": variant,
        "model": model,
        "max_nnz": max_nnz,
        "count": metrics.count,
        "cycles": metrics.cycles,
        "idx_txns": metrics.idx_txns,
        "elem_txns": metrics.elem_txns,
        "indir_gbps": metrics.indirect_bw_gbps,
        "elem_gbps": metrics.elem_bw_gbps,
        "index_gbps": metrics.idx_bw_gbps,
        "loss_gbps": metrics.loss_gbps(dram),
        "coal_rate": metrics.coalesce_rate,
    }


class AdapterBackend(SweepBackend):
    """Fast-/cycle-model adapter sweeps with two-axis sharding.

    Variant sharding always applies; when the shard budget exceeds the
    variant count and the model is ``fast``, each variant's stream
    additionally splits into window-aligned chunks whose warp
    candidates are merged exactly (see the module docstring).
    """

    kind = ADAPTER_KIND
    display_columns = (
        "matrix", "variant", "indir_gbps", "coal_rate", "elem_txns", "cycles",
    )

    def build_points(self, *args, **kwargs) -> list[SweepPoint]:
        return adapter_grid(*args, **kwargs)

    # hooks the multichannel backend overrides -----------------------------

    def variant_setup(self, variant: str) -> tuple[AdapterConfig, int]:
        """(adapter config, memory channel count) for one variant."""
        return variant_config(variant), 1

    def row(
        self, group_key: tuple, variant: str, metrics: AdapterMetrics,
        dram: DramConfig,
    ) -> dict:
        return _adapter_row(group_key, variant, metrics, dram)

    def cycle_metrics(
        self, indices: np.ndarray, config: AdapterConfig, dram: DramConfig,
        variant: str,
    ) -> AdapterMetrics:
        return run_indirect_stream(indices, config, dram, variant=variant)

    # ----------------------------------------------------------------------

    def run_group(
        self, group_key: tuple, variants: tuple[str, ...], cache: AnalysisCache
    ) -> list[dict]:
        kind, matrix, fmt, max_nnz, model = group_key
        dram = DramConfig()
        indices = cache.stream(matrix, fmt, max_nnz)
        rows = []
        for variant in variants:
            config, channels = self.variant_setup(variant)
            if model == "cycle":
                metrics = self.cycle_metrics(indices, config, dram, variant)
            else:
                analysis = cache.analysis(
                    matrix, fmt, max_nnz, dram.access_bytes // config.element_bytes
                )
                metrics = fast_indirect_stream(
                    indices, config, dram, variant=variant, analysis=analysis,
                    channels=channels,
                )
            rows.append(self.row(group_key, variant, metrics, dram))
        return rows

    def split(
        self, group_key: tuple, variants: tuple[str, ...], shards: int
    ) -> list[ShardTask]:
        model = group_key[4]
        chunks = shards // max(1, len(variants))
        if model != "fast" or chunks < 2:
            return super().split(group_key, variants, shards)
        # Shard budget exceeds the variant count: one task per
        # (variant, stream chunk).  Chunk bounds are resolved in the
        # worker (they depend on the variant's window and the stream
        # length); the merge re-runs the exact serial carry resolution.
        return [
            ShardTask(group_key, (variant,), chunk=(index, chunks))
            for variant in variants
            for index in range(chunks)
        ]

    def _chunk_bounds(
        self, count: int, window: int | None, chunk: tuple[int, int]
    ) -> tuple[int, int]:
        """Element bounds of stream chunk ``i`` of ``k``: equal window
        spans for coalescing variants (alignment is what makes the
        candidate extraction chunk-local), equal element spans for the
        coalescer-less ``MLPnc``."""
        index, pieces = chunk
        if window:
            num_win = (count - 1) // window + 1
            span = ceil_div(num_win, pieces) * window
        else:
            span = ceil_div(count, pieces)
        return min(index * span, count), min((index + 1) * span, count)

    def run_shard(self, task: ShardTask, cache: AnalysisCache):
        if task.chunk is None:
            return self.run_group(task.group_key, task.variants, cache)
        kind, matrix, fmt, max_nnz, model = task.group_key
        (variant,) = task.variants
        dram = DramConfig()
        config, _ = self.variant_setup(variant)
        window = config.coalescer.window if config.has_coalescer else None
        count = int(cache.stream(matrix, fmt, max_nnz).size)
        start, stop = self._chunk_bounds(count, window, task.chunk)
        if start >= stop:
            empty = np.empty(0, dtype=np.int64)
            return {"count": 0, "cand": empty, "cand_win": empty}
        analysis = cache.analysis(
            matrix, fmt, max_nnz,
            dram.access_bytes // config.element_bytes, chunk=(start, stop),
        )
        if window is None:  # MLPnc: every request is its own wide access
            return {"count": stop - start, "tags": analysis.blocks}
        cand, cand_win = window_candidates(
            analysis.blocks, window, analysis.order, base_window=start // window
        )
        return {"count": stop - start, "cand": cand, "cand_win": cand_win}

    def merge(
        self,
        group_key: tuple,
        variants: tuple[str, ...],
        tasks: list[ShardTask],
        payloads: list,
    ) -> list[dict]:
        dram = DramConfig()
        by_variant: dict[str, dict] = {}
        chunked: dict[str, list[tuple[int, dict]]] = {}
        for task, payload in zip(tasks, payloads):
            if task.chunk is None:
                for variant, row in zip(task.variants, payload):
                    by_variant[variant] = row
            else:
                chunked.setdefault(task.variants[0], []).append(
                    (task.chunk[0], payload)
                )
        for variant, parts in chunked.items():
            parts.sort(key=lambda item: item[0])
            pieces = [payload for _, payload in parts]
            config, channels = self.variant_setup(variant)
            count = sum(p["count"] for p in pieces)
            if config.has_coalescer:
                assert config.coalescer is not None
                window = config.coalescer.window
                cand = np.concatenate([p["cand"] for p in pieces])
                cand_win = np.concatenate([p["cand_win"] for p in pieces])
                elem_txns, tags = resolve_window_carry(
                    cand, cand_win, (count - 1) // window + 1
                )
            else:
                tags = np.concatenate([p["tags"] for p in pieces if p["count"]])
                elem_txns = count
            metrics = fast_metrics_from_tags(
                count, elem_txns, tags, config, dram, variant, channels
            )
            by_variant[variant] = self.row(group_key, variant, metrics, dram)
        return [by_variant[variant] for variant in variants]


class MultiChannelBackend(AdapterBackend):
    """Multi-channel DRAM sweeps: the MLP256 adapter in front of an
    N-channel block-interleaved HBM (``variant`` = ``"ch<N>"``).

    Rides the adapter backend's sharding machinery unchanged (including
    exact stream chunking); only the variant interpretation, the row
    schema, and the model entry points differ.  ``model="fast"`` runs
    per-channel bank-state timelines
    (:func:`repro.mem.multichannel.fast_multichannel_stream`);
    ``model="cycle"`` wires the cycle-accurate adapter to a
    :class:`~repro.mem.multichannel.MultiChannelMemory` — the
    substrate the fast path is cross-validated against.
    """

    kind = MULTICHANNEL_KIND
    display_columns = (
        "matrix", "variant", "channels", "indir_gbps", "peak_gbps",
        "bw_utilization", "cycles",
    )

    def build_points(self, *args, **kwargs) -> list[SweepPoint]:
        return multichannel_grid(*args, **kwargs)

    def variant_setup(self, variant: str) -> tuple[AdapterConfig, int]:
        if not (variant.startswith("ch") and variant[2:].isdigit()):
            raise ExperimentError(
                f"multichannel variants are 'ch<N>' labels, got {variant!r}"
            )
        channels = int(variant[2:])
        if channels < 1:
            raise ExperimentError("channel count must be >= 1")
        return variant_config("MLP256"), channels

    def run_group(
        self, group_key: tuple, variants: tuple[str, ...], cache: AnalysisCache
    ) -> list[dict]:
        # Route through the mem-layer entry point so the sweep and the
        # direct API share one definition (lazy import: mem must not
        # import axipack at module load).
        from ..mem.multichannel import fast_multichannel_stream

        kind, matrix, fmt, max_nnz, model = group_key
        dram = DramConfig()
        indices = cache.stream(matrix, fmt, max_nnz)
        rows = []
        for variant in variants:
            config, channels = self.variant_setup(variant)
            if model == "cycle":
                metrics = run_indirect_stream(
                    indices, config, dram, variant=variant, channels=channels
                )
            else:
                analysis = cache.analysis(
                    matrix, fmt, max_nnz, dram.access_bytes // config.element_bytes
                )
                metrics = fast_multichannel_stream(
                    indices, channels, config, dram, variant=variant,
                    analysis=analysis,
                )
            rows.append(self.row(group_key, variant, metrics, dram))
        return rows

    def row(self, group_key, variant, metrics, dram) -> dict:
        kind, matrix, fmt, max_nnz, model = group_key
        channels = int(metrics.extras.get("channels", 1.0))
        peak = channels * dram.peak_bandwidth_gbps
        return {
            "kind": kind,
            "matrix": matrix,
            "format": fmt,
            "variant": variant,
            "model": model,
            "max_nnz": max_nnz,
            "channels": channels,
            "count": metrics.count,
            "cycles": metrics.cycles,
            "idx_txns": metrics.idx_txns,
            "elem_txns": metrics.elem_txns,
            "indir_gbps": metrics.indirect_bw_gbps,
            "peak_gbps": peak,
            "bw_utilization": min(
                1.0, (metrics.elem_bw_gbps + metrics.idx_bw_gbps) / peak
            ),
        }


# -- system backend ---------------------------------------------------------


class SystemBackend(SweepBackend):
    """End-to-end SpMV systems (Figs. 5a/5b/6b); variant sharding only
    (each system run is a monolithic simulation)."""

    kind = SYSTEM_KIND
    display_columns = (
        "matrix", "system", "runtime_cycles", "gflops", "traffic_vs_ideal",
        "bw_utilization",
    )

    def build_points(self, *args, **kwargs) -> list[SweepPoint]:
        return system_grid(*args, **kwargs)

    def run_group(
        self, group_key: tuple, variants: tuple[str, ...], cache: AnalysisCache
    ) -> list[dict]:
        # Imported here so adapter-only sweeps never pay for the vpc stack.
        from ..vpc import BaselineSystem, PACK_SYSTEMS, PackSystem

        kind, matrix, fmt, max_nnz, model = group_key
        spec = get_spec(matrix)
        csr = cache.matrix(matrix, max_nnz)
        rows = []
        for system in variants:
            if system == "base":
                result = BaselineSystem().run(
                    csr, matrix, llc_scale=csr.nrows / spec.n
                )
            else:
                variant = PACK_SYSTEMS.get(system, system)
                result = PackSystem(variant, adapter_model=model, name=system).run(
                    csr, matrix
                )
            rows.append(
                {
                    "kind": kind,
                    "matrix": matrix,
                    "system": system,
                    "model": model,
                    "max_nnz": max_nnz,
                    "runtime_cycles": result.runtime_cycles,
                    "indirect_fraction": result.indirect_fraction,
                    "gflops": result.gflops,
                    "traffic_vs_ideal": result.traffic_vs_ideal,
                    "bw_utilization": result.bandwidth_utilization(),
                }
            )
        return rows


# -- scatter backend --------------------------------------------------------


class ScatterBackend(SweepBackend):
    """Indirect write (scatter) sweeps through the write coalescer."""

    kind = SCATTER_KIND
    display_columns = (
        "matrix", "variant", "scatter_gbps", "coal_rate", "wide_writes",
        "cycles",
    )

    def build_points(self, *args, **kwargs) -> list[SweepPoint]:
        return scatter_grid(*args, **kwargs)

    def run_group(
        self, group_key: tuple, variants: tuple[str, ...], cache: AnalysisCache
    ) -> list[dict]:
        from ..axipack.scatter import fast_indirect_scatter, run_indirect_scatter

        kind, matrix, fmt, max_nnz, model = group_key
        dram = DramConfig()
        indices = cache.stream(matrix, fmt, max_nnz)
        rows = []
        for variant in variants:
            config = variant_config(variant)
            if model == "cycle":
                values = np.arange(indices.size, dtype=np.float64)
                metrics = run_indirect_scatter(indices, values, config, dram)
            else:
                analysis = cache.analysis(
                    matrix, fmt, max_nnz, dram.access_bytes // config.element_bytes
                )
                metrics = fast_indirect_scatter(
                    indices, config, dram, analysis=analysis
                )
            rows.append(
                {
                    "kind": kind,
                    "matrix": matrix,
                    "format": fmt,
                    "variant": variant,
                    "model": model,
                    "max_nnz": max_nnz,
                    "count": metrics.count,
                    "cycles": metrics.cycles,
                    "idx_txns": metrics.idx_txns,
                    "wide_writes": metrics.elem_txns,
                    "scatter_gbps": metrics.indirect_bw_gbps,
                    "coal_rate": metrics.coalesce_rate,
                }
            )
        return rows


# -- strided backend --------------------------------------------------------


class StridedBackend(SweepBackend):
    """AXI-Pack strided bursts (no index stream; ``variant`` =
    ``"s<stride bytes>"``, the point's ``max_nnz`` is the element
    count, ``matrix`` a free-form workload label)."""

    kind = STRIDED_KIND
    display_columns = (
        "matrix", "variant", "stride_bytes", "stream_gbps", "coal_rate",
        "elem_txns", "cycles",
    )

    def build_points(
        self,
        matrices: tuple[str, ...] = ("linear",),
        variants: tuple[str, ...] = ("s8", "s16", "s32", "s64"),
        formats: tuple[str, ...] = ("",),
        max_nnz: int = DEFAULT_MAX_NNZ,
        model: str = "fast",
    ) -> list[SweepPoint]:
        return [
            point
            for label in matrices
            for point in strided_grid(variants, max_nnz, label, model)
        ]

    @staticmethod
    def stride_bytes(variant: str) -> int:
        if not (variant.startswith("s") and variant[1:].isdigit()):
            raise ExperimentError(
                f"strided variants are 's<bytes>' labels, got {variant!r}"
            )
        return int(variant[1:])

    def run_group(
        self, group_key: tuple, variants: tuple[str, ...], cache: AnalysisCache
    ) -> list[dict]:
        from ..axipack.strided import (
            StridedBurst,
            fast_strided_stream,
            run_strided_stream,
        )

        kind, matrix, fmt, count, model = group_key
        dram = DramConfig()
        config = AdapterConfig()
        rows = []
        for variant in variants:
            burst = StridedBurst(
                base=0, count=count, stride_bytes=self.stride_bytes(variant)
            )
            if model == "cycle":
                metrics = run_strided_stream(burst, config, dram)
            else:
                metrics = fast_strided_stream(burst, config, dram)
            rows.append(
                {
                    "kind": kind,
                    "matrix": matrix,
                    "variant": variant,
                    "model": model,
                    "count": count,
                    "stride_bytes": burst.stride_bytes,
                    "cycles": metrics.cycles,
                    "elem_txns": metrics.elem_txns,
                    "stream_gbps": metrics.indirect_bw_gbps,
                    "coal_rate": metrics.coalesce_rate,
                }
            )
        return rows


# The built-in registrations.  Externally developed backends call
# register_backend() themselves (duplicate kinds are rejected).
register_backend(AdapterBackend())
register_backend(SystemBackend())
register_backend(MultiChannelBackend())
register_backend(ScatterBackend())
register_backend(StridedBackend())
