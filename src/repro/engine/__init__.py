"""Batched sweep engine for paper-scale design-space exploration.

The experiments (Figs. 3–6, Table I, ablations) are all grids of
(matrix × adapter-variant/system × format) design points sharing heavy
per-matrix work: synthesising the matrix, deriving its index stream,
and the stream's block-id analysis.  This package factors that into

* :mod:`repro.engine.points` — :class:`SweepPoint` and grid builders,
* :mod:`repro.engine.cache` — the keyed per-matrix analysis cache,
* :mod:`repro.engine.executor` — :class:`SweepExecutor`, which groups
  points per matrix, runs each group through the cache, optionally
  fans groups out over a ``concurrent.futures`` process pool, and
  returns a tidy result table (one dict per point, input order).

Every experiment runner and benchmark goes through this engine, and
:mod:`repro.report` persists the resulting tables; it is the substrate
future scaling work (sharding, multi-backend) plugs into.  Quick tour::

    >>> from repro.engine import SweepExecutor, adapter_grid
    >>> rows = SweepExecutor().run(
    ...     adapter_grid(("pwtk",), ("MLP256",), max_nnz=12_000))
    >>> rows[0]["variant"], rows[0]["cycles"] > 0
    ('MLP256', True)
"""

from .cache import AnalysisCache
from .executor import SweepExecutor, workers_from_env
from .points import ADAPTER_KIND, SYSTEM_KIND, SweepPoint, adapter_grid, system_grid

__all__ = [
    "AnalysisCache",
    "SweepExecutor",
    "workers_from_env",
    "SweepPoint",
    "adapter_grid",
    "system_grid",
    "ADAPTER_KIND",
    "SYSTEM_KIND",
]
