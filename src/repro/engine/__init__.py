"""Batched sweep engine for paper-scale design-space exploration.

The experiments (Figs. 3–6, Table I, ablations) are all grids of
(matrix × adapter-variant/system × format) design points sharing heavy
per-matrix work: synthesising the matrix, deriving its index stream,
and the stream's block-id analysis.  This package factors that into

* :mod:`repro.engine.points` — :class:`SweepPoint` and grid builders,
* :mod:`repro.engine.backends` — the sweep backend protocol and
  registry: one :class:`SweepBackend` per point kind declares how to
  build points, evaluate a matrix group, split it into shard tasks,
  and merge shard results deterministically,
* :mod:`repro.engine.cache` — the keyed per-matrix analysis cache
  (shard/chunk identity is part of every key),
* :mod:`repro.engine.executor` — :class:`SweepExecutor`, which groups
  points per matrix, shards groups through their backends, optionally
  fans shard tasks out over a ``concurrent.futures`` process pool, and
  returns a tidy result table (one dict per point, input order).

Every experiment runner and benchmark goes through this engine, and
:mod:`repro.report` persists the resulting tables.  Quick tour::

    >>> from repro.engine import SweepExecutor, adapter_grid
    >>> rows = SweepExecutor().run(
    ...     adapter_grid(("pwtk",), ("MLP256",), max_nnz=12_000))
    >>> rows[0]["variant"], rows[0]["cycles"] > 0
    ('MLP256', True)
"""

from .backends import (
    ShardTask,
    SweepBackend,
    get_backend,
    grid_points,
    register_backend,
    registered_kinds,
)
from .cache import AnalysisCache
from .executor import (
    SweepExecutor,
    resolve_shards,
    shards_from_env,
    workers_from_env,
)
from .points import (
    ADAPTER_KIND,
    MULTICHANNEL_KIND,
    SCATTER_KIND,
    STRIDED_KIND,
    SYSTEM_KIND,
    SweepPoint,
    adapter_grid,
    multichannel_grid,
    scatter_grid,
    strided_grid,
    system_grid,
)

__all__ = [
    "AnalysisCache",
    "SweepExecutor",
    "workers_from_env",
    "shards_from_env",
    "resolve_shards",
    "SweepPoint",
    "SweepBackend",
    "ShardTask",
    "register_backend",
    "registered_kinds",
    "get_backend",
    "grid_points",
    "adapter_grid",
    "system_grid",
    "multichannel_grid",
    "scatter_grid",
    "strided_grid",
    "ADAPTER_KIND",
    "SYSTEM_KIND",
    "MULTICHANNEL_KIND",
    "SCATTER_KIND",
    "STRIDED_KIND",
]
