"""Unit helpers shared across the package.

All sizes inside the simulator are kept in *bytes* and all times in
*cycles* of the 1 GHz system clock; these helpers convert to and from the
human-facing units used by the paper (GB/s, KiB, bits).
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Bytes in one gigabyte as used by bandwidth figures (decimal GB).
GB = 1_000_000_000


def bits_to_bytes(bits: int) -> int:
    """Convert a bit count to bytes, requiring byte alignment.

    >>> bits_to_bytes(512)
    64
    """
    if bits % 8:
        raise ValueError(f"bit count {bits} is not a whole number of bytes")
    return bits // 8


def bytes_to_bits(nbytes: int) -> int:
    """Convert a byte count to bits."""
    return nbytes * 8


def bandwidth_gbps(nbytes: int, cycles: int, freq_hz: float = 1e9) -> float:
    """Effective bandwidth in GB/s for ``nbytes`` moved in ``cycles``.

    ``freq_hz`` is the clock frequency; the paper's systems run at 1 GHz
    so one cycle is one nanosecond by default.

    >>> bandwidth_gbps(32, 1)
    32.0
    """
    if cycles <= 0:
        raise ValueError("cycle count must be positive")
    seconds = cycles / freq_hz
    return nbytes / seconds / GB


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division.

    >>> ceil_div(7, 4)
    2
    """
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two.

    >>> is_power_of_two(256)
    True
    >>> is_power_of_two(0)
    False
    """
    return value > 0 and (value & (value - 1)) == 0


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (binary units).

    >>> format_bytes(27 * 1024)
    '27.0 KiB'
    """
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")
