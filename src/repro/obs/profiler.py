"""Sim-cycle attribution profiler.

When enabled, both cycle engines bin every simulated component-cycle by
component name and by engine action:

``tick``
    the component was stepped cycle-by-cycle (the step engine's only
    mode; the batched engine's due-tick and fused-loop paths),
``advance``
    the batched engine replayed a quiet span via ``Component.advance``
    (including the 1-cycle sync gaps the fused loop charges on entry),
``bulk``
    the batched engine's solo bulk path covered the span with one
    ``bulk_tick`` call.

The contract is **exactness**: bins are incremented at precisely the
points where an engine moves a component's synced cycle forward, so for
every component the three bins sum to the cycles the simulator says
elapsed — bit-exact, on both engines, including runs cut short by a
deadlock.  ``tests/test_obs.py`` enforces this across the differential
grid, which doubles as a proof that the batched engine's claimed
quiet-span coverage is real.

Overhead: the hook is one module-global load per engine inner loop when
disabled (``active()`` returning ``None``), and plain dict increments
when enabled — no per-cycle allocation.
"""

from __future__ import annotations

import contextlib

ACTIONS = ("tick", "advance", "bulk")

_PROFILER: "CycleProfiler | None" = None


class CycleProfiler:
    """Mutable ``{component: {action: cycles}}`` bins.

    Single-threaded by design: each engine run owns the profiler for
    its duration, and worker processes merge their bins back through
    shard results (:meth:`drain` / :meth:`merge`), mirroring how cache
    deltas travel.
    """

    __slots__ = ("bins",)

    def __init__(self) -> None:
        self.bins: dict[str, dict[str, int]] = {}

    def add(self, component: str, action: str, cycles: int) -> None:
        """Charge ``cycles`` to one component/action bin."""
        if cycles <= 0:
            return
        comp = self.bins.get(component)
        if comp is None:
            comp = self.bins[component] = {"tick": 0, "advance": 0, "bulk": 0}
        comp[action] += cycles

    def merge(self, bins: dict) -> None:
        """Fold another profiler's :attr:`bins` (or drained dict) in."""
        for component, actions in bins.items():
            comp = self.bins.get(component)
            if comp is None:
                comp = self.bins[component] = {"tick": 0, "advance": 0, "bulk": 0}
            for action, cycles in actions.items():
                comp[action] = comp.get(action, 0) + cycles

    def drain(self) -> dict:
        """Return and clear the bins (ship-back from pool workers)."""
        bins, self.bins = self.bins, {}
        return bins

    def component_totals(self) -> dict[str, int]:
        """Per-component cycle totals across all actions."""
        return {
            component: sum(actions.values())
            for component, actions in self.bins.items()
        }

    def total(self) -> int:
        return sum(sum(actions.values()) for actions in self.bins.values())

    def as_rows(self) -> list[tuple[str, int, int, int, int]]:
        """Sorted ``(component, tick, advance, bulk, total)`` rows,
        largest total first."""
        rows = [
            (
                component,
                actions.get("tick", 0),
                actions.get("advance", 0),
                actions.get("bulk", 0),
                sum(actions.values()),
            )
            for component, actions in self.bins.items()
        ]
        rows.sort(key=lambda row: (-row[4], row[0]))
        return rows


def enable() -> CycleProfiler:
    """Install (and return) a fresh global profiler."""
    global _PROFILER
    _PROFILER = CycleProfiler()
    return _PROFILER


def disable() -> None:
    global _PROFILER
    _PROFILER = None


def active() -> CycleProfiler | None:
    """The global profiler, or ``None`` when attribution is off."""
    return _PROFILER


@contextlib.contextmanager
def profiled():
    """Enable attribution for a block and yield the profiler.

    Restores the previous global (usually ``None``) on exit, so nested
    or test usage cannot leak an enabled profiler into later runs.
    """
    global _PROFILER
    previous = _PROFILER
    profiler = CycleProfiler()
    _PROFILER = profiler
    try:
        yield profiler
    finally:
        _PROFILER = previous
