"""Dependency-free metrics registry with Prometheus text exposition.

:class:`MetricsRegistry` holds counters, gauges and histograms with
labeled series.  It unifies the ad-hoc counter dicts the layers keep
(executor ``stats``, :class:`JobManager` stats, corpus tallies,
:class:`AnalysisCache` hit/miss/eviction deltas): the dicts remain the
source of truth for their committed/wire schemas, and every increment
is mirrored here under the canonical metric names
(:mod:`repro.obs.names`) so one ``GET /metrics`` scrape exposes the
whole system.

The registry is thread-safe (the serve front end increments from many
handler threads) and process-local: pool workers mirror into their own
registry, and the cross-process truth travels back with shard results
exactly like the cache counters always have — the parent registry is
fed from the aggregated deltas, never sampled from workers.

Example::

    >>> registry = MetricsRegistry()
    >>> registry.inc("repro_demo_total", 2, flavor="a")
    >>> registry.value("repro_demo_total", flavor="a")
    2
    >>> print(registry.render().splitlines()[2])
    repro_demo_total{flavor="a"} 2
"""

from __future__ import annotations

import re
import threading

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default latency buckets (seconds) — tuned for sweep-service
#: requests, which span ~ms cache hits to multi-second cycle sweeps.
DEFAULT_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0, 60.0)


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labels_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: tuple, extra: tuple = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Metric:
    """One named metric: a family of labeled series of one type."""

    def __init__(self, name: str, kind: str, help_text: str, buckets=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = tuple(buckets) if buckets else None
        #: counter/gauge: labels-key -> number.
        #: histogram: labels-key -> [bucket counts..., sum, count].
        self.series: dict[tuple, object] = {}


class MetricsRegistry:
    """Counters, gauges and histograms with labeled series.

    Metrics are implicitly declared on first touch; touching an
    existing name as a different type raises ``ValueError`` (telemetry
    misuse is a programming error, not a runtime condition).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- declaration -------------------------------------------------------

    def _metric(self, name: str, kind: str, help_text: str, buckets=None) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            if not _NAME_RE.match(name):
                raise ValueError(f"bad metric name {name!r}")
            metric = _Metric(name, kind, help_text, buckets)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    # -- writes ------------------------------------------------------------

    def inc(self, name: str, value: float = 1, help: str = "", **labels) -> None:
        """Add ``value`` (>= 0) to a counter series."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease (got {value})")
        key = _labels_key(labels)
        with self._lock:
            metric = self._metric(name, "counter", help)
            metric.series[key] = metric.series.get(key, 0) + value

    def set_gauge(self, name: str, value: float, help: str = "", **labels) -> None:
        """Set a gauge series to ``value``."""
        key = _labels_key(labels)
        with self._lock:
            metric = self._metric(name, "gauge", help)
            metric.series[key] = value

    def observe(
        self, name: str, value: float, help: str = "", buckets=None, **labels
    ) -> None:
        """Record one observation into a histogram series."""
        key = _labels_key(labels)
        with self._lock:
            metric = self._metric(
                name, "histogram", help, buckets or DEFAULT_BUCKETS
            )
            cells = metric.series.get(key)
            if cells is None:
                # per-bucket counts (cumulated at render), then sum, count.
                cells = metric.series[key] = [0] * (len(metric.buckets) + 2)
            for i, bound in enumerate(metric.buckets):
                if value <= bound:
                    cells[i] += 1
                    break
            cells[-2] += value      # sum
            cells[-1] += 1          # count

    # -- reads -------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        """Current value of one counter/gauge series (0 if never set)."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                return 0
            if metric.kind == "histogram":
                raise ValueError(f"{name!r} is a histogram; read via snapshot()")
            return metric.series.get(_labels_key(labels), 0)

    def snapshot(self) -> dict:
        """JSON-able view: ``{name: {"type", "series": [...]}}``.

        Histogram series expose ``sum``/``count`` (buckets are an
        exposition-format concern).
        """
        with self._lock:
            out: dict = {}
            for name, metric in sorted(self._metrics.items()):
                series = []
                for key, cells in sorted(metric.series.items()):
                    labels = dict(key)
                    if metric.kind == "histogram":
                        series.append(
                            {"labels": labels, "sum": cells[-2], "count": cells[-1]}
                        )
                    else:
                        series.append({"labels": labels, "value": cells})
                out[name] = {"type": metric.kind, "series": series}
            return out

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            for name, metric in sorted(self._metrics.items()):
                lines.append(f"# HELP {name} {metric.help or name}")
                lines.append(f"# TYPE {name} {metric.kind}")
                for key, cells in sorted(metric.series.items()):
                    if metric.kind == "histogram":
                        cumulative = 0
                        for i, bound in enumerate(metric.buckets):
                            cumulative += cells[i]
                            lines.append(
                                f"{name}_bucket"
                                f"{_format_labels(key, (('le', repr(bound)),))}"
                                f" {cumulative}"
                            )
                        lines.append(
                            f"{name}_bucket{_format_labels(key, (('le', '+Inf'),))}"
                            f" {cells[-1]}"
                        )
                        lines.append(
                            f"{name}_sum{_format_labels(key)}"
                            f" {_format_value(cells[-2])}"
                        )
                        lines.append(
                            f"{name}_count{_format_labels(key)} {cells[-1]}"
                        )
                    else:
                        lines.append(
                            f"{name}{_format_labels(key)} {_format_value(cells)}"
                        )
        return "\n".join(lines) + "\n"

    def series_count(self) -> int:
        """Total labeled series across all metrics."""
        with self._lock:
            return sum(len(m.series) for m in self._metrics.values())


#: the process-wide registry every layer feeds by default.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Swap in a fresh default registry (test isolation) and return it."""
    global _REGISTRY
    _REGISTRY = MetricsRegistry()
    return _REGISTRY


def inc_stats(counters: dict, help: str = "") -> None:
    """Mirror a stat-counter dict into the default registry under the
    canonical metric names (:func:`repro.obs.names.stat_metric`)."""
    from .names import stat_metric

    registry = _REGISTRY
    for key, value in counters.items():
        if value:
            registry.inc(stat_metric(key), value, help=help)
