"""``repro.obs`` — dependency-free telemetry for every layer.

Four cooperating pieces, all stdlib-only:

- :mod:`repro.obs.names` — the canonical stat-key and metric-name
  spellings (asserted in tests so manifests and ``/stats`` never drift),
- :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms with Prometheus text exposition,
- :mod:`repro.obs.trace` — context-manager span tracing to an NDJSON
  sink, propagated across pool workers,
- :mod:`repro.obs.profiler` — opt-in sim-cycle attribution binning
  simulated cycles by component × engine action.

Everything is **off by default and free when off**: ``span()`` returns
a shared no-op, the profiler hook is one global load, and the registry
only holds what was actually incremented.

:func:`tracing` is the CLI entry point: it wires a ``--trace`` path to
the tracer + profiler for the duration of a command, opens a root span,
and appends the final cycle-attribution bins as a ``profile`` event.

Worker propagation: :func:`worker_config` snapshots the parent's
telemetry state for a pool initializer, and :func:`seed_worker` applies
it inside the worker (replacing fork-inherited tracer state so the
parent's sink fd is never written from a child).
"""

from __future__ import annotations

import contextlib

from . import names, profiler, trace
from .logs import logging_setup
from .metrics import (
    MetricsRegistry,
    get_registry,
    inc_stats,
    reset_registry,
)
from .profiler import CycleProfiler, profiled
from .trace import (
    NULL_SPAN,
    CollectingSink,
    NdjsonSink,
    adopt_spans,
    current_trace_id,
    span,
)

__all__ = [
    "names",
    "profiler",
    "trace",
    "logging_setup",
    "MetricsRegistry",
    "get_registry",
    "inc_stats",
    "reset_registry",
    "CycleProfiler",
    "profiled",
    "NULL_SPAN",
    "CollectingSink",
    "NdjsonSink",
    "adopt_spans",
    "current_trace_id",
    "span",
    "tracing",
    "worker_config",
    "seed_worker",
]


def worker_config() -> dict:
    """Snapshot the telemetry state a pool worker should inherit."""
    tracer = trace.get_tracer()
    return {
        "trace": tracer is not None,
        "sample": tracer.sample if tracer is not None else 1.0,
        "profile": profiler.active() is not None,
    }


def seed_worker(config: dict) -> None:
    """Apply a :func:`worker_config` snapshot inside a pool worker.

    Must run unconditionally in every worker: under the fork start
    method the child inherits the parent's tracer (including its open
    NDJSON file handle) and profiler, and both must be replaced with
    worker-local state.
    """
    trace.seed_worker(config.get("trace", False), config.get("sample", 1.0))
    if config.get("profile", False):
        profiler.enable()
    else:
        profiler.disable()


def drain_worker_telemetry() -> tuple[list[dict], dict]:
    """``(spans, profiler_bins)`` buffered in this worker, cleared.

    Returns empties when called in-process (serial mode) so callers can
    ship the tuple unconditionally without double-counting.
    """
    spans = trace.drain_worker_spans()
    if trace.in_worker() and profiler.active() is not None:
        bins = profiler.active().drain()
    else:
        bins = {}
    return spans, bins


@contextlib.contextmanager
def tracing(path, root: str = "cli", sample: float = 1.0, **attrs):
    """Trace a CLI command into an NDJSON file.

    Configures the global tracer on ``path``, enables the cycle
    profiler, and runs the block under a root span named ``root``.  On
    exit the profiler's bins are appended as a ``profile`` event, and
    tracer + profiler are torn down.  ``path=None`` is a no-op wrapper
    so call sites don't need to branch on whether ``--trace`` was
    given.
    """
    if path is None:
        yield None
        return
    tracer = trace.configure(path, sample=sample)
    cycles = profiler.enable()
    try:
        with trace.span(root, **attrs) as root_span:
            yield root_span
    finally:
        if cycles.bins:
            tracer.event({"event": "profile", "bins": cycles.bins})
        profiler.disable()
        trace.shutdown()
