"""Context-manager span tracing with an NDJSON sink.

A *span* is one named, timed unit of work: it records a trace id (the
request/run it belongs to), its own span id, its parent span id, a
wall-clock start, a duration, and free-form attributes.  Spans nest
through a :mod:`contextvars` context, so each server thread (and each
request context) carries its own span stack.

The tracer is **process-global and off by default**: until
:func:`configure` is called, :func:`span` hands out a shared no-op
context manager — one attribute load and a ``None`` check, no
allocation — so instrumented hot paths cost nothing when tracing is
disabled.  :func:`configure` installs a :class:`Tracer` writing one
JSON object per finished span to an NDJSON file (or any sink with a
``write(dict)`` method), optionally sampling non-root spans.

Cross-process propagation: the executor's pool initializer calls
:func:`seed_worker` in every worker, replacing any forked tracer state
with a :class:`CollectingSink` buffer.  Worker spans are shipped back
with shard results and re-parented under the requesting span via
:func:`adopt_spans`, so a pooled sweep's trace reads as one tree.

``tools/trace_summary.py`` renders a trace file into per-phase
wall-time and cycle-attribution tables.
"""

from __future__ import annotations

import contextvars
import json
import os
import random
import threading
import time
import uuid

#: the innermost active span of the current context (None = no span).
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro-obs-span", default=None
)

_TRACER: "Tracer | None" = None
_IN_WORKER = False


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class Span:
    """One in-flight span; finished spans become NDJSON records."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "ts", "_t0", "attrs", "status", "_token",
    )

    def __init__(self, name: str, trace_id: str, parent_id: str | None, attrs: dict):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.ts = time.time()
        self._t0 = time.perf_counter()
        self.attrs = attrs
        self.status = "ok"
        self._token = None

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def record(self, duration_s: float) -> dict:
        return {
            "event": "span",
            "name": self.name,
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "ts": round(self.ts, 6),
            "dur_s": round(duration_s, 6),
            "status": self.status,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The disabled-path span: every operation is a no-op.

    A single shared instance backs every ``span()`` call while tracing
    is off (and sampled-out spans while it is on), so the disabled hot
    path allocates nothing.
    """

    __slots__ = ()
    trace_id = None
    span_id = None

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        span = self._span
        span._token = _CURRENT.set(span)
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        duration = time.perf_counter() - span._t0
        if exc_type is not None:
            span.status = "error"
            span.attrs.setdefault("error", exc_type.__name__)
        try:
            _CURRENT.reset(span._token)
        except ValueError:
            # The span closed in a different context than it opened in
            # (e.g. a generator finalized by the GC); drop the stack
            # rather than corrupt another context's.
            _CURRENT.set(None)
        self._tracer._write(span.record(duration))
        return False


class NdjsonSink:
    """Append finished spans to a file, one JSON object per line."""

    def __init__(self, path) -> None:
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        self._handle = None

    def write(self, record: dict) -> None:
        with self._lock:
            if self._handle is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "w", encoding="utf-8")
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class CollectingSink:
    """Buffer finished spans in memory (workers, tests)."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        with self._lock:
            self.records.append(record)

    def drain(self) -> list[dict]:
        with self._lock:
            records, self.records = self.records, []
            return records

    def close(self) -> None:
        pass


class Tracer:
    """Span factory bound to one sink.

    ``sample`` (0..1] keeps that fraction of *non-root* spans — a root
    span (no live parent) is always recorded so every trace has a
    timeline to attribute against.  Sampling is per-span, not
    per-subtree: a sampled-out span's children re-parent to its nearest
    recorded ancestor, keeping the tree connected.
    """

    def __init__(self, sink, sample: float = 1.0) -> None:
        if not (0 < sample <= 1):
            raise ValueError(f"sample must be in (0, 1], got {sample}")
        self.sink = sink
        self.sample = sample
        self.spans_written = 0

    def span(self, name: str, /, **attrs):
        parent: Span | None = _CURRENT.get()
        if (
            parent is not None
            and self.sample < 1.0
            and random.random() >= self.sample
        ):
            return NULL_SPAN
        if parent is not None and parent.span_id is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = _new_id(), None
        return _SpanContext(self, Span(name, trace_id, parent_id, attrs))

    def event(self, record: dict) -> None:
        """Write a non-span NDJSON record (e.g. a profiler dump),
        stamped with the current trace id when one is active."""
        current: Span | None = _CURRENT.get()
        if current is not None and "trace" not in record:
            record = {**record, "trace": current.trace_id}
        self._write(record)

    def _write(self, record: dict) -> None:
        self.sink.write(record)
        self.spans_written += 1

    def close(self) -> None:
        self.sink.close()


# -- global configuration ---------------------------------------------------


def configure(path_or_sink, sample: float = 1.0) -> Tracer:
    """Install the process-global tracer (NDJSON file path or sink)."""
    global _TRACER
    sink = (
        path_or_sink
        if hasattr(path_or_sink, "write") and not isinstance(path_or_sink, (str, os.PathLike))
        else NdjsonSink(path_or_sink)
    )
    _TRACER = Tracer(sink, sample=sample)
    return _TRACER


def shutdown() -> None:
    """Close and uninstall the global tracer (idempotent)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None


def get_tracer() -> Tracer | None:
    return _TRACER


def active() -> bool:
    """True when a global tracer is installed."""
    return _TRACER is not None


def span(name: str, /, **attrs):
    """A span through the global tracer, or the shared no-op when
    tracing is off.  The disabled path does no allocation."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def event(record: dict) -> None:
    """Emit a raw NDJSON record through the global tracer (no-op when
    tracing is off)."""
    tracer = _TRACER
    if tracer is not None:
        tracer.event(record)


def current_trace_id() -> str | None:
    """The trace id of the innermost active span, if any."""
    current = _CURRENT.get()
    return None if current is None else current.trace_id


# -- cross-process propagation ---------------------------------------------


def seed_worker(enabled: bool, sample: float = 1.0) -> None:
    """Pool-worker initializer: replace any forked tracer state.

    With ``enabled`` the worker traces into a :class:`CollectingSink`
    whose spans ship back with shard results; without, tracing is off.
    Either way the parent's sink (an open file descriptor under fork)
    is never written from the worker.
    """
    global _TRACER, _IN_WORKER
    _IN_WORKER = True
    _CURRENT.set(None)
    _TRACER = Tracer(CollectingSink(), sample=sample) if enabled else None


def in_worker() -> bool:
    return _IN_WORKER


def drain_worker_spans() -> list[dict]:
    """Finished spans buffered in this worker (empty in-process)."""
    if not _IN_WORKER or _TRACER is None:
        return []
    sink = _TRACER.sink
    return sink.drain() if isinstance(sink, CollectingSink) else []


def adopt_spans(spans: list[dict], parent=None) -> None:
    """Re-parent shipped worker spans under the current span and write
    them to the global sink.

    Every span is rewritten onto the adopting trace id; spans whose
    parent is not among the shipped batch (worker roots) attach to
    ``parent`` (default: the caller's current span).  No-op when
    tracing is off.
    """
    tracer = _TRACER
    if tracer is None or not spans:
        return
    if parent is None:
        parent = _CURRENT.get()
    trace_id = getattr(parent, "trace_id", None)
    parent_id = getattr(parent, "span_id", None)
    local_ids = {record.get("span") for record in spans}
    for record in spans:
        adopted = dict(record)
        if trace_id is not None:
            adopted["trace"] = trace_id
        if adopted.get("parent") not in local_ids:
            adopted["parent"] = parent_id
        tracer._write(adopted)
