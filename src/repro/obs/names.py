"""Canonical telemetry names: stat-counter keys and metric names.

Every layer of the system tallies counters into plain dicts — the
executor's ``last_stats``/``stats``, the corpus runner's tallies folded
in via :meth:`SweepExecutor.add_stats`, the :class:`JobManager` layer
stats — and those spellings leak into committed artifacts: the report
manifest records engine cache totals, the corpus manifest is
byte-compared by ``corpus check``, and ``/stats`` is a wire schema.
This module pins the canonical spellings **once** so they can never
drift (``corpus_groups`` is a corpus tally, ``groups`` is an engine
tally — they are different counters, not two spellings of one).

``tests/test_obs.py`` asserts that every producer emits exactly these
keys, and :func:`stat_metric` maps each stat key to its Prometheus
metric name so the ``/metrics`` exposition and the dict counters can
never disagree about what a number means.
"""

from __future__ import annotations

#: Per-run executor stats (``SweepExecutor.last_stats`` after a run).
ENGINE_RUN_STATS = (
    "groups",
    "tasks",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
)

#: Accumulated executor totals (``SweepExecutor.stats``) — the run
#: stats plus pool lifecycle counters.
ENGINE_TOTAL_STATS = ENGINE_RUN_STATS + ("pool_spawns",)

#: Corpus-runner tallies folded into executor stats via ``add_stats``.
#: Deliberately ``corpus_``-prefixed: they count corpus entries, not
#: engine matrix groups, and share the executor's stat surface.
CORPUS_STATS = (
    "corpus_groups",
    "corpus_computed",
    "corpus_skipped",
    "corpus_failed",
)

#: ``JobManager.stats`` — the serve layer's request counters.
SERVE_STATS = (
    "requests",
    "computed",
    "response_hits",
    "store_hits",
    "coalesced",
    "response_evictions",
    "errors",
)

#: ``AnalysisCache.counters()`` delta keys shipped back per shard task.
CACHE_DELTA_KEYS = ("hits", "misses", "evictions")

#: Prometheus metric name for every canonical stat key.  Counters not
#: listed here (``add_stats`` accepts arbitrary driver tallies) fall
#: back to ``repro_engine_<key>_total`` via :func:`stat_metric`.
STAT_METRICS = {
    "groups": "repro_engine_groups_total",
    "tasks": "repro_engine_tasks_total",
    "cache_hits": "repro_engine_cache_hits_total",
    "cache_misses": "repro_engine_cache_misses_total",
    "cache_evictions": "repro_engine_cache_evictions_total",
    "pool_spawns": "repro_engine_pool_spawns_total",
    "corpus_groups": "repro_corpus_groups_total",
    "corpus_computed": "repro_corpus_computed_total",
    "corpus_skipped": "repro_corpus_skipped_total",
    "corpus_failed": "repro_corpus_failed_total",
    "requests": "repro_serve_requests_total",
    "computed": "repro_serve_computed_total",
    "response_hits": "repro_serve_response_hits_total",
    "store_hits": "repro_serve_store_hits_total",
    "coalesced": "repro_serve_coalesced_total",
    "response_evictions": "repro_serve_response_evictions_total",
    "errors": "repro_serve_errors_total",
}

#: Serve request latency histogram.
SERVE_REQUEST_SECONDS = "repro_serve_request_seconds"

#: Gauges refreshed when ``/metrics`` is scraped.
SERVE_RESPONSE_CACHE_ENTRIES = "repro_serve_response_cache_entries"
ENGINE_WORKERS = "repro_engine_workers"

#: Span counter (one increment per span written to the trace sink).
TRACE_SPANS_TOTAL = "repro_trace_spans_total"


def stat_metric(key: str) -> str:
    """The Prometheus counter name for one stat-dict key."""
    return STAT_METRICS.get(key, f"repro_engine_{key}_total")
