"""Stdlib logging wiring for the ``repro`` package.

Every ``src/repro`` module takes its logger the usual way::

    logger = logging.getLogger(__name__)

and stays silent until :func:`logging_setup` attaches a handler to the
``"repro"`` root.  Verbosity maps 0 → WARNING (operational anomalies
only: pool respawns, journal-corruption recomputes, leader failures),
1 → INFO, 2+ → DEBUG.
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"

_LEVELS = {0: logging.WARNING, 1: logging.INFO}


def logging_setup(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger tree and return its root.

    Idempotent: reconfigures the existing handler's level/stream rather
    than stacking handlers on repeated calls (serve restarts, tests).
    """
    level = _LEVELS.get(verbosity, logging.DEBUG)
    root = logging.getLogger("repro")
    root.setLevel(level)
    root.propagate = False
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler):
            handler.setLevel(level)
            if stream is not None:
                handler.setStream(stream)
            return root
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(handler)
    return root
