"""Model configuration dataclasses (paper Table I).

Every simulated subsystem takes its parameters from one of these
dataclasses.  The defaults reproduce Table I of the paper:

===========================  ==================================================
Model                        Parameter
===========================  ==================================================
AXI-Pack adapter             queue depth = 256 (index), 2 (up/downsizer),
                             128 (hitmap), 2048/W (offsets);
                             on-chip storage = 27 KB (W = 256)
Vector processor system      16 lanes, 1 GHz, 384 KB L2
DRAM and controller          one HBM2 channel, 1 GHz, 32 GB/s (ideal);
                             schedule policy: open adaptive, FR-FCFS
===========================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError
from .units import KIB, MIB, is_power_of_two


@dataclass(frozen=True)
class DramConfig:
    """One HBM2 pseudo-channel and its controller.

    The channel moves ``bus_bytes_per_cycle`` bytes per controller cycle
    at peak (32 B/cycle at 1 GHz = 32 GB/s) and serves requests at a
    granularity of ``access_bytes`` (512 b = 64 B).
    """

    access_bytes: int = 64
    bus_bytes_per_cycle: int = 32
    freq_hz: float = 1.0e9
    num_banks: int = 16
    row_bytes: int = 1024
    #: activate-to-read delay (tRCD) in controller cycles.
    t_rcd: int = 14
    #: precharge delay (tRP) in controller cycles.
    t_rp: int = 14
    #: read CAS latency (tCL) in controller cycles.
    t_cl: int = 14
    #: data burst occupancy of one access on the bus, in cycles.
    t_burst: int = 2
    #: minimum activate-to-activate spacing for one bank (tRC).
    t_rc: int = 45
    #: controller request queue capacity.
    queue_depth: int = 32
    #: idle cycles after which the open-adaptive policy closes a row.
    close_idle_cycles: int = 64
    #: refresh interval (tREFI) in controller cycles; 0 disables refresh.
    t_refi: int = 3900
    #: refresh duration (tRFC) in controller cycles; closes all rows.
    t_rfc: int = 350

    def __post_init__(self) -> None:
        if self.access_bytes % self.bus_bytes_per_cycle:
            raise ConfigError("access granularity must be a multiple of the bus width")
        if not is_power_of_two(self.num_banks):
            raise ConfigError("bank count must be a power of two")
        if self.row_bytes % self.access_bytes:
            raise ConfigError("row size must be a multiple of the access granularity")
        if self.t_burst != self.access_bytes // self.bus_bytes_per_cycle:
            raise ConfigError("t_burst must equal access_bytes / bus_bytes_per_cycle")

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Ideal channel bandwidth in GB/s."""
        return self.bus_bytes_per_cycle * self.freq_hz / 1e9

    @property
    def blocks_per_row(self) -> int:
        return self.row_bytes // self.access_bytes


@dataclass(frozen=True)
class CoalescerConfig:
    """Request coalescer parameters (paper Sec. II-B).

    ``window`` is W, the number of narrow requests the regulator presents
    to the request watcher at once.  ``parallel`` selects the parallel
    watcher (all window entries matched against the CSHR per cycle); the
    sequential variant inspects one entry per cycle and accepts input on
    a single port, reproducing the paper's SEQx configuration.
    """

    window: int = 256
    parallel: bool = True
    #: upsizer / downsizer per-queue depth (Table I: 2).
    sizer_queue_depth: int = 2
    #: hitmap metadata queue depth (Table I: 128).
    hitmap_queue_depth: int = 128
    #: total offset-FIFO entries, split as 2048/W per queue (Table I).
    offsets_total_entries: int = 2048
    #: cycles the regulator waits before forwarding an incomplete
    #: window; 0 selects the default of 2*W (long enough that a window
    #: always fills mid-stream even when index fetching is
    #: bandwidth-limited, so partial windows only occur at stream tails).
    regulator_timeout: int = 0
    #: cycles the watchdog waits before force-issuing the open CSHR;
    #: 0 selects the default of 2*W.
    watchdog_timeout: int = 0

    def __post_init__(self) -> None:
        if not is_power_of_two(self.window):
            raise ConfigError("coalescer window W must be a power of two")
        if self.offsets_total_entries % self.window:
            raise ConfigError("offsets_total_entries must be divisible by W")
        if self.regulator_timeout == 0:
            object.__setattr__(self, "regulator_timeout", 2 * self.window)
        if self.watchdog_timeout == 0:
            object.__setattr__(self, "watchdog_timeout", 2 * self.window)

    @property
    def offsets_queue_depth(self) -> int:
        """Depth of each of the W shallow offset FIFOs (2048/W)."""
        return max(1, self.offsets_total_entries // self.window)


@dataclass(frozen=True)
class AdapterConfig:
    """AXI-Pack adapter (indirect stream unit) parameters.

    ``lanes`` is N, the number of parallel index lanes / narrow element
    request ports.  The upstream AXI-Pack bus is ``bus_bytes`` wide
    (512 b), so with 64 b elements the packer emits up to
    ``bus_bytes / element_bytes`` elements per beat.
    """

    lanes: int = 8
    bus_bytes: int = 64
    index_bytes: int = 4
    element_bytes: int = 8
    #: per-lane index queue depth (Table I: 256).
    index_queue_depth: int = 256
    #: maximum outstanding wide index-fetch requests.
    index_fetch_inflight: int = 8
    coalescer: CoalescerConfig | None = field(default_factory=CoalescerConfig)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.lanes):
            raise ConfigError("lane count N must be a power of two")
        if self.coalescer is not None and self.coalescer.window < self.lanes:
            raise ConfigError("coalescer window W must be >= lane count N")
        if self.bus_bytes % self.element_bytes:
            raise ConfigError("bus width must be a multiple of the element size")
        if self.index_bytes not in (2, 4, 8):
            raise ConfigError("index size must be 2, 4 or 8 bytes")

    @property
    def indices_per_block(self) -> int:
        """Indices contained in one wide DRAM block."""
        return self.bus_bytes // self.index_bytes

    @property
    def elements_per_beat(self) -> int:
        """Packed elements per upstream AXI-Pack beat."""
        return self.bus_bytes // self.element_bytes

    @property
    def has_coalescer(self) -> bool:
        return self.coalescer is not None


@dataclass(frozen=True)
class VpcConfig:
    """CVA6 + Ara vector processor system parameters (paper Sec. II-C)."""

    lanes: int = 16
    freq_hz: float = 1.0e9
    l2_spm_bytes: int = 384 * KIB
    #: number of equally sized arrays allocated in the L2 SPM
    #: (slice pointers, results, 2x nonzeros, 2x indexed vector).
    l2_num_arrays: int = 6
    #: outstanding prefetch requests supported by the L2 prefetcher.
    prefetch_inflight: int = 2
    #: issued vector-instruction startup overhead in cycles.
    vector_issue_overhead: int = 6
    #: per-slice bookkeeping overhead (pointer handling, vsetvl).
    slice_overhead_cycles: int = 10
    #: per-tile synchronisation: the VPC interrupts execution when the
    #: slice-pointer array depletes or the result array fills, then
    #: signals the prefetcher to refresh the L2 SPM (Sec. II-C).
    tile_sync_cycles: int = 600

    @property
    def l2_array_bytes(self) -> int:
        """Capacity of each of the six SPM arrays."""
        return self.l2_spm_bytes // self.l2_num_arrays


@dataclass(frozen=True)
class BaselineConfig:
    """Baseline system: 1 MiB LLC, naive coupled CSR SpMV (Sec. III)."""

    llc_bytes: int = 1 * MIB
    llc_ways: int = 8
    line_bytes: int = 64
    #: average DRAM miss latency seen by the core, in cycles.
    miss_latency: int = 100
    #: outstanding misses the coupled gather pipeline sustains.
    gather_mlp: int = 6
    #: cycles per gather element when it hits on chip.  The baseline
    #: VPC has no vector data cache: every gather element is an AXI
    #: round trip from the VLSU to the LLC with limited overlap, which
    #: Ara sustains at roughly one element per five cycles.
    gather_hit_cpi: float = 5.0

    def __post_init__(self) -> None:
        if self.llc_bytes % (self.llc_ways * self.line_bytes):
            raise ConfigError("LLC size must divide evenly into ways * lines")

    @property
    def num_sets(self) -> int:
        return self.llc_bytes // (self.llc_ways * self.line_bytes)


@dataclass(frozen=True)
class SystemConfig:
    """Top-level bundle used by the end-to-end SpMV experiments."""

    adapter: AdapterConfig = field(default_factory=AdapterConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    vpc: VpcConfig = field(default_factory=VpcConfig)
    baseline: BaselineConfig = field(default_factory=BaselineConfig)


def mlp_config(window: int, lanes: int = 8) -> AdapterConfig:
    """Adapter with an x-window *parallel* coalescer (paper ``MLPx``)."""
    return AdapterConfig(
        lanes=lanes, coalescer=CoalescerConfig(window=window, parallel=True)
    )


def seq_config(window: int, lanes: int = 8) -> AdapterConfig:
    """Adapter with an x-window *sequential* coalescer (paper ``SEQx``)."""
    return AdapterConfig(
        lanes=lanes, coalescer=CoalescerConfig(window=window, parallel=False)
    )


def nocoalescer_config(lanes: int = 8) -> AdapterConfig:
    """Adapter without a coalescer (paper ``MLPnc``)."""
    return AdapterConfig(lanes=lanes, coalescer=None)


#: Named adapter variants used throughout the paper's evaluation.
PAPER_ADAPTER_VARIANTS: dict[str, AdapterConfig] = {
    "MLPnc": nocoalescer_config(),
    "MLP8": mlp_config(8),
    "MLP16": mlp_config(16),
    "MLP32": mlp_config(32),
    "MLP64": mlp_config(64),
    "MLP128": mlp_config(128),
    "MLP256": mlp_config(256),
    "SEQ256": seq_config(256),
}


def variant_config(name: str) -> AdapterConfig:
    """Look up a paper adapter variant by its label (e.g. ``"MLP64"``).

    Accepts any ``MLPx`` / ``SEQx`` label with a power-of-two window,
    not just the ones used in the paper's figures.
    """
    if name in PAPER_ADAPTER_VARIANTS:
        return PAPER_ADAPTER_VARIANTS[name]
    if name.startswith("MLP") and name[3:].isdigit():
        return mlp_config(int(name[3:]))
    if name.startswith("SEQ") and name[3:].isdigit():
        return seq_config(int(name[3:]))
    raise ConfigError(f"unknown adapter variant {name!r}")


def with_window(config: AdapterConfig, window: int) -> AdapterConfig:
    """Return a copy of ``config`` with a different coalescer window."""
    if config.coalescer is None:
        raise ConfigError("cannot set a window on a coalescer-less adapter")
    return replace(config, coalescer=replace(config.coalescer, window=window))
