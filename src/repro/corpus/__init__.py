"""Resumable corpus sweeps over SuiteSparse-scale matrix sets.

The manifest/cache/ingestion side lives in :mod:`repro.sparse.corpus`;
this package adds the execution side: :class:`CorpusRunner` streams a
corpus through the sweep engine one matrix group at a time, journals
each completed group to the result store, and resumes an interrupted
run by skipping every journaled group — byte-identically to an
uninterrupted run.
"""

from .runner import (
    CORPUS_KINDS,
    CORPUS_MANIFEST_NAME,
    DEFAULT_VARIANTS,
    CorpusRunner,
    InjectedFault,
    check_corpus,
    fault_hook_from_env,
)

__all__ = [
    "CORPUS_KINDS",
    "CORPUS_MANIFEST_NAME",
    "DEFAULT_VARIANTS",
    "CorpusRunner",
    "InjectedFault",
    "check_corpus",
    "fault_hook_from_env",
]
