"""Resumable, journaled corpus sweeps.

:class:`CorpusRunner` executes one sweep configuration (backend kind,
variant set, format, scale, model) over every entry of a corpus, one
matrix group at a time, and makes the run *resumable*:

* **Job keys.**  Each entry's group is keyed by the full sweep
  configuration plus the entry's identity and source-content digest
  (:meth:`CorpusRunner.group_key`) — never by cache paths, so a
  relocated cache directory cannot alias or orphan completed work.

* **Journal.**  A completed group's rows are written atomically to
  ``<store>/corpus/<slug>.json`` (slug = hash of the job key) and the
  group's slug is appended to the corpus manifest
  (``corpus_manifest.json``).  A crash or SIGTERM between groups loses
  nothing; mid-group it loses at most that in-flight group.

* **Resume.**  A re-invocation recomputes each job key and *skips*
  every group whose slug is in the manifest and whose journal matches
  the key, replaying the journaled rows instead.  Because journaled
  rows are normalised to plain JSON types before use (exactly like
  freshly computed rows), a resumed run's tables are byte-identical to
  an uninterrupted run's.

The skipped/computed/failed tallies are folded into the executor's
``last_stats``/``stats`` via :meth:`SweepExecutor.add_stats`, so CLI
and service consumers observe corpus progress through the same counter
surface as every other sweep.

Fault injection for the crash/resume tests: pass ``fault_hook`` (or
set ``REPRO_CORPUS_FAULT_AFTER=N``) and the runner raises
:class:`InjectedFault` after the N-th *computed* group completes —
after its journal and manifest writes, exactly like a kill between
groups.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Callable, Iterator, TextIO

import numpy as np

from ..engine import SweepExecutor, grid_points
from ..errors import CorpusError, ReproError
from ..obs import trace as obs_trace
from ..report.claims import corpus_claim_tolerances, corpus_claim_verdicts
from ..report.rollup import corpus_claim_summary, family_rollup
from ..report.store import ResultStore
from ..sparse.corpus import (
    Corpus,
    MatrixCache,
    corpus_definition,
    corpus_names,
    get_corpus,
    matrix_name,
)
from ..sparse.suite import DEFAULT_MAX_NNZ, SUITE_SEED

logger = logging.getLogger(__name__)

#: backend kinds a corpus can sweep.  ``system`` and ``strided`` are
#: excluded: system sweeps need suite recipe metadata and strided
#: sweeps have no matrix input.
CORPUS_KINDS = ("adapter", "multichannel", "scatter")

#: default adapter-kind variant set: the paper's no-coalescer baseline,
#: the two headline MLP widths, and the sequential-window reference.
DEFAULT_VARIANTS = ("MLPnc", "MLP64", "MLP256", "SEQ256")

#: the corpus tier's manifest filename — distinct from the report
#: manifest so both tiers can share ``results/full/``.
CORPUS_MANIFEST_NAME = "corpus_manifest.json"

#: subdirectory of the store holding per-group journals.
JOURNAL_DIR = "corpus"


class InjectedFault(RuntimeError):
    """Raised by the fault-injection hook to simulate a mid-run kill.

    Deliberately *not* a :class:`~repro.errors.ReproError`: the runner
    must treat it like SIGTERM (no swallowing under ``keep_going``).
    """


def fault_hook_from_env() -> Callable[[int], None] | None:
    """A fault hook from ``REPRO_CORPUS_FAULT_AFTER`` (unset → None).

    ``REPRO_CORPUS_FAULT_AFTER=N`` kills the run (via
    :class:`InjectedFault`) once N groups have been *computed* this
    invocation — the CI resume job uses it to simulate a crash without
    process gymnastics.
    """
    raw = os.environ.get("REPRO_CORPUS_FAULT_AFTER", "")
    if not raw:
        return None
    try:
        limit = int(raw)
    except ValueError:
        raise CorpusError(
            f"REPRO_CORPUS_FAULT_AFTER={raw!r} is not an integer"
        ) from None

    def hook(computed: int) -> None:
        if computed >= limit:
            raise InjectedFault(
                f"injected fault after {computed} computed groups"
            )

    return hook


def _plain(value):
    """Numpy scalars → Python scalars for JSON round-tripping."""
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")


def _normalize_rows(rows: list[dict]) -> list[dict]:
    """Rows as they look after a JSON round-trip.

    Freshly computed rows may carry numpy scalars; journal-replayed
    rows never do.  Normalising both through JSON makes their store
    serialisation byte-identical — the resume contract's foundation.
    """
    return json.loads(json.dumps(rows, default=_plain))


def _write_json_atomic(path: Path, payload: dict) -> None:
    # No sort_keys: journaled rows must keep their column order, which
    # is what the store serialises tables in.
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name)
    try:
        with os.fdopen(handle, "w") as tmp:
            json.dump(payload, tmp, indent=2)
            tmp.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


class CorpusRunner:
    """Stream one sweep configuration over a corpus, resumably.

    ``store_dir=None`` runs ephemerally (no journal, no resume) — the
    sweep service uses that mode.  ``executor`` may be shared (the
    runner then leaves it open); when the runner creates its own it
    closes it at the end of :meth:`run`.

    Example — fixture corpus, ephemeral::

        >>> from repro.sparse.corpus import get_corpus
        >>> runner = CorpusRunner(get_corpus("quick"), max_nnz=12_000)
        >>> result = runner.run()          # doctest: +SKIP
        >>> sorted(result)                 # doctest: +SKIP
        ['counts', 'rollup', 'rows', 'summary']
    """

    def __init__(
        self,
        corpus: Corpus,
        executor: SweepExecutor | None = None,
        store_dir: Path | str | None = None,
        cache: MatrixCache | None = None,
        kind: str = "adapter",
        variants: tuple[str, ...] = DEFAULT_VARIANTS,
        fmt: str = "sell",
        max_nnz: int = DEFAULT_MAX_NNZ,
        model: str = "fast",
        offline: bool = True,
        keep_going: bool = False,
        claims: bool = False,
        fault_hook: Callable[[int], None] | None = None,
        stream: TextIO | None = None,
    ) -> None:
        if kind not in CORPUS_KINDS:
            raise CorpusError(
                f"corpus sweeps support kinds {CORPUS_KINDS}, not {kind!r}"
            )
        if not variants:
            raise CorpusError("corpus sweep needs at least one variant")
        self.corpus = corpus
        self._owns_executor = executor is None
        self.executor = executor or SweepExecutor()
        self.store = (
            ResultStore(store_dir, manifest_name=CORPUS_MANIFEST_NAME)
            if store_dir is not None
            else None
        )
        self.cache = cache or MatrixCache()
        self.kind = kind
        self.variants = tuple(variants)
        self.fmt = fmt
        self.max_nnz = int(max_nnz)
        self.model = model
        self.offline = offline
        self.keep_going = keep_going
        self.claims = claims
        self.fault_hook = fault_hook or fault_hook_from_env()
        self.stream = stream
        self.counts = {
            "corpus_groups": 0,
            "corpus_computed": 0,
            "corpus_skipped": 0,
            "corpus_failed": 0,
        }

    # -- identity and keys -------------------------------------------------

    def identity(self) -> dict:
        """The sweep-configuration fields every resume must match."""
        return {
            "corpus": self.corpus.name,
            "corpus_digest": self.corpus.digest,
            "kind": self.kind,
            "fmt": self.fmt,
            "scale_nnz": self.max_nnz,
            "model": self.model,
            "variants": list(self.variants),
            "seed": SUITE_SEED,
        }

    def _manifest_base(self) -> dict:
        """Identity plus, for ad-hoc corpora, the inline corpus
        definition.

        A tier built from ``--corpus path.json`` embeds its entry list
        in ``corpus_manifest.json`` so ``corpus check`` can rebuild the
        corpus without the original manifest file.  Registered corpora
        whose name still resolves to the same entry set skip the
        embedding — their definition is code, and the committed tiers'
        manifests stay byte-stable.
        """
        base = self.identity()
        needs_definition = True
        if self.corpus.name in corpus_names():
            needs_definition = (
                get_corpus(self.corpus.name).digest != self.corpus.digest
            )
        if needs_definition:
            base["corpus_definition"] = corpus_definition(self.corpus)
        return base

    def group_key(self, entry, source_digest: str) -> list:
        """The resumable job key of one entry's matrix group.

        Built from the sweep identity, the entry identity and the
        entry's source-content digest — never from cache paths, so the
        key survives cache relocation and changes when the source
        bytes (or the generators' seed) change.
        """
        # pure JSON types throughout: the key must compare equal to its
        # journaled (JSON round-tripped) form, so no tuples anywhere.
        return [
            "corpus-group",
            [[field, value] for field, value in self.identity().items()],
            list(entry.identity),
            source_digest,
        ]

    @staticmethod
    def _slug(key: list) -> str:
        payload = json.dumps(key, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def _journal_path(self, slug: str) -> Path:
        assert self.store is not None
        return self.store.root / JOURNAL_DIR / f"{slug}.json"

    # -- resume bookkeeping ------------------------------------------------

    def _manifest_completed(self) -> set[str]:
        """Slugs the store manifest records as completed — empty when
        there is no store, no manifest, or the identity changed."""
        if self.store is None:
            return set()
        try:
            manifest = self.store.read_manifest()
        except (ReproError, json.JSONDecodeError):
            return set()
        identity = self.identity()
        if {key: manifest.get(key) for key in identity} != identity:
            return set()
        completed = manifest.get("completed", [])
        return set(completed) if isinstance(completed, list) else set()

    def _replay(self, slug: str, key: list) -> list[dict] | None:
        """Journaled rows for ``slug`` iff the journal matches ``key``."""
        path = self._journal_path(slug)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning(
                "corpus journal %s unreadable (%s); recomputing the group",
                path.name,
                exc,
            )
            return None
        if payload.get("key") != key or not isinstance(payload.get("rows"), list):
            logger.warning(
                "corpus journal %s does not match its job key; recomputing "
                "the group",
                path.name,
            )
            return None
        return payload["rows"]

    def _record_completed(self, slug: str, key: list, entry, rows: list[dict]) -> None:
        """Journal one computed group and mark it completed (atomic)."""
        if self.store is None:
            return
        _write_json_atomic(
            self._journal_path(slug),
            {"key": key, "entry": entry.name, "rows": rows},
        )
        try:
            manifest = self.store.read_manifest()
        except ReproError:
            manifest = {}
        identity = self.identity()
        if {key_: manifest.get(key_) for key_ in identity} != identity:
            manifest = {}
        completed = [s for s in manifest.get("completed", []) if s != slug]
        manifest = {
            **self._manifest_base(),
            "completed": completed + [slug],
            "complete": False,
        }
        self.store.write_manifest(manifest)

    # -- execution ---------------------------------------------------------

    def _note(self, message: str) -> None:
        if self.stream is not None:
            print(message, file=self.stream)

    def _resolve(self, entry) -> tuple[str, str, int]:
        """(engine matrix name, source digest, max_nnz slot) for one
        entry — ingesting non-synthetic entries into the cache."""
        if entry.source == "synthetic":
            return entry.name, f"suite-seed-{SUITE_SEED}", self.max_nnz
        path, digest = self.cache.ensure(entry, offline=self.offline)
        return matrix_name(path), digest, 0

    def _present(self, entry, raw_rows: list[dict]) -> list[dict]:
        """Engine rows → corpus rows: entry-named, family-tagged, plain.

        Cache paths never reach a table (they are machine-local); the
        ``matrix`` column carries the corpus entry name and ``family``/
        ``source`` tag the roll-up axes.
        """
        rows = []
        for raw in raw_rows:
            row = {
                "matrix": entry.name,
                "family": entry.family,
                "source": entry.source,
            }
            row.update(
                (k, v) for k, v in raw.items() if k not in ("matrix", "max_nnz")
            )
            rows.append(row)
        return _normalize_rows(rows)

    def iter_groups(self) -> Iterator[tuple]:
        """Yield ``(entry, status, rows)`` per corpus entry, in corpus
        order; status ∈ ``computed`` / ``skipped`` / ``failed``.

        Counter totals are folded into the executor's stats when the
        iteration ends — including via an injected fault or an error —
        so interrupted runs still report their progress.
        """
        completed = self._manifest_completed()
        counted = False
        try:
            for entry in self.corpus.entries:
                self.counts["corpus_groups"] += 1
                # The span closes before the yield so consumer time
                # (store writes, protocol framing) never pollutes the
                # entry's attributed wall-time.
                with obs_trace.span(
                    "corpus.entry", entry=entry.name
                ) as entry_span:
                    status, rows = self._run_entry(entry, completed)
                    entry_span.set(status=status, rows=len(rows))
                yield entry, status, rows
        finally:
            if not counted:
                counted = True
                self.executor.add_stats(**self.counts)

    def _run_entry(self, entry, completed: set[str]) -> tuple[str, list[dict]]:
        """Resolve, replay-or-compute, and journal one corpus entry;
        returns its ``(status, rows)``.  Non-``keep_going`` failures
        propagate."""
        try:
            engine_name, digest, nnz_slot = self._resolve(entry)
        except ReproError as exc:
            self.counts["corpus_failed"] += 1
            self._note(f"  {entry.name}: FAILED ({exc})")
            if not self.keep_going:
                raise
            return "failed", []
        key = self.group_key(entry, digest)
        slug = self._slug(key)
        rows = self._replay(slug, key) if slug in completed else None
        if rows is not None:
            self.counts["corpus_skipped"] += 1
            self._note(f"  {entry.name}: skipped (journaled)")
            return "skipped", rows
        try:
            points = grid_points(
                self.kind, (engine_name,), self.variants,
                (self.fmt,), nnz_slot, self.model,
            )
            rows = self._present(entry, self.executor.run(points))
        except ReproError as exc:
            self.counts["corpus_failed"] += 1
            self._note(f"  {entry.name}: FAILED ({exc})")
            if not self.keep_going:
                raise
            return "failed", []
        self._record_completed(slug, key, entry, rows)
        self.counts["corpus_computed"] += 1
        self._note(f"  {entry.name}: computed ({len(rows)} rows)")
        if self.fault_hook is not None:
            self.fault_hook(self.counts["corpus_computed"])
        return "computed", rows

    def run(self) -> dict:
        """Execute (or resume) the whole corpus; persist tier tables.

        Returns ``{"rows", "rollup", "summary", "counts"}`` (plus
        ``"claims"`` when claim scoring is enabled).  With a store, the
        tier files are ``corpus_<kind>.csv``, ``corpus_rollup.csv``,
        optionally ``corpus_claims.csv``, and ``corpus_manifest.json``
        — all byte-stable across serial/pooled/sharded/resumed runs of
        the same configuration.
        """
        with obs_trace.span(
            "corpus.run",
            corpus=self.corpus.name,
            entries=len(self.corpus.entries),
        ):
            return self._run()

    def _run(self) -> dict:
        self._note(
            f"corpus {self.corpus.name!r}: {len(self.corpus.entries)} entries, "
            f"kind={self.kind}, variants={','.join(self.variants)}"
        )
        all_rows: list[dict] = []
        entry_records: list[dict] = []
        completed_slugs: list[str] = []
        try:
            for entry, status, rows in self.iter_groups():
                all_rows.extend(rows)
                entry_records.append(
                    {
                        "name": entry.name,
                        "family": entry.family,
                        "source": entry.source,
                        "rows": len(rows),
                    }
                )
                if status != "failed":
                    digest = (
                        f"suite-seed-{SUITE_SEED}"
                        if entry.source == "synthetic"
                        else self.cache.source_digest(entry)
                    )
                    completed_slugs.append(
                        self._slug(self.group_key(entry, digest))
                    )
        finally:
            if self._owns_executor:
                self.executor.close()
        if not all_rows:
            raise CorpusError(
                f"corpus {self.corpus.name!r} produced no rows "
                f"({self.counts['corpus_failed']} entries failed)"
            )
        with obs_trace.span("corpus.finalize", rows=len(all_rows)):
            rollup = family_rollup(all_rows)
            result: dict = {
                "rows": all_rows,
                "rollup": rollup,
                "summary": corpus_claim_summary(all_rows),
                "counts": dict(self.counts),
            }
            if self.claims:
                result["claims"] = corpus_claim_verdicts(result["summary"])
            if self.store is not None:
                tables = [f"corpus_{self.kind}", "corpus_rollup"]
                self.store.write_table(f"corpus_{self.kind}", all_rows)
                self.store.write_table("corpus_rollup", rollup)
                if self.claims:
                    self.store.write_table("corpus_claims", result["claims"])
                    tables.append("corpus_claims")
                manifest = {
                    **self._manifest_base(),
                    "completed": completed_slugs,
                    "complete": True,
                    "entries": entry_records,
                    "tables": sorted(tables),
                    "summary": result["summary"],
                }
                if self.claims:
                    manifest["tolerances"] = corpus_claim_tolerances()
                self.store.write_manifest(manifest)
        self._note(
            "  done: {corpus_computed} computed, {corpus_skipped} skipped, "
            "{corpus_failed} failed".format(**self.counts)
        )
        return result


def check_corpus(
    store_dir: Path | str,
    cache: MatrixCache | None = None,
    executor: SweepExecutor | None = None,
    stream: TextIO | None = None,
) -> list[str]:
    """Re-run a committed corpus tier and report drifting files.

    Reads the configuration from the committed ``corpus_manifest.json``,
    re-executes the corpus offline into a scratch store, and
    byte-compares every tier file.  Returns the names of files that
    differ (empty list = no drift).

    Ad-hoc tiers (built from ``--corpus path.json``) carry their corpus
    definition inline in the manifest, so they are checkable without
    re-supplying the original manifest path; registered corpora resolve
    by name as before.
    """
    from ..sparse.corpus import corpus_from_definition

    committed = ResultStore(store_dir, manifest_name=CORPUS_MANIFEST_NAME)
    manifest = committed.read_manifest()
    if not manifest.get("complete"):
        raise CorpusError(
            f"corpus tier in {store_dir} is incomplete; finish the run "
            "before checking it"
        )
    definition = manifest.get("corpus_definition")
    corpus = (
        corpus_from_definition(definition, label="inline corpus definition")
        if definition is not None
        else get_corpus(manifest["corpus"])
    )
    with tempfile.TemporaryDirectory() as scratch:
        runner = CorpusRunner(
            corpus,
            executor=executor,
            store_dir=scratch,
            cache=cache,
            kind=manifest["kind"],
            variants=tuple(manifest["variants"]),
            fmt=manifest["fmt"],
            max_nnz=manifest["scale_nnz"],
            model=manifest["model"],
            claims="tolerances" in manifest,
            stream=stream,
        )
        runner.run()
        fresh = runner.store
        assert fresh is not None
        drift = []
        names = sorted(
            set(manifest.get("tables", []))
            | set(committed.list_tables())
            | set(fresh.list_tables())
        )
        names = [name for name in names if name.startswith("corpus_")]
        for name in names:
            ours = committed.table_path(name)
            theirs = fresh.table_path(name)
            if not ours.is_file() or not theirs.is_file():
                drift.append(f"{name}: missing on one side")
            elif ours.read_bytes() != theirs.read_bytes():
                drift.append(f"{name}: table differs from a fresh run")
        if (
            committed.manifest_path.read_bytes()
            != fresh.manifest_path.read_bytes()
        ):
            drift.append(f"{CORPUS_MANIFEST_NAME}: manifest differs")
    return drift
