"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without intercepting unrelated
exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation reached an illegal state (protocol violation,
    queue overflow, deadlock, ...)."""


class DeadlockError(SimulationError):
    """The simulator detected that no component made progress for longer
    than the configured deadlock horizon."""


class BudgetExceededError(SimulationError):
    """``run_until`` hit its ``max_cycles`` budget before ``done()``
    held.  Deliberately *not* a :class:`DeadlockError`: the simulation
    may still have been making progress — the budget was simply too
    small — and conflating the two masks real hangs in test triage.
    """

    def __init__(self, cycles_elapsed: int, busy_components: list[str]):
        self.cycles_elapsed = int(cycles_elapsed)
        self.busy_components = list(busy_components)
        super().__init__(
            f"run_until exceeded its {self.cycles_elapsed}-cycle budget; "
            f"busy components: {self.busy_components}"
        )


class ProtocolError(SimulationError):
    """A component violated a handshake or ordering protocol."""


class MemoryModelError(ReproError):
    """An illegal access or configuration in the memory subsystem."""


class SparseFormatError(ReproError):
    """A sparse matrix is malformed or an operation is unsupported for
    its format."""


class CorpusError(ReproError):
    """A corpus entry could not be resolved: missing or corrupt cache
    artifact, a fetch attempted in offline mode, an unknown corpus or
    malformed corpus manifest (:mod:`repro.sparse.corpus`)."""


class ExperimentError(ReproError):
    """An experiment harness was asked to run an unknown or inconsistent
    configuration."""


class ServeError(ReproError):
    """A malformed or unsupported request reached the sweep service
    (:mod:`repro.serve`) — unknown command, bad field type, unknown
    knob.  Server loops turn it into an error response instead of a
    crash."""
