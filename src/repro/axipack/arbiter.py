"""Round-robin request arbiter onto the single downstream AXI4 port."""

from __future__ import annotations

from ..sim.component import Component
from ..sim.fifo import Fifo


class Arbiter(Component):
    """Grants one request per cycle among several input FIFOs.

    Models the adapter's downstream AXI4 address channel: the index
    fetcher and the element path share one request port, so at most one
    wide transaction can be issued per cycle.
    """

    def __init__(self, inputs: list[Fifo], output: Fifo, name: str = "arbiter") -> None:
        super().__init__(name)
        self.inputs = inputs
        self.output = output
        self._next = 0
        self.grants = [0] * len(inputs)

    def tick(self) -> None:
        if not self.output.can_push():
            return
        for i in range(len(self.inputs)):
            port = (self._next + i) % len(self.inputs)
            if self.inputs[port].can_pop():
                self.output.push(self.inputs[port].pop())
                self.grants[port] += 1
                self._next = (port + 1) % len(self.inputs)
                return

    def next_event(self) -> int | None:
        if self.output.can_push() and any(f.can_pop() for f in self.inputs):
            return self.cycle
        return None

    def watches(self) -> list[Fifo]:
        return [*self.inputs, self.output]

    @property
    def busy(self) -> bool:
        return any(f.can_pop() for f in self.inputs)
