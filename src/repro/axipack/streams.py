"""Helpers mapping sparse matrices to adapter index streams."""

from __future__ import annotations

import numpy as np

from ..errors import ExperimentError
from ..sparse.csr import CsrMatrix
from ..sparse.sell import SellMatrix

#: formats evaluated in the paper (Fig. 3 runs both).
FORMATS: tuple[str, ...] = ("sell", "csr")


def matrix_index_stream(matrix: CsrMatrix, fmt: str = "sell") -> np.ndarray:
    """The column-index stream SpMV consumes for ``matrix`` in ``fmt``.

    For CSR this is the row-major ``col_idx`` array; for SELL (32 rows
    per slice) it is the column-of-slice-major padded index array —
    exactly the order the AXI-Pack adapter fetches and indirects.
    """
    if fmt == "csr":
        return matrix.index_stream()
    if fmt == "sell":
        return _sell_stream(matrix)
    raise ExperimentError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def _sell_stream(matrix: CsrMatrix) -> np.ndarray:
    return matrix.to_sell(32).index_stream()
