"""Indirect *write* bursts: near-memory scatter with write coalescing.

The read path of the paper serves ``vec[col_idx[j]]`` gathers; its
natural dual — which AXI-Pack also defines and which workloads like
sparse transposition (MeNDA, paper ref. [21]) and SpMV-T need — is the
scatter ``target[col_idx[j]] = value[j]``.

The scatter unit reuses the index fetcher and index splitter unchanged
and replaces the element read path with a **write coalescer**: windows
of W narrow writes are merged per wide block in the CSHR (last write
wins within a warp, in stream order) and issued as a single wide AXI
write with byte strobes.  Write-after-write ordering across warps is
guaranteed by the DRAM controller's same-address hazard ordering.

Duplicate-index semantics therefore match a sequential scatter exactly:
duplicates within one window merge into one warp in stream order, and
warps to the same block always commit in window (stream) order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdapterConfig, DramConfig
from ..errors import SimulationError
from ..mem.backing_store import BackingStore
from ..mem.dram import DramChannel
from ..mem.reorder import ReorderBuffer
from ..mem.request import MemRequest, MemResponse
from ..sim.clock import Simulator, default_engine
from ..sim.component import FAR_FUTURE, Component
from ..sim.fifo import Fifo
from ..sim.stats import StatSet
from ..units import ceil_div
from .arbiter import Arbiter
from .burst import IndirectBurst, NarrowRequest
from .cshr import Window
from .element_request_gen import ElementRequestGen
from ..mem.timeline import service_timeline
from .fastmodel import (
    PIPELINE_FILL_CYCLES,
    StreamAnalysis,
    _analysis_matches,
    coalesce_window_exact,
)
from .index_fetcher import INDEX_AXI_ID, IndexFetcher
from .index_splitter import IndexSplitter
from .metrics import AdapterMetrics

#: AXI ID used for coalesced scatter writes.
WRITE_AXI_ID = 2


@dataclass(frozen=True)
class _NarrowWrite:
    request: NarrowRequest
    value: float


class WriteCoalescer(Component):
    """Window-based write merging with strobed wide writes.

    Structurally the upsizer/regulator/watcher of the read coalescer;
    the return path shrinks to an ack counter (write responses carry no
    data) and the metadata queues disappear — the offsets and values
    travel inside the wide write itself.
    """

    def __init__(
        self,
        config: AdapterConfig,
        dram_config: DramConfig,
        values: np.ndarray,
        write_req: Fifo[MemRequest],
        write_rsp: Fifo[MemResponse],
        name: str = "wcoal",
    ) -> None:
        super().__init__(name)
        if config.coalescer is None:
            raise SimulationError("WriteCoalescer requires a coalescer config")
        self.config = config
        self.cc = config.coalescer
        self.dram_config = dram_config
        self.values = np.asarray(values, dtype=np.float64)
        self.write_req = write_req
        self.write_rsp = write_rsp
        self.stats = StatSet(name)

        self.request_queues: list[Fifo[NarrowRequest]] = [
            self.make_fifo(self.cc.sizer_queue_depth, f"req{q}")
            for q in range(self.cc.window)
        ]
        self._queued = 0
        self._window: Window | None = None
        self._regulator_wait = 0
        self._watchdog_wait = 0
        #: open warp: block tag -> byte offset -> value (stream order).
        self._tag: int | None = None
        self._warp: dict[int, float] = {}
        self.acks_expected = 0
        self.acks_received = 0

    # -- RequestSink protocol ----------------------------------------------

    def can_accept(self, seq: int) -> bool:
        return self.request_queues[seq % self.cc.window].can_push()

    def accept(self, request: NarrowRequest) -> None:
        self.request_queues[request.seq % self.cc.window].push(request)
        self._queued += 1

    def accept_watches(self) -> list[Fifo]:
        """FIFOs whose pops can turn ``can_accept`` true (see
        :class:`~repro.axipack.element_request_gen.RequestSink`)."""
        return list(self.request_queues)

    # -- main loop -----------------------------------------------------------

    def tick(self) -> None:
        self._absorb_acks()
        self._tick_watcher()
        self._tick_regulator()

    def _absorb_acks(self) -> None:
        while self.write_rsp.can_pop():
            self.write_rsp.pop()
            self.acks_received += 1

    def _tick_regulator(self) -> None:
        if self._window is not None and not self._window.exhausted:
            return
        if self._queued == 0:
            self._regulator_wait = 0
            return
        queues_ready = [q for q in self.request_queues if q.can_pop()]
        complete = len(queues_ready) == self.cc.window
        if not complete and self._regulator_wait < self.cc.regulator_timeout:
            self._regulator_wait += 1
            return
        requests = [q.pop() for q in queues_ready]
        self._queued -= len(requests)
        self._window = Window(requests, self.dram_config.access_bytes, self.cc.window)
        self._regulator_wait = 0
        self.stats.add("windows")

    def _absorb_hits(self) -> int:
        window = self._window
        if window is None or self._tag is None:
            return 0
        hits = window.take_group(self._tag)
        for hit in hits:
            offset = hit.addr - self._tag
            # Last write wins in stream (absorb) order.
            self._warp[offset] = float(self.values[hit.seq])
        if hits:
            self.stats.add("coalesced_writes", len(hits))
        return len(hits)

    def _can_issue(self) -> bool:
        return bool(self._warp) and self.write_req.can_push()

    def _issue(self) -> None:
        assert self._tag is not None
        block = self.dram_config.access_bytes
        data = np.zeros(block, dtype=np.uint8)
        mask = np.zeros(block, dtype=bool)
        width = self.config.element_bytes
        for offset, value in self._warp.items():
            data[offset : offset + width] = np.frombuffer(
                np.float64(value).tobytes(), dtype=np.uint8
            )
            mask[offset : offset + width] = True
        self.write_req.push(
            MemRequest(
                addr=self._tag,
                nbytes=block,
                axi_id=WRITE_AXI_ID,
                is_write=True,
                write_data=data,
                write_mask=mask,
            )
        )
        self.acks_expected += 1
        self.stats.add("wide_writes")
        self._tag = None
        self._warp = {}
        self._watchdog_wait = 0

    def _tick_watcher(self) -> None:
        window = self._window
        absorbed = 0
        if self._tag is not None:
            absorbed = self._absorb_hits()

        pending = window is not None and not window.exhausted
        if pending:
            assert window is not None
            if self._tag is None:
                self._tag = window.oldest_unabsorbed().block_addr(
                    self.dram_config.access_bytes
                )
                self._absorb_hits()
                self._watchdog_wait = 0
            elif self._can_issue():
                next_tag = window.oldest_unabsorbed().block_addr(
                    self.dram_config.access_bytes
                )
                self._issue()
                self._tag = next_tag
            return

        if self._warp:
            if absorbed:
                self._watchdog_wait = 0
            else:
                self._watchdog_wait += 1
                if self._watchdog_wait >= self.cc.watchdog_timeout and self._can_issue():
                    self._issue()
                    self.stats.add("watchdog_issues")

    # -- batched-engine protocol ----------------------------------------------

    def next_event(self) -> int | None:
        cycle = self.cycle
        if self.write_rsp.can_pop():
            return cycle  # ack absorption pops every cycle
        window = self._window
        if window is not None and not window.exhausted:
            # Watcher with pending misses: arming and issuing are
            # immediate; blocked mid-window only a write_req pop can
            # unblock us.
            if self._tag is None or self._can_issue():
                return cycle
            if window.groups.get(self._tag):
                return cycle  # absorbable hits for the open warp
            return None
        due = FAR_FUTURE
        if self._warp and self._can_issue():
            wd = self.cc.watchdog_timeout - 1 - self._watchdog_wait
            due = cycle + wd if wd > 0 else cycle
        if self._queued > 0:
            if (
                all(q.can_pop() for q in self.request_queues)
                or self._regulator_wait >= self.cc.regulator_timeout
            ):
                return cycle
            due = min(
                due, cycle + self.cc.regulator_timeout - self._regulator_wait
            )
        return None if due >= FAR_FUTURE else due

    def advance(self, cycles: int) -> None:
        # Mirrors RequestCoalescer.advance: replay the two pure time
        # counters the skipped no-op ticks would have moved.
        window = self._window
        if window is not None and not window.exhausted:
            return
        if self._warp:
            self._watchdog_wait += cycles
        if self._queued == 0:
            self._regulator_wait = 0
        elif self._regulator_wait < self.cc.regulator_timeout:
            self._regulator_wait += cycles

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        # accept() fills request_queues during the generator's tick and
        # the regulator observes those accepts the same cycle, so the
        # queues stay push-sensitive (as in the read coalescer).
        return [*self.fifos, self.write_req, self.write_rsp], list(
            self.request_queues
        )

    def max_bulk(self, limit: int) -> int:
        # Mirrors RequestCoalescer.max_bulk: the watchdog/regulator waits
        # are the only regular bursts, and next_event already reports the
        # nearest expiry; the span strictly before it is counter-only.
        due = self.next_event()
        if due is None:
            return 0
        span = due - self.cycle
        if span <= 1:
            return 0
        return span if span < limit else limit

    def bulk_tick(self, cycles: int) -> None:
        self.advance(cycles)

    @property
    def done(self) -> bool:
        if self._queued or self._warp:
            return False
        if self._window is not None and not self._window.exhausted:
            return False
        return self.acks_received == self.acks_expected

    @property
    def busy(self) -> bool:
        return not self.done or super().busy


class _Wiring(Component):
    def tick(self) -> None:
        pass

    def next_event(self) -> int | None:
        return None  # wiring FIFOs only, no behaviour

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        return [], []


def run_indirect_scatter(
    indices: np.ndarray,
    values: np.ndarray,
    config: AdapterConfig | None = None,
    dram_config: DramConfig | None = None,
    verify: bool = True,
    max_cycles: int = 100_000_000,
    engine: str | None = None,
) -> AdapterMetrics:
    """Scatter ``target[indices[j]] = values[j]`` through the cycle
    model; verifies the final memory image against numpy semantics.
    ``engine`` selects the step-wise or event-batched simulation engine
    (both bit-exact; default :func:`~repro.sim.clock.default_engine`)."""
    config = config or AdapterConfig()
    dram_config = dram_config or DramConfig()
    if not config.has_coalescer:
        raise SimulationError("the scatter path requires a coalescer")
    indices = np.ascontiguousarray(indices, dtype=np.uint32)
    values = np.ascontiguousarray(values, dtype=np.float64)
    if indices.shape != values.shape or indices.size == 0:
        raise SimulationError("indices and values must be equal, non-empty")

    ncols = int(indices.max()) + 1
    store = BackingStore(indices.nbytes + ncols * 8 + (1 << 12))
    idx_base = store.alloc_array(indices)
    target_base = store.alloc(ncols * 8)

    memory = DramChannel(store, dram_config)
    sinks: dict[int, Fifo[MemResponse]] = {}
    reorder = ReorderBuffer(memory.req, memory.rsp, sinks)

    wiring = _Wiring("scatter_unit")
    idx_req: Fifo[MemRequest] = wiring.make_fifo(4, "idx_req")
    write_req: Fifo[MemRequest] = wiring.make_fifo(4, "write_req")
    idx_rsp: Fifo[MemResponse] = wiring.make_fifo(None, "idx_rsp")
    write_rsp: Fifo[MemResponse] = wiring.make_fifo(None, "write_rsp")
    sinks[INDEX_AXI_ID] = idx_rsp
    sinks[WRITE_AXI_ID] = write_rsp

    burst = IndirectBurst(
        index_base=idx_base,
        count=len(indices),
        element_base=target_base,
        element_bytes=config.element_bytes,
    )
    fetcher = IndexFetcher(config, dram_config, idx_req)
    splitter = IndexSplitter(config, fetcher, idx_rsp)
    coalescer = WriteCoalescer(config, dram_config, values, write_req, write_rsp)
    assert config.coalescer is not None
    mode = (
        ElementRequestGen.MODE_PARALLEL
        if config.coalescer.parallel
        else ElementRequestGen.MODE_SEQUENTIAL
    )
    gen = ElementRequestGen(config, splitter, fetcher, burst, coalescer, mode)
    arbiter = Arbiter([idx_req, write_req], reorder.req)
    fetcher.bursts.push(burst)

    sim = Simulator([wiring, fetcher, splitter, gen, coalescer, arbiter,
                     reorder, memory], engine=engine or default_engine())
    cycles = sim.run_until(
        lambda: gen.done and coalescer.done, max_cycles=max_cycles
    )

    if verify:
        expected = np.zeros(ncols, dtype=np.float64)
        expected[indices] = values  # numpy scatter: last write wins
        got = store.read_typed(target_base, ncols, np.float64)
        if not np.array_equal(got, expected):
            bad = int(np.flatnonzero(got != expected)[0])
            raise SimulationError(f"scatter mismatch at target[{bad}]")

    return AdapterMetrics(
        variant="scatter",
        count=len(indices),
        cycles=cycles,
        idx_txns=fetcher.blocks_issued,
        elem_txns=coalescer.stats["wide_writes"],
        element_bytes=config.element_bytes,
        access_bytes=dram_config.access_bytes,
        freq_hz=dram_config.freq_hz,
        dram_stats=memory.stats.as_dict(),
    )


def fast_indirect_scatter(
    indices: np.ndarray,
    config: AdapterConfig | None = None,
    dram_config: DramConfig | None = None,
    analysis: StreamAnalysis | None = None,
) -> AdapterMetrics:
    """Analytic scatter counterpart (same window-exact coalescing).

    ``analysis`` is the optional precomputed stream analysis
    (:func:`repro.axipack.fastmodel.analyze_stream`) — the write
    coalescer groups by the same wide-block ids as the read path, so a
    sweep shares one sort across gather and scatter variants (the
    engine's ``scatter`` backend passes its cached analysis here).
    """
    config = config or AdapterConfig()
    dram = dram_config or DramConfig()
    if config.coalescer is None:
        raise SimulationError("the scatter path requires a coalescer")
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    elements_per_block = dram.access_bytes // config.element_bytes
    if analysis is not None and _analysis_matches(
        analysis, indices, elements_per_block
    ):
        blocks, order = analysis.blocks, analysis.order
    else:
        blocks = indices * config.element_bytes // dram.access_bytes
        order = None
    elem_txns, tags = coalesce_window_exact(blocks, config.coalescer.window, order)
    idx_txns = ceil_div(len(indices) * config.index_bytes, dram.access_bytes)
    # Wide writes stream through the same bank-state service timeline
    # as reads (write bursts occupy the bus and rows identically).
    timeline = service_timeline(tags, dram)
    dram_cycles, walk = timeline.cycles, dict(timeline.stats)
    gen = (
        ceil_div(len(indices), config.lanes)
        if config.coalescer.parallel
        else len(indices)
    )
    cycles = (
        max(gen, elem_txns + idx_txns, dram_cycles)
        + PIPELINE_FILL_CYCLES
        + config.coalescer.watchdog_timeout
    )
    return AdapterMetrics(
        variant="scatter",
        count=len(indices),
        cycles=cycles,
        idx_txns=idx_txns,
        elem_txns=elem_txns,
        element_bytes=config.element_bytes,
        access_bytes=dram.access_bytes,
        freq_hz=dram.freq_hz,
        dram_stats=walk,
    )
