"""Reference (oracle) implementations of the fast model's hot paths.

Deliberately simple per-window / per-transaction loops kept as
differential-test oracles: the vectorized implementations in
:mod:`repro.axipack.fastmodel` must match them *bit-exactly*
(wide-access counts, warp-tag issue order, cycle estimates) on
arbitrary streams.

Provenance differs between the two:

* :func:`coalesce_window_reference` is the verbatim seed
  implementation of ``coalesce_window_exact`` — the battle-tested
  original the vectorized rewrite replaced;
* :func:`estimate_dram_cycles_reference` is an *independent
  re-derivation* of the (already vectorized) stable-sort bank/row
  walk as a one-pass open-row loop — a cross-check of the walk's
  semantics, not its historical form.

Do not call these from sweep code — they are orders of magnitude slower
than the vectorized versions and exist only to pin their semantics.
"""

from __future__ import annotations

import numpy as np

from ..config import DramConfig


def coalesce_window_reference(
    blocks: np.ndarray, window: int
) -> tuple[int, np.ndarray]:
    """Oracle for :func:`repro.axipack.fastmodel.coalesce_window_exact`.

    Walks the stream window by window, exactly as the cycle model's
    regulator/watcher pair does: all requests of one window that fall
    into the same wide block form one warp; a warp left open at a window
    swap keeps absorbing matching requests of the next window.
    """
    if blocks.size == 0:
        return 0, np.empty(0, dtype=np.int64)
    blocks = np.asarray(blocks, dtype=np.int64)
    tags: list[int] = []
    carry_tag: int | None = None
    for start in range(0, len(blocks), window):
        chunk = blocks[start : start + window]
        distinct, first_pos = np.unique(chunk, return_index=True)
        # Process in first-occurrence order, as the watcher's
        # oldest-unabsorbed scan does.
        order = np.argsort(first_pos)
        ordered = distinct[order]
        if carry_tag is not None and carry_tag in distinct:
            # The open warp absorbs its hits first, at no new access.
            ordered = ordered[ordered != carry_tag]
            if ordered.size == 0:
                continue  # whole window merged into the open warp
            tags.extend(int(b) for b in ordered)
            carry_tag = int(ordered[-1])
        else:
            # The previously open warp (if any) was already counted at
            # arming time; new distinct blocks each open one warp.
            tags.extend(int(b) for b in ordered)
            carry_tag = int(ordered[-1])
    return len(tags), np.asarray(tags, dtype=np.int64)


def estimate_dram_cycles_reference(
    blocks: np.ndarray, dram: DramConfig
) -> tuple[int, dict[str, int]]:
    """Oracle for :func:`repro.axipack.fastmodel.estimate_dram_cycles`.

    Walks the transaction stream once, tracking the open row per bank;
    the per-bank sequences it sees are identical to the vectorized
    stable-sort walk, so the two must agree exactly.
    """
    txns = int(blocks.size)
    if txns == 0:
        return 0, {"row_changes": 0, "activates": 0}
    blocks = np.asarray(blocks, dtype=np.int64)
    open_row: dict[int, int] = {}
    activates: dict[int, int] = {}
    row_changes = 0
    for block in blocks:
        bank = int(block) % dram.num_banks
        row = int(block) // (dram.num_banks * dram.blocks_per_row)
        if bank not in open_row:
            activates[bank] = 1
        elif open_row[bank] != row:
            activates[bank] = activates[bank] + 1
            row_changes += 1
        open_row[bank] = row

    bus_cycles = txns * dram.t_burst
    bank_cycles = max(activates.values()) * dram.t_rc
    cycles = max(bus_cycles, bank_cycles)
    if dram.t_refi > 0:
        refreshes = cycles // dram.t_refi
        cycles += refreshes * dram.t_rfc
    stats = {
        "row_changes": row_changes,
        "activates": sum(activates.values()),
    }
    return cycles, stats
