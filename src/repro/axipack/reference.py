"""Reference (oracle) implementations of the fast model's hot paths.

Deliberately simple per-window / per-transaction loops kept as
differential-test oracles: the vectorized implementations in
:mod:`repro.axipack.fastmodel` must match them *bit-exactly*
(wide-access counts, warp-tag issue order, cycle estimates) on
arbitrary streams.

Provenance differs between the two:

* :func:`coalesce_window_reference` is the verbatim seed
  implementation of ``coalesce_window_exact`` — the battle-tested
  original the vectorized rewrite replaced;
* :func:`estimate_dram_cycles_reference` is an *independent
  re-derivation* of the legacy two-term analytic DRAM bound
  (:func:`repro.mem.timeline.analytic_dram_bound`, formerly
  ``fastmodel.estimate_dram_cycles``) as a one-pass open-row loop —
  a cross-check of the walk's semantics, not its historical form;
* :func:`service_timeline_reference` is the naive per-queue-window
  walk of the bank-state timeline contract that
  :func:`repro.mem.timeline.service_timeline` vectorises — dicts and
  Python loops, nothing shared with the segmented-reduction
  implementation.

Do not call these from sweep code — they are orders of magnitude slower
than the vectorized versions and exist only to pin their semantics.
"""

from __future__ import annotations

import numpy as np

from ..config import DramConfig


def coalesce_window_reference(
    blocks: np.ndarray, window: int
) -> tuple[int, np.ndarray]:
    """Oracle for :func:`repro.axipack.fastmodel.coalesce_window_exact`.

    Walks the stream window by window, exactly as the cycle model's
    regulator/watcher pair does: all requests of one window that fall
    into the same wide block form one warp; a warp left open at a window
    swap keeps absorbing matching requests of the next window.
    """
    if blocks.size == 0:
        return 0, np.empty(0, dtype=np.int64)
    blocks = np.asarray(blocks, dtype=np.int64)
    tags: list[int] = []
    carry_tag: int | None = None
    for start in range(0, len(blocks), window):
        chunk = blocks[start : start + window]
        distinct, first_pos = np.unique(chunk, return_index=True)
        # Process in first-occurrence order, as the watcher's
        # oldest-unabsorbed scan does.
        order = np.argsort(first_pos)
        ordered = distinct[order]
        if carry_tag is not None and carry_tag in distinct:
            # The open warp absorbs its hits first, at no new access.
            ordered = ordered[ordered != carry_tag]
            if ordered.size == 0:
                continue  # whole window merged into the open warp
            tags.extend(int(b) for b in ordered)
            carry_tag = int(ordered[-1])
        else:
            # The previously open warp (if any) was already counted at
            # arming time; new distinct blocks each open one warp.
            tags.extend(int(b) for b in ordered)
            carry_tag = int(ordered[-1])
    return len(tags), np.asarray(tags, dtype=np.int64)


def estimate_dram_cycles_reference(
    blocks: np.ndarray, dram: DramConfig
) -> tuple[int, dict[str, int]]:
    """Oracle for :func:`repro.mem.timeline.analytic_dram_bound` (the
    legacy two-term bound that ``fastmodel.estimate_dram_cycles``
    computed before the bank-state timeline replaced it).

    Walks the transaction stream once, tracking the open row per bank;
    the per-bank sequences it sees are identical to the vectorized
    stable-sort walk, so the two must agree exactly.
    """
    txns = int(blocks.size)
    if txns == 0:
        return 0, {"row_changes": 0, "activates": 0}
    blocks = np.asarray(blocks, dtype=np.int64)
    open_row: dict[int, int] = {}
    activates: dict[int, int] = {}
    row_changes = 0
    for block in blocks:
        bank = int(block) % dram.num_banks
        row = int(block) // (dram.num_banks * dram.blocks_per_row)
        if bank not in open_row:
            activates[bank] = 1
        elif open_row[bank] != row:
            activates[bank] = activates[bank] + 1
            row_changes += 1
        open_row[bank] = row

    bus_cycles = txns * dram.t_burst
    bank_cycles = max(activates.values()) * dram.t_rc
    cycles = max(bus_cycles, bank_cycles)
    if dram.t_refi > 0:
        refreshes = cycles // dram.t_refi
        cycles += refreshes * dram.t_rfc
    stats = {
        "row_changes": row_changes,
        "activates": sum(activates.values()),
    }
    return cycles, stats


def service_timeline_reference(
    blocks: np.ndarray, dram: DramConfig, queue_depth: int | None = None
):
    """Oracle for :func:`repro.mem.timeline.service_timeline`.

    Walks the stream one queue window (``2 * queue_depth``
    transactions — queue contents plus the refill admitted while they
    are served) at a time, exactly as the timeline contract specifies:
    within a window every bank serves its requests grouped by row, the
    carried open row (if requested anywhere in the window) costs no
    activate, every other distinct row costs one, and the window's
    service time is the slower of the data bus and the busiest bank.
    The row a bank leaves open is that of its newest request in the
    window (most-recent-arrival open-adaptive policy).  Returns the
    same :class:`repro.mem.timeline.TimelineResult`.
    """
    from ..mem.timeline import TimelineResult

    depth = dram.queue_depth if queue_depth is None else int(queue_depth)
    if depth < 1:
        raise ValueError("queue depth must be >= 1")
    horizon = 2 * depth
    blocks = np.asarray(blocks, dtype=np.int64)
    n = int(blocks.size)
    bank_busy = np.zeros(dram.num_banks, dtype=np.int64)
    if n == 0:
        return TimelineResult(0, 0, 0, 0, 0, 0, bank_busy, 0)

    open_row: dict[int, int] = {}
    cycles = 0
    activates = row_hits = row_conflicts = cold_activates = 0
    windows = 0
    for start in range(0, n, horizon):
        chunk = blocks[start : start + horizon]
        windows += 1
        per_bank: dict[int, list[int]] = {}
        for block in chunk:
            bank = int(block) % dram.num_banks
            row = int(block) // (dram.num_banks * dram.blocks_per_row)
            per_bank.setdefault(bank, []).append(row)
        window_time = len(chunk) * dram.t_burst
        for bank, bank_rows in per_bank.items():
            distinct = set(bank_rows)
            carried = open_row.get(bank)
            hit_group = 1 if carried in distinct else 0
            acts = len(distinct) - hit_group
            if bank not in open_row:
                # The bank's very first activate is cold; any further
                # activate in the same window already replaces a row.
                cold_activates += 1
                row_conflicts += acts - 1
            else:
                row_conflicts += acts
            activates += acts
            row_hits += len(bank_rows) - acts
            bank_time = max(len(bank_rows) * dram.t_burst, acts * dram.t_rc)
            bank_busy[bank] += bank_time
            window_time = max(window_time, bank_time)
            open_row[bank] = bank_rows[-1]
        cycles += window_time

    refreshes = 0
    if dram.t_refi > 0:
        refreshes = cycles // dram.t_refi
        cycles += refreshes * dram.t_rfc
    return TimelineResult(
        cycles=int(cycles),
        activates=activates,
        row_hits=row_hits,
        row_conflicts=row_conflicts,
        cold_activates=cold_activates,
        refreshes=int(refreshes),
        bank_busy=bank_busy,
        queue_windows=windows,
    )
