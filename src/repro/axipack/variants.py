"""Adapter variant labels used throughout the paper's figures."""

from __future__ import annotations

from ..config import AdapterConfig, variant_config

#: Fig. 3 x-axis configurations, in plot order.
VARIANT_LABELS: tuple[str, ...] = (
    "MLPnc",
    "MLP8",
    "MLP16",
    "MLP32",
    "MLP64",
    "MLP128",
    "MLP256",
    "SEQ256",
)

#: Fig. 4 subset.
FIG4_VARIANTS: tuple[str, ...] = ("MLPnc", "MLP16", "MLP64", "MLP256", "SEQ256")


def make_adapter_config(label: str) -> AdapterConfig:
    """Adapter configuration for a paper variant label.

    ``MLPnc`` has no coalescer; ``MLPx`` uses an x-window parallel
    coalescer; ``SEQx`` an x-window sequential one.
    """
    return variant_config(label)
