"""Coalescer status holding register (CSHR) and window bookkeeping.

The CSHR tracks the request warp currently being coalesced (paper
Sec. II-B):

* **Tag** — the wide DRAM block address being coalesced.
* **Status** — IDLE while coalescing, VALID once issued (the model
  represents the issued state implicitly: an issued warp lives in the
  metadata queues, and the register is re-armed with the next tag).
* **Hitmap / Offsets** — which window slots merged into the warp and
  their word offsets inside the wide block.  The model stores these as
  an ordered list of ``(slot, offset)`` pairs, equivalent to the W-bit
  hitmap plus per-slot offset registers (the list form also represents
  warps that span a window swap, which the hardware encodes with a
  window-boundary marker).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

from .burst import NarrowRequest


@dataclass
class Cshr:
    """The single active coalescer status holding register."""

    tag: int | None = None
    #: merged (slot, word-offset) pairs in absorb order.
    entries: list[tuple[int, int]] = field(default_factory=list)
    #: per-slot merge counts (for metadata-queue capacity checks).
    slot_counts: Counter = field(default_factory=Counter)

    @property
    def armed(self) -> bool:
        """A tag is set and hits may merge."""
        return self.tag is not None

    @property
    def has_hits(self) -> bool:
        return bool(self.entries)

    def arm(self, tag: int) -> None:
        self.tag = tag
        self.entries = []
        self.slot_counts = Counter()

    def merge(self, slot: int, offset: int) -> None:
        self.entries.append((slot, offset))
        self.slot_counts[slot] += 1

    def reset(self) -> None:
        self.tag = None
        self.entries = []
        self.slot_counts = Counter()


class Window:
    """One regulator window: up to W narrow requests grouped by their
    wide DRAM block.

    Entries are kept in stream (seq) order; ``groups`` maps each wide
    block address to the deque of entries that fall into it, which lets
    the parallel watcher absorb a whole request warp in one step.  The
    slot of a request is its upsizer queue index, ``seq mod W``.
    """

    def __init__(
        self, requests: list[NarrowRequest], block_bytes: int, window_slots: int
    ) -> None:
        self.block_bytes = block_bytes
        self.window_slots = window_slots
        self.order = sorted(requests, key=lambda r: r.seq)
        self.groups: dict[int, deque[NarrowRequest]] = {}
        for request in self.order:
            block = request.block_addr(block_bytes)
            self.groups.setdefault(block, deque()).append(request)
        self._absorbed: set[int] = set()
        self.remaining = len(self.order)
        self._scan = 0

    def slot_of(self, request: NarrowRequest) -> int:
        return request.seq % self.window_slots

    @property
    def exhausted(self) -> bool:
        """All entries absorbed into some warp."""
        return self.remaining == 0

    def oldest_unabsorbed(self) -> NarrowRequest:
        """The oldest entry not yet merged (next CSHR tag source)."""
        while self._scan < len(self.order):
            request = self.order[self._scan]
            if request.seq not in self._absorbed:
                return request
            self._scan += 1
        raise IndexError("window has no unabsorbed entries")

    def take_group(
        self,
        block: int,
        slot_counts: Counter | None = None,
        slot_depth: int = 0,
    ) -> list[NarrowRequest]:
        """Absorb entries of ``block``, optionally limited per slot.

        ``slot_counts`` holds the merges already in the current warp and
        ``slot_depth`` the per-slot metadata-queue capacity; entries
        that would overflow a slot's offset FIFO stay pending as misses.
        """
        group = self.groups.get(block)
        if not group:
            return []
        taken: list[NarrowRequest] = []
        kept: deque[NarrowRequest] = deque()
        local: Counter = Counter()
        while group:
            request = group.popleft()
            if slot_counts is not None:
                slot = self.slot_of(request)
                if slot_counts[slot] + local[slot] >= slot_depth:
                    kept.append(request)
                    continue
                local[slot] += 1
            taken.append(request)
        if kept:
            self.groups[block] = kept
        else:
            del self.groups[block]
        self._absorbed.update(request.seq for request in taken)
        self.remaining -= len(taken)
        return taken
