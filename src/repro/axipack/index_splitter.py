"""Index splitter: wide index blocks -> N parallel index lanes.

For every received wide block of indices, the splitter distributes the
contained indices round-robin across the N parallel index queues: stream
position ``j`` goes to lane ``j mod N``.  This keeps one element of each
upcoming output beat in each lane, which is what lets the element packer
reassemble the stream in order with one pop per lane per beat.
"""

from __future__ import annotations

import numpy as np

from ..config import AdapterConfig
from ..mem.request import MemResponse
from ..sim.component import Component
from ..sim.fifo import Fifo
from .burst import IndirectBurst
from .index_fetcher import IndexFetcher


class IndexSplitter(Component):
    """Splits wide index blocks into the per-lane index queues."""

    def __init__(
        self,
        config: AdapterConfig,
        fetcher: IndexFetcher,
        idx_rsp: Fifo[MemResponse],
        name: str = "idx_split",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.fetcher = fetcher
        self.idx_rsp = idx_rsp
        self.lane_queues: list[Fifo[int]] = [
            self.make_fifo(config.index_queue_depth, f"lane{i}")
            for i in range(config.lanes)
        ]
        #: next stream position to assign (for lane routing).
        self._stream_pos = 0
        #: indices already delivered from the current burst.
        self.indices_delivered = 0

    def tick(self) -> None:
        if not self.idx_rsp.can_pop():
            return
        response = self.idx_rsp.peek()
        burst: IndirectBurst = response.request.payload
        indices = self._valid_indices(response, burst)

        # All target lanes must have space before the block is consumed;
        # round-robin assignment puts at most ceil(len/N) in one lane.
        lanes = self.config.lanes
        per_lane = [0] * lanes
        for k in range(len(indices)):
            per_lane[(self._stream_pos + k) % lanes] += 1
        if any(
            not self.lane_queues[s].can_push(per_lane[s])
            for s in range(lanes)
            if per_lane[s]
        ):
            return

        self.idx_rsp.pop()
        for k, index in enumerate(indices):
            self.lane_queues[(self._stream_pos + k) % lanes].push(int(index))
        self._stream_pos += len(indices)
        self.indices_delivered += len(indices)

        # Credits were charged per full block; release the invalid slice
        # of partial (head/tail) blocks immediately.
        block_capacity = response.request.nbytes // burst.index_bytes
        self.fetcher.free_credits(block_capacity - len(indices))

    def next_event(self) -> int | None:
        if not self.idx_rsp.can_pop():
            return None
        response = self.idx_rsp.peek()
        burst: IndirectBurst = response.request.payload
        indices = self._valid_indices(response, burst)
        lanes = self.config.lanes
        per_lane = [0] * lanes
        for k in range(len(indices)):
            per_lane[(self._stream_pos + k) % lanes] += 1
        if any(
            not self.lane_queues[s].can_push(per_lane[s])
            for s in range(lanes)
            if per_lane[s]
        ):
            return None  # lane-queue pops (watched via ownership) wake us
        return self.cycle

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        # Wakes on index responses (commit) and on the request generator
        # draining the lane queues (pops); its own staged pushes never
        # change what its next tick can do.
        return [*self.lane_queues, self.idx_rsp], []

    def _valid_indices(
        self, response: MemResponse, burst: IndirectBurst
    ) -> np.ndarray:
        """Slice the burst-relevant indices out of an aligned block."""
        assert response.data is not None
        block_base = response.request.block_addr
        dtype = np.dtype(f"<u{burst.index_bytes}")
        values = response.data.view(dtype)
        start_byte = max(0, burst.index_base - block_base)
        end_byte = min(
            len(response.data),
            burst.index_base + burst.index_stream_bytes - block_base,
        )
        return values[start_byte // burst.index_bytes : end_byte // burst.index_bytes]
