"""Adapter performance metrics shared by the cycle and fast models.

The quantities follow the paper's definitions:

* *indirect stream bandwidth* (Fig. 3) — effective payload delivered
  upstream per unit time, ``count * element_bytes / time``.  Because a
  coalesced wide access can serve many narrow requests, this can exceed
  the physical channel bandwidth.
* *bandwidth breakdown* (Fig. 4) — the physical downstream bandwidth is
  split into element fetching, index fetching, and loss versus the
  ideal channel bandwidth.
* *coalesce rate* (Fig. 4) — "the ratio of effective indirect access
  elements to the data amount requested by the coalescer from
  downstream": ``count * element_bytes / (elem_txns * access_bytes)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DramConfig
from ..units import GB


@dataclass
class AdapterMetrics:
    """Results of streaming one indirect burst through an adapter."""

    variant: str
    count: int
    cycles: int
    idx_txns: int
    elem_txns: int
    index_bytes: int = 4
    element_bytes: int = 8
    access_bytes: int = 64
    freq_hz: float = 1.0e9
    dram_stats: dict[str, int] = field(default_factory=dict)
    extras: dict[str, float] = field(default_factory=dict)

    # -- byte totals -------------------------------------------------------

    @property
    def effective_bytes(self) -> int:
        """Payload bytes delivered upstream."""
        return self.count * self.element_bytes

    @property
    def elem_fetch_bytes(self) -> int:
        """Bytes moved over the channel for element accesses."""
        return self.elem_txns * self.access_bytes

    @property
    def idx_fetch_bytes(self) -> int:
        """Bytes moved over the channel for index fetching."""
        return self.idx_txns * self.access_bytes

    @property
    def total_fetch_bytes(self) -> int:
        return self.elem_fetch_bytes + self.idx_fetch_bytes

    # -- paper metrics --------------------------------------------------------

    @property
    def seconds(self) -> float:
        return self.cycles / self.freq_hz

    @property
    def indirect_bw_gbps(self) -> float:
        """Fig. 3 metric: effective indirect access bandwidth."""
        return self.effective_bytes / self.seconds / GB

    @property
    def elem_bw_gbps(self) -> float:
        return self.elem_fetch_bytes / self.seconds / GB

    @property
    def idx_bw_gbps(self) -> float:
        return self.idx_fetch_bytes / self.seconds / GB

    def loss_gbps(self, dram: DramConfig | None = None) -> float:
        """Unused channel bandwidth versus the ideal peak."""
        peak = (dram or DramConfig()).peak_bandwidth_gbps
        return max(0.0, peak - self.elem_bw_gbps - self.idx_bw_gbps)

    @property
    def coalesce_rate(self) -> float:
        """Fig. 4 metric: effective element bytes per fetched element
        byte (1.0 means every fetched byte was useful exactly once)."""
        if self.elem_fetch_bytes == 0:
            return 0.0
        return self.effective_bytes / self.elem_fetch_bytes

    @property
    def requests_per_cycle(self) -> float:
        """Narrow element requests retired per cycle."""
        return self.count / self.cycles if self.cycles else 0.0

    def bandwidth_utilization(self, dram: DramConfig | None = None) -> float:
        """Fraction of the physical channel peak actually used."""
        peak = (dram or DramConfig()).peak_bandwidth_gbps
        return min(1.0, (self.elem_bw_gbps + self.idx_bw_gbps) / peak)

    def summary(self) -> dict[str, float]:
        """Flat dict for tabular reporting."""
        return {
            "variant": self.variant,
            "count": self.count,
            "cycles": self.cycles,
            "indirect_bw_gbps": round(self.indirect_bw_gbps, 3),
            "elem_bw_gbps": round(self.elem_bw_gbps, 3),
            "idx_bw_gbps": round(self.idx_bw_gbps, 3),
            "coalesce_rate": round(self.coalesce_rate, 3),
            "requests_per_cycle": round(self.requests_per_cycle, 3),
        }
