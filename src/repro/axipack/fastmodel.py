"""Fast adapter model: window-exact coalescing, analytic timing.

The cycle model in :mod:`repro.axipack.adapter` is the reference, but a
pure-Python cycle loop is too slow for full-suite sweeps.  This model
reproduces the *coalescing decisions* of the cycle model exactly —
windows of W consecutive narrow requests, one CSHR, request warps per
distinct wide block in first-occurrence order, and the open-warp carry
across window swaps — and then derives the cycle count analytically as
the maximum over the pipeline's bottlenecks:

* narrow request generation / element packing (N per cycle, or 1 for
  the sequential variant's watcher scan),
* request-watcher warp retirement (one warp per cycle, parallel),
* the DRAM channel: the bank-state service timeline of
  :func:`repro.mem.timeline.service_timeline` — queue-bounded FR-FCFS
  row grouping with open-row tracking over the actual transaction
  streams (one timeline per memory channel for multi-channel sweeps).

Tests cross-validate both the wide-access counts (exact match required)
and the cycle counts (within a tolerance band) against the cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdapterConfig, DramConfig
from ..mem.timeline import TimelineResult, service_timeline
from ..units import ceil_div
from .metrics import AdapterMetrics

#: pipeline fill latency added to the analytic cycle count (index fetch
#: round trip + adapter stage depth); small versus any real stream.
PIPELINE_FILL_CYCLES = 64


@dataclass(frozen=True)
class StreamAnalysis:
    """Window-independent per-stream artifacts, shared across variants.

    One index stream feeds many adapter configurations in a sweep; the
    wide-block id stream and its stable by-value sort depend only on
    the stream and the element/access geometry, so the engine computes
    them once per matrix (see :mod:`repro.engine.cache`) and every
    variant and window size reuses them.
    """

    #: wide-block id per narrow request.
    blocks: np.ndarray
    #: ``block_sort_order(blocks)``.
    order: np.ndarray
    #: element geometry the blocks were derived with.
    elements_per_block: int


def analyze_stream(indices: np.ndarray, elements_per_block: int) -> StreamAnalysis:
    """Precompute the shared coalescing analysis for one index stream."""
    blocks = np.ascontiguousarray(indices, dtype=np.int64) // elements_per_block
    return StreamAnalysis(blocks, block_sort_order(blocks), elements_per_block)


def _analysis_matches(
    analysis: StreamAnalysis, indices: np.ndarray, elements_per_block: int
) -> bool:
    """Sampled staleness check for a caller-provided analysis.

    Geometry and length must match exactly; stream content is compared
    at up to 16 evenly spread positions — enough to catch the common
    stale case (two suite streams truncated to the same budget) without
    rescanning the whole stream.  Callers passing a hand-built analysis
    for a *different* stream that agrees at every probe point get it
    accepted; the engine's keyed cache never does that.
    """
    count = int(indices.size)
    if analysis.elements_per_block != elements_per_block:
        return False
    if analysis.blocks.size != count:
        return False
    if count == 0:
        return True
    probes = np.linspace(0, count - 1, num=min(16, count), dtype=np.int64)
    return bool(
        np.array_equal(analysis.blocks[probes], indices[probes] // elements_per_block)
    )


def block_sort_order(blocks: np.ndarray) -> np.ndarray:
    """Stable by-value argsort of a block stream.

    This is the window-*independent* half of
    :func:`coalesce_window_exact`'s work: sweeps over many window sizes
    (or variants sharing one stream) compute it once and pass it via
    the ``order`` argument, which the engine's per-matrix analysis
    cache does automatically.
    """
    return np.argsort(np.asarray(blocks, dtype=np.int64), kind="stable")


def window_candidates(
    blocks: np.ndarray,
    window: int,
    order: np.ndarray | None = None,
    base_window: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-window warp candidates of a block stream, window-grouped.

    The window-*local* half of :func:`coalesce_window_exact`: a request
    is a warp candidate iff it is the first occurrence of its block
    within its W-request window, and candidates are returned in stream
    (first-occurrence) order as ``(cand, cand_win)`` — the block id and
    the window index of every candidate.

    Because the predicate never looks outside the request's own window,
    a stream chunked at *window-aligned* boundaries yields exactly the
    concatenation of its chunks' candidates — the property the engine's
    intra-matrix stream sharding relies on.  ``base_window`` offsets the
    reported window indices for such a chunk (pass
    ``chunk_start // window``).  ``order``, if given, must be
    ``block_sort_order(blocks)`` for the same (chunk of the) stream.
    """
    if blocks.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    blocks = np.asarray(blocks, dtype=np.int64)
    n = blocks.size
    if order is None:
        order = block_sort_order(blocks)

    # In the stable by-value order, an element's left neighbour within
    # its equal-block run is that block's previous occurrence in the
    # stream; the element opens a warp iff that neighbour lies in an
    # earlier window (or the run starts here).
    sorted_blocks = blocks[order]
    head = np.empty(n, dtype=bool)
    head[0] = True
    head[1:] = (sorted_blocks[1:] != sorted_blocks[:-1]) | (
        order[1:] // window != order[:-1] // window
    )
    opens = np.zeros(n, dtype=bool)
    opens[order[head]] = True
    first_pos = np.flatnonzero(opens)

    cand = blocks[first_pos]  # warp candidates, window-grouped,
    cand_win = first_pos // window  # in first-occurrence order
    if base_window:
        cand_win = cand_win + base_window
    return cand, cand_win


def resolve_window_carry(
    cand: np.ndarray, cand_win: np.ndarray, num_win: int
) -> tuple[int, np.ndarray]:
    """Collapse the carry-across-windows recurrence over candidates.

    The sequential half of :func:`coalesce_window_exact`, operating on
    the output of :func:`window_candidates` (possibly concatenated from
    window-aligned stream chunks — every window in ``[0, num_win)``
    must be populated, which holds for any contiguous stream).  Returns
    ``(total_wide_accesses, warp_tags)``.
    """
    if cand.size == 0:
        return 0, np.empty(0, dtype=np.int64)
    counts = np.bincount(cand_win, minlength=num_win)
    ends = np.cumsum(counts)
    last = cand[ends - 1]
    multi = counts >= 2
    no_carry = int(cand.min()) - 1  # sentinel below every real tag
    # Second-to-last candidate; the gather index is only meaningful
    # where the window has >= 2 candidates (masked below).
    second = np.where(multi, cand[ends - 2], no_carry)

    # Resolve x[t] = (K[t] == L[t]).  Transition into window t:
    #   x[t] = eqS[t-1] if (x[t-1] and multi[t-1]) else eqL[t-1]
    # where eqL = (L[t-1] == L[t]), eqS = (S[t-1] == L[t]).
    x = np.zeros(num_win, dtype=bool)
    if num_win > 1:
        gate = multi[:-1]
        eq_last = last[:-1] == last[1:]
        eq_second = gate & (second[:-1] == last[1:])
        # constant transitions (result ignores x[t-1]) anchor the scan;
        # between anchors every transition is identity or negation.
        const = ~gate | (eq_second == eq_last)
        neg = gate & ~eq_second & eq_last
        anchor_t = np.concatenate(([0], np.flatnonzero(const) + 1))
        anchor_v = np.concatenate(([False], eq_last[const]))
        neg_csum = np.concatenate(([0], np.cumsum(neg)))
        ai = np.searchsorted(anchor_t, np.arange(num_win), side="right") - 1
        parity = (neg_csum - neg_csum[anchor_t[ai]]) & 1
        x = anchor_v[ai] ^ parity.astype(bool)

    # Carry tag entering each window (no_carry = none yet).
    carry = np.full(num_win, no_carry, dtype=np.int64)
    if num_win > 1:
        carried_second = x[:-1] & multi[:-1]
        carry[1:] = np.where(carried_second, second[:-1], last[:-1])

    # A window's carry hit (at most one — candidates are distinct)
    # merges into the open warp at no new access; the rest are issued.
    tags = cand[cand != carry[cand_win]]
    return int(tags.size), tags


def coalesce_window_exact(
    blocks: np.ndarray, window: int, order: np.ndarray | None = None
) -> tuple[int, np.ndarray]:
    """Count wide element accesses for a W-window coalescer.

    ``blocks`` is the per-request wide-block id stream.  Returns
    ``(total_wide_accesses, warp_tags)`` where ``warp_tags`` is the
    block id of every issued warp in issue order (used for the DRAM
    bank/row walk).  ``order``, if given, must be
    ``block_sort_order(blocks)`` (precomputed for sweep reuse).

    Implements exactly the cycle model's grouping: all requests of one
    window that fall into the same block form one warp; a warp left
    open at a window swap keeps absorbing matching requests of the next
    window (cache-less reuse across windows).

    Fully vectorized; bit-exact against the retained per-window oracle
    :func:`repro.axipack.reference.coalesce_window_reference` (the
    property-based differential suite enforces this).  The work splits
    into two halves, exposed separately so the engine can shard a
    stream across workers and merge exactly:

    * :func:`window_candidates` — the window-local (and therefore
      chunkable) candidate extraction via the stable by-value sort: an
      element opens a warp iff its block's previous occurrence falls in
      an earlier window;
    * :func:`resolve_window_carry` — the sequential
      carry-across-windows dependence, collapsed analytically.  With
      ``K[t]`` the carry tag entering window ``t``, ``C[t]`` the
      window's distinct blocks in first-occurrence order, and ``L[t]``
      / ``S[t]`` the last / second-to-last entry of ``C[t]``, the
      oracle's update is exactly ``K[t+1] = S[t] if (K[t] == L[t] and
      |C[t]| >= 2) else L[t]``.  So only the *predicate* ``x[t] = (K[t]
      == L[t])`` couples consecutive windows, and its transition is one
      of four boolean maps (constant / identity / negation), which a
      prefix scan over anchor points and a negation-parity cumsum
      resolves without a Python loop.
    """
    if blocks.size == 0:
        return 0, np.empty(0, dtype=np.int64)
    cand, cand_win = window_candidates(blocks, window, order)
    num_win = (int(blocks.size) - 1) // window + 1
    return resolve_window_carry(cand, cand_win, num_win)


def estimate_dram_cycles(
    blocks: np.ndarray, dram: DramConfig
) -> tuple[int, dict[str, int]]:
    """Service cycles for a wide-transaction stream.

    Thin compatibility wrapper over the bank-state timeline
    (:func:`repro.mem.timeline.service_timeline`), which replaced the
    analytic ``max(bus, t_rc * activates)`` bound here: the returned
    stats keep the legacy two-counter shape (``row_changes`` /
    ``activates``).  Callers that want the full row-hit/occupancy
    breakdown should call the timeline directly; the legacy bound
    itself survives as :func:`repro.mem.timeline.analytic_dram_bound`.
    """
    result = service_timeline(blocks, dram)
    return result.cycles, result.legacy_stats


def _interleave_streams(elem_blocks: np.ndarray, idx_blocks: np.ndarray) -> np.ndarray:
    """Approximate the temporal interleaving of element and index
    transactions (both progress proportionally through the stream)."""
    total = len(elem_blocks) + len(idx_blocks)
    if total == 0:
        return np.empty(0, dtype=np.int64)
    merged = np.empty(total, dtype=np.int64)
    # Positions of index transactions spread evenly through the run.
    if len(idx_blocks):
        idx_pos = np.linspace(0, total - 1, num=len(idx_blocks)).astype(np.int64)
        idx_pos = np.unique(idx_pos)
        while len(idx_pos) < len(idx_blocks):  # collisions at tiny sizes
            extra = np.setdiff1d(np.arange(total), idx_pos)[: len(idx_blocks) - len(idx_pos)]
            idx_pos = np.sort(np.concatenate([idx_pos, extra]))
    else:
        idx_pos = np.empty(0, dtype=np.int64)
    mask = np.zeros(total, dtype=bool)
    mask[idx_pos] = True
    merged[mask] = idx_blocks
    merged[~mask] = elem_blocks
    return merged


def _channel_dram_cycles(
    merged: np.ndarray, dram: DramConfig, channels: int
) -> tuple[int, dict[str, int], float]:
    """Per-channel bank-state timelines over ``channels`` interleaved
    channels.

    Uses the same routing as :class:`repro.mem.multichannel.
    MultiChannelMemory` (consecutive wide blocks rotate across
    channels, i.e. ``block % channels``); the channel-select bits are
    stripped before each channel's bank/row decode (``block //
    channels``), matching the ``channel_stride`` decode the cycle-level
    channels apply behind the multi-channel router.  Each channel's
    transaction slice runs through its own
    :func:`repro.mem.timeline.service_timeline`; the service time is
    the slowest channel, the stats sum over channels, and the third
    return is the transaction-weighted row-hit rate.
    """
    if channels <= 1:
        result = service_timeline(merged, dram)
        return result.cycles, dict(result.stats), result.row_hit_rate
    cycles = 0
    stats: dict[str, int] = {}
    hits = txns = 0
    for channel in range(channels):
        result = service_timeline(
            merged[merged % channels == channel] // channels, dram
        )
        cycles = max(cycles, result.cycles)
        hits += result.row_hits
        txns += result.transactions
        for key, value in result.stats.items():
            stats[key] = stats.get(key, 0) + value
    return cycles, stats, (hits / txns if txns else 0.0)


def fast_metrics_from_tags(
    count: int,
    elem_txns: int,
    warp_tags: np.ndarray,
    config: AdapterConfig,
    dram_config: DramConfig | None = None,
    variant: str = "",
    channels: int = 1,
) -> AdapterMetrics:
    """Analytic pipeline timing for a pre-coalesced element stream.

    The back half of :func:`fast_indirect_stream`: given the wide
    element transaction count and the warp-tag issue stream (from
    :func:`coalesce_window_exact`, or merged from window-aligned chunks
    via :func:`resolve_window_carry`), derive the cycle count and
    metrics.  The engine's stream-sharding merge calls this directly so
    sharded and serial sweeps share one timing code path byte-for-byte.
    """
    dram = dram_config or DramConfig()
    idx_txns = ceil_div(count * config.index_bytes, dram.access_bytes)
    idx_blocks = np.arange(idx_txns, dtype=np.int64) + (1 << 22)  # separate region

    label = variant or _default_label(config)
    if not config.has_coalescer:
        watcher_cycles = 0
        gen_cycles = count  # one wide issue per request through one port
    else:
        assert config.coalescer is not None
        watcher_cycles = elem_txns + ceil_div(count, config.coalescer.window)
        # SEQx serialises the upsizer input to one request per cycle;
        # the watcher and coalesce rate are identical to MLPx.
        gen_cycles = (
            ceil_div(count, config.lanes) if config.coalescer.parallel else count
        )

    dram_cycles, dram_walk, row_hit_rate = _channel_dram_cycles(
        _interleave_streams(warp_tags, idx_blocks), dram, channels
    )
    pack_cycles = ceil_div(count, config.lanes)
    issue_cycles = elem_txns + idx_txns  # one wide request port

    # Stream-tail flush: the last open warp always waits out the
    # watchdog, and a ragged tail window waits out the regulator —
    # exactly as in the cycle model.
    tail_cycles = 0
    if config.has_coalescer:
        assert config.coalescer is not None
        tail_cycles += config.coalescer.watchdog_timeout
        if count % config.coalescer.window:
            tail_cycles += config.coalescer.regulator_timeout

    cycles = (
        max(gen_cycles, watcher_cycles, dram_cycles, pack_cycles, issue_cycles)
        + PIPELINE_FILL_CYCLES
        + tail_cycles
    )

    metrics = AdapterMetrics(
        variant=label,
        count=count,
        cycles=cycles,
        idx_txns=idx_txns,
        elem_txns=elem_txns,
        index_bytes=config.index_bytes,
        element_bytes=config.element_bytes,
        access_bytes=dram.access_bytes,
        freq_hz=dram.freq_hz,
        dram_stats=dram_walk,
    )
    metrics.extras["model"] = 1.0  # marker: fast model
    metrics.extras["dram_bound_cycles"] = float(dram_cycles)
    metrics.extras["dram_row_hit_rate"] = row_hit_rate
    metrics.extras["dram_utilization"] = min(
        1.0, (elem_txns + idx_txns) * dram.t_burst / (cycles * channels)
    )
    if channels > 1:
        metrics.extras["channels"] = float(channels)
    return metrics


def fast_indirect_stream(
    indices: np.ndarray,
    config: AdapterConfig,
    dram_config: DramConfig | None = None,
    variant: str = "",
    analysis: StreamAnalysis | None = None,
    channels: int = 1,
) -> AdapterMetrics:
    """Analytic counterpart of
    :func:`repro.axipack.adapter.run_indirect_stream`.

    Pass ``analysis`` (from :func:`analyze_stream`) when sweeping many
    variants over one stream to amortise the by-value sort; a stale
    analysis (wrong element geometry, length, or sampled stream
    content — see :func:`_analysis_matches`) falls back to recomputing.
    ``channels > 1`` models the same adapter in front of a
    block-interleaved multi-channel memory (see
    :func:`repro.mem.multichannel.fast_multichannel_stream`).
    """
    dram = dram_config or DramConfig()
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    count = int(indices.size)
    elements_per_block = dram.access_bytes // config.element_bytes
    if analysis is not None and _analysis_matches(
        analysis, indices, elements_per_block
    ):
        blocks, sort_order = analysis.blocks, analysis.order
    else:
        blocks = indices // elements_per_block
        sort_order = None

    if not config.has_coalescer:
        elem_txns = count
        warp_tags = blocks
    else:
        assert config.coalescer is not None
        elem_txns, warp_tags = coalesce_window_exact(
            blocks, config.coalescer.window, sort_order
        )
    return fast_metrics_from_tags(
        count, elem_txns, warp_tags, config, dram, variant, channels
    )


def _default_label(config: AdapterConfig) -> str:
    if not config.has_coalescer:
        return "MLPnc"
    assert config.coalescer is not None
    prefix = "MLP" if config.coalescer.parallel else "SEQ"
    return f"{prefix}{config.coalescer.window}"
