"""Fast adapter model: window-exact coalescing, analytic timing.

The cycle model in :mod:`repro.axipack.adapter` is the reference, but a
pure-Python cycle loop is too slow for full-suite sweeps.  This model
reproduces the *coalescing decisions* of the cycle model exactly —
windows of W consecutive narrow requests, one CSHR, request warps per
distinct wide block in first-occurrence order, and the open-warp carry
across window swaps — and then derives the cycle count analytically as
the maximum over the pipeline's bottlenecks:

* narrow request generation / element packing (N per cycle, or 1 for
  the sequential variant's watcher scan),
* request-watcher warp retirement (one warp per cycle, parallel),
* the DRAM channel: bus occupancy (``t_burst`` per transaction) and
  per-bank activate serialisation (``t_rc`` per row change), estimated
  with a vectorised bank/row walk over the actual transaction streams.

Tests cross-validate both the wide-access counts (exact match required)
and the cycle counts (within a tolerance band) against the cycle model.
"""

from __future__ import annotations

import numpy as np

from ..config import AdapterConfig, DramConfig
from ..units import ceil_div
from .metrics import AdapterMetrics

#: pipeline fill latency added to the analytic cycle count (index fetch
#: round trip + adapter stage depth); small versus any real stream.
PIPELINE_FILL_CYCLES = 64


def coalesce_window_exact(
    blocks: np.ndarray, window: int
) -> tuple[int, np.ndarray]:
    """Count wide element accesses for a W-window coalescer.

    ``blocks`` is the per-request wide-block id stream.  Returns
    ``(total_wide_accesses, warp_tags)`` where ``warp_tags`` is the
    block id of every issued warp in issue order (used for the DRAM
    bank/row walk).

    Implements exactly the cycle model's grouping: all requests of one
    window that fall into the same block form one warp; a warp left
    open at a window swap keeps absorbing matching requests of the next
    window (cache-less reuse across windows).
    """
    if blocks.size == 0:
        return 0, np.empty(0, dtype=np.int64)
    tags: list[int] = []
    carry_tag: int | None = None
    for start in range(0, len(blocks), window):
        chunk = blocks[start : start + window]
        distinct, first_pos = np.unique(chunk, return_index=True)
        # Process in first-occurrence order, as the watcher's
        # oldest-unabsorbed scan does.
        order = np.argsort(first_pos)
        ordered = distinct[order]
        if carry_tag is not None and carry_tag in distinct:
            # The open warp absorbs its hits first, at no new access.
            ordered = ordered[ordered != carry_tag]
            if ordered.size == 0:
                continue  # whole window merged into the open warp
            tags.extend(int(b) for b in ordered)
            carry_tag = int(ordered[-1])
        else:
            # The previously open warp (if any) was already counted at
            # arming time; new distinct blocks each open one warp.
            tags.extend(int(b) for b in ordered)
            carry_tag = int(ordered[-1])
    return len(tags), np.asarray(tags, dtype=np.int64)


def estimate_dram_cycles(
    blocks: np.ndarray, dram: DramConfig
) -> tuple[int, dict[str, int]]:
    """Lower-bound service cycles for a wide-transaction stream.

    Combines the data-bus occupancy bound with the per-bank activate
    serialisation bound (``t_rc`` between activates of one bank), using
    the same block-interleaved bank mapping as the cycle-level channel.
    """
    txns = int(blocks.size)
    if txns == 0:
        return 0, {"row_changes": 0, "activates": 0}
    banks = blocks % dram.num_banks
    rows = blocks // (dram.num_banks * dram.blocks_per_row)

    order = np.argsort(banks, kind="stable")
    banks_sorted = banks[order]
    rows_sorted = rows[order]
    same_bank = banks_sorted[1:] == banks_sorted[:-1]
    row_change = rows_sorted[1:] != rows_sorted[:-1]
    changes_per_bank = np.bincount(
        banks_sorted[1:][same_bank & row_change], minlength=dram.num_banks
    )
    present = np.bincount(banks_sorted, minlength=dram.num_banks) > 0
    activates_per_bank = changes_per_bank + present.astype(np.int64)

    bus_cycles = txns * dram.t_burst
    bank_cycles = int(activates_per_bank.max()) * dram.t_rc
    cycles = max(bus_cycles, bank_cycles)
    # Refresh: the channel stalls tRFC out of every tREFI, and each
    # refresh closes all rows (one extra activate per touched bank).
    if dram.t_refi > 0:
        refreshes = cycles // dram.t_refi
        cycles += refreshes * dram.t_rfc
    stats = {
        "row_changes": int((same_bank & row_change).sum()),
        "activates": int(activates_per_bank.sum()),
    }
    return cycles, stats


def _interleave_streams(elem_blocks: np.ndarray, idx_blocks: np.ndarray) -> np.ndarray:
    """Approximate the temporal interleaving of element and index
    transactions (both progress proportionally through the stream)."""
    total = len(elem_blocks) + len(idx_blocks)
    if total == 0:
        return np.empty(0, dtype=np.int64)
    merged = np.empty(total, dtype=np.int64)
    # Positions of index transactions spread evenly through the run.
    if len(idx_blocks):
        idx_pos = np.linspace(0, total - 1, num=len(idx_blocks)).astype(np.int64)
        idx_pos = np.unique(idx_pos)
        while len(idx_pos) < len(idx_blocks):  # collisions at tiny sizes
            extra = np.setdiff1d(np.arange(total), idx_pos)[: len(idx_blocks) - len(idx_pos)]
            idx_pos = np.sort(np.concatenate([idx_pos, extra]))
    else:
        idx_pos = np.empty(0, dtype=np.int64)
    mask = np.zeros(total, dtype=bool)
    mask[idx_pos] = True
    merged[mask] = idx_blocks
    merged[~mask] = elem_blocks
    return merged


def fast_indirect_stream(
    indices: np.ndarray,
    config: AdapterConfig,
    dram_config: DramConfig | None = None,
    variant: str = "",
) -> AdapterMetrics:
    """Analytic counterpart of
    :func:`repro.axipack.adapter.run_indirect_stream`."""
    dram = dram_config or DramConfig()
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    count = int(indices.size)
    elements_per_block = dram.access_bytes // config.element_bytes
    blocks = indices // elements_per_block

    idx_txns = ceil_div(count * config.index_bytes, dram.access_bytes)
    idx_blocks = np.arange(idx_txns, dtype=np.int64) + (1 << 22)  # separate region

    label = variant or _default_label(config)
    if not config.has_coalescer:
        elem_txns = count
        warp_tags = blocks
        watcher_cycles = 0
        gen_cycles = count  # one wide issue per request through one port
    else:
        assert config.coalescer is not None
        window = config.coalescer.window
        elem_txns, warp_tags = coalesce_window_exact(blocks, window)
        watcher_cycles = elem_txns + ceil_div(count, window)
        # SEQx serialises the upsizer input to one request per cycle;
        # the watcher and coalesce rate are identical to MLPx.
        gen_cycles = (
            ceil_div(count, config.lanes) if config.coalescer.parallel else count
        )

    dram_cycles, dram_walk = estimate_dram_cycles(
        _interleave_streams(warp_tags, idx_blocks), dram
    )
    pack_cycles = ceil_div(count, config.lanes)
    issue_cycles = elem_txns + idx_txns  # one wide request port

    # Stream-tail flush: the last open warp always waits out the
    # watchdog, and a ragged tail window waits out the regulator —
    # exactly as in the cycle model.
    tail_cycles = 0
    if config.has_coalescer:
        assert config.coalescer is not None
        tail_cycles += config.coalescer.watchdog_timeout
        if count % config.coalescer.window:
            tail_cycles += config.coalescer.regulator_timeout

    cycles = (
        max(gen_cycles, watcher_cycles, dram_cycles, pack_cycles, issue_cycles)
        + PIPELINE_FILL_CYCLES
        + tail_cycles
    )

    metrics = AdapterMetrics(
        variant=label,
        count=count,
        cycles=cycles,
        idx_txns=idx_txns,
        elem_txns=elem_txns,
        index_bytes=config.index_bytes,
        element_bytes=config.element_bytes,
        access_bytes=dram.access_bytes,
        freq_hz=dram.freq_hz,
        dram_stats=dram_walk,
    )
    metrics.extras["model"] = 1.0  # marker: fast model
    metrics.extras["dram_bound_cycles"] = float(dram_cycles)
    metrics.extras["dram_utilization"] = min(
        1.0, (elem_txns + idx_txns) * dram.t_burst / cycles
    )
    return metrics


def _default_label(config: AdapterConfig) -> str:
    if not config.has_coalescer:
        return "MLPnc"
    assert config.coalescer is not None
    prefix = "MLP" if config.coalescer.parallel else "SEQ"
    return f"{prefix}{config.coalescer.window}"
