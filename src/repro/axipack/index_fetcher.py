"""Index fetcher: streams the index array out of DRAM in wide blocks.

Upon receiving an indirect burst request, the fetcher walks the index
stream's address range in wide-block steps and issues efficient wide
DRAM reads (one AXI ID, in-order responses).  It monitors downstream
index-queue occupancy through a credit counter so the per-lane index
queues can never overflow (paper Sec. II-A).
"""

from __future__ import annotations

from ..config import AdapterConfig, DramConfig
from ..mem.request import MemRequest
from ..sim.component import Component
from ..sim.fifo import Fifo
from .burst import IndirectBurst

#: AXI ID used for index-stream fetches.
INDEX_AXI_ID = 0
#: AXI ID used for element fetches.
ELEMENT_AXI_ID = 1


class IndexFetcher(Component):
    """Issues wide reads covering the burst's index array."""

    def __init__(
        self,
        config: AdapterConfig,
        dram_config: DramConfig,
        mem_req: Fifo[MemRequest],
        name: str = "idx_fetch",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.dram_config = dram_config
        self.mem_req = mem_req
        self.bursts: Fifo[IndirectBurst] = self.make_fifo(4, "bursts")
        self._burst: IndirectBurst | None = None
        self._next_addr = 0
        self._end_addr = 0
        #: indices issued to DRAM but not yet freed by the splitter.
        self.credits_used = 0
        self.blocks_issued = 0

    @property
    def credit_limit(self) -> int:
        """Total index-queue capacity in indices across all lanes."""
        return self.config.lanes * self.config.index_queue_depth

    def free_credits(self, count: int) -> None:
        """Called by the element request generator when indices retire."""
        self.credits_used -= count
        assert self.credits_used >= 0, "index credit underflow"
        if count > 0:
            # Credit returns are a non-FIFO input channel: tell the
            # batched engine to re-evaluate (no-op under step).
            self.wake()

    def tick(self) -> None:
        if self._burst is None:
            if not self.bursts.can_pop():
                return
            self._burst = self.bursts.pop()
            block = self.dram_config.access_bytes
            start = self._burst.index_base
            self._next_addr = start - start % block
            self._end_addr = start + self._burst.index_stream_bytes

        if self._next_addr >= self._end_addr:
            self._burst = None
            return
        if not self.mem_req.can_push():
            return

        block = self.dram_config.access_bytes
        indices_in_block = block // self._burst.index_bytes
        if self.credits_used + indices_in_block > self.credit_limit:
            return

        self.mem_req.push(
            MemRequest(
                addr=self._next_addr,
                nbytes=block,
                axi_id=INDEX_AXI_ID,
                payload=self._burst,
            )
        )
        self.credits_used += indices_in_block
        self.blocks_issued += 1
        self._next_addr += block

    def next_event(self) -> int | None:
        if self._burst is None:
            return self.cycle if self.bursts.can_pop() else None
        if self._next_addr >= self._end_addr:
            return self.cycle  # burst retires on the next tick
        if not self.mem_req.can_push():
            return None
        indices_in_block = self.dram_config.access_bytes // self._burst.index_bytes
        if self.credits_used + indices_in_block > self.credit_limit:
            return None  # free_credits() wakes us
        return self.cycle

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        # Credits return through free_credits -> wake(), not a FIFO; the
        # only FIFO activity that matters is burst arrival (commit) and
        # downstream slots freeing up (pops on mem_req).
        return [self.bursts, self.mem_req], []

    @property
    def busy(self) -> bool:
        return self._burst is not None or super().busy
