"""Element packer: densely packs narrow elements onto the wide
upstream AXI-Pack bus (paper Sec. II-A).

One beat carries up to ``bus_bytes / element_bytes`` (= N) elements.
Beat ``b`` is complete when every lane has delivered its element for
stream positions ``b*N .. b*N+N-1``; the tail beat may be narrower.
"""

from __future__ import annotations

from ..config import AdapterConfig
from ..sim.component import Component
from ..sim.fifo import Fifo
from .burst import IndirectBurst


class ElementPacker(Component):
    """Reassembles the in-order element stream into wide beats."""

    def __init__(
        self,
        config: AdapterConfig,
        burst: IndirectBurst,
        lane_out: list[Fifo[float]],
        name: str = "packer",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.burst = burst
        self.lane_out = lane_out
        self.emitted = 0
        self.beats = 0
        #: delivered element values in stream order (functional output).
        self.output: list[float] = []

    @property
    def done(self) -> bool:
        return self.emitted >= self.burst.count

    def tick(self) -> None:
        if self.done:
            return
        needed = min(self.config.lanes, self.burst.count - self.emitted)
        if not all(self.lane_out[s].can_pop() for s in range(needed)):
            return
        for s in range(needed):
            self.output.append(self.lane_out[s].pop())
        self.emitted += needed
        self.beats += 1

    def next_event(self) -> int | None:
        if self.done:
            return None
        needed = min(self.config.lanes, self.burst.count - self.emitted)
        if all(self.lane_out[s].can_pop() for s in range(needed)):
            return self.cycle
        return None

    def watches(self) -> list[Fifo]:
        return list(self.lane_out)

    @property
    def busy(self) -> bool:
        return not self.done
