"""Strided AXI-Pack bursts through the request coalescer.

AXI-Pack defines bursts of *strided* as well as indirect accesses
(paper Sec. I).  A strided burst needs no index stream — addresses are
``base + j*stride`` — but for strides below the DRAM access granularity
it benefits from the very same request coalescer: consecutive elements
share wide blocks and must not each cost a full 512 b access.

This module adds the strided address generator and a runner mirroring
:func:`repro.axipack.adapter.run_indirect_stream`, plus the fast-model
counterpart.  The element path (coalescer / direct), packer, reorder
front and DRAM are exactly the shared components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import AdapterConfig, DramConfig
from ..errors import SimulationError
from ..mem.backing_store import BackingStore
from ..mem.dram import DramChannel
from ..mem.reorder import ReorderBuffer
from ..mem.request import MemRequest, MemResponse
from ..sim.clock import Simulator, default_engine
from ..sim.component import Component
from ..sim.fifo import Fifo
from .arbiter import Arbiter
from .burst import NarrowRequest
from .coalescer import RequestCoalescer
from .direct_path import DirectElementPath
from .element_request_gen import RequestSink
from ..mem.timeline import service_timeline
from .fastmodel import (
    PIPELINE_FILL_CYCLES,
    coalesce_window_exact,
)
from .index_fetcher import ELEMENT_AXI_ID
from .metrics import AdapterMetrics
from .packer import ElementPacker
from ..units import ceil_div


@dataclass(frozen=True)
class StridedBurst:
    """One AXI-Pack strided read burst: ``count`` elements of
    ``element_bytes`` at addresses ``base + j*stride_bytes``."""

    base: int
    count: int
    stride_bytes: int
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("burst element count must be positive")
        if self.stride_bytes < self.element_bytes:
            raise ValueError("stride must cover the element size")

    def address_of(self, j: int) -> int:
        return self.base + j * self.stride_bytes

    @property
    def effective_bytes(self) -> int:
        return self.count * self.element_bytes


class _Wiring(Component):
    """FIFO-hosting container with no behaviour of its own."""

    def tick(self) -> None:
        pass

    def next_event(self) -> int | None:
        return None

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        return [], []


class StridedRequestGen(Component):
    """Generates up to N strided narrow requests per cycle (no index
    stream, hence no index queues or credits)."""

    def __init__(
        self,
        config: AdapterConfig,
        burst: StridedBurst,
        sink: RequestSink,
        ordered: bool = False,
        name: str = "stride_gen",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.burst = burst
        self.sink = sink
        self.ordered = ordered
        self._cursor = 0
        self._lane_counts = [0] * config.lanes

    @property
    def done(self) -> bool:
        return self.generated >= self.burst.count

    @property
    def generated(self) -> int:
        if self.ordered:
            return self._cursor
        return sum(self._lane_counts)

    def tick(self) -> None:
        if self.ordered:
            self._tick_ordered()
        else:
            self._tick_parallel()

    def _request(self, lane: int, seq: int) -> NarrowRequest:
        return NarrowRequest(seq=seq, lane=lane, addr=self.burst.address_of(seq))

    def _tick_parallel(self) -> None:
        lanes = self.config.lanes
        for lane in range(lanes):
            seq = self._lane_counts[lane] * lanes + lane
            if seq >= self.burst.count or not self.sink.can_accept(seq):
                continue
            self.sink.accept(self._request(lane, seq))
            self._lane_counts[lane] += 1

    def _tick_ordered(self) -> None:
        for _ in range(self.config.lanes):
            if self._cursor >= self.burst.count:
                return
            if not self.sink.can_accept(self._cursor):
                return
            self.sink.accept(self._request(self._cursor % self.config.lanes,
                                           self._cursor))
            self._cursor += 1

    def next_event(self) -> int | None:
        if self.done:
            return None
        if self.ordered:
            return self.cycle if self.sink.can_accept(self._cursor) else None
        lanes = self.config.lanes
        for lane in range(lanes):
            seq = self._lane_counts[lane] * lanes + lane
            if seq < self.burst.count and self.sink.can_accept(seq):
                return self.cycle
        return None

    def watches(self) -> list:
        return list(self.sink.accept_watches())


def run_strided_stream(
    burst: StridedBurst | None = None,
    config: AdapterConfig | None = None,
    dram_config: DramConfig | None = None,
    count: int = 1024,
    stride_bytes: int = 16,
    verify: bool = True,
    max_cycles: int = 100_000_000,
    engine: str | None = None,
) -> AdapterMetrics:
    """Stream a strided burst through the cycle-accurate element path.
    ``engine`` selects the step-wise or event-batched simulation engine
    (both bit-exact; default :func:`~repro.sim.clock.default_engine`)."""
    config = config or AdapterConfig()
    dram_config = dram_config or DramConfig()
    if burst is None:
        burst = StridedBurst(base=0, count=count, stride_bytes=stride_bytes)

    span = burst.address_of(burst.count - 1) + burst.element_bytes
    store = BackingStore(span + (1 << 12))
    backing = np.arange(span // 8 + 8, dtype=np.float64)
    store.write_typed(0, backing)

    memory = DramChannel(store, dram_config)
    sinks: dict[int, Fifo[MemResponse]] = {}
    reorder = ReorderBuffer(memory.req, memory.rsp, sinks)

    container = _Wiring("strided_unit")
    elem_req: Fifo[MemRequest] = container.make_fifo(4, "elem_req")
    elem_rsp: Fifo[MemResponse] = container.make_fifo(None, "elem_rsp")
    sinks[ELEMENT_AXI_ID] = elem_rsp

    if config.has_coalescer:
        path: RequestCoalescer | DirectElementPath = RequestCoalescer(
            config, dram_config, elem_req, elem_rsp
        )
        assert config.coalescer is not None
        ordered = not config.coalescer.parallel
    else:
        path = DirectElementPath(config, dram_config, elem_req, elem_rsp)
        ordered = True
    gen = StridedRequestGen(config, burst, path, ordered=ordered)

    from .burst import IndirectBurst

    packer = ElementPacker(
        config,
        IndirectBurst(index_base=0, count=burst.count, element_base=0,
                      element_bytes=burst.element_bytes),
        path.lane_out,
    )
    arbiter = Arbiter([elem_req], reorder.req)

    sim = Simulator([container, gen, path, packer, arbiter, reorder, memory],
                    engine=engine or default_engine())
    cycles = sim.run_until(lambda: packer.done, max_cycles=max_cycles)

    if verify:
        addrs = burst.base + np.arange(burst.count, dtype=np.int64) * burst.stride_bytes
        if addrs.max() % 8 == 0 and burst.base % 8 == 0 and burst.stride_bytes % 8 == 0:
            expected = backing[addrs // 8]
            got = np.asarray(packer.output)
            if not np.array_equal(got, expected):
                raise SimulationError("strided output mismatch")

    return AdapterMetrics(
        variant="strided",
        count=burst.count,
        cycles=cycles,
        idx_txns=0,
        elem_txns=path.stats["wide_elem_txns"],
        element_bytes=burst.element_bytes,
        access_bytes=dram_config.access_bytes,
        freq_hz=dram_config.freq_hz,
        dram_stats=memory.stats.as_dict(),
    )


def fast_strided_stream(
    burst: StridedBurst,
    config: AdapterConfig | None = None,
    dram_config: DramConfig | None = None,
) -> AdapterMetrics:
    """Analytic counterpart of :func:`run_strided_stream`."""
    config = config or AdapterConfig()
    dram = dram_config or DramConfig()
    addrs = burst.base + np.arange(burst.count, dtype=np.int64) * burst.stride_bytes
    blocks = addrs // dram.access_bytes

    if config.has_coalescer:
        assert config.coalescer is not None
        elem_txns, tags = coalesce_window_exact(blocks, config.coalescer.window)
        watcher = elem_txns + ceil_div(burst.count, config.coalescer.window)
        gen = (
            ceil_div(burst.count, config.lanes)
            if config.coalescer.parallel
            else burst.count
        )
        tail = config.coalescer.watchdog_timeout
        if burst.count % config.coalescer.window:
            tail += config.coalescer.regulator_timeout
    else:
        elem_txns, tags = burst.count, blocks
        watcher, gen, tail = 0, burst.count, 0

    timeline = service_timeline(tags, dram)
    dram_cycles, walk = timeline.cycles, dict(timeline.stats)
    cycles = (
        max(gen, watcher, dram_cycles, elem_txns, ceil_div(burst.count, config.lanes))
        + PIPELINE_FILL_CYCLES
        + tail
    )
    return AdapterMetrics(
        variant="strided",
        count=burst.count,
        cycles=cycles,
        idx_txns=0,
        elem_txns=elem_txns,
        element_bytes=burst.element_bytes,
        access_bytes=dram.access_bytes,
        freq_hz=dram.freq_hz,
        dram_stats=walk,
    )
