"""Request coalescer (paper Sec. II-B, Fig. 2b).

Pipeline, upstream to downstream:

* **upsizer** — N narrow-request ports feed W request queues; stream
  position ``j`` lands in queue ``j mod W`` (each port thus distributes
  evenly over W/N queues, as in the paper).
* **regulator** — presents a complete window of the W oldest requests
  to the request watcher, or a partial window after a timeout.
* **request watcher** — holds the single CSHR; each cycle it matches
  all window entries against the CSHR tag in parallel, absorbs hits,
  and when misses are pending issues the current warp's wide request
  downstream while re-arming the CSHR from the oldest miss.  A warp
  left open when its window is exhausted carries into the next window
  (cache-less reuse); the watchdog force-issues it when starved.
* **metadata queues** — a deep hitmap FIFO (one entry per issued warp)
  and W shallow offset FIFOs, exactly Table I's 128 / 2048-over-W.
* **response splitter** — for each returning wide data block, pops the
  warp's hitmap entry and per-slot offsets and scatters the elements
  into the W element queues (partially, over several cycles, when an
  element queue is momentarily full).
* **downsizer** — maps the W element queues back onto the N output
  lanes in stream order (the upsizer's inverse).

The sequential (SEQx) variant uses the identical coalescer — the paper
serialises the *element requests* and reduces the upsizer to one input
port, so SEQx reaches the same coalesce rate as MLPx but its request
supply is capped at one per cycle (handled by the request generator's
sequential mode).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..config import AdapterConfig, DramConfig
from ..errors import ConfigError
from ..mem.request import MemRequest, MemResponse
from ..sim.component import FAR_FUTURE, Component
from ..sim.fifo import Fifo
from ..sim.stats import StatSet
from .burst import NarrowRequest
from .cshr import Cshr, Window
from .index_fetcher import ELEMENT_AXI_ID


class RequestCoalescer(Component):
    """The paper's request coalescer as one clocked component.

    Implements the :class:`~repro.axipack.element_request_gen.RequestSink`
    protocol on its upsizer side and exposes ``lane_out`` FIFOs (one per
    lane, in stream order) on its downsizer side.
    """

    def __init__(
        self,
        config: AdapterConfig,
        dram_config: DramConfig,
        elem_req: Fifo[MemRequest],
        elem_rsp: Fifo[MemResponse],
        name: str = "coal",
    ) -> None:
        super().__init__(name)
        if config.coalescer is None:
            raise ConfigError("RequestCoalescer requires a coalescer config")
        self.config = config
        self.cc = config.coalescer
        self.dram_config = dram_config
        self.elem_req = elem_req
        self.elem_rsp = elem_rsp
        self.stats = StatSet(name)

        window = self.cc.window
        self.request_queues: list[Fifo[NarrowRequest]] = [
            self.make_fifo(self.cc.sizer_queue_depth, f"req{q}") for q in range(window)
        ]
        self.hitmap_queue: Fifo[tuple[tuple[int, int], ...]] = self.make_fifo(
            self.cc.hitmap_queue_depth, "hitmap"
        )
        self.offsets_queues: list[Fifo[int]] = [
            self.make_fifo(self.cc.offsets_queue_depth, f"off{q}")
            for q in range(window)
        ]
        self.element_queues: list[Fifo[float]] = [
            self.make_fifo(self.cc.sizer_queue_depth, f"elem{q}")
            for q in range(window)
        ]
        self.lane_out: list[Fifo[float]] = [
            self.make_fifo(self.cc.sizer_queue_depth, f"lane{s}")
            for s in range(config.lanes)
        ]

        self._cshr = Cshr()
        self._window: Window | None = None
        self._regulator_wait = 0
        self._watchdog_wait = 0
        #: requests sitting in the upsizer queues (regulator fast path).
        self._queued_requests = 0
        #: downsizer: per-lane next queue index (stream-order round robin).
        self._down_ptr = [s for s in range(config.lanes)]
        #: response splitter: per-entry delivered flags for the head warp.
        self._split_delivered: list[bool] | None = None

    # -- upsizer (RequestSink protocol) ------------------------------------

    def can_accept(self, seq: int) -> bool:
        return self.request_queues[seq % self.cc.window].can_push()

    def accept(self, request: NarrowRequest) -> None:
        self.request_queues[request.seq % self.cc.window].push(request)
        self._queued_requests += 1

    def accept_watches(self) -> list[Fifo]:
        return list(self.request_queues)

    # -- main loop -----------------------------------------------------------

    def tick(self) -> None:
        self._tick_response_splitter()
        self._tick_downsizer()
        self._tick_watcher()
        self._tick_regulator()

    # -- regulator -------------------------------------------------------------

    def _tick_regulator(self) -> None:
        if self._window is not None and not self._window.exhausted:
            return
        # The previous window must be fully absorbed before the next is
        # presented; the open CSHR (if any) carries across the swap.
        if self._queued_requests == 0:
            self._regulator_wait = 0
            return
        may_be_complete = self._queued_requests >= self.cc.window
        if not may_be_complete and self._regulator_wait < self.cc.regulator_timeout:
            self._regulator_wait += 1
            return
        queues_ready = [q for q in self.request_queues if q.can_pop()]
        complete = len(queues_ready) == self.cc.window
        if not complete and self._regulator_wait < self.cc.regulator_timeout:
            self._regulator_wait += 1
            return
        requests = [q.pop() for q in queues_ready]
        self._queued_requests -= len(requests)
        self._window = Window(
            requests, self.dram_config.access_bytes, self.cc.window
        )
        self._regulator_wait = 0
        self.stats.add("windows")
        if not complete:
            self.stats.add("partial_windows")

    # -- request watcher ----------------------------------------------------------

    def _absorb_hits(self) -> int:
        """Merge all current-window entries matching the CSHR tag."""
        window = self._window
        if window is None or self._cshr.tag is None:
            return 0
        hits = window.take_group(
            self._cshr.tag, self._cshr.slot_counts, self.cc.offsets_queue_depth
        )
        for request in hits:
            offset = request.offset_in_block(
                self.dram_config.access_bytes, self.config.element_bytes
            )
            self._cshr.merge(window.slot_of(request), offset)
        if hits:
            self.stats.add("coalesced_hits", len(hits))
        return len(hits)

    def _can_issue(self) -> bool:
        if not self._cshr.has_hits:
            return False
        if not self.elem_req.can_push() or not self.hitmap_queue.can_push():
            return False
        return all(
            self.offsets_queues[slot].can_push(count)
            for slot, count in self._cshr.slot_counts.items()
        )

    def _issue_warp(self) -> None:
        assert self._cshr.tag is not None
        self.elem_req.push(
            MemRequest(
                addr=self._cshr.tag,
                nbytes=self.dram_config.access_bytes,
                axi_id=ELEMENT_AXI_ID,
            )
        )
        self.hitmap_queue.push(tuple(self._cshr.entries))
        for slot, offset in self._cshr.entries:
            self.offsets_queues[slot].push(offset)
        self.stats.add("warps")
        self.stats.add("wide_elem_txns")
        self._cshr.reset()
        self._watchdog_wait = 0

    def _tick_watcher(self) -> None:
        window = self._window
        absorbed = 0
        if self._cshr.armed:
            absorbed = self._absorb_hits()

        pending = window is not None and not window.exhausted
        if pending:
            assert window is not None
            if not self._cshr.armed:
                # Fresh CSHR: arm from the oldest miss and absorb its
                # whole request warp this cycle.
                self._cshr.arm(window.oldest_unabsorbed().block_addr(
                    self.dram_config.access_bytes
                ))
                self._absorb_hits()
                self._watchdog_wait = 0
            elif self._can_issue():
                # Misses pending: issue the coalesced warp and re-arm
                # from the oldest miss (its hits merge next cycle).
                next_tag = window.oldest_unabsorbed().block_addr(
                    self.dram_config.access_bytes
                )
                self._issue_warp()
                self._cshr.arm(next_tag)
            return

        # No pending misses: the open warp waits for the next window;
        # the watchdog force-issues it when input starves.
        if self._cshr.has_hits:
            if absorbed:
                self._watchdog_wait = 0
            else:
                self._watchdog_wait += 1
                if self._watchdog_wait >= self.cc.watchdog_timeout and self._can_issue():
                    self._issue_warp()
                    self._cshr.reset()
                    self.stats.add("watchdog_issues")

    # -- response splitter ----------------------------------------------------------

    def _tick_response_splitter(self) -> None:
        if not self.elem_rsp.can_pop() or not self.hitmap_queue.can_pop():
            return
        response = self.elem_rsp.peek()
        warp = self.hitmap_queue.peek()
        assert response.data is not None
        values = response.data.view(np.dtype("<f8"))

        # Parallel extraction with per-queue ready: deliver every entry
        # whose element queue has space.  Entries targeting the same
        # queue deliver in warp order (a blocked queue blocks only its
        # own later entries, never other queues' — this cross-queue
        # independence is what makes the return path deadlock-free).
        if self._split_delivered is None:
            self._split_delivered = [False] * len(warp)
        delivered = self._split_delivered
        blocked_slots: set[int] = set()
        for i, (slot, offset) in enumerate(warp):
            if delivered[i] or slot in blocked_slots:
                continue
            if not self.element_queues[slot].can_push():
                blocked_slots.add(slot)
                self.stats.add("splitter_stalls")
                continue
            queued_offset = self.offsets_queues[slot].pop()
            assert queued_offset == offset, "offset queue out of sync"
            self.element_queues[slot].push(float(values[offset]))
            delivered[i] = True

        if all(delivered):
            self.elem_rsp.pop()
            self.hitmap_queue.pop()
            self._split_delivered = None
            self.stats.add("warps_returned")

    # -- downsizer -----------------------------------------------------------------

    def _tick_downsizer(self) -> None:
        lanes = self.config.lanes
        window = self.cc.window
        for lane in range(lanes):
            queue = self.element_queues[self._down_ptr[lane]]
            sink = self.lane_out[lane]
            if queue.can_pop() and sink.can_push():
                sink.push(queue.pop())
                self._down_ptr[lane] = (self._down_ptr[lane] + lanes) % window

    # -- batched-engine protocol ----------------------------------------------------

    def next_event(self) -> int | None:
        cycle = self.cycle
        # Response splitter: while a returned warp sits at the head it
        # delivers (or records splitter_stalls) every single cycle.
        if self.elem_rsp.can_pop() and self.hitmap_queue.can_pop():
            return cycle
        # Downsizer: one element per lane per cycle while data is staged.
        for lane in range(self.config.lanes):
            if (
                self.element_queues[self._down_ptr[lane]].can_pop()
                and self.lane_out[lane].can_push()
            ):
                return cycle
        window = self._window
        if window is not None and not window.exhausted:
            # Watcher with pending misses: arming and issuing are
            # immediate; blocked mid-window (starved elem_req space)
            # only downstream pops can unblock us.
            if not self._cshr.armed or self._can_issue():
                return cycle
            if window.groups.get(self._cshr.tag):
                return cycle  # absorbable hits for the open warp
            return None
        due = FAR_FUTURE
        if self._cshr.has_hits and self._can_issue():
            wd = self.cc.watchdog_timeout - 1 - self._watchdog_wait
            due = cycle + wd if wd > 0 else cycle
        if self._queued_requests > 0:
            if (
                self._queued_requests >= self.cc.window
                or self._regulator_wait >= self.cc.regulator_timeout
            ):
                return cycle
            due = min(
                due, cycle + self.cc.regulator_timeout - self._regulator_wait
            )
        return None if due >= FAR_FUTURE else due

    def advance(self, cycles: int) -> None:
        # Replays what the skipped ticks would have done to the two pure
        # time counters; all other state is provably untouched while the
        # component is skippable (see next_event).
        window = self._window
        if window is not None and not window.exhausted:
            return
        if self._cshr.has_hits:
            self._watchdog_wait += cycles
        if self._queued_requests == 0:
            self._regulator_wait = 0
        elif (
            self._queued_requests < self.cc.window
            and self._regulator_wait < self.cc.regulator_timeout
        ):
            self._regulator_wait += cycles

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        # The regulator observes accepts the same cycle they are staged
        # (accept() fills request_queues during the generator's tick), so
        # those queues stay push-sensitive; everything else only matters
        # on pops and commits.
        return [*self.fifos, self.elem_req, self.elem_rsp], list(
            self.request_queues
        )

    def max_bulk(self, limit: int) -> int:
        # The only regular multi-cycle bursts this component has are the
        # pure waits: watchdog arming and regulator aging, whose expiry
        # distances are exactly what next_event reports.  Every cycle
        # strictly before that due point is a counter-only no-op (the
        # advance contract), so the span up to — but excluding — the
        # nearest watchdog/regulator boundary is bulk-safe.
        due = self.next_event()
        if due is None:
            return 0  # sleeping on external input; nothing to fast-forward
        span = due - self.cycle
        if span <= 1:
            return 0
        return span if span < limit else limit

    def bulk_tick(self, cycles: int) -> None:
        # A bulk span is by construction a skippable quiet span, so the
        # replay is identical to the engine's catch-up path.
        self.advance(cycles)

    # -- reporting ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        if self._window is not None and not self._window.exhausted:
            return True
        return self._cshr.has_hits or super().busy
