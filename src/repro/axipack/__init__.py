"""AXI-Pack indirect stream unit with near-memory request coalescing.

This package is the paper's primary contribution: an adapter that
translates AXI-Pack indirect burst requests (``vec[col_idx[j]]`` streams)
into bandwidth-efficient sequences of wide (512 b) DRAM accesses.

Two models are provided:

* :mod:`repro.axipack.adapter` — the cycle model, a component-level
  reimplementation of the RTL design (index fetcher, index splitter,
  element request generator, request coalescer, element packer).
* :mod:`repro.axipack.fastmodel` — a window-exact functional model with
  analytic pipeline timing, validated against the cycle model, for
  full-suite sweeps.

Use :func:`repro.axipack.run_indirect_stream` for either.
"""

from .adapter import IndirectStreamUnit, run_indirect_stream
from .burst import IndirectBurst, NarrowRequest
from .fastmodel import StreamAnalysis, analyze_stream, fast_indirect_stream
from .metrics import AdapterMetrics
from .scatter import fast_indirect_scatter, run_indirect_scatter
from .strided import StridedBurst, fast_strided_stream, run_strided_stream
from .variants import VARIANT_LABELS, make_adapter_config

__all__ = [
    "IndirectStreamUnit",
    "run_indirect_stream",
    "IndirectBurst",
    "NarrowRequest",
    "fast_indirect_stream",
    "analyze_stream",
    "StreamAnalysis",
    "AdapterMetrics",
    "run_indirect_scatter",
    "fast_indirect_scatter",
    "StridedBurst",
    "run_strided_stream",
    "fast_strided_stream",
    "VARIANT_LABELS",
    "make_adapter_config",
]
