"""Direct element path: the coalescer-less MLPnc configuration.

Every narrow element request issues its own wide DRAM access; the
single useful element is extracted from each returning block.  This is
the paper's baseline adapter whose indirect bandwidth averages ~2.9 GB/s
out of 32 GB/s — the motivation for the coalescer.
"""

from __future__ import annotations

import numpy as np

from ..config import AdapterConfig, DramConfig
from ..mem.request import MemRequest, MemResponse
from ..sim.component import Component
from ..sim.fifo import Fifo
from ..sim.stats import StatSet
from .burst import NarrowRequest
from .index_fetcher import ELEMENT_AXI_ID


class DirectElementPath(Component):
    """One wide access per narrow request, no data reuse.

    Implements the same ``RequestSink`` protocol and ``lane_out``
    interface as :class:`~repro.axipack.coalescer.RequestCoalescer`, so
    the surrounding adapter wiring is identical.  Requests must arrive
    in stream order (the request generator's ordered mode).
    """

    def __init__(
        self,
        config: AdapterConfig,
        dram_config: DramConfig,
        elem_req: Fifo[MemRequest],
        elem_rsp: Fifo[MemResponse],
        meta_depth: int = 128,
        name: str = "direct",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.dram_config = dram_config
        self.elem_req = elem_req
        self.elem_rsp = elem_rsp
        self.stats = StatSet(name)
        #: (lane, word offset) per outstanding wide element access.
        self.meta: Fifo[tuple[int, int]] = self.make_fifo(meta_depth, "meta")
        self.lane_out: list[Fifo[float]] = [
            self.make_fifo(2, f"lane{s}") for s in range(config.lanes)
        ]
        self._expected_seq = 0

    # -- RequestSink protocol ----------------------------------------------

    def can_accept(self, seq: int) -> bool:
        return (
            seq == self._expected_seq
            and self.meta.can_push()
            and self.elem_req.can_push()
        )

    def accept(self, request: NarrowRequest) -> None:
        block = request.block_addr(self.dram_config.access_bytes)
        offset = request.offset_in_block(
            self.dram_config.access_bytes, self.config.element_bytes
        )
        self.elem_req.push(
            MemRequest(
                addr=block,
                nbytes=self.dram_config.access_bytes,
                axi_id=ELEMENT_AXI_ID,
            )
        )
        self.meta.push((request.lane, offset))
        self.stats.add("wide_elem_txns")
        self._expected_seq += 1

    def accept_watches(self) -> list[Fifo]:
        return [self.meta, self.elem_req]

    # -- return path ----------------------------------------------------------

    def tick(self) -> None:
        if not self.elem_rsp.can_pop() or not self.meta.can_pop():
            return
        lane, offset = self.meta.peek()
        if not self.lane_out[lane].can_push():
            return
        response = self.elem_rsp.pop()
        self.meta.pop()
        assert response.data is not None
        values = response.data.view(np.dtype("<f8"))
        self.lane_out[lane].push(float(values[offset]))

    def next_event(self) -> int | None:
        if not self.elem_rsp.can_pop() or not self.meta.can_pop():
            return None
        lane, _offset = self.meta.peek()
        return self.cycle if self.lane_out[lane].can_push() else None

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        # accept() fills meta/elem_req during the generator's tick, but
        # those entries only become poppable here after commit, so the
        # return path never observes pre-commit state.
        return [*self.fifos, self.elem_rsp], []
