"""Element request generator: indices -> narrow element requests.

Pops up to one index per lane per cycle (N in parallel), adds the
requested element base address, and hands the resulting narrow requests
to the element path — either the request coalescer's W upsizer queues
or the direct (no-coalescer) path — through the :class:`RequestSink`
protocol.

The sequential (SEQx) configuration serialises generation to a single
request per cycle, reproducing the paper's reduced-input-port variant.
The direct path requires strict stream-order issue, which the ordered
mode provides at full N-per-cycle throughput.
"""

from __future__ import annotations

from typing import Protocol

from ..config import AdapterConfig
from ..sim.component import Component
from .burst import IndirectBurst, NarrowRequest
from .index_fetcher import IndexFetcher
from .index_splitter import IndexSplitter


class RequestSink(Protocol):
    """Element path input port(s) for narrow requests."""

    def can_accept(self, seq: int) -> bool:
        """True if the request with stream position ``seq`` fits now."""
        ...

    def accept(self, request: NarrowRequest) -> None:
        """Take ownership of one narrow request."""
        ...

    def accept_watches(self) -> list:
        """FIFOs whose activity can change ``can_accept`` (for the
        batched engine: the generator watches these)."""
        ...


class ElementRequestGen(Component):
    """Generates N parallel (or ordered / 1-sequential) narrow
    requests per cycle."""

    #: lanes progress independently (parallel coalescer).
    MODE_PARALLEL = "parallel"
    #: strict stream order, up to N per cycle (direct no-coalescer path).
    MODE_ORDERED = "ordered"
    #: strict stream order, one per cycle (SEQx variants).
    MODE_SEQUENTIAL = "sequential"

    def __init__(
        self,
        config: AdapterConfig,
        splitter: IndexSplitter,
        fetcher: IndexFetcher,
        burst: IndirectBurst,
        sink: RequestSink,
        mode: str = MODE_PARALLEL,
        name: str = "elem_gen",
    ) -> None:
        super().__init__(name)
        if mode not in (self.MODE_PARALLEL, self.MODE_ORDERED, self.MODE_SEQUENTIAL):
            raise ValueError(f"unknown request generation mode {mode!r}")
        self.config = config
        self.splitter = splitter
        self.fetcher = fetcher
        self.burst = burst
        self.sink = sink
        self.mode = mode
        self.generated = 0
        self._lane_counts = [0] * config.lanes
        self._cursor = 0

    @property
    def done(self) -> bool:
        return self.generated >= self.burst.count

    def tick(self) -> None:
        if self.done:
            return
        if self.mode == self.MODE_PARALLEL:
            self._tick_parallel()
        else:
            limit = 1 if self.mode == self.MODE_SEQUENTIAL else self.config.lanes
            self._tick_ordered(limit)

    def next_event(self) -> int | None:
        if self.done:
            return None
        lanes = self.config.lanes
        if self.mode == self.MODE_PARALLEL:
            for lane in range(lanes):
                seq = self._lane_counts[lane] * lanes + lane
                if (
                    seq < self.burst.count
                    and self.splitter.lane_queues[lane].can_pop()
                    and self.sink.can_accept(seq)
                ):
                    return self.cycle
            return None
        if self._cursor >= self.burst.count:
            return None
        lane = self._cursor % lanes
        if (
            self.splitter.lane_queues[lane].can_pop()
            and self.sink.can_accept(self._cursor)
        ):
            return self.cycle
        return None

    def watches(self) -> list:
        return [*self.splitter.lane_queues, *self.sink.accept_watches()]

    def _make_request(self, lane: int, seq: int, index: int) -> NarrowRequest:
        addr = self.burst.element_base + index * self.burst.element_bytes
        return NarrowRequest(seq=seq, lane=lane, addr=addr)

    def _emit(self, lane: int, seq: int) -> bool:
        """Try to move one index from lane queue to the sink."""
        queue = self.splitter.lane_queues[lane]
        if not queue.can_pop() or not self.sink.can_accept(seq):
            return False
        index = queue.pop()
        self.sink.accept(self._make_request(lane, seq, index))
        self.generated += 1
        self.fetcher.free_credits(1)
        return True

    def _tick_parallel(self) -> None:
        lanes = self.config.lanes
        for lane in range(lanes):
            seq = self._lane_counts[lane] * lanes + lane
            if seq < self.burst.count and self._emit(lane, seq):
                self._lane_counts[lane] += 1

    def _tick_ordered(self, limit: int) -> None:
        for _ in range(limit):
            if self._cursor >= self.burst.count:
                return
            lane = self._cursor % self.config.lanes
            if not self._emit(lane, self._cursor):
                return
            self._cursor += 1
