"""The AXI-Pack indirect stream unit: wiring and end-to-end runner.

:class:`IndirectStreamUnit` instantiates and connects the five adapter
components of paper Fig. 2a (index fetcher, index splitter, element
request generator, request coalescer / direct path, element packer)
behind a shared downstream AXI4 port to the DRAM channel model.

:func:`run_indirect_stream` reproduces the paper's Fig. 3/4 experiment
setup: an ideal upstream requestor issues one continuous AXI-Pack
indirect read burst over a column-index stream preloaded in DRAM, and
the run reports :class:`~repro.axipack.metrics.AdapterMetrics`.
"""

from __future__ import annotations

import numpy as np

from ..config import AdapterConfig, DramConfig
from ..errors import SimulationError
from ..mem.backing_store import BackingStore
from ..mem.dram import DramChannel
from ..mem.ideal import IdealMemory
from ..mem.multichannel import MultiChannelMemory
from ..mem.reorder import ReorderBuffer
from ..mem.request import MemRequest, MemResponse
from ..sim.clock import Simulator, default_engine
from ..sim.component import Component
from ..sim.fifo import Fifo
from .burst import IndirectBurst
from .coalescer import RequestCoalescer
from .direct_path import DirectElementPath
from .element_request_gen import ElementRequestGen
from .index_fetcher import ELEMENT_AXI_ID, INDEX_AXI_ID, IndexFetcher
from .index_splitter import IndexSplitter
from .metrics import AdapterMetrics
from .packer import ElementPacker
from .arbiter import Arbiter


class IndirectStreamUnit(Component):
    """The complete adapter, owning the wiring FIFOs between blocks."""

    def __init__(
        self,
        config: AdapterConfig,
        dram_config: DramConfig,
        burst: IndirectBurst,
        mem_req: Fifo[MemRequest],
        mem_rsp_sinks_out: dict[int, Fifo[MemResponse]],
        name: str = "adapter",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.dram_config = dram_config
        self.burst = burst

        # Wiring FIFOs owned by this container.
        self.idx_req: Fifo[MemRequest] = self.make_fifo(4, "idx_req")
        self.elem_req: Fifo[MemRequest] = self.make_fifo(4, "elem_req")
        self.idx_rsp: Fifo[MemResponse] = self.make_fifo(None, "idx_rsp")
        self.elem_rsp: Fifo[MemResponse] = self.make_fifo(None, "elem_rsp")
        mem_rsp_sinks_out[INDEX_AXI_ID] = self.idx_rsp
        mem_rsp_sinks_out[ELEMENT_AXI_ID] = self.elem_rsp

        # The five adapter blocks (Fig. 2a).
        self.fetcher = IndexFetcher(config, dram_config, self.idx_req)
        self.splitter = IndexSplitter(config, self.fetcher, self.idx_rsp)
        if config.has_coalescer:
            self.element_path: RequestCoalescer | DirectElementPath = (
                RequestCoalescer(config, dram_config, self.elem_req, self.elem_rsp)
            )
            assert config.coalescer is not None
            mode = (
                ElementRequestGen.MODE_PARALLEL
                if config.coalescer.parallel
                else ElementRequestGen.MODE_SEQUENTIAL
            )
        else:
            self.element_path = DirectElementPath(
                config, dram_config, self.elem_req, self.elem_rsp
            )
            mode = ElementRequestGen.MODE_ORDERED
        self.request_gen = ElementRequestGen(
            config, self.splitter, self.fetcher, burst, self.element_path, mode
        )
        self.packer = ElementPacker(config, burst, self.element_path.lane_out)
        self.arbiter = Arbiter([self.idx_req, self.elem_req], mem_req)

        self.fetcher.bursts.push(burst)

    def components(self) -> list[Component]:
        """All clocked blocks, in a valid tick order."""
        return [
            self,
            self.fetcher,
            self.splitter,
            self.request_gen,
            self.element_path,
            self.packer,
            self.arbiter,
        ]

    def tick(self) -> None:
        """The container itself only hosts wiring FIFOs."""

    def next_event(self) -> int | None:
        return None  # no behaviour of its own, ever

    def wake_fifos(self):
        return [], []  # owns wiring FIFOs but never reacts to them

    @property
    def done(self) -> bool:
        return self.packer.done

    @property
    def elem_txns(self) -> int:
        if isinstance(self.element_path, RequestCoalescer):
            return self.element_path.stats["wide_elem_txns"]
        return self.element_path.stats["wide_elem_txns"]

    @property
    def output(self) -> list[float]:
        return self.packer.output


def build_indirect_system(
    indices: np.ndarray,
    config: AdapterConfig,
    dram_config: DramConfig | None = None,
    vec: np.ndarray | None = None,
    ideal_memory: bool = False,
    channels: int = 1,
    engine: str | None = None,
):
    """Preload DRAM with an index stream and an element vector, and wire
    an adapter + reorder front + memory into a simulator.

    ``channels > 1`` replaces the single HBM2 pseudo-channel with a
    block-interleaved :class:`~repro.mem.multichannel.
    MultiChannelMemory` of that many channels (incompatible with
    ``ideal_memory``).  ``engine`` selects the simulation engine
    (``"step"`` or ``"batched"``, default
    :func:`~repro.sim.clock.default_engine`); both are bit-exact.
    Returns ``(simulator, adapter, memory, expected_elements)``.
    """
    dram_config = dram_config or DramConfig()
    if channels < 1:
        raise SimulationError("need at least one memory channel")
    if channels > 1 and ideal_memory:
        raise SimulationError("ideal memory is single-channel only")
    indices = np.ascontiguousarray(indices, dtype=np.uint32)
    if indices.size == 0:
        raise SimulationError("empty index stream")
    ncols = int(indices.max()) + 1
    if vec is None:
        vec = np.arange(1, ncols + 1, dtype=np.float64)
    else:
        vec = np.asarray(vec, dtype=np.float64)
        if len(vec) < ncols:
            raise SimulationError("vector shorter than max index")

    store_bytes = indices.nbytes + vec.nbytes + (1 << 12)
    store = BackingStore(store_bytes)
    idx_base = store.alloc_array(indices)
    vec_base = store.alloc_array(vec)

    if ideal_memory:
        memory: IdealMemory | DramChannel | MultiChannelMemory = IdealMemory(
            store, dram_config
        )
    elif channels > 1:
        memory = MultiChannelMemory(store, dram_config, num_channels=channels)
    else:
        memory = DramChannel(store, dram_config)
    burst = IndirectBurst(
        index_base=idx_base,
        count=len(indices),
        element_base=vec_base,
        index_bytes=4,
        element_bytes=config.element_bytes,
    )
    sinks: dict[int, Fifo[MemResponse]] = {}
    reorder = ReorderBuffer(memory.req, memory.rsp, sinks)
    adapter = IndirectStreamUnit(config, dram_config, burst, reorder.req, sinks)

    memory_parts = (
        memory.components() if isinstance(memory, MultiChannelMemory) else [memory]
    )
    simulator = Simulator(
        adapter.components() + [reorder, *memory_parts],
        engine=engine or default_engine(),
    )
    expected = vec[indices]
    return simulator, adapter, memory, expected


def run_indirect_stream(
    indices: np.ndarray,
    config: AdapterConfig,
    dram_config: DramConfig | None = None,
    variant: str = "",
    verify: bool = True,
    ideal_memory: bool = False,
    max_cycles: int = 200_000_000,
    channels: int = 1,
    engine: str | None = None,
) -> AdapterMetrics:
    """Stream ``vec[indices]`` through the cycle-accurate adapter.

    ``channels > 1`` runs the adapter against a block-interleaved
    multi-channel HBM (the substrate the ``multichannel`` sweep
    backend's ``model=cycle`` points use).  ``engine`` selects the
    step-wise or event-batched simulation engine (both bit-exact;
    default :func:`~repro.sim.clock.default_engine`).  Returns the
    paper's adapter metrics; raises
    :class:`~repro.errors.SimulationError` if the functional output
    does not match the reference gather (with ``verify=True``).
    """
    dram_config = dram_config or DramConfig()
    simulator, adapter, memory, expected = build_indirect_system(
        indices,
        config,
        dram_config,
        ideal_memory=ideal_memory,
        channels=channels,
        engine=engine,
    )
    cycles = simulator.run_until(lambda: adapter.done, max_cycles=max_cycles)

    if verify:
        got = np.asarray(adapter.output)
        if len(got) != len(expected) or not np.array_equal(got, expected):
            bad = int(np.flatnonzero(got != expected)[0]) if len(got) == len(
                expected
            ) else -1
            raise SimulationError(
                f"adapter output mismatch (first bad position {bad})"
            )

    stats = memory.stats.as_dict()
    metrics = AdapterMetrics(
        variant=variant or _label_for(config),
        count=len(indices),
        cycles=cycles,
        idx_txns=adapter.fetcher.blocks_issued,
        elem_txns=adapter.elem_txns,
        index_bytes=4,
        element_bytes=config.element_bytes,
        access_bytes=dram_config.access_bytes,
        freq_hz=dram_config.freq_hz,
        dram_stats=stats,
    )
    if isinstance(memory, (DramChannel, MultiChannelMemory)):
        metrics.extras["dram_utilization"] = memory.utilization(cycles)
    if isinstance(memory, MultiChannelMemory):
        metrics.extras["channels"] = float(memory.num_channels)
    return metrics


def _label_for(config: AdapterConfig) -> str:
    if not config.has_coalescer:
        return "MLPnc"
    assert config.coalescer is not None
    prefix = "MLP" if config.coalescer.parallel else "SEQ"
    return f"{prefix}{config.coalescer.window}"
