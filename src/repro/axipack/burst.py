"""AXI-Pack indirect burst descriptors and narrow element requests."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IndirectBurst:
    """One AXI-Pack indirect read burst.

    Semantics: fetch ``count`` indices of ``index_bytes`` each starting
    at ``index_base``, then deliver the ``element_bytes``-wide elements
    at ``element_base + index * element_bytes``, densely packed onto the
    wide upstream bus in index-stream order.
    """

    index_base: int
    count: int
    element_base: int
    index_bytes: int = 4
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("burst element count must be positive")
        if self.index_base < 0 or self.element_base < 0:
            raise ValueError("negative base address")

    @property
    def index_stream_bytes(self) -> int:
        """Total footprint of the index array for this burst."""
        return self.count * self.index_bytes

    @property
    def effective_bytes(self) -> int:
        """Payload bytes the burst delivers upstream."""
        return self.count * self.element_bytes


@dataclass(frozen=True)
class NarrowRequest:
    """One narrow element request inside the adapter.

    ``seq`` is the global position in the indirect stream (the ``j`` in
    ``vec[col_idx[j]]``); responses must be delivered upstream in
    ascending ``seq`` order.
    """

    seq: int
    lane: int
    addr: int

    def block_addr(self, block_bytes: int) -> int:
        """The wide DRAM block this narrow request falls into."""
        return self.addr - self.addr % block_bytes

    def offset_in_block(self, block_bytes: int, element_bytes: int) -> int:
        """Element offset inside its wide block."""
        return (self.addr % block_bytes) // element_bytes
