"""Fig. 6b: SpMV efficiency versus state-of-the-art vector processors.

On-chip cost (kB per GB/s of STREAM bandwidth) and SpMV performance
efficiency (GFLOP/s per GB/s) for SX-Aurora, A64FX (published numbers,
refs. [15]/[16]) and our simulated system.  The per-matrix bars use
af_shell10, pwtk and BenElechi1 plus the suite average, as the paper
does.  Headline ratios tracked by ``summary``: 1.4x / 2.6x better
on-chip efficiency while retaining 1x / 0.9x performance efficiency.
"""

from __future__ import annotations

from ..engine import SweepExecutor, grid_points
from ..hw.soa import SOA_PROCESSORS, our_processor_datum
from ..sparse.suite import FIG6B_MATRICES
from .common import adapter_model_from_env, scale_from_env


def run_fig6b(
    matrices: tuple[str, ...] = FIG6B_MATRICES,
    max_nnz: int | None = None,
    model: str | None = None,
    executor: SweepExecutor | None = None,
) -> dict:
    """Regenerate the Fig. 6b data (batched through the engine)."""
    max_nnz = max_nnz or scale_from_env()
    model = model or adapter_model_from_env()
    executor = executor or SweepExecutor()

    table = executor.run(
        grid_points("system", matrices, ("pack256",), max_nnz=max_nnz, model=model)
    )
    per_matrix = {cell["matrix"]: cell["gflops"] for cell in table}
    avg_gflops = sum(per_matrix.values()) / len(per_matrix)

    ours = our_processor_datum(avg_gflops)
    rows = []
    for datum in [*SOA_PROCESSORS.values(), ours]:
        rows.append(
            {
                "machine": datum.name,
                "gflops_per_gbps": round(datum.perf_efficiency_gflops_per_gbps, 4),
                "onchip_kb_per_gbps": round(datum.onchip_cost_kb_per_gbps, 2),
            }
        )
    for name, gflops in per_matrix.items():
        rows.append(
            {
                "machine": f"This Work [{name}]",
                "gflops_per_gbps": round(gflops / ours.stream_copy_gbps, 4),
                "onchip_kb_per_gbps": round(ours.onchip_cost_kb_per_gbps, 2),
            }
        )

    sx = SOA_PROCESSORS["SX-Aurora"]
    a64 = SOA_PROCESSORS["A64FX"]
    summary = {
        "avg_spmv_gflops": round(avg_gflops, 3),
        "onchip_eff_vs_sx_aurora": round(
            sx.onchip_cost_kb_per_gbps / ours.onchip_cost_kb_per_gbps, 2
        ),
        "onchip_eff_vs_a64fx": round(
            a64.onchip_cost_kb_per_gbps / ours.onchip_cost_kb_per_gbps, 2
        ),
        "perf_eff_vs_sx_aurora": round(
            ours.perf_efficiency_gflops_per_gbps
            / sx.perf_efficiency_gflops_per_gbps,
            2,
        ),
        "perf_eff_vs_a64fx": round(
            ours.perf_efficiency_gflops_per_gbps
            / a64.perf_efficiency_gflops_per_gbps,
            2,
        ),
    }
    return {"rows": rows, "summary": summary, "backends": ("system",)}
