"""Fig. 5a: SpMV runtime on the four systems.

Six representative matrices x {base, pack0, pack64, pack256}: speedup
versus the base system, normalised runtime, and the share spent on
indirect accesses.  Paper headline numbers tracked by ``summary``:
pack0 ~2.7x over base on average, pack256 ~3x over pack0 and ~10x over
base.
"""

from __future__ import annotations

from ..sparse.suite import FIG4_MATRICES, get_matrix, get_spec
from ..vpc import BaselineSystem, PackSystem, PACK_SYSTEMS
from .common import adapter_model_from_env, geomean, scale_from_env


def run_fig5a(
    matrices: tuple[str, ...] = FIG4_MATRICES,
    max_nnz: int | None = None,
    model: str | None = None,
) -> dict:
    """Regenerate the Fig. 5a data grid."""
    max_nnz = max_nnz or scale_from_env()
    model = model or adapter_model_from_env()

    rows = []
    speedups: dict[str, list[float]] = {name: [] for name in PACK_SYSTEMS}
    for name in matrices:
        spec = get_spec(name)
        matrix = get_matrix(name, max_nnz)
        llc_scale = matrix.nrows / spec.n
        base = BaselineSystem().run(matrix, name, llc_scale=llc_scale)
        rows.append(_row(name, "base", base, base))
        for system, variant in PACK_SYSTEMS.items():
            result = PackSystem(variant, adapter_model=model, name=system).run(
                matrix, name
            )
            rows.append(_row(name, system, result, base))
            speedups[system].append(base.runtime_cycles / result.runtime_cycles)

    summary = {
        f"{system}_speedup_geomean": round(geomean(values), 2)
        for system, values in speedups.items()
    }
    if speedups["pack0"] and speedups["pack256"]:
        summary["pack256_vs_pack0"] = round(
            geomean(speedups["pack256"]) / geomean(speedups["pack0"]), 2
        )
    return {"rows": rows, "summary": summary}


def _row(matrix: str, system: str, result, base) -> dict:
    return {
        "matrix": matrix,
        "system": system,
        "speedup_vs_base": round(base.runtime_cycles / result.runtime_cycles, 2),
        "norm_runtime": round(result.runtime_cycles / base.runtime_cycles, 4),
        "indir_fraction": round(result.indirect_fraction, 3),
        "runtime_cycles": round(result.runtime_cycles),
    }
