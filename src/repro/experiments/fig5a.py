"""Fig. 5a: SpMV runtime on the four systems.

Six representative matrices x {base, pack0, pack64, pack256}: speedup
versus the base system, normalised runtime, and the share spent on
indirect accesses.  Paper headline numbers tracked by ``summary``:
pack0 ~2.7x over base on average, pack256 ~3x over pack0 and ~10x over
base.
"""

from __future__ import annotations

from ..engine import SweepExecutor, grid_points
from ..vpc import PACK_SYSTEMS
from ..sparse.suite import FIG4_MATRICES
from .common import adapter_model_from_env, geomean, scale_from_env


def run_fig5a(
    matrices: tuple[str, ...] = FIG4_MATRICES,
    max_nnz: int | None = None,
    model: str | None = None,
    executor: SweepExecutor | None = None,
) -> dict:
    """Regenerate the Fig. 5a data grid (batched through the engine)."""
    max_nnz = max_nnz or scale_from_env()
    model = model or adapter_model_from_env()
    executor = executor or SweepExecutor()

    systems = ("base", *PACK_SYSTEMS)
    table = executor.run(
        grid_points("system", matrices, systems, max_nnz=max_nnz, model=model)
    )
    base_cycles = {
        cell["matrix"]: cell["runtime_cycles"]
        for cell in table
        if cell["system"] == "base"
    }

    rows = []
    speedups: dict[str, list[float]] = {name: [] for name in PACK_SYSTEMS}
    for cell in table:
        base = base_cycles[cell["matrix"]]
        rows.append(_row(cell, base))
        if cell["system"] in speedups:
            speedups[cell["system"]].append(base / cell["runtime_cycles"])

    summary = {
        f"{system}_speedup_geomean": round(geomean(values), 2)
        for system, values in speedups.items()
    }
    if speedups["pack0"] and speedups["pack256"]:
        summary["pack256_vs_pack0"] = round(
            geomean(speedups["pack256"]) / geomean(speedups["pack0"]), 2
        )
    return {"rows": rows, "summary": summary, "backends": ("system",)}


def _row(cell: dict, base_cycles: float) -> dict:
    return {
        "matrix": cell["matrix"],
        "system": cell["system"],
        "speedup_vs_base": round(base_cycles / cell["runtime_cycles"], 2),
        "norm_runtime": round(cell["runtime_cycles"] / base_cycles, 4),
        "indir_fraction": round(cell["indirect_fraction"], 3),
        "runtime_cycles": round(cell["runtime_cycles"]),
    }
