"""Fig. 3: indirect stream bandwidth.

Twenty matrices x eight adapter variants x two storage formats (SELL
and CSR), driven by an ideal upstream requestor with the matrix
preloaded in HBM.  Paper headline numbers tracked by ``summary``:

* MLPnc averages ~2.9 GB/s of the possible 32 GB/s;
* a 256-window parallel coalescer boosts the mean indirect bandwidth
  by 8.4x (SELL) / 8.6x (CSR);
* twelve of the twenty matrices exceed 70 % of peak (22.4 GB/s);
* SEQ256 stays capped under ~8 GB/s, ~2.9x over MLPnc and ~3x below
  MLP256.
"""

from __future__ import annotations

from ..axipack.variants import VARIANT_LABELS
from ..config import DramConfig
from ..engine import SweepExecutor, grid_points
from ..sparse.suite import list_matrices
from .common import adapter_model_from_env, scale_from_env


def run_fig3(
    formats: tuple[str, ...] = ("sell", "csr"),
    variants: tuple[str, ...] = VARIANT_LABELS,
    matrices: tuple[str, ...] | None = None,
    max_nnz: int | None = None,
    model: str | None = None,
    executor: SweepExecutor | None = None,
) -> dict:
    """Regenerate the Fig. 3 data grid (batched through the engine)."""
    matrices = matrices or tuple(list_matrices())
    max_nnz = max_nnz or scale_from_env()
    model = model or adapter_model_from_env()
    executor = executor or SweepExecutor()
    peak = DramConfig().peak_bandwidth_gbps

    table = executor.run(
        grid_points("adapter", matrices, variants, formats, max_nnz, model)
    )
    pivoted: dict[tuple[str, str], dict] = {}
    for cell in table:  # grid order is fmt-major, then matrix, then variant
        row = pivoted.setdefault(
            (cell["format"], cell["matrix"]),
            {"matrix": cell["matrix"], "format": cell["format"]},
        )
        row[cell["variant"]] = round(cell["indir_gbps"], 2)
    rows = list(pivoted.values())

    summary = _summarise(rows, formats, peak)
    return {"rows": rows, "summary": summary, "backends": ("adapter",)}


def _summarise(rows: list[dict], formats: tuple[str, ...], peak: float) -> dict:
    summary: dict[str, float] = {}
    for fmt in formats:
        fmt_rows = [r for r in rows if r["format"] == fmt]
        if not fmt_rows:
            continue
        nc = [r.get("MLPnc", 0.0) for r in fmt_rows]
        top = [r.get("MLP256", 0.0) for r in fmt_rows]
        seq = [r.get("SEQ256", 0.0) for r in fmt_rows]
        mean_nc = sum(nc) / len(nc)
        mean_top = sum(top) / len(top)
        summary[f"{fmt}_mlpnc_mean_gbps"] = round(mean_nc, 2)
        summary[f"{fmt}_mlp256_mean_gbps"] = round(mean_top, 2)
        summary[f"{fmt}_mlp256_boost"] = round(mean_top / mean_nc, 2) if mean_nc else 0
        summary[f"{fmt}_above_70pct_peak"] = sum(1 for b in top if b > 0.7 * peak)
        if seq and any(seq):
            mean_seq = sum(seq) / len(seq)
            summary[f"{fmt}_seq256_mean_gbps"] = round(mean_seq, 2)
            summary[f"{fmt}_seq256_boost_vs_nc"] = (
                round(mean_seq / mean_nc, 2) if mean_nc else 0
            )
            summary[f"{fmt}_mlp256_vs_seq256"] = (
                round(mean_top / mean_seq, 2) if mean_seq else 0
            )
            summary[f"{fmt}_seq256_max_gbps"] = round(max(seq), 2)
    return summary
