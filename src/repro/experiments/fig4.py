"""Fig. 4: downstream bandwidth breakdown and coalesce rate.

Six representative matrices (SELL format) x {MLPnc, MLP16, MLP64,
MLP256, SEQ256}.  The physical channel bandwidth splits into element
fetching, index fetching, and loss versus the 32 GB/s ideal; the
effective indirect bandwidth and the coalesce rate are reported on top.

Paper observations tracked by ``summary``:

* without a coalescer, element fetching monopolises the channel and
  index fetching is squeezed out;
* deeper parallel windows raise the coalesce rate, freeing bandwidth
  for index fetching (af_shell10 at MLP256 fetches indices at
  ~13 GB/s = ~3.3 coalesced requests per cycle);
* SEQ256 reaches the same coalesce rate but its one-request-per-cycle
  input caps index fetching near 4 GB/s.
"""

from __future__ import annotations

from ..axipack.variants import FIG4_VARIANTS
from ..engine import SweepExecutor, grid_points
from ..sparse.suite import FIG4_MATRICES
from .common import adapter_model_from_env, scale_from_env


def run_fig4(
    matrices: tuple[str, ...] = FIG4_MATRICES,
    variants: tuple[str, ...] = FIG4_VARIANTS,
    fmt: str = "sell",
    max_nnz: int | None = None,
    model: str | None = None,
    executor: SweepExecutor | None = None,
) -> dict:
    """Regenerate the Fig. 4 data grid (batched through the engine)."""
    max_nnz = max_nnz or scale_from_env()
    model = model or adapter_model_from_env()
    executor = executor or SweepExecutor()

    table = executor.run(
        grid_points("adapter", matrices, variants, (fmt,), max_nnz, model)
    )
    rows = [
        {
            "matrix": cell["matrix"],
            "variant": cell["variant"],
            "indir_gbps": round(cell["indir_gbps"], 2),
            "elem_gbps": round(cell["elem_gbps"], 2),
            "index_gbps": round(cell["index_gbps"], 2),
            "loss_gbps": round(cell["loss_gbps"], 2),
            "coal_rate": round(cell["coal_rate"], 3),
        }
        for cell in table
    ]

    summary = _summarise(rows)
    return {"rows": rows, "summary": summary, "backends": ("adapter",)}


def _summarise(rows: list[dict]) -> dict:
    def mean(variant: str, key: str) -> float:
        values = [r[key] for r in rows if r["variant"] == variant]
        return sum(values) / len(values) if values else 0.0

    af_256 = next(
        (
            r
            for r in rows
            if r["matrix"] == "af_shell10" and r["variant"] == "MLP256"
        ),
        None,
    )
    summary = {
        "mlpnc_mean_elem_gbps": round(mean("MLPnc", "elem_gbps"), 2),
        "mlpnc_mean_index_gbps": round(mean("MLPnc", "index_gbps"), 2),
        "mlp256_mean_coal_rate": round(mean("MLP256", "coal_rate"), 3),
        "seq256_mean_coal_rate": round(mean("SEQ256", "coal_rate"), 3),
        "seq256_mean_index_gbps": round(mean("SEQ256", "index_gbps"), 2),
    }
    if af_256:
        summary["af_shell10_mlp256_index_gbps"] = af_256["index_gbps"]
        summary["af_shell10_mlp256_reqs_per_cycle"] = round(
            af_256["index_gbps"] / 4.0, 2
        )
    return summary
