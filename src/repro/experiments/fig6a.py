"""Fig. 6a: AXI-Pack adapter area breakdown (GF12, 1 GHz).

kGE per block (others / ele_gen / idx_que / coal) for AP64 / AP128 /
AP256, plus the published mm² and standard-cell utilization points.
"""

from __future__ import annotations

from ..hw.area import adapter_area_breakdown


def run_fig6a(windows: tuple[int, ...] = (64, 128, 256)) -> dict:
    """Regenerate the Fig. 6a data."""
    rows = []
    for window in windows:
        breakdown = adapter_area_breakdown(window)
        rows.append(
            {
                "adapter": f"AP{window}",
                "others_kge": round(breakdown["others"], 1),
                "ele_gen_kge": round(breakdown["ele_gen"], 1),
                "idx_que_kge": round(breakdown["idx_que"], 1),
                "coal_kge": round(breakdown["coal"], 1),
                "total_kge": round(breakdown["total"], 1),
                "area_mm2": round(breakdown["area_mm2"], 3),
                "utilization_pct": round(breakdown["utilization_pct"], 1),
            }
        )
    summary = {
        f"coal_kge_w{row['adapter'][2:]}": row["coal_kge"] for row in rows
    }
    summary.update(
        {f"area_mm2_w{row['adapter'][2:]}": row["area_mm2"] for row in rows}
    )
    return {"rows": rows, "summary": summary}
