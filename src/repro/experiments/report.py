"""Compatibility shim over :mod:`repro.report`.

The report grew from a print-only script into the persistent result
store + diffable EXPERIMENTS.md subsystem in :mod:`repro.report`; this
module keeps the historic import surface alive:

* :data:`PAPER_CLAIMS` — now tuples of :class:`repro.report.claims.
  PaperClaim`; as ``NamedTuple`` they still unpack as the historic
  ``(experiment, metric, paper)`` triple prefix.
* :func:`paper_comparison` — now returns full verdict rows (the old
  ``experiment``/``metric``/``paper``/``measured`` keys are a subset).
* :func:`run_all` — run every experiment and print paper-style tables
  to a stream, without touching the store (use
  :func:`repro.report.run_report` to persist).

Run as a module it behaves like ``python -m repro report run`` (a
full-scale run into the uncommitted ``results/full/``)::

    python -m repro.experiments.report
"""

from __future__ import annotations

import sys
import time

from ..report.claims import PAPER_CLAIMS, claim_verdicts, paper_comparison
from ..report.render import EXPERIMENT_ORDER
from ..report.runner import RUNNERS, run_report
from .common import adapter_model_from_env, format_table, scale_from_env

__all__ = ["PAPER_CLAIMS", "claim_verdicts", "paper_comparison", "run_all"]


def run_all(stream=sys.stdout) -> dict[str, dict]:
    """Run every experiment and print paper-style tables (no store)."""
    started = time.time()
    results: dict[str, dict] = {}
    print(
        f"# repro experiment report (scale={scale_from_env()}, "
        f"adapter model={adapter_model_from_env()})",
        file=stream,
    )
    for name in EXPERIMENT_ORDER:
        t0 = time.time()
        result = RUNNERS[name]()
        results[name] = result
        print(f"\n## {name}  [{time.time() - t0:.1f}s]\n", file=stream)
        print(format_table(result["rows"]), file=stream)
        print("\nsummary:", file=stream)
        for key, value in result["summary"].items():
            print(f"  {key} = {value}", file=stream)

    print("\n## paper vs measured\n", file=stream)
    print(format_table(paper_comparison(results)), file=stream)
    print(f"\ntotal time: {time.time() - started:.1f}s", file=stream)
    return results


if __name__ == "__main__":
    # Mirror `python -m repro report run`: a non-quick run must target
    # results/full/, never the committed quick-scale reference.
    from ..report.runner import FULL_DOC_PATH, FULL_STORE_DIR

    run_report(FULL_STORE_DIR, FULL_DOC_PATH)
