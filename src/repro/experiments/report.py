"""Regenerate the full paper-vs-measured report (EXPERIMENTS.md body).

Run as a module::

    python -m repro.experiments.report            # default scale
    REPRO_SCALE_NNZ=250000 python -m repro.experiments.report
"""

from __future__ import annotations

import sys
import time

from .common import adapter_model_from_env, format_table, scale_from_env
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5a import run_fig5a
from .fig5b import run_fig5b
from .fig6a import run_fig6a
from .fig6b import run_fig6b
from .table1 import run_table1

#: (experiment, metric key, paper value) triples tracked in the report.
PAPER_CLAIMS: list[tuple[str, str, float]] = [
    ("fig3", "sell_mlpnc_mean_gbps", 2.9),
    ("fig3", "sell_mlp256_boost", 8.4),
    ("fig3", "csr_mlp256_boost", 8.6),
    ("fig3", "sell_above_70pct_peak", 12),
    ("fig3", "sell_seq256_boost_vs_nc", 2.9),
    ("fig3", "sell_mlp256_vs_seq256", 3.0),
    ("fig4", "af_shell10_mlp256_index_gbps", 13.2),
    ("fig4", "af_shell10_mlp256_reqs_per_cycle", 3.3),
    ("fig4", "seq256_mean_index_gbps", 4.0),
    ("fig5a", "pack0_speedup_geomean", 2.7),
    ("fig5a", "pack256_speedup_geomean", 10.0),
    ("fig5a", "pack256_vs_pack0", 3.0),
    ("fig5b", "base_util_min_pct", 5.9),
    ("fig5b", "pack0_util_mean_pct", 65.8),
    ("fig5b", "pack0_traffic_vs_ideal_mean", 5.6),
    ("fig5b", "pack256_traffic_vs_ideal_mean", 1.29),
    ("fig5b", "pack256_util_mean_pct", 61.0),
    ("fig6a", "coal_kge_w64", 307),
    ("fig6a", "coal_kge_w128", 617),
    ("fig6a", "coal_kge_w256", 1035),
    ("fig6a", "area_mm2_w64", 0.19),
    ("fig6a", "area_mm2_w256", 0.34),
    ("fig6b", "onchip_eff_vs_sx_aurora", 1.4),
    ("fig6b", "onchip_eff_vs_a64fx", 2.6),
    ("fig6b", "perf_eff_vs_sx_aurora", 1.0),
    ("fig6b", "perf_eff_vs_a64fx", 0.9),
    ("table1", "storage_kib", 27.0),
]


def run_all(stream=sys.stdout) -> dict[str, dict]:
    """Run every experiment and print paper-style tables."""
    started = time.time()
    results = {}
    runners = {
        "table1": run_table1,
        "fig3": run_fig3,
        "fig4": run_fig4,
        "fig5a": run_fig5a,
        "fig5b": run_fig5b,
        "fig6a": run_fig6a,
        "fig6b": run_fig6b,
    }
    print(
        f"# repro experiment report (scale={scale_from_env()}, "
        f"adapter model={adapter_model_from_env()})",
        file=stream,
    )
    for name, runner in runners.items():
        t0 = time.time()
        result = runner()
        results[name] = result
        print(f"\n## {name}  [{time.time() - t0:.1f}s]\n", file=stream)
        print(format_table(result["rows"]), file=stream)
        print("\nsummary:", file=stream)
        for key, value in result["summary"].items():
            print(f"  {key} = {value}", file=stream)

    print("\n## paper vs measured\n", file=stream)
    comparison = paper_comparison(results)
    print(format_table(comparison), file=stream)
    print(f"\ntotal time: {time.time() - started:.1f}s", file=stream)
    return results


def paper_comparison(results: dict[str, dict]) -> list[dict]:
    """Rows of (claim, paper value, measured value)."""
    rows = []
    for experiment, key, paper_value in PAPER_CLAIMS:
        summary = results.get(experiment, {}).get("summary", {})
        measured = summary.get(key, "n/a")
        rows.append(
            {
                "experiment": experiment,
                "metric": key,
                "paper": paper_value,
                "measured": measured,
            }
        )
    return rows


if __name__ == "__main__":
    run_all()
