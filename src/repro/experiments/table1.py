"""Table I: adapter / vector processor / DRAM model parameters."""

from __future__ import annotations

from ..config import AdapterConfig, DramConfig, VpcConfig
from ..hw.storage import adapter_storage_bytes
from ..units import KIB


def run_table1() -> dict:
    """Emit Table I as rows plus the values the defaults must satisfy."""
    adapter = AdapterConfig()
    vpc = VpcConfig()
    dram = DramConfig()
    assert adapter.coalescer is not None

    rows = [
        {
            "model": "AXI-Pack Adapter",
            "parameter": "queue depth",
            "value": (
                f"{adapter.index_queue_depth} (index), "
                f"{adapter.coalescer.sizer_queue_depth} (up/downsizer), "
                f"{adapter.coalescer.hitmap_queue_depth} (hitmap), "
                f"{adapter.coalescer.offsets_total_entries}/W (offsets)"
            ),
        },
        {
            "model": "AXI-Pack Adapter",
            "parameter": "on-chip storage",
            "value": f"{adapter_storage_bytes(adapter) / KIB:.1f} KiB (W=256)",
        },
        {
            "model": "Vector Processor System",
            "parameter": "configuration",
            "value": (
                f"{vpc.lanes} lanes, {vpc.freq_hz / 1e9:.0f} GHz, "
                f"{vpc.l2_spm_bytes // KIB} KB L2"
            ),
        },
        {
            "model": "DRAM and Controller",
            "parameter": "channel",
            "value": (
                f"One HBM2 chan, {dram.freq_hz / 1e9:.0f} GHz, "
                f"{dram.peak_bandwidth_gbps:.0f} GB/s (ideal)"
            ),
        },
        {
            "model": "DRAM and Controller",
            "parameter": "schedule policy",
            "value": "open adaptive, FR-FCFS",
        },
    ]
    summary = {
        "index_queue_depth": adapter.index_queue_depth,
        "sizer_queue_depth": adapter.coalescer.sizer_queue_depth,
        "hitmap_queue_depth": adapter.coalescer.hitmap_queue_depth,
        "offsets_total_entries": adapter.coalescer.offsets_total_entries,
        "storage_kib": adapter_storage_bytes(adapter) / KIB,
        "vpc_lanes": vpc.lanes,
        "l2_kib": vpc.l2_spm_bytes // KIB,
        "dram_peak_gbps": dram.peak_bandwidth_gbps,
    }
    return {"rows": rows, "summary": summary}
