"""Shared experiment plumbing: env knobs and table rendering.

Grid evaluation (stream caching, per-matrix dedup, process fan-out)
lives in :mod:`repro.engine`; every ``run_*`` experiment builds its
grid there and only post-processes rows here.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import ExperimentError

#: default per-matrix nonzero budget for experiment sweeps.
DEFAULT_SCALE_NNZ = 60_000

#: small, fast suite members for ``--quick`` canary runs (the CLI, the
#: committed quick-scale report store, and CI all use this trio).
QUICK_MATRICES = ("pwtk", "G3_circuit", "msc01440")
QUICK_NNZ = 12_000


def scale_from_env(default: int = DEFAULT_SCALE_NNZ) -> int:
    """Nonzero budget from ``REPRO_SCALE_NNZ``."""
    raw = os.environ.get("REPRO_SCALE_NNZ", "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ExperimentError(f"bad REPRO_SCALE_NNZ={raw!r}") from exc
    if value < 1000:
        raise ExperimentError("REPRO_SCALE_NNZ must be >= 1000")
    return value


def adapter_model_from_env(default: str = "fast") -> str:
    """Adapter timing model from ``REPRO_ADAPTER_MODEL``."""
    model = os.environ.get("REPRO_ADAPTER_MODEL", default)
    if model not in ("fast", "cycle"):
        raise ExperimentError(f"bad REPRO_ADAPTER_MODEL={model!r}")
    return model


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render rows as an aligned text table (paper-style)."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    texts = [[_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(text[i]) for text in texts))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-" * len(header)
    body = "\n".join(
        "  ".join(text[i].ljust(widths[i]) for i in range(len(columns)))
        for text in texts
    )
    return f"{header}\n{rule}\n{body}"


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def geomean(values: list[float]) -> float:
    """Geometric mean (the right average for speedups)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return float(np.exp(np.mean(np.log(values))))
