"""Experiment runners: one module per paper table/figure.

Each ``run_*`` function returns plain row dictionaries (ready for
tabular printing, JSON, or the result store) and a ``summary`` with
the headline numbers the paper reports; :mod:`repro.report` persists
both and regenerates EXPERIMENTS.md from them.

Environment knobs (all optional):

* ``REPRO_SCALE_NNZ`` — nonzero budget per suite matrix (default
  60000; the committed EXPERIMENTS.md is the 12000-nnz quick canary).
* ``REPRO_ADAPTER_MODEL`` — ``fast`` (default) or ``cycle`` for the
  adapter timing model used by the sweeps.
"""

from .common import (
    adapter_model_from_env,
    format_table,
    scale_from_env,
)
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5a import run_fig5a
from .fig5b import run_fig5b
from .fig6a import run_fig6a
from .fig6b import run_fig6b
from .table1 import run_table1

__all__ = [
    "adapter_model_from_env",
    "format_table",
    "scale_from_env",
    "run_fig3",
    "run_fig4",
    "run_fig5a",
    "run_fig5b",
    "run_fig6a",
    "run_fig6b",
    "run_table1",
]
