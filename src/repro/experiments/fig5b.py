"""Fig. 5b: SpMV off-chip traffic and HBM bandwidth utilization.

Same systems and matrices as Fig. 5a.  Paper headline numbers tracked
by ``summary``: base utilization as low as ~5.9 %; pack0 has the best
mean utilization (~65.8 %) but ~5.6x the ideal off-chip traffic;
pack256 cuts traffic to ~1.29x ideal at ~61 % utilization, even ~2 %
below the base system's traffic on average.
"""

from __future__ import annotations

from ..engine import SweepExecutor, grid_points
from ..vpc import PACK_SYSTEMS
from ..sparse.suite import FIG4_MATRICES
from .common import adapter_model_from_env, scale_from_env


def run_fig5b(
    matrices: tuple[str, ...] = FIG4_MATRICES,
    max_nnz: int | None = None,
    model: str | None = None,
    executor: SweepExecutor | None = None,
) -> dict:
    """Regenerate the Fig. 5b data grid (batched through the engine)."""
    max_nnz = max_nnz or scale_from_env()
    model = model or adapter_model_from_env()
    executor = executor or SweepExecutor()

    systems = ("base", *PACK_SYSTEMS)
    table = executor.run(
        grid_points("system", matrices, systems, max_nnz=max_nnz, model=model)
    )
    rows = [
        {
            "matrix": cell["matrix"],
            "system": cell["system"],
            "traffic_vs_ideal": round(cell["traffic_vs_ideal"], 3),
            "bw_utilization_pct": round(100 * cell["bw_utilization"], 1),
        }
        for cell in table
    ]

    summary = _summarise(rows)
    return {"rows": rows, "summary": summary, "backends": ("system",)}


def _summarise(rows: list[dict]) -> dict:
    def stats(system: str, key: str) -> list[float]:
        return [r[key] for r in rows if r["system"] == system]

    summary: dict[str, float] = {}
    for system in ("base", "pack0", "pack64", "pack256"):
        traffic = stats(system, "traffic_vs_ideal")
        util = stats(system, "bw_utilization_pct")
        if traffic:
            summary[f"{system}_traffic_vs_ideal_mean"] = round(
                sum(traffic) / len(traffic), 2
            )
            summary[f"{system}_util_mean_pct"] = round(sum(util) / len(util), 1)
            summary[f"{system}_util_min_pct"] = round(min(util), 1)
    if "base_traffic_vs_ideal_mean" in summary:
        summary["pack256_traffic_vs_base"] = round(
            summary["pack256_traffic_vs_ideal_mean"]
            / summary["base_traffic_vs_ideal_mean"],
            2,
        )
    return summary
