"""Deterministic sparse-matrix generators, one per structure class.

The paper's twenty evaluation matrices come from SuiteSparse and HPCG.
This environment has no network access, so each matrix is replaced by a
synthetic generator matched to its structure class.  What the adapter's
coalescer actually responds to is the *index-locality statistics* of the
column-index stream — row lengths, column bandwidth, and column reuse
across nearby rows — which each generator reproduces:

``banded_fem``
    Finite-element stiffness matrices (af_shell10, pwtk, BenElechi1,
    hood, ...): rows of 30-80 entries clustered in short consecutive
    runs within a band around the diagonal.
``stencil``
    Regular grid stencils (HPCG 27-point, fv1 9-point): fixed neighbour
    offsets on a structured grid.
``circuit``
    Post-layout circuit matrices (circuit5M_dc, G3_circuit): very short
    rows near the diagonal, occasional long-range couplings, and a few
    high-degree hub columns (supply nets) shared by many rows.
``mesh``
    Irregular meshes (adaptive, thermal2): low fixed degree with
    gaussian-distributed neighbour distance.
``kkt``
    KKT/saddle-point systems (nlpkkt120): 2x2 block structure with a
    banded (1,1) block and off-diagonal coupling bands at distance n/2.
``dense_block``
    Nearly-dense band matrices (exdata_1, Na5, nasa4704, msc*): wide
    contiguous bands giving extreme index locality.

All generators are deterministic for a given seed and matrix size.
"""

from __future__ import annotations

import numpy as np

from ..errors import SparseFormatError
from .coo import CooMatrix
from .csr import CsrMatrix


def _finish(
    nrows: int,
    ncols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    rng: np.random.Generator,
) -> CsrMatrix:
    """Assemble COO triples with random values and add a diagonal."""
    diag = np.arange(min(nrows, ncols), dtype=np.int64)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    vals = rng.uniform(-1.0, 1.0, size=len(rows))
    return CooMatrix(nrows, ncols, rows, cols, vals).to_csr()


def banded_fem(
    n: int,
    avg_row: float = 35.0,
    band: int = 2000,
    run: int = 3,
    group: int = 16,
    seed: int = 0,
) -> CsrMatrix:
    """Block-banded finite-element-like matrix.

    Each row holds roughly ``avg_row`` entries arranged as short runs of
    ``run`` consecutive columns whose bases fall within ``band`` of the
    diagonal.  Rows come in *groups* of ``group`` consecutive rows that
    share the same column runs — the degrees of freedom of one element
    patch couple to the same nodes — which is the row-to-row column
    reuse that near-memory coalescing exploits in both CSR and SELL
    traversal orders.
    """
    if n <= 0:
        raise SparseFormatError("n must be positive")
    rng = np.random.default_rng(seed)
    band = max(run + 1, min(band, n))
    group = max(1, group)
    runs_per_row = max(1, int(round(avg_row / run)))
    num_groups = -(-n // group)

    # Shared runs per group, anchored at the group's first row.
    group_bases = rng.integers(-(band // 2), band // 2, size=(num_groups, runs_per_row))
    anchors = (np.arange(num_groups) * group)[:, None]
    group_starts = np.clip(anchors + group_bases, 0, n - run)

    # Per-row jitter: neighbouring degrees of freedom couple to the same
    # element patch but not to literally identical node sets.
    row_groups = np.arange(n) // group
    jitter = rng.integers(-4, 5, size=(n, 1))
    starts = np.clip(group_starts[row_groups] + jitter, 0, n - run)
    cols = (starts[:, :, None] + np.arange(run)[None, None, :]).reshape(n, -1)
    rows = np.repeat(np.arange(n), runs_per_row * run)
    return _finish(n, n, rows, cols.reshape(-1), rng)


def stencil(nx: int, ny: int, nz: int = 1, points: int = 27, seed: int = 0) -> CsrMatrix:
    """Regular-grid stencil matrix (HPCG is the 27-point variant).

    ``points`` selects 27 (3-D cube), 9 (2-D box) or 5 (2-D cross).
    """
    if points not in (5, 9, 27):
        raise SparseFormatError("points must be 5, 9 or 27")
    rng = np.random.default_rng(seed)
    if points == 27:
        offsets = [
            (dx, dy, dz)
            for dz in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dx in (-1, 0, 1)
        ]
    elif points == 9:
        offsets = [(dx, dy, 0) for dy in (-1, 0, 1) for dx in (-1, 0, 1)]
    else:
        offsets = [(0, 0, 0), (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0)]

    n = nx * ny * nz
    ix, iy, iz = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    ix, iy, iz = ix.reshape(-1), iy.reshape(-1), iz.reshape(-1)
    point_ids = (iz * ny + iy) * nx + ix

    rows_parts = []
    cols_parts = []
    for dx, dy, dz in offsets:
        jx, jy, jz = ix + dx, iy + dy, iz + dz
        valid = (
            (jx >= 0) & (jx < nx) & (jy >= 0) & (jy < ny) & (jz >= 0) & (jz < nz)
        )
        rows_parts.append(point_ids[valid])
        cols_parts.append(((jz * ny + jy) * nx + jx)[valid])
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    return _finish(n, n, rows, cols, rng)


def circuit(
    n: int,
    avg_row: float = 4.0,
    local_band: int = 64,
    num_hubs: int = 4,
    hub_prob: float = 0.08,
    far_prob: float = 0.05,
    seed: int = 0,
) -> CsrMatrix:
    """Circuit-simulation-like matrix.

    Mostly very short near-diagonal rows, a small probability of a
    long-range coupling, and a handful of hub columns (supply nets)
    touched by a large fraction of rows — the pattern that gives
    circuit matrices their poor streaming locality.
    """
    rng = np.random.default_rng(seed)
    local_per_row = max(1, int(round(avg_row)) - 1)
    local_band = max(2, min(local_band, n))

    offs = rng.integers(-local_band, local_band + 1, size=(n, local_per_row))
    cols_local = np.clip(np.arange(n)[:, None] + offs, 0, n - 1)
    rows_local = np.repeat(np.arange(n), local_per_row)

    hub_cols = rng.integers(0, n, size=max(1, num_hubs))
    hub_rows = np.flatnonzero(rng.random(n) < hub_prob)
    hub_choice = hub_cols[rng.integers(0, len(hub_cols), size=len(hub_rows))]

    far_rows = np.flatnonzero(rng.random(n) < far_prob)
    far_cols = rng.integers(0, n, size=len(far_rows))

    rows = np.concatenate([rows_local, hub_rows, far_rows])
    cols = np.concatenate([cols_local.reshape(-1), hub_choice, far_cols])
    return _finish(n, n, rows, cols, rng)


def mesh(
    n: int,
    avg_row: float = 6.0,
    spread: float = 400.0,
    group: int = 4,
    seed: int = 0,
) -> CsrMatrix:
    """Irregular-mesh matrix: low degree, gaussian neighbour distance.

    Small groups of consecutive rows (cells of one refined patch) share
    part of their neighbour set; the rest is drawn per row, keeping the
    stream locality poor — these matrices are among the paper's weakest
    coalescers.
    """
    rng = np.random.default_rng(seed)
    per_row = max(1, int(round(avg_row)) - 1)
    shared = per_row // 2
    unique = per_row - shared
    spread = max(1.0, min(spread, n / 2))
    group = max(1, group)
    num_groups = -(-n // group)

    cols_parts = []
    rows_parts = []
    if shared:
        group_offs = np.rint(
            rng.normal(0.0, spread, size=(num_groups, shared))
        ).astype(np.int64)
        anchors = (np.arange(num_groups) * group)[:, None]
        shared_cols = np.clip(anchors + group_offs, 0, n - 1)
        row_groups = np.arange(n) // group
        cols_parts.append(shared_cols[row_groups].reshape(-1))
        rows_parts.append(np.repeat(np.arange(n), shared))
    if unique:
        offs = np.rint(rng.normal(0.0, spread, size=(n, unique))).astype(np.int64)
        cols_parts.append(np.clip(np.arange(n)[:, None] + offs, 0, n - 1).reshape(-1))
        rows_parts.append(np.repeat(np.arange(n), unique))
    return _finish(
        n, n, np.concatenate(rows_parts), np.concatenate(cols_parts), rng
    )


def kkt(
    n: int,
    avg_row: float = 14.0,
    band: int = 300,
    group: int = 8,
    seed: int = 0,
) -> CsrMatrix:
    """KKT / saddle-point structure: [[H, A^T], [A, 0]].

    The first half carries a banded Hessian block (with row-group
    column sharing as in FEM matrices); constraint rows in the second
    half couple back into the first half, producing two well-separated
    index clusters per window — the pattern that makes nlpkkt matrices
    mid-pack for coalescing.
    """
    rng = np.random.default_rng(seed)
    half = max(2, n // 2)
    per_row = max(2, int(round(avg_row)) - 1)
    band = max(2, min(band, half))
    group = max(1, group)

    row_idx = np.arange(n)
    num_groups = -(-n // group)
    group_offs = rng.integers(-band, band + 1, size=(num_groups, per_row))
    offs = group_offs[row_idx // group]
    anchor = np.where(row_idx < half, row_idx, row_idx - half)[:, None]
    anchor = (anchor // group) * group  # group-shared anchor
    cols_h = np.clip(anchor + offs, 0, half - 1)

    # Constraint coupling: upper rows also reference the lower block and
    # vice versa, at mirrored positions.
    couple = np.clip(anchor + rng.integers(-band, band + 1, size=(n, 2)), 0, half - 1)
    couple = np.where(row_idx[:, None] < half, couple + half, couple)
    couple = np.clip(couple, 0, n - 1)

    rows = np.concatenate(
        [np.repeat(row_idx, per_row), np.repeat(row_idx, 2)]
    )
    cols = np.concatenate([cols_h.reshape(-1), couple.reshape(-1)])
    return _finish(n, n, rows, cols, rng)


def dense_block(
    n: int,
    avg_row: float = 200.0,
    seed: int = 0,
) -> CsrMatrix:
    """Wide band: nearly dense rows with extreme locality.

    A small per-row offset and ~10 % random dropout keep the band from
    being perfectly contiguous, as in the real matrices of this class.
    """
    rng = np.random.default_rng(seed)
    width = max(2, min(int(round(avg_row * 1.1)), n))
    jitter = rng.integers(-8, 9, size=n)
    starts = np.clip(np.arange(n) - width // 2 + jitter, 0, max(0, n - width))
    cols = starts[:, None] + np.arange(width)[None, :]
    keep = rng.random(cols.shape) > 0.1
    rows = np.repeat(np.arange(n), width)
    return _finish(n, n, rows[keep.reshape(-1)], cols.reshape(-1)[keep.reshape(-1)], rng)


def random_uniform(n: int, avg_row: float = 8.0, seed: int = 0) -> CsrMatrix:
    """Uniformly random columns — worst-case locality control."""
    rng = np.random.default_rng(seed)
    per_row = max(1, int(round(avg_row)))
    cols = rng.integers(0, n, size=(n, per_row))
    rows = np.repeat(np.arange(n), per_row)
    return _finish(n, n, rows, cols.reshape(-1), rng)
