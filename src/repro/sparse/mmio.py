"""MatrixMarket coordinate IO.

SuiteSparse distributes matrices in MatrixMarket format; this module
reads and writes the coordinate flavour (``real`` / ``integer`` /
``pattern``, ``general`` / ``symmetric``) so users with local ``.mtx``
files can run the harness on the paper's real inputs.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from ..errors import SparseFormatError
from .coo import CooMatrix
from .csr import CsrMatrix

_HEADER_PREFIX = "%%MatrixMarket"
_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRIES = {"general", "symmetric"}


def _open_text(path: str | Path) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt")
    return open(path, "r")


def _data_lines(handle: IO[str]) -> Iterator[str]:
    for line in handle:
        line = line.strip()
        if line and not line.startswith("%"):
            yield line


def read_matrix_market(path: str | Path) -> CsrMatrix:
    """Read a MatrixMarket coordinate file into CSR.

    Symmetric matrices are expanded to their full (general) pattern,
    matching how the paper's SpMV consumes them.
    """
    with _open_text(path) as handle:
        header = handle.readline().strip()
        parts = header.split()
        if len(parts) != 5 or parts[0] != _HEADER_PREFIX:
            raise SparseFormatError(f"bad MatrixMarket header: {header!r}")
        _, kind, layout, field, symmetry = (p.lower() for p in parts)
        if kind != "matrix" or layout != "coordinate":
            raise SparseFormatError(
                f"only coordinate matrices are supported, got {kind}/{layout}"
            )
        if field not in _SUPPORTED_FIELDS:
            raise SparseFormatError(f"unsupported field type {field!r}")
        if symmetry not in _SUPPORTED_SYMMETRIES:
            raise SparseFormatError(f"unsupported symmetry {symmetry!r}")

        lines = _data_lines(handle)
        try:
            size_line = next(lines)
        except StopIteration:
            raise SparseFormatError("missing size line") from None
        tokens = size_line.split()
        if len(tokens) != 3:
            raise SparseFormatError(
                f"bad size line {size_line!r}: expected 'nrows ncols nnz'"
            )
        try:
            nrows, ncols, nnz = (int(tok) for tok in tokens)
        except ValueError:
            raise SparseFormatError(
                f"bad size line {size_line!r}: dimensions must be integers"
            ) from None
        if nrows < 0 or ncols < 0 or nnz < 0:
            raise SparseFormatError(
                f"bad size line {size_line!r}: dimensions must be non-negative"
            )

        value_tokens = 2 if field == "pattern" else 3
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        count = 0
        for line in lines:
            if count >= nnz:
                raise SparseFormatError(
                    f"expected {nnz} entries, found more"
                )
            tokens = line.split()
            if len(tokens) < value_tokens:
                raise SparseFormatError(
                    f"bad entry line {line!r}: expected at least "
                    f"{value_tokens} tokens"
                )
            try:
                row = int(tokens[0]) - 1
                col = int(tokens[1]) - 1
                val = float(tokens[2]) if field != "pattern" else 1.0
            except ValueError:
                raise SparseFormatError(f"bad entry line {line!r}") from None
            if not (0 <= row < nrows and 0 <= col < ncols):
                raise SparseFormatError(
                    f"entry ({row + 1}, {col + 1}) outside the declared "
                    f"{nrows}x{ncols} shape"
                )
            rows[count] = row
            cols[count] = col
            vals[count] = val
            count += 1
        if count != nnz:
            raise SparseFormatError(f"expected {nnz} entries, found {count}")

    if symmetry == "symmetric":
        off_diag = rows != cols
        mirrored_rows = cols[off_diag]
        mirrored_cols = rows[off_diag]
        rows = np.concatenate([rows, mirrored_rows])
        cols = np.concatenate([cols, mirrored_cols])
        vals = np.concatenate([vals, vals[off_diag]])
    return CooMatrix(nrows, ncols, rows, cols, vals).to_csr()


def write_matrix_market(matrix: CsrMatrix, path: str | Path) -> None:
    """Write a CSR matrix as a general real coordinate file."""
    path = Path(path)
    rows = np.repeat(np.arange(matrix.nrows), matrix.row_lengths())
    with open(path, "w") as handle:
        handle.write("%%MatrixMarket matrix coordinate real general\n")
        handle.write("% written by repro\n")
        handle.write(f"{matrix.nrows} {matrix.ncols} {matrix.nnz}\n")
        for r, c, v in zip(rows, matrix.col_idx, matrix.val):
            handle.write(f"{r + 1} {c + 1} {v:.17g}\n")
