"""The paper's 20-matrix evaluation suite (Sec. III).

Each :class:`MatrixSpec` records the published SuiteSparse/HPCG
dimensions and maps the matrix onto one of the synthetic structure
generators in :mod:`repro.sparse.generators`.  ``get_matrix`` accepts a
``max_nnz`` budget: matrices larger than the budget are *scaled down* by
reducing the row count while keeping row lengths and absolute column
locality, which preserves the per-window coalescing statistics the
adapter responds to (see DESIGN.md, "Model fidelity notes").

Results are memoised per (name, max_nnz) because suite sweeps touch the
same matrices repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from ..errors import ExperimentError
from . import generators
from .csr import CsrMatrix


@dataclass(frozen=True)
class MatrixSpec:
    """Published shape plus synthetic structure recipe for one matrix."""

    name: str
    #: published row/column count (square matrices throughout the suite).
    n: int
    #: published nonzero count.
    nnz: int
    #: structure class (documentation + generator dispatch).
    kind: str
    #: generator keyword arguments (excluding n and seed).
    params: dict

    @property
    def avg_row(self) -> float:
        return self.nnz / self.n


def _spec(name: str, n: int, nnz: int, kind: str, **params) -> MatrixSpec:
    return MatrixSpec(name, n, nnz, kind, params)


#: The twenty matrices of the paper's evaluation, in Fig. 3 order.
#: Dimensions follow the published SuiteSparse collection / HPCG sizes.
PAPER_SUITE: tuple[MatrixSpec, ...] = (
    _spec("af_shell10", 1_508_065, 52_259_885, "banded_fem",
          avg_row=34.7, band=700, run=8),
    _spec("adaptive", 6_815_744, 27_248_640, "mesh",
          avg_row=4.0, spread=1200.0),
    _spec("BenElechi1", 245_874, 13_150_496, "banded_fem",
          avg_row=53.5, band=900, run=10),
    _spec("bone010", 986_703, 47_851_783, "banded_fem",
          avg_row=48.5, band=3000, run=8),
    _spec("circuit5M_dc", 3_523_317, 14_865_409, "circuit",
          avg_row=4.2, local_band=96, num_hubs=6, hub_prob=0.06, far_prob=0.18),
    _spec("HPCG", 1_124_864, 29_791_000, "stencil", points=27),
    _spec("nlpkkt120", 3_542_400, 50_194_096, "kkt",
          avg_row=14.2, band=420),
    _spec("pwtk", 217_918, 11_524_432, "banded_fem",
          avg_row=52.9, band=400, run=10),
    _spec("Dubcova1", 16_129, 253_009, "banded_fem",
          avg_row=15.7, band=260, run=5),
    _spec("exdata_1", 6_001, 2_269_500, "dense_block", avg_row=378.0),
    _spec("F1", 343_791, 26_837_113, "banded_fem",
          avg_row=78.1, band=2600, run=9),
    _spec("fv1", 9_604, 85_264, "stencil", points=9),
    _spec("G3_circuit", 1_585_478, 7_660_826, "circuit",
          avg_row=4.8, local_band=48, num_hubs=3, hub_prob=0.03, far_prob=0.03),
    _spec("hood", 220_542, 9_895_422, "banded_fem",
          avg_row=44.9, band=600, run=10),
    _spec("msc01440", 1_440, 44_998, "dense_block", avg_row=31.2),
    _spec("msc10848", 10_848, 1_229_776, "dense_block", avg_row=113.4),
    _spec("Na5", 5_832, 305_630, "banded_fem",
          avg_row=52.4, band=500, run=10),
    _spec("nasa4704", 4_704, 104_756, "banded_fem",
          avg_row=22.3, band=240, run=7),
    _spec("s2rmq4m1", 5_489, 263_351, "banded_fem",
          avg_row=48.0, band=240, run=10),
    _spec("thermal2", 1_228_045, 8_580_313, "mesh",
          avg_row=7.0, spread=700.0),
)

#: The six representative matrices of the paper's deep-dive figures
#: (Figs. 4 and 5).
FIG4_MATRICES: tuple[str, ...] = (
    "af_shell10",
    "adaptive",
    "circuit5M_dc",
    "HPCG",
    "pwtk",
    "G3_circuit",
)

#: The three matrices called out in Fig. 6b.
FIG6B_MATRICES: tuple[str, ...] = ("af_shell10", "pwtk", "BenElechi1")

_BY_NAME = {spec.name: spec for spec in PAPER_SUITE}

#: Default nonzero budget for scaled instantiation (laptop-friendly).
DEFAULT_MAX_NNZ = 60_000

#: Generator seed behind every suite matrix; recorded in the report
#: store's run manifest so stored tables name their full provenance.
SUITE_SEED = 2024


def list_matrices() -> list[str]:
    """Names of the twenty suite matrices, in Fig. 3 order."""
    return [spec.name for spec in PAPER_SUITE]


def get_spec(name: str) -> MatrixSpec:
    """Look up a suite matrix's published metadata."""
    if name not in _BY_NAME:
        raise ExperimentError(
            f"unknown suite matrix {name!r}; known: {', '.join(_BY_NAME)}"
        )
    return _BY_NAME[name]


def _scaled_n(spec: MatrixSpec, max_nnz: int) -> int:
    if spec.nnz <= max_nnz:
        return spec.n
    target_rows = int(max_nnz / spec.avg_row)
    return max(256, min(spec.n, target_rows))


def _build(spec: MatrixSpec, n: int, seed: int) -> CsrMatrix:
    builder: Callable[..., CsrMatrix]
    params = dict(spec.params)
    if spec.kind == "stencil":
        points = params.pop("points")
        if points == 27:
            side = max(4, round(n ** (1.0 / 3.0)))
            return generators.stencil(side, side, side, points=27, seed=seed)
        side = max(4, round(n ** 0.5))
        return generators.stencil(side, side, 1, points=points, seed=seed)
    builder = getattr(generators, spec.kind)
    return builder(n, seed=seed, **params)


@lru_cache(maxsize=64)
def get_matrix(
    name: str,
    max_nnz: int = DEFAULT_MAX_NNZ,
    seed: int = SUITE_SEED,
) -> CsrMatrix:
    """Instantiate a suite matrix, scaled to at most ``max_nnz``
    nonzeros (pass a large budget for full published size)."""
    spec = get_spec(name)
    n = _scaled_n(spec, max_nnz)
    return _build(spec, n, seed)


def suite_summary(max_nnz: int = DEFAULT_MAX_NNZ) -> list[dict]:
    """One row per matrix: published vs instantiated shape."""
    rows = []
    for spec in PAPER_SUITE:
        matrix = get_matrix(spec.name, max_nnz)
        rows.append(
            {
                "name": spec.name,
                "kind": spec.kind,
                "published_n": spec.n,
                "published_nnz": spec.nnz,
                "n": matrix.nrows,
                "nnz": matrix.nnz,
                "avg_row": round(matrix.avg_row_length, 1),
            }
        )
    return rows
