"""Sparse-matrix substrate: formats, IO, kernels, and the matrix suite.

The paper evaluates on twenty SuiteSparse/HPCG matrices stored in CSR
and SELL (sliced ELLPACK, 32 rows per slice) with 32 b indices and 64 b
values.  This package implements both formats, reference SpMV kernels,
MatrixMarket IO, and deterministic structure-matched generators standing
in for the SuiteSparse downloads (no network in this environment).
"""

from .coo import CooMatrix
from .csr import CsrMatrix
from .sell import SellMatrix
from .spmv import spmv_csr, spmv_sell
from .suite import MatrixSpec, PAPER_SUITE, FIG4_MATRICES, get_matrix, list_matrices

__all__ = [
    "CooMatrix",
    "CsrMatrix",
    "SellMatrix",
    "spmv_csr",
    "spmv_sell",
    "MatrixSpec",
    "PAPER_SUITE",
    "FIG4_MATRICES",
    "get_matrix",
    "list_matrices",
]
