"""DRAM layout of SpMV working sets.

Places the arrays of a CSR or SELL SpMV into a
:class:`~repro.mem.BackingStore` exactly as the evaluation stores them
in HBM: 32 b indices, 64 b values/metadata, 64 B alignment.  The
returned layout carries the base addresses the adapter and system
models need to form index and element streams, plus per-array byte
counts for the traffic accounting of Fig. 5b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mem.backing_store import BackingStore
from .csr import CsrMatrix
from .sell import SellMatrix


@dataclass(frozen=True)
class SpmvLayout:
    """Addresses and sizes of one SpMV working set in DRAM."""

    fmt: str
    ptr_base: int
    idx_base: int
    val_base: int
    vec_base: int
    result_base: int
    ptr_bytes: int
    idx_bytes: int
    val_bytes: int
    vec_bytes: int
    result_bytes: int
    #: number of stored index entries (padded count for SELL).
    num_entries: int
    nrows: int
    ncols: int

    @property
    def total_input_bytes(self) -> int:
        """Bytes that must move on-chip at least once (excl. result)."""
        return self.ptr_bytes + self.idx_bytes + self.val_bytes + self.vec_bytes

    @property
    def ideal_traffic_bytes(self) -> int:
        """Minimum off-chip traffic: every input byte once, every
        result byte written once."""
        return self.total_input_bytes + self.result_bytes


def _place(store: BackingStore, array: np.ndarray) -> tuple[int, int]:
    base = store.alloc_array(array, align=64)
    return base, array.nbytes


def layout_csr(
    store: BackingStore, matrix: CsrMatrix, vec: np.ndarray | None = None
) -> SpmvLayout:
    """Allocate row_ptr / col_idx / val / vec / result for CSR SpMV."""
    if vec is None:
        vec = np.arange(1, matrix.ncols + 1, dtype=np.float64)
    ptr_base, ptr_bytes = _place(store, matrix.row_ptr)
    idx_base, idx_bytes = _place(store, matrix.col_idx)
    val_base, val_bytes = _place(store, matrix.val)
    vec_base, vec_bytes = _place(store, np.asarray(vec, dtype=np.float64))
    result = np.zeros(matrix.nrows, dtype=np.float64)
    result_base, result_bytes = _place(store, result)
    return SpmvLayout(
        fmt="csr",
        ptr_base=ptr_base,
        idx_base=idx_base,
        val_base=val_base,
        vec_base=vec_base,
        result_base=result_base,
        ptr_bytes=ptr_bytes,
        idx_bytes=idx_bytes,
        val_bytes=val_bytes,
        vec_bytes=vec_bytes,
        result_bytes=result_bytes,
        num_entries=matrix.nnz,
        nrows=matrix.nrows,
        ncols=matrix.ncols,
    )


def layout_sell(
    store: BackingStore, matrix: SellMatrix, vec: np.ndarray | None = None
) -> SpmvLayout:
    """Allocate slice_ptr / col_idx / val / vec / result for SELL SpMV."""
    if vec is None:
        vec = np.arange(1, matrix.ncols + 1, dtype=np.float64)
    ptr_base, ptr_bytes = _place(store, matrix.slice_ptr)
    idx_base, idx_bytes = _place(store, matrix.col_idx)
    val_base, val_bytes = _place(store, matrix.val)
    vec_base, vec_bytes = _place(store, np.asarray(vec, dtype=np.float64))
    result = np.zeros(matrix.nrows, dtype=np.float64)
    result_base, result_bytes = _place(store, result)
    return SpmvLayout(
        fmt="sell",
        ptr_base=ptr_base,
        idx_base=idx_base,
        val_base=val_base,
        vec_base=vec_base,
        result_base=result_base,
        ptr_bytes=ptr_bytes,
        idx_bytes=idx_bytes,
        val_bytes=val_bytes,
        vec_bytes=vec_bytes,
        result_bytes=result_bytes,
        num_entries=matrix.padded_nnz,
        nrows=matrix.nrows,
        ncols=matrix.ncols,
    )
