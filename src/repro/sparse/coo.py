"""Coordinate-format builder for sparse matrices."""

from __future__ import annotations

import numpy as np

from ..errors import SparseFormatError


class CooMatrix:
    """A coordinate-format matrix used as a construction intermediate.

    Duplicate entries are summed on conversion to CSR, matching the
    conventional MatrixMarket/scipy semantics.
    """

    def __init__(
        self,
        nrows: int,
        ncols: int,
        rows: np.ndarray | list[int] | None = None,
        cols: np.ndarray | list[int] | None = None,
        vals: np.ndarray | list[float] | None = None,
    ) -> None:
        if nrows <= 0 or ncols <= 0:
            raise SparseFormatError("matrix dimensions must be positive")
        self.nrows = nrows
        self.ncols = ncols
        self.rows = np.asarray(rows if rows is not None else [], dtype=np.int64)
        self.cols = np.asarray(cols if cols is not None else [], dtype=np.int64)
        self.vals = np.asarray(vals if vals is not None else [], dtype=np.float64)
        if not (len(self.rows) == len(self.cols) == len(self.vals)):
            raise SparseFormatError("rows, cols and vals must have equal length")
        self._validate_bounds()

    def _validate_bounds(self) -> None:
        if len(self.rows) == 0:
            return
        if self.rows.min() < 0 or self.rows.max() >= self.nrows:
            raise SparseFormatError("row index out of range")
        if self.cols.min() < 0 or self.cols.max() >= self.ncols:
            raise SparseFormatError("column index out of range")

    @property
    def nnz(self) -> int:
        """Stored entry count (before duplicate summing)."""
        return len(self.vals)

    def add_entries(
        self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
    ) -> None:
        """Append a batch of entries."""
        self.rows = np.concatenate([self.rows, np.asarray(rows, dtype=np.int64)])
        self.cols = np.concatenate([self.cols, np.asarray(cols, dtype=np.int64)])
        self.vals = np.concatenate([self.vals, np.asarray(vals, dtype=np.float64)])
        self._validate_bounds()

    def to_csr(self) -> "CsrMatrix":
        """Convert to CSR, summing duplicate coordinates."""
        from .csr import CsrMatrix

        if self.nnz == 0:
            row_ptr = np.zeros(self.nrows + 1, dtype=np.int64)
            return CsrMatrix(
                self.nrows,
                self.ncols,
                row_ptr,
                np.empty(0, dtype=np.uint32),
                np.empty(0, dtype=np.float64),
            )

        keys = self.rows * self.ncols + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = self.vals[order]

        unique_keys, first_pos = np.unique(keys, return_index=True)
        summed = np.add.reduceat(vals, first_pos)
        rows = (unique_keys // self.ncols).astype(np.int64)
        cols = (unique_keys % self.ncols).astype(np.uint32)

        row_counts = np.bincount(rows, minlength=self.nrows)
        row_ptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(row_counts, out=row_ptr[1:])
        return CsrMatrix(self.nrows, self.ncols, row_ptr, cols, summed)

    def to_dense(self) -> np.ndarray:
        """Dense ndarray (small matrices / tests only)."""
        dense = np.zeros((self.nrows, self.ncols))
        np.add.at(dense, (self.rows, self.cols), self.vals)
        return dense
