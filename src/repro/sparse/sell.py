"""Sliced ELLPACK (SELL) format, 32 rows per slice (paper Sec. III).

Rows are grouped into chunks of ``C`` (32) consecutive rows; each slice
is stored dense at the width of its longest row, column-of-slice major:
for slice ``s`` and slice-column ``c`` the ``C`` entries for rows
``s*C .. s*C+C-1`` are contiguous.  That storage order is exactly the
order the vector unit consumes entries and therefore the order of the
adapter's indirect index stream.

Padding entries repeat the row's last valid column index with a zero
value, so padded SpMV is exact and padded indirect accesses stay local
(they re-touch a block the row already touched, as a hardware
implementation would do to avoid polluting the stream with address 0).
Rows that are entirely empty pad with column 0.
"""

from __future__ import annotations

import numpy as np

from ..errors import SparseFormatError
from .csr import CsrMatrix


class SellMatrix:
    """SELL-C (sigma = 1, i.e. no row sorting) matrix."""

    INDEX_DTYPE = np.uint32
    VALUE_DTYPE = np.float64

    def __init__(
        self,
        nrows: int,
        ncols: int,
        chunk: int,
        slice_ptr: np.ndarray,
        slice_widths: np.ndarray,
        col_idx: np.ndarray,
        val: np.ndarray,
        true_nnz: int,
    ) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.chunk = int(chunk)
        #: entry offset of each slice into col_idx/val (len = nslices + 1).
        self.slice_ptr = np.ascontiguousarray(slice_ptr, dtype=np.int64)
        self.slice_widths = np.ascontiguousarray(slice_widths, dtype=np.int64)
        self.col_idx = np.ascontiguousarray(col_idx, dtype=self.INDEX_DTYPE)
        self.val = np.ascontiguousarray(val, dtype=self.VALUE_DTYPE)
        self.true_nnz = int(true_nnz)
        self._validate()

    def _validate(self) -> None:
        if self.chunk <= 0:
            raise SparseFormatError("chunk size must be positive")
        if len(self.slice_ptr) != self.nslices + 1:
            raise SparseFormatError("slice_ptr length must be nslices + 1")
        expected = self.slice_widths * self.chunk
        if np.any(np.diff(self.slice_ptr) != expected):
            raise SparseFormatError("slice_ptr inconsistent with slice widths")
        if self.slice_ptr[-1] != len(self.col_idx):
            raise SparseFormatError("slice_ptr must end at the padded nnz")
        if len(self.col_idx) != len(self.val):
            raise SparseFormatError("col_idx and val must have equal length")

    # -- shape ---------------------------------------------------------------

    @property
    def nslices(self) -> int:
        return -(-self.nrows // self.chunk)

    @property
    def padded_nnz(self) -> int:
        """Stored entries including padding."""
        return len(self.col_idx)

    @property
    def padding_overhead(self) -> float:
        """Padded / true nonzero ratio (1.0 = no padding)."""
        if self.true_nnz == 0:
            return 1.0
        return self.padded_nnz / self.true_nnz

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_csr(cls, csr: CsrMatrix, chunk: int = 32) -> "SellMatrix":
        nrows, ncols = csr.shape
        nslices = -(-nrows // chunk)
        row_lengths = csr.row_lengths()

        slice_widths = np.zeros(nslices, dtype=np.int64)
        for s in range(nslices):
            lo, hi = s * chunk, min((s + 1) * chunk, nrows)
            slice_widths[s] = row_lengths[lo:hi].max() if hi > lo else 0

        slice_ptr = np.zeros(nslices + 1, dtype=np.int64)
        np.cumsum(slice_widths * chunk, out=slice_ptr[1:])

        col_idx = np.zeros(slice_ptr[-1], dtype=cls.INDEX_DTYPE)
        val = np.zeros(slice_ptr[-1], dtype=cls.VALUE_DTYPE)

        for s in range(nslices):
            width = slice_widths[s]
            if width == 0:
                continue
            base = slice_ptr[s]
            for r_local in range(chunk):
                row = s * chunk + r_local
                # Destination stride: column-of-slice major layout.
                dst = base + r_local + np.arange(width) * chunk
                if row >= nrows or row_lengths[row] == 0:
                    col_idx[dst] = 0
                    continue
                lo, hi = csr.row_ptr[row], csr.row_ptr[row + 1]
                length = hi - lo
                col_idx[dst[:length]] = csr.col_idx[lo:hi]
                val[dst[:length]] = csr.val[lo:hi]
                # Pad by repeating the last valid index with value 0.
                col_idx[dst[length:]] = csr.col_idx[hi - 1]
        return cls(
            nrows, ncols, chunk, slice_ptr, slice_widths, col_idx, val, csr.nnz
        )

    # -- kernels ------------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference SELL SpMV: ``y = A @ x``."""
        x = np.asarray(x, dtype=self.VALUE_DTYPE)
        if x.shape != (self.ncols,):
            raise SparseFormatError(f"vector shape {x.shape} != ({self.ncols},)")
        y = np.zeros(self.nslices * self.chunk, dtype=self.VALUE_DTYPE)
        for s in range(self.nslices):
            width = self.slice_widths[s]
            if width == 0:
                continue
            base = self.slice_ptr[s]
            block_vals = self.val[base : base + width * self.chunk]
            block_cols = self.col_idx[base : base + width * self.chunk]
            contrib = (block_vals * x[block_cols]).reshape(width, self.chunk)
            y[s * self.chunk : (s + 1) * self.chunk] += contrib.sum(axis=0)
        return y[: self.nrows]

    def index_stream(self) -> np.ndarray:
        """Column indices in storage order (the adapter's indirect
        stream for SELL SpMV)."""
        return self.col_idx

    def to_csr(self) -> CsrMatrix:
        """Convert back to CSR, dropping padding entries."""
        rows = []
        cols = []
        vals = []
        for s in range(self.nslices):
            width = int(self.slice_widths[s])
            if width == 0:
                continue
            base = int(self.slice_ptr[s])
            block = slice(base, base + width * self.chunk)
            local_rows = np.tile(np.arange(self.chunk), width) + s * self.chunk
            keep = (self.val[block] != 0) & (local_rows < self.nrows)
            rows.append(local_rows[keep])
            cols.append(self.col_idx[block][keep])
            vals.append(self.val[block][keep])
        from .coo import CooMatrix

        if not rows:
            return CooMatrix(self.nrows, self.ncols).to_csr()
        coo = CooMatrix(
            self.nrows,
            self.ncols,
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
        )
        return coo.to_csr()

    # -- memory footprint ------------------------------------------------------

    def footprint_bytes(self) -> dict[str, int]:
        """Bytes per array as stored in DRAM by the evaluation."""
        return {
            "slice_ptr": self.slice_ptr.nbytes,
            "col_idx": self.col_idx.nbytes,
            "val": self.val.nbytes,
        }

    def __repr__(self) -> str:
        return (
            f"SellMatrix({self.nrows}x{self.ncols}, C={self.chunk}, "
            f"nnz={self.true_nnz}, padded={self.padded_nnz})"
        )
