"""Matrix corpora: manifests, fetch/cache, and the fast-load format.

The paper's headline claims target unstructured SuiteSparse matrices;
this module is the ingestion side of the corpus runner
(:mod:`repro.corpus`).  Three pieces:

* **Manifests** — a :class:`Corpus` is a named tuple of
  :class:`CorpusEntry` records.  An entry is either *synthetic* (one of
  the twenty :data:`repro.sparse.suite.PAPER_SUITE` generator recipes —
  the built-in family), *local* (a MatrixMarket file on disk, e.g. the
  committed CI fixtures under ``tests/data/corpus/``), or
  *suitesparse* (a SuiteSparse collection name/group/URL, fetched over
  the network only when fetching is explicitly enabled).  Manifests can
  also be loaded from a JSON file (:func:`load_corpus_manifest`).

* **Cache** — :class:`MatrixCache` is a content-addressed on-disk
  cache: each non-synthetic entry is ingested once (download or local
  read → MatrixMarket parse → fast-load write) into
  ``<cache>/<name>-<digest12>.npz`` where the digest identifies the
  source bytes.  Offline mode (the default everywhere) never touches
  the network: a *local* entry may be (re-)ingested from its file, a
  *suitesparse* entry must already be cached and valid or the cache
  raises a clear :class:`~repro.errors.CorpusError`.

* **Fast-load format** — an ``.npz`` holding the CSR arrays plus a
  JSON metadata record with a checksum over the array bytes.
  :func:`load_fastload` validates the checksum on every load, so a
  corrupted cache artifact is detected (and re-ingested when the
  source is still reachable) instead of silently feeding bad indices
  into a sweep.  Loading is a ``np.load`` — no MatrixMarket parsing on
  the hot path.

Engine integration: a cached corpus matrix travels through the sweep
engine under the name ``corpus:<npz path>``
(:func:`matrix_name` / :func:`load_corpus_name`);
:meth:`repro.engine.cache.AnalysisCache.matrix` resolves the prefix, so
every registered sweep backend — and the executor's sharding — works
on corpus entries unchanged.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import tarfile
import tempfile
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from ..errors import CorpusError, ReproError
from .csr import CsrMatrix
from .mmio import read_matrix_market
from .suite import PAPER_SUITE, SUITE_SEED, get_spec

#: engine matrix-name scheme for cached corpus artifacts.
CORPUS_NAME_PREFIX = "corpus:"

#: bump when the on-disk ``.npz`` layout changes shape.
FASTLOAD_VERSION = 1

#: default on-disk cache for ingested corpus matrices (gitignored
#: scratch; override with ``REPRO_CORPUS_CACHE`` or ``cache_dir=``).
DEFAULT_CACHE_DIR = Path("results/corpus_cache")

#: the committed CI fixture files (real MatrixMarket ingestion without
#: network): general / symmetric / pattern / gzipped coordinate files.
FIXTURE_DIR = Path("tests/data/corpus")

_SOURCES = ("synthetic", "local", "suitesparse")


def cache_dir_from_env(default: Path | str = DEFAULT_CACHE_DIR) -> Path:
    """Corpus cache directory from ``REPRO_CORPUS_CACHE``."""
    raw = os.environ.get("REPRO_CORPUS_CACHE", "")
    return Path(raw) if raw else Path(default)


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus matrix: where it comes from and how it is grouped.

    ``family`` is the roll-up axis of the report (structure class for
    synthetic entries, SuiteSparse group or a free-form label for real
    ones).  Exactly one source applies:

    * ``synthetic`` — ``name`` must be a paper-suite matrix; the entry
      is instantiated by the generators (no cache involved).
    * ``local`` — ``path`` names a MatrixMarket file (``.mtx`` or
      ``.mtx.gz``) on disk.
    * ``suitesparse`` — ``url`` names a collection archive
      (``.tar.gz`` with an ``.mtx`` member, or a bare ``.mtx[.gz]``);
      ``sha256`` optionally pins the expected archive digest.
    """

    name: str
    family: str
    source: str = "synthetic"
    url: str = ""
    path: str = ""
    sha256: str = ""
    group: str = ""

    def __post_init__(self) -> None:
        if self.source not in _SOURCES:
            raise CorpusError(
                f"corpus entry {self.name!r}: unknown source {self.source!r}; "
                f"expected one of {_SOURCES}"
            )
        if self.source == "synthetic":
            try:
                get_spec(self.name)
            except ReproError as exc:
                raise CorpusError(
                    f"synthetic corpus entry {self.name!r} is not a suite "
                    f"matrix: {exc}"
                ) from exc
        if self.source == "local" and not self.path:
            raise CorpusError(f"local corpus entry {self.name!r} needs a path")
        if self.source == "suitesparse" and not self.url:
            raise CorpusError(
                f"suitesparse corpus entry {self.name!r} needs a url"
            )

    @property
    def identity(self) -> tuple:
        """The fields that name this entry's source (cache/digest key)."""
        return (
            self.name, self.family, self.source, self.url, self.path,
            self.sha256, self.group,
        )


@dataclass(frozen=True)
class Corpus:
    """A named, ordered set of corpus entries."""

    name: str
    entries: tuple[CorpusEntry, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for entry in self.entries:
            if entry.name in seen:
                raise CorpusError(
                    f"corpus {self.name!r} repeats entry {entry.name!r}"
                )
            seen.add(entry.name)

    @property
    def digest(self) -> str:
        """12-hex digest of the entry identities (job-key ingredient)."""
        payload = json.dumps(
            [entry.identity for entry in self.entries], separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    def families(self) -> list[str]:
        """Distinct family labels, sorted."""
        return sorted({entry.family for entry in self.entries})


# -- built-in corpora --------------------------------------------------------


def synthetic_entries(names: tuple[str, ...]) -> tuple[CorpusEntry, ...]:
    """Suite matrices as corpus entries (family = structure class)."""
    return tuple(
        CorpusEntry(name=name, family=get_spec(name).kind) for name in names
    )


def fixture_entries(root: Path | str = FIXTURE_DIR) -> tuple[CorpusEntry, ...]:
    """The committed MatrixMarket fixture files as ``local`` entries."""
    root = Path(root)
    return tuple(
        CorpusEntry(name=name, family="fixture", source="local",
                    path=str(root / filename))
        for name, filename in (
            ("tiny_general", "tiny_general.mtx"),
            ("tiny_symmetric", "tiny_symmetric.mtx"),
            ("tiny_pattern", "tiny_pattern.mtx"),
            ("tiny_banded", "tiny_banded.mtx.gz"),
        )
    )


def builtin_corpus() -> Corpus:
    """All twenty paper-suite recipes as the built-in synthetic family."""
    return Corpus(
        "builtin", synthetic_entries(tuple(s.name for s in PAPER_SUITE))
    )


def quick_corpus() -> Corpus:
    """The CI canary: the three quick suite matrices plus the committed
    fixture files (real ingestion path, no network)."""
    return Corpus(
        "quick",
        synthetic_entries(("pwtk", "G3_circuit", "msc01440"))
        + fixture_entries(),
    )


def full_corpus() -> Corpus:
    """The committed full-scale tier: every suite recipe plus the
    fixtures — everything regenerable offline."""
    return Corpus(
        "full",
        synthetic_entries(tuple(s.name for s in PAPER_SUITE))
        + fixture_entries(),
    )


def suitesparse_demo_corpus() -> Corpus:
    """Two real SuiteSparse archives — the network fetch path.  Needs
    ``offline=False`` (``corpus run --fetch``) on first use; afterwards
    the cached fast-load artifacts serve offline runs."""
    base = "https://suitesparse-collection-website.engr.tamu.edu/MM"
    return Corpus(
        "suitesparse-demo",
        (
            CorpusEntry(
                name="bcsstk14", family="stiffness", source="suitesparse",
                group="HB", url=f"{base}/HB/bcsstk14.tar.gz",
            ),
            CorpusEntry(
                name="west0479", family="chemical", source="suitesparse",
                group="HB", url=f"{base}/HB/west0479.tar.gz",
            ),
        ),
    )


_BUILTIN_CORPORA: dict[str, Callable[[], Corpus]] = {
    "quick": quick_corpus,
    "builtin": builtin_corpus,
    "full": full_corpus,
    "suitesparse-demo": suitesparse_demo_corpus,
}


def corpus_names() -> tuple[str, ...]:
    """Registered built-in corpus names."""
    return tuple(_BUILTIN_CORPORA)


def get_corpus(name: str) -> Corpus:
    """A registered corpus by name, or a JSON manifest by path."""
    if name in _BUILTIN_CORPORA:
        return _BUILTIN_CORPORA[name]()
    if name.endswith(".json") and Path(name).is_file():
        return load_corpus_manifest(name)
    raise CorpusError(
        f"unknown corpus {name!r}; registered: {', '.join(corpus_names())} "
        "(or a path to a JSON corpus manifest)"
    )


def corpus_definition(corpus: Corpus) -> dict:
    """``corpus`` as a plain-JSON manifest payload (the inverse of
    :func:`corpus_from_definition`).

    The corpus runner embeds this in ``corpus_manifest.json`` so a tier
    built from an ad-hoc ``--corpus path.json`` stays checkable after
    the original manifest file is gone or moved.
    """
    entries = []
    for entry in corpus.entries:
        record = {"name": entry.name, "family": entry.family,
                  "source": entry.source}
        for field in ("url", "path", "sha256", "group"):
            value = getattr(entry, field)
            if value:
                record[field] = value
        entries.append(record)
    return {"name": corpus.name, "entries": entries}


def corpus_from_definition(payload: dict, label: str = "definition") -> Corpus:
    """Build a :class:`Corpus` from a manifest payload (an object with
    a ``name`` and an ``entries`` list); ``label`` names the source in
    error messages."""
    if not isinstance(payload, dict) or not isinstance(payload.get("entries"), list):
        raise CorpusError(
            f"corpus {label} must be an object with an 'entries' list"
        )
    name = payload.get("name") or label
    entries = []
    for record in payload["entries"]:
        if not isinstance(record, dict):
            raise CorpusError(f"corpus {label}: entries must be objects")
        unknown = sorted(
            set(record) - {"name", "family", "source", "url", "path", "sha256", "group"}
        )
        if unknown:
            raise CorpusError(
                f"corpus {label}: unknown entry fields {unknown}"
            )
        try:
            entries.append(CorpusEntry(**record))
        except TypeError as exc:
            raise CorpusError(f"corpus {label}: {exc}") from exc
    return Corpus(str(name), tuple(entries))


def load_corpus_manifest(path: Path | str) -> Corpus:
    """Parse a JSON corpus manifest::

        {"name": "mine", "entries": [
            {"name": "bcsstk14", "family": "stiffness",
             "source": "suitesparse", "group": "HB",
             "url": "https://.../HB/bcsstk14.tar.gz"},
            {"name": "local_case", "family": "fem",
             "source": "local", "path": "cases/local_case.mtx"}]}
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CorpusError(f"cannot read corpus manifest {path}: {exc}") from exc
    if isinstance(payload, dict) and not payload.get("name"):
        payload = {**payload, "name": path.stem}
    return corpus_from_definition(payload, label=f"manifest {path}")


# -- fast-load format --------------------------------------------------------


def _arrays_digest(
    row_ptr: np.ndarray, col_idx: np.ndarray, val: np.ndarray, shape: tuple
) -> str:
    digest = hashlib.sha256()
    digest.update(np.asarray(shape, dtype=np.int64).tobytes())
    for array in (row_ptr, col_idx, val):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def save_fastload(
    matrix: CsrMatrix, path: Path | str, source_digest: str = ""
) -> Path:
    """Write ``matrix`` as a checksummed fast-load ``.npz`` (atomic)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    shape = (matrix.nrows, matrix.ncols)
    meta = {
        "version": FASTLOAD_VERSION,
        "shape": list(shape),
        "nnz": int(matrix.nnz),
        "source_digest": source_digest,
        "digest": _arrays_digest(matrix.row_ptr, matrix.col_idx, matrix.val, shape),
    }
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            np.savez(
                tmp,
                row_ptr=matrix.row_ptr,
                col_idx=matrix.col_idx,
                val=matrix.val,
                meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            )
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    return path


def fastload_meta(path: Path | str) -> dict:
    """The metadata record of one fast-load artifact (no validation)."""
    try:
        with np.load(path) as data:
            return json.loads(bytes(data["meta"]).decode())
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise CorpusError(f"unreadable fast-load artifact {path}: {exc}") from exc


def load_fastload(path: Path | str) -> CsrMatrix:
    """Load and checksum-validate one fast-load artifact.

    Raises :class:`~repro.errors.CorpusError` if the file is missing,
    unreadable, from a different format version, or its stored checksum
    does not match the array bytes (bit rot / truncated write).
    """
    path = Path(path)
    if not path.is_file():
        raise CorpusError(f"no fast-load artifact at {path}")
    try:
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"]).decode())
            row_ptr = data["row_ptr"]
            col_idx = data["col_idx"]
            val = data["val"]
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise CorpusError(f"unreadable fast-load artifact {path}: {exc}") from exc
    if meta.get("version") != FASTLOAD_VERSION:
        raise CorpusError(
            f"fast-load artifact {path} is format v{meta.get('version')}; "
            f"this code reads v{FASTLOAD_VERSION} — re-ingest the entry"
        )
    shape = tuple(meta.get("shape", ()))
    if len(shape) != 2:
        raise CorpusError(f"fast-load artifact {path} has a malformed shape")
    if _arrays_digest(row_ptr, col_idx, val, shape) != meta.get("digest"):
        raise CorpusError(
            f"fast-load artifact {path} failed its checksum (corrupt cache); "
            "delete it or re-ingest the entry"
        )
    return CsrMatrix(shape[0], shape[1], row_ptr, col_idx, val)


def matrix_name(path: Path | str) -> str:
    """The engine matrix name of a cached corpus artifact."""
    return CORPUS_NAME_PREFIX + str(path)


def is_corpus_name(name: str) -> bool:
    return name.startswith(CORPUS_NAME_PREFIX)


def load_corpus_name(name: str) -> CsrMatrix:
    """Resolve a ``corpus:<path>`` engine matrix name."""
    if not is_corpus_name(name):
        raise CorpusError(f"not a corpus matrix name: {name!r}")
    return load_fastload(name[len(CORPUS_NAME_PREFIX):])


# -- fetch -------------------------------------------------------------------


def _fetch_url(url: str, timeout: float = 60.0) -> bytes:
    """Download one archive (only called when fetching is enabled)."""
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=timeout) as response:  # noqa: S310
            return response.read()
    except Exception as exc:
        raise CorpusError(f"fetch failed for {url}: {exc}") from exc


def _matrix_market_bytes(data: bytes, label: str) -> bytes:
    """Extract the ``.mtx`` payload from an archive's raw bytes.

    SuiteSparse MM archives are ``.tar.gz`` with a ``<group>/<name>/
    <name>.mtx`` member; bare ``.mtx`` and ``.mtx.gz`` payloads pass
    through.
    """
    if data[:2] == b"\x1f\x8b":  # gzip magic: a tarball or a bare .mtx.gz
        try:
            with tarfile.open(fileobj=io.BytesIO(data), mode="r:gz") as archive:
                members = [
                    m for m in archive.getmembers()
                    if m.isfile() and m.name.endswith(".mtx")
                ]
                if not members:
                    raise CorpusError(f"no .mtx member in archive for {label}")
                extracted = archive.extractfile(members[0])
                assert extracted is not None
                return extracted.read()
        except tarfile.ReadError:
            try:
                return gzip.decompress(data)
            except OSError as exc:
                raise CorpusError(
                    f"cannot decompress archive for {label}: {exc}"
                ) from exc
    return data


# -- the cache ---------------------------------------------------------------


class MatrixCache:
    """Content-addressed on-disk cache of ingested corpus matrices.

    ``fetcher`` (a ``url -> bytes`` callable) is injectable for tests;
    the default performs a real download and is only reached when
    ``ensure`` is called with ``offline=False``.
    """

    def __init__(
        self,
        root: Path | str | None = None,
        fetcher: Callable[[str], bytes] | None = None,
    ) -> None:
        self.root = Path(root) if root is not None else cache_dir_from_env()
        self.fetcher = fetcher or _fetch_url

    def source_digest(self, entry: CorpusEntry) -> str:
        """The digest addressing ``entry``'s cache artifact.

        Local files hash their current bytes (an edited fixture gets a
        fresh artifact and a fresh resume key); suitesparse entries use
        the declared ``sha256`` when pinned, else the (name, url)
        identity — their true content digest is recorded inside the
        artifact at ingest time.
        """
        if entry.source == "synthetic":
            raise CorpusError(
                f"synthetic entry {entry.name!r} is generated, not cached"
            )
        if entry.source == "local":
            path = Path(entry.path)
            if not path.is_file():
                raise CorpusError(
                    f"local corpus entry {entry.name!r}: no file at {path}"
                )
            return hashlib.sha256(path.read_bytes()).hexdigest()
        if entry.sha256:
            return entry.sha256
        return hashlib.sha256(f"{entry.name}|{entry.url}".encode()).hexdigest()

    def entry_path(self, entry: CorpusEntry, digest: str | None = None) -> Path:
        """Cache location for ``entry`` (content-addressed filename)."""
        digest = digest if digest is not None else self.source_digest(entry)
        return self.root / f"{entry.name}-{digest[:12]}.npz"

    def ensure(self, entry: CorpusEntry, offline: bool = True) -> tuple[Path, str]:
        """Ingest ``entry`` if needed; return ``(artifact path, digest)``.

        A cached artifact is checksum-validated before reuse.  On a
        failed checksum the entry is re-ingested when its source is
        still reachable (a local file, or the network with
        ``offline=False``); a suitesparse entry in offline mode raises
        a clear :class:`~repro.errors.CorpusError` instead.
        """
        digest = self.source_digest(entry)
        path = self.entry_path(entry, digest)
        if path.is_file():
            try:
                load_fastload(path)
                return path, digest
            except CorpusError:
                if entry.source == "suitesparse" and offline:
                    raise CorpusError(
                        f"cached artifact for {entry.name!r} at {path} is "
                        "corrupt and offline mode forbids re-fetching; "
                        "delete it and rerun with fetching enabled"
                    ) from None
                # fall through: re-ingest from the source
        if entry.source == "local":
            raw = Path(entry.path).read_bytes()
        else:
            if offline:
                raise CorpusError(
                    f"corpus entry {entry.name!r} is not cached under "
                    f"{self.root} and offline mode forbids fetching {entry.url}"
                )
            raw = self.fetcher(entry.url)
            if entry.sha256:
                actual = hashlib.sha256(raw).hexdigest()
                if actual != entry.sha256:
                    raise CorpusError(
                        f"fetched archive for {entry.name!r} hashes to "
                        f"{actual}, expected {entry.sha256}"
                    )
        matrix = self._parse(_matrix_market_bytes(raw, entry.name), entry)
        save_fastload(matrix, path, source_digest=digest)
        return path, digest

    def _parse(self, mtx_bytes: bytes, entry: CorpusEntry) -> CsrMatrix:
        suffix = ".mtx.gz" if mtx_bytes[:2] == b"\x1f\x8b" else ".mtx"
        handle, tmp_name = tempfile.mkstemp(suffix=suffix)
        try:
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(mtx_bytes)
            return read_matrix_market(tmp_name)
        finally:
            os.unlink(tmp_name)
