"""Compressed sparse row format with the paper's data widths.

Indices are 32 b (``uint32``) and values 64 b (``float64``), matching
Sec. III of the paper.  ``index_stream`` exposes the column-index array
in storage order — the exact stream the AXI-Pack adapter fetches and
indirects through.
"""

from __future__ import annotations

import numpy as np

from ..errors import SparseFormatError


class CsrMatrix:
    """CSR matrix: ``row_ptr`` (int64), ``col_idx`` (uint32), ``val``
    (float64)."""

    INDEX_DTYPE = np.uint32
    VALUE_DTYPE = np.float64

    def __init__(
        self,
        nrows: int,
        ncols: int,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        val: np.ndarray,
    ) -> None:
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.row_ptr = np.ascontiguousarray(row_ptr, dtype=np.int64)
        self.col_idx = np.ascontiguousarray(col_idx, dtype=self.INDEX_DTYPE)
        self.val = np.ascontiguousarray(val, dtype=self.VALUE_DTYPE)
        self._validate()

    def _validate(self) -> None:
        if self.nrows <= 0 or self.ncols <= 0:
            raise SparseFormatError("matrix dimensions must be positive")
        if len(self.row_ptr) != self.nrows + 1:
            raise SparseFormatError("row_ptr length must be nrows + 1")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.col_idx):
            raise SparseFormatError("row_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.row_ptr) < 0):
            raise SparseFormatError("row_ptr must be non-decreasing")
        if len(self.col_idx) != len(self.val):
            raise SparseFormatError("col_idx and val must have equal length")
        if len(self.col_idx) and self.col_idx.max() >= self.ncols:
            raise SparseFormatError("column index out of range")

    # -- shape and statistics ---------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        return len(self.val)

    @property
    def density(self) -> float:
        return self.nnz / (self.nrows * self.ncols)

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.row_ptr)

    @property
    def avg_row_length(self) -> float:
        return self.nnz / self.nrows

    # -- kernels ----------------------------------------------------------

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference CSR SpMV: ``y = A @ x``."""
        x = np.asarray(x, dtype=self.VALUE_DTYPE)
        if x.shape != (self.ncols,):
            raise SparseFormatError(f"vector shape {x.shape} != ({self.ncols},)")
        products = self.val * x[self.col_idx]
        y = np.zeros(self.nrows, dtype=self.VALUE_DTYPE)
        np.add.at(y, np.repeat(np.arange(self.nrows), self.row_lengths()), products)
        return y

    def index_stream(self) -> np.ndarray:
        """Column indices in storage order (the adapter's indirect
        stream for CSR SpMV)."""
        return self.col_idx

    # -- conversions --------------------------------------------------------

    def to_sell(self, chunk: int = 32) -> "SellMatrix":
        from .sell import SellMatrix

        return SellMatrix.from_csr(self, chunk)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape)
        rows = np.repeat(np.arange(self.nrows), self.row_lengths())
        dense[rows, self.col_idx] = self.val
        return dense

    # -- memory footprint ---------------------------------------------------

    def footprint_bytes(self) -> dict[str, int]:
        """Bytes per array as stored in DRAM by the evaluation."""
        return {
            "row_ptr": self.row_ptr.nbytes,
            "col_idx": self.col_idx.nbytes,
            "val": self.val.nbytes,
        }

    def __repr__(self) -> str:
        return (
            f"CsrMatrix({self.nrows}x{self.ncols}, nnz={self.nnz}, "
            f"avg_row={self.avg_row_length:.1f})"
        )
