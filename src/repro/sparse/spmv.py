"""Reference SpMV kernels (golden models for all system simulations).

``spmv_csr_scalar`` is a direct transcription of the paper's Figure 1
pseudocode and serves as the golden model the vectorised kernels and the
simulated systems are checked against.
"""

from __future__ import annotations

import numpy as np

from .csr import CsrMatrix
from .sell import SellMatrix


def spmv_csr_scalar(matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """Naive scalar CSR SpMV (paper Fig. 1 pseudocode).

    For each row i:
        result[i] = 0
        for j from row_ptr[i] to row_ptr[i+1]:
            result[i] += val[j] * vec[col_idx[j]]
    """
    x = np.asarray(x, dtype=np.float64)
    result = np.zeros(matrix.nrows)
    for i in range(matrix.nrows):
        acc = 0.0
        for j in range(matrix.row_ptr[i], matrix.row_ptr[i + 1]):
            acc += matrix.val[j] * x[matrix.col_idx[j]]
        result[i] = acc
    return result


def spmv_csr(matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorised CSR SpMV."""
    return matrix.spmv(x)


def spmv_sell(matrix: SellMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorised SELL SpMV."""
    return matrix.spmv(x)


def spmv_flops(nnz: int) -> int:
    """FLOP count of one SpMV: one multiply and one add per nonzero."""
    return 2 * nnz
