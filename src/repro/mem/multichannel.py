"""Multi-channel memory: block-interleaved HBM2 channels.

The paper evaluates one HBM2 pseudo-channel; real HBM stacks expose
many.  :class:`MultiChannelMemory` interleaves consecutive wide blocks
across ``num_channels`` independent :class:`~repro.mem.dram.DramChannel`
instances behind a single request/response pair, scaling peak bandwidth
linearly — the substrate for the multi-channel ablation.

:func:`fast_multichannel_stream` is the analytic counterpart and the
entry point of the engine's ``multichannel`` sweep backend
(:class:`repro.engine.backends.MultiChannelBackend`): the adapter's
window-exact coalescing with one bank-state service timeline
(:mod:`repro.mem.timeline`) per channel under this router's
block-interleave mapping.  The cycle adapter wires to
:class:`MultiChannelMemory` directly
(``run_indirect_stream(..., channels=N)``), which is what the
backend's ``model=cycle`` points run and the fast path is
cross-validated against.
"""

from __future__ import annotations

from ..config import DramConfig
from ..sim.component import Component
from ..sim.fifo import Fifo
from ..sim.stats import StatSet
from .backing_store import BackingStore
from .dram import DramChannel
from .request import MemRequest, MemResponse


class MultiChannelMemory(Component):
    """Block-interleaved fan-out over N independent DRAM channels."""

    def __init__(
        self,
        store: BackingStore,
        config: DramConfig | None = None,
        num_channels: int = 2,
        name: str = "hbm",
    ) -> None:
        super().__init__(name)
        if num_channels < 1:
            raise ValueError("need at least one channel")
        self.config = config or DramConfig()
        self.num_channels = num_channels
        self.req: Fifo[MemRequest] = self.make_fifo(
            self.config.queue_depth, "req"
        )
        self.rsp: Fifo[MemResponse] = self.make_fifo(None, "rsp")
        # Each channel strips the channel-select bits before its bank
        # decode (channel_stride), so an N-channel stream still spreads
        # over all num_banks banks per channel — the decode the fast
        # model's per-channel timelines assume.
        self.channels = [
            DramChannel(
                store, self.config, name=f"{name}.ch{i}",
                channel_stride=num_channels,
            )
            for i in range(num_channels)
        ]
        self.stats = StatSet(name)

    def channel_of(self, addr: int) -> int:
        """Consecutive wide blocks rotate across channels."""
        return (addr // self.config.access_bytes) % self.num_channels

    def components(self) -> list[Component]:
        """This router plus its channels, for simulator registration."""
        return [self, *self.channels]

    def tick(self) -> None:
        # Route requests (one per channel per cycle at most — each
        # channel has its own command port).
        routed: set[int] = set()
        while self.req.can_pop():
            request = self.req.peek()
            channel = self.channel_of(request.addr)
            if channel in routed or not self.channels[channel].req.can_push():
                break
            self.channels[channel].req.push(self.req.pop())
            routed.add(channel)
            self.stats.add(f"ch{channel}_reqs")
        # Merge responses.
        for channel in self.channels:
            while channel.rsp.can_pop():
                self.rsp.push(channel.rsp.pop())

    def next_event(self) -> int | None:
        if self.req.can_pop():
            request = self.req.peek()
            if self.channels[self.channel_of(request.addr)].req.can_push():
                return self.cycle
        if any(channel.rsp.can_pop() for channel in self.channels):
            return self.cycle
        return None

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        # rsp is unbounded and write-only from this side; the channels'
        # FIFOs gate routing (req capacity) and merging (rsp data).
        any_op = [self.req]
        any_op += [c.req for c in self.channels]
        any_op += [c.rsp for c in self.channels]
        return any_op, []

    @property
    def busy(self) -> bool:
        return any(c.busy for c in self.channels) or not self.req.is_empty

    @property
    def peak_bandwidth_gbps(self) -> float:
        return self.num_channels * self.config.peak_bandwidth_gbps

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        busy = sum(c.busy_bus_cycles for c in self.channels)
        return min(1.0, busy / (elapsed_cycles * self.num_channels))


def fast_multichannel_stream(
    indices,
    num_channels: int,
    config=None,
    dram_config: DramConfig | None = None,
    variant: str = "",
    analysis=None,
):
    """Analytic indirect-stream metrics over N interleaved channels.

    Same window-exact coalescing as :func:`repro.axipack.fastmodel.
    fast_indirect_stream`; the DRAM service time is the slowest of
    ``num_channels`` per-channel bank-state timelines
    (:func:`repro.mem.timeline.service_timeline`), each fed its slice
    of the block-interleaved transaction stream (consecutive wide
    blocks rotate, exactly :meth:`MultiChannelMemory.channel_of`, with
    the channel-select bits stripped before the bank decode exactly as
    the channels' ``channel_stride`` does).  ``config`` defaults to
    the paper's MLP256 adapter;  ``analysis`` is the optional
    precomputed stream analysis, as in the single-channel fast model.
    ``num_channels == 1`` is bit-identical to ``fast_indirect_stream``.
    """
    # Imported lazily: the mem layer sits below axipack, which imports
    # mem's cycle components at load time.
    from ..axipack.fastmodel import fast_indirect_stream
    from ..config import variant_config

    if num_channels < 1:
        raise ValueError("need at least one channel")
    return fast_indirect_stream(
        indices,
        config or variant_config("MLP256"),
        dram_config,
        variant=variant,
        analysis=analysis,
        channels=num_channels,
    )
