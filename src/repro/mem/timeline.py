"""Bank-state DRAM service timeline for the fast models.

The fast adapter models used to price DRAM with a two-term analytic
bound — ``max(bus occupancy, t_rc * max-activates-per-bank)`` — which
ignores the two controller properties the paper's coalescer actually
interacts with: the **bounded read queue** (the controller only reorders
among the requests it can see) and **FR-FCFS first-ready scheduling**
(requests to an already-open row are served before older row misses, so
same-row requests co-resident in the queue cost one activate).

:func:`service_timeline` replaces that bound with a per-bank state
timeline replay.  The transaction stream is walked in *queue windows*
of ``2 * queue_depth`` transactions — the queue's contents plus the
refill the controller admits while serving them (requests retire one
by one, so the reorder horizon a request actually experiences spans
about two queue depths; cross-validation against the cycle channel
confirms the factor).  A window is ingested, scheduled, and only then
does the next begin — the conservative model of a bounded queue (the
cycle model in :mod:`repro.mem.dram` refills continuously and is the
reference).  Within one queue window the scheduler is FR-FCFS:

* every bank serves its requests **grouped by row** — all requests to
  one row in the window share a single activate;
* the row left open by the bank's previous traffic is served first and
  costs **no** activate (the "first-ready" row hits);
* each remaining distinct row costs one activate, and a bank's
  activates are spaced ``t_rc`` apart.

The open-adaptive page policy is modelled as *most-recent-arrival*: the
row a bank leaves open after a window is the row of its newest request
in that window.  Because the carried row therefore never depends on the
scheduler's choices, every queue window can be priced independently and
the whole replay vectorises into a handful of sorts and segmented
reductions — the same discipline :func:`repro.axipack.fastmodel.
coalesce_window_exact` uses.

The service time of one queue window is the slower of the data bus
(``t_burst`` per transaction) and the busiest bank
(``max(r * t_burst, a * t_rc)`` for ``r`` requests needing ``a``
activates — column bursts and activate spacing respectively); total
service time is the sum over windows plus the same tREFI/tRFC refresh
stall accounting the cycle channel uses.  Note how the old bound is
recovered at both extremes: an unbounded queue over a single row run is
pure bus occupancy, and a row-thrashing stream (every request a new
row) degenerates to the activate bound exactly — the timeline is never
below the legacy bound on such streams, which the property suite pins.

Responses may complete out of order across banks; the AXI front
(:mod:`repro.mem.reorder`) restores per-ID ordering, so service-order
choices inside a window never affect the total cycle count — only the
activate/bus accounting does.

A deliberately naive pure-Python walk of the same contract lives in
:func:`repro.axipack.reference.service_timeline_reference`; the
vectorized implementation here must match it **bit-exactly** (cycles,
stats, per-bank busy cycles) on arbitrary streams, and a differential
tier cross-validates both against the cycle-accurate
:class:`repro.mem.dram.DramChannel` on the matrix suite.

:func:`analytic_dram_bound` preserves the legacy two-term bound for
benchmarks and lower-bound checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import DramConfig


@dataclass(frozen=True)
class TimelineResult:
    """Outcome of one bank-state timeline replay.

    ``bank_busy`` holds per-bank busy cycles (activate spacing and
    column bursts), summed over queue windows; a bank's occupancy is
    its share of the total service time.
    """

    #: total service cycles, including refresh stalls.
    cycles: int
    #: activates issued (row misses + conflicts; one per distinct row
    #: per bank per queue window, minus open-row hits).
    activates: int
    #: transactions served without a new activate.
    row_hits: int
    #: activates that replaced a different open row.
    row_conflicts: int
    #: first-ever activate of each touched bank.
    cold_activates: int
    #: refresh stalls charged (``cycles // t_refi`` of the pre-refresh
    #: service time, each costing ``t_rfc``).
    refreshes: int
    #: per-bank busy cycles, length ``num_banks``.
    bank_busy: np.ndarray
    #: queue windows the stream was replayed through.
    queue_windows: int

    @property
    def transactions(self) -> int:
        return self.row_hits + self.activates

    @property
    def row_hit_rate(self) -> float:
        """Transactions served on an already-open row."""
        if self.transactions == 0:
            return 0.0
        return self.row_hits / self.transactions

    def occupancy(self) -> np.ndarray:
        """Per-bank busy fraction of the total service time."""
        if self.cycles == 0:
            return np.zeros_like(self.bank_busy, dtype=np.float64)
        return self.bank_busy / self.cycles

    @property
    def stats(self) -> dict[str, int]:
        """Flat counter view (store/metrics friendly)."""
        return {
            "activates": self.activates,
            "row_hits": self.row_hits,
            "row_conflicts": self.row_conflicts,
            "cold_activates": self.cold_activates,
            "refreshes": self.refreshes,
            "queue_windows": self.queue_windows,
        }

    @property
    def legacy_stats(self) -> dict[str, int]:
        """The two counters the old analytic bound reported:
        ``row_changes`` (an activate over a previously open row) and
        ``activates``."""
        return {"row_changes": self.row_conflicts, "activates": self.activates}


def _empty_result(dram: DramConfig) -> TimelineResult:
    return TimelineResult(
        cycles=0,
        activates=0,
        row_hits=0,
        row_conflicts=0,
        cold_activates=0,
        refreshes=0,
        bank_busy=np.zeros(dram.num_banks, dtype=np.int64),
        queue_windows=0,
    )


def service_timeline(
    blocks: np.ndarray, dram: DramConfig, queue_depth: int | None = None
) -> TimelineResult:
    """Replay a wide-transaction stream through the bank-state timeline.

    ``blocks`` is the wide-block id of every transaction in issue
    order (the warp-tag stream of the coalescing models); bank and row
    decode exactly as in :class:`repro.mem.dram.DramChannel`
    (``block % num_banks`` / ``block // (num_banks * blocks_per_row)``).
    ``queue_depth`` overrides ``dram.queue_depth``; the replay's
    reorder horizon is ``2 * queue_depth`` (see the module docstring).

    Fully vectorized — sorts and segmented reductions only; bit-exact
    against :func:`repro.axipack.reference.service_timeline_reference`
    (enforced by the property-based differential suite).
    """
    depth = dram.queue_depth if queue_depth is None else int(queue_depth)
    if depth < 1:
        raise ValueError("queue depth must be >= 1")
    horizon = 2 * depth
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    n = int(blocks.size)
    if n == 0:
        return _empty_result(dram)

    num_banks = dram.num_banks
    banks = blocks % num_banks
    rows = blocks // (num_banks * dram.blocks_per_row)
    window = np.arange(n, dtype=np.int64) // horizon
    num_windows = int(window[-1]) + 1

    # Row of each request's previous same-bank request (stream order),
    # with a below-every-row sentinel where the bank is untouched so
    # far (rows can be negative, so -1 is not safe).  The stable
    # by-bank sort keeps stream order inside each bank's run.
    no_row = int(rows.min()) - 1
    by_bank = np.argsort(banks, kind="stable")
    prev_row = np.full(n, no_row, dtype=np.int64)
    same_bank = banks[by_bank][1:] == banks[by_bank][:-1]
    prev_row[by_bank[1:][same_bank]] = rows[by_bank][:-1][same_bank]

    # (queue window, bank) groups, window-major; stream order inside a
    # group is preserved by the stable sort.
    key = window * num_banks + banks
    by_group = np.argsort(key, kind="stable")
    key_sorted = key[by_group]
    rows_grouped = rows[by_group]
    starts = np.flatnonzero(np.r_[True, key_sorted[1:] != key_sorted[:-1]])
    group_key = key_sorted[starts]
    group_bank = group_key % num_banks
    group_window = group_key // num_banks
    group_size = np.diff(np.r_[starts, n])

    # Carried open row entering each group = the previous same-bank
    # row of the group's first (oldest) request — necessarily from an
    # earlier queue window, since a group holds all of its bank's
    # requests of one window.
    carry_in = prev_row[by_group[starts]]

    # First-ready hit: the carried row appears anywhere in the group
    # (FR-FCFS serves those requests before any precharge).
    carry_hit = np.bitwise_or.reduceat(
        rows_grouped == np.repeat(carry_in, group_size), starts
    )

    # Distinct rows per group via a second, by-row sort; group order
    # (ascending key) matches the by-group sort above.
    by_row = np.lexsort((rows, key))
    new_group = np.r_[True, key[by_row][1:] != key[by_row][:-1]]
    new_row = new_group | np.r_[True, rows[by_row][1:] != rows[by_row][:-1]]
    distinct_rows = np.add.reduceat(new_row.astype(np.int64), np.flatnonzero(new_group))

    activates = distinct_rows - carry_hit.astype(np.int64)
    bank_time = np.maximum(group_size * dram.t_burst, activates * dram.t_rc)

    # One queue window's service time: data bus vs its busiest bank.
    window_starts = np.flatnonzero(np.r_[True, group_window[1:] != group_window[:-1]])
    bank_max = np.maximum.reduceat(bank_time, window_starts)
    bus = np.bincount(window, minlength=num_windows) * dram.t_burst
    cycles = int(np.maximum(bus, bank_max).sum())

    refreshes = 0
    if dram.t_refi > 0:
        refreshes = cycles // dram.t_refi
        cycles += refreshes * dram.t_rfc

    bank_busy = np.zeros(num_banks, dtype=np.int64)
    np.add.at(bank_busy, group_bank, bank_time)
    total_activates = int(activates.sum())
    cold = int(np.count_nonzero(carry_in == no_row))
    return TimelineResult(
        cycles=cycles,
        activates=total_activates,
        row_hits=n - total_activates,
        row_conflicts=total_activates - cold,
        cold_activates=cold,
        refreshes=int(refreshes),
        bank_busy=bank_busy,
        queue_windows=num_windows,
    )


def analytic_dram_bound(
    blocks: np.ndarray, dram: DramConfig
) -> tuple[int, dict[str, int]]:
    """The legacy two-term service bound the timeline replaced.

    ``max(bus occupancy, t_rc * max-activates-per-bank)`` over an
    in-order open-row walk — no queue bound, no reordering.  Kept for
    the timeline's lower-bound property checks and the
    ``benchmarks/bench_timeline.py`` runtime gate; pinned bit-exactly
    by :func:`repro.axipack.reference.estimate_dram_cycles_reference`.
    """
    txns = int(blocks.size)
    if txns == 0:
        return 0, {"row_changes": 0, "activates": 0}
    banks = blocks % dram.num_banks
    rows = blocks // (dram.num_banks * dram.blocks_per_row)

    order = np.argsort(banks, kind="stable")
    banks_sorted = banks[order]
    rows_sorted = rows[order]
    same_bank = banks_sorted[1:] == banks_sorted[:-1]
    row_change = rows_sorted[1:] != rows_sorted[:-1]
    changes_per_bank = np.bincount(
        banks_sorted[1:][same_bank & row_change], minlength=dram.num_banks
    )
    present = np.bincount(banks_sorted, minlength=dram.num_banks) > 0
    activates_per_bank = changes_per_bank + present.astype(np.int64)

    bus_cycles = txns * dram.t_burst
    bank_cycles = int(activates_per_bank.max()) * dram.t_rc
    cycles = max(bus_cycles, bank_cycles)
    # Refresh: the channel stalls tRFC out of every tREFI.
    if dram.t_refi > 0:
        refreshes = cycles // dram.t_refi
        cycles += refreshes * dram.t_rfc
    stats = {
        "row_changes": int((same_bank & row_change).sum()),
        "activates": int(activates_per_bank.sum()),
    }
    return cycles, stats
