"""Per-ID in-order response front (AXI4 ordering semantics).

The DRAM controller may complete transactions out of order; AXI requires
that responses with the same ID return in request order.  The adapter
relies on this for its metadata queues, so a :class:`ReorderBuffer` sits
between the channel and the adapter: requests pass through unmodified
while being logged, responses are buffered and released in order per ID.

Responses of *different* IDs are independent (AXI R-channel interleaving):
each ID releases into its own sink FIFO with its own in-flight budget, so
a stalled element stream can never block the index stream or vice versa.
"""

from __future__ import annotations

from collections import deque

from ..errors import ProtocolError
from ..sim.component import Component
from ..sim.fifo import Fifo
from .request import MemRequest, MemResponse


class ReorderBuffer(Component):
    """Restores per-AXI-ID response ordering over an OoO memory."""

    def __init__(
        self,
        mem_req: Fifo[MemRequest],
        mem_rsp: Fifo[MemResponse],
        sinks: dict[int, Fifo[MemResponse]] | None = None,
        req_capacity: int = 32,
        max_inflight_per_id: int = 64,
        name: str = "reorder",
    ) -> None:
        super().__init__(name)
        self.mem_req = mem_req
        self.mem_rsp = mem_rsp
        self.max_inflight_per_id = max_inflight_per_id
        self.req: Fifo[MemRequest] = self.make_fifo(req_capacity, "req")
        #: default single sink used when no routing dict is given.
        self.rsp: Fifo[MemResponse] = self.make_fifo(None, "rsp")
        self._sinks = sinks
        self._expected: dict[int, deque[int]] = {}
        self._waiting: dict[int, dict[int, MemResponse]] = {}
        self._inflight: dict[int, int] = {}

    def _sink_for(self, axi_id: int) -> Fifo[MemResponse]:
        if self._sinks is None:
            return self.rsp
        if axi_id not in self._sinks:
            raise ProtocolError(f"{self.name}: no sink for AXI ID {axi_id}")
        return self._sinks[axi_id]

    def tick(self) -> None:
        # Forward requests downstream, recording their order per ID.
        while self.req.can_pop() and self.mem_req.can_push():
            request = self.req.peek()
            if self._inflight.get(request.axi_id, 0) >= self.max_inflight_per_id:
                break
            self.req.pop()
            self._expected.setdefault(request.axi_id, deque()).append(request.seq)
            self._inflight[request.axi_id] = self._inflight.get(request.axi_id, 0) + 1
            self.mem_req.push(request)

        # Absorb downstream responses.
        while self.mem_rsp.can_pop():
            response = self.mem_rsp.pop()
            if not self._expected.get(response.axi_id):
                raise ProtocolError(
                    f"{self.name}: response for unknown ID {response.axi_id}"
                )
            self._waiting.setdefault(response.axi_id, {})[
                response.request.seq
            ] = response

        # Release responses in per-ID request order, each ID to its sink.
        for axi_id, queue in self._expected.items():
            waiting = self._waiting.get(axi_id, {})
            sink = self._sink_for(axi_id)
            while queue and queue[0] in waiting and sink.can_push():
                sink.push(waiting.pop(queue.popleft()))
                self._inflight[axi_id] -= 1

    def next_event(self) -> int | None:
        if self.mem_rsp.can_pop():
            return self.cycle
        if self.req.can_pop() and self.mem_req.can_push():
            request = self.req.peek()
            if self._inflight.get(request.axi_id, 0) < self.max_inflight_per_id:
                return self.cycle
        for axi_id, queue in self._expected.items():
            if (
                queue
                and queue[0] in self._waiting.get(axi_id, {})
                and self._sink_for(axi_id).can_push()
            ):
                return self.cycle
        return None

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        sinks = list(self._sinks.values()) if self._sinks is not None else []
        # Never reads pre-commit state: pushes into mem_req and the sinks
        # are its own, so pops and commits are the only relevant wakes.
        return [self.req, self.rsp, self.mem_req, self.mem_rsp, *sinks], []

    @property
    def busy(self) -> bool:
        return any(count > 0 for count in self._inflight.values()) or super().busy
