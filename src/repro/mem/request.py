"""Request/response records exchanged with the memory models.

These model AXI4 single-beat wide transactions: the adapter only ever
issues accesses of the DRAM granularity (one 512 b block).  ``axi_id``
carries AXI ordering semantics — responses for one ID must return in
request order, which :class:`~repro.mem.reorder.ReorderBuffer` enforces
on top of the out-of-order DRAM channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any

import numpy as np

_SEQUENCE = count()


@dataclass(frozen=True)
class MemRequest:
    """One wide memory transaction request.

    ``write_mask`` models AXI write strobes: a boolean array with one
    entry per byte of ``write_data``; only asserted bytes are written
    (how the scatter path commits coalesced partial-block writes).
    """

    addr: int
    nbytes: int
    axi_id: int = 0
    is_write: bool = False
    write_data: np.ndarray | None = None
    write_mask: np.ndarray | None = None
    #: opaque payload carried through to the response (model bookkeeping).
    payload: Any = None
    #: global issue sequence number, used for FR-FCFS age ordering.
    seq: int = field(default_factory=lambda: next(_SEQUENCE))

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError("negative address")
        if self.nbytes <= 0:
            raise ValueError("non-positive transaction size")
        if self.is_write and self.write_data is None:
            raise ValueError("write request without data")
        if self.write_mask is not None and not self.is_write:
            raise ValueError("write mask on a read request")

    @property
    def block_addr(self) -> int:
        """Address rounded down to the transaction's own granularity."""
        return self.addr - self.addr % self.nbytes


@dataclass(frozen=True)
class MemResponse:
    """Completion of one :class:`MemRequest`.

    ``data`` is ``None`` for writes.  ``finish_cycle`` is the memory
    model's local cycle at which the last data beat transferred.
    """

    request: MemRequest
    data: np.ndarray | None
    finish_cycle: int

    @property
    def axi_id(self) -> int:
        return self.request.axi_id
