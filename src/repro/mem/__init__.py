"""Memory substrate: backing store, ideal memory, and the HBM2 channel
model that replaces the paper's DRAMSys co-simulation."""

from .backing_store import BackingStore
from .dram import DramChannel
from .ideal import IdealMemory
from .multichannel import MultiChannelMemory
from .reorder import ReorderBuffer
from .request import MemRequest, MemResponse

__all__ = [
    "BackingStore",
    "DramChannel",
    "IdealMemory",
    "MultiChannelMemory",
    "ReorderBuffer",
    "MemRequest",
    "MemResponse",
]
