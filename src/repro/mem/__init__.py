"""Memory substrate: backing store, ideal memory, the HBM2 channel
model that replaces the paper's DRAMSys co-simulation, and the
bank-state service timeline the fast models price DRAM with."""

from .backing_store import BackingStore
from .dram import DramChannel
from .ideal import IdealMemory
from .multichannel import MultiChannelMemory
from .reorder import ReorderBuffer
from .request import MemRequest, MemResponse
from .timeline import TimelineResult, analytic_dram_bound, service_timeline

__all__ = [
    "BackingStore",
    "DramChannel",
    "IdealMemory",
    "MultiChannelMemory",
    "ReorderBuffer",
    "MemRequest",
    "MemResponse",
    "TimelineResult",
    "service_timeline",
    "analytic_dram_bound",
]
