"""Cycle-level HBM2 channel model (replaces DRAMSys).

One pseudo-channel with ``num_banks`` banks.  Consecutive wide blocks
interleave across banks; each bank keeps one open row.  The controller
implements FR-FCFS under an open-adaptive page policy with decoupled
*bank preparation* and *column issue*:

* **bank preparation** — when a bank has pending requests but none for
  its open row, the controller precharges/activates the row of the
  oldest pending request in the background (one activate start per
  cycle: command-bus limit, ``t_rc`` activate spacing per bank).
* **column issue** — each cycle the data bus, when free, is granted to
  the oldest pending request whose bank has its row open and ready
  (these are the "first-ready" row hits of FR-FCFS); data occupies the
  bus for ``t_burst`` cycles and returns ``t_cl`` later.

Because preparation overlaps with other banks' data bursts, a row miss
only costs bus bandwidth when no other bank can supply data — the gap
filling that gives real controllers their efficiency, and the property
the paper's coalescer interacts with.

The model reproduces the three characteristics the evaluation rests on:
512 b access granularity, 32 GB/s peak (one 64 B burst per two 1 GHz
cycles), and the row-hit/row-miss service-rate gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DramConfig
from ..sim.component import FAR_FUTURE, Component
from ..sim.fifo import Fifo
from ..sim.stats import StatSet
from .backing_store import BackingStore
from .request import MemRequest, MemResponse


@dataclass
class _BankState:
    open_row: int | None = None
    #: cycle at which the bank can accept its next column command.
    ready_at: int = 0
    #: earliest cycle the next activate may start (tRC spacing).
    next_act_at: int = 0
    last_use: int = 0


class DramChannel(Component):
    """One HBM2 pseudo-channel with an FR-FCFS controller."""

    def __init__(
        self,
        store: BackingStore,
        config: DramConfig | None = None,
        name: str = "dram",
        channel_stride: int = 1,
    ) -> None:
        super().__init__(name)
        if channel_stride < 1:
            raise ValueError("channel stride must be >= 1")
        self.store = store
        self.config = config or DramConfig()
        #: block-id divisor applied before the bank/row decode.  A
        #: channel behind an N-way block-interleaved router only sees
        #: every Nth wide block; stripping the channel-select bits
        #: (``block // N``) keeps all of its banks addressable instead
        #: of diluting them to ``num_banks / N`` (the standard
        #: interleaved-address decode, and the one the fast model's
        #: per-channel timelines assume).
        self.channel_stride = channel_stride
        self.req: Fifo[MemRequest] = self.make_fifo(self.config.queue_depth, "req")
        self.rsp: Fifo[MemResponse] = self.make_fifo(None, "rsp")
        self.stats = StatSet(name)
        self._banks = [_BankState() for _ in range(self.config.num_banks)]
        self._bus_free_at = 0
        self._inflight: list[tuple[int, MemResponse]] = []
        #: earliest finish among _inflight (FAR_FUTURE when empty); lets
        #: the per-cycle delivery check exit without walking the list.
        self._min_finish = FAR_FUTURE
        self._pending: list = []
        #: pending requests per bank (kept in lockstep with _pending) —
        #: lets next_event bound the service horizon without walking
        #: the queue.
        self._bank_load = [0] * self.config.num_banks
        self._next_refresh_at = self.config.t_refi
        self._refresh_until = 0
        #: cycles during which a data beat occupied the bus.
        self.busy_bus_cycles = 0
        #: scheduling-action counter (activates, column accesses,
        #: refreshes, idle closes) and the count observed by the last
        #: ``next_event`` call — used by the batched engine to tell
        #: "the previous tick acted" from "the queue is quiescent".
        self._acts = 0
        self._acts_seen = -1
        #: bulk-mode mirror (batched engine only, see set_bulk): pending
        #: entries split per bank in arrival order, plus a cached frozen
        #: -state FR-FCFS view per bank — the minimum-seq eligible row
        #: hit and the first eligible non-hit in arrival order.  The
        #: oracle _service recomputes both from scratch every cycle;
        #: the mirror invalidates a bank only when its queue or open row
        #: changes, making the per-cycle decision O(num_banks).
        self._bank_q: list[list] | None = None
        self._bank_dirty: list[bool] = []
        self._bank_hit: list = []
        self._bank_miss: list = []

    # -- address mapping -------------------------------------------------

    def bank_of(self, addr: int) -> int:
        block = addr // self.config.access_bytes // self.channel_stride
        return block % self.config.num_banks

    def row_of(self, addr: int) -> int:
        block = addr // self.config.access_bytes // self.channel_stride
        return block // (self.config.num_banks * self.config.blocks_per_row)

    # -- main loop ---------------------------------------------------------

    def tick(self) -> None:
        self._deliver_finished()
        self._ingest()
        self._refresh()
        self._close_idle_rows()
        if self._pending and self.cycle >= self._refresh_until:
            if self._bank_q is not None:
                self._service_bulk()
            else:
                self._service()

    def _refresh(self) -> None:
        """All-bank refresh every tREFI: the channel stalls for tRFC and
        every row is closed (the next accesses pay fresh activates)."""
        config = self.config
        if config.t_refi <= 0:
            return
        if self.cycle >= self._next_refresh_at:
            self._refresh_until = self.cycle + config.t_rfc
            self._next_refresh_at = self.cycle + config.t_refi
            for bank in self._banks:
                bank.open_row = None
                bank.ready_at = max(bank.ready_at, self._refresh_until)
            if self._bank_q is not None:
                dirty = self._bank_dirty
                for idx in range(len(dirty)):
                    dirty[idx] = True
            self.stats.add("refreshes")
            self._acts += 1

    def _ingest(self) -> None:
        config = self.config
        bank_q = self._bank_q
        while self.req.can_pop() and len(self._pending) < config.queue_depth:
            request = self.req.pop()
            # Precompute the address decode once per request.
            bank = self.bank_of(request.addr)
            entry = (
                request.seq,
                bank,
                self.row_of(request.addr),
                request.addr // config.access_bytes,
                request,
            )
            self._pending.append(entry)
            self._bank_load[bank] += 1
            if bank_q is not None:
                bank_q[bank].append(entry)
                self._bank_dirty[bank] = True

    def _close_idle_rows(self) -> None:
        horizon = self.config.close_idle_cycles
        cycle = self.cycle
        for idx, bank in enumerate(self._banks):
            if bank.open_row is not None and cycle - bank.last_use > horizon:
                bank.open_row = None
                bank.ready_at = max(bank.ready_at, cycle + self.config.t_rp)
                if self._bank_q is not None:
                    self._bank_dirty[idx] = True
                self.stats.add("idle_closes")
                self._acts += 1

    def _service(self) -> None:
        """One pass over the queue: find the oldest ready row hit for
        the data bus (FR-FCFS) and the best bank-preparation candidate
        (open-adaptive background activate)."""
        config = self.config
        cycle = self.cycle
        banks = self._banks
        bus_free = cycle >= self._bus_free_at

        best_hit_pos = -1
        best_hit_seq = -1
        prep_seq = -1
        prep_bank = -1
        seen_banks_hit: set[int] = set()
        oldest_bank_seen: set[int] = set()
        # Same-address hazard ordering: a request must not bypass an
        # older request to the same block (WAW/RAW correctness for the
        # scatter path) — standard controller hazard checking.
        blocked_blocks: set[int] = set()
        for pos, (seq, bank_idx, row, block, _request) in enumerate(self._pending):
            if block in blocked_blocks:
                continue
            blocked_blocks.add(block)
            bank = banks[bank_idx]
            if bank.open_row == row:
                seen_banks_hit.add(bank_idx)
                if bank.ready_at <= cycle and (
                    best_hit_pos < 0 or seq < best_hit_seq
                ):
                    best_hit_pos, best_hit_seq = pos, seq
            elif bank_idx not in oldest_bank_seen:
                oldest_bank_seen.add(bank_idx)
                if bank.ready_at <= cycle and (prep_seq < 0 or seq < prep_seq):
                    prep_seq, prep_bank = seq, bank_idx

        # Background preparation: one activate start per cycle, only
        # for a bank with no serviceable open-row work.
        if prep_bank >= 0 and prep_bank not in seen_banks_hit:
            bank = banks[prep_bank]
            row = next(
                r
                for (s, b, r, _blk, _q) in self._pending
                if b == prep_bank and s == prep_seq
            )
            act_start = max(cycle, bank.next_act_at)
            if bank.open_row is not None:
                act_start += config.t_rp
                self.stats.add("row_conflicts")
                self._acts += 1
            else:
                self.stats.add("row_misses")
                self._acts += 1
            bank.open_row = row
            bank.ready_at = act_start + config.t_rcd
            bank.next_act_at = act_start + config.t_rc
            bank.last_use = bank.ready_at

        if not bus_free or best_hit_pos < 0:
            return
        _seq, bank_idx, _row, _block, request = self._pending.pop(best_hit_pos)
        self._bank_load[bank_idx] -= 1
        self._grant(bank_idx, request)

    def _grant(self, bank_idx: int, request: MemRequest) -> None:
        """Issue the column access for ``request`` (already removed from
        the pending queue): occupy the data bus, set the CAS-to-CAS
        spacing, and enqueue the response for delivery at ``finish``."""
        config = self.config
        cycle = self.cycle
        bank = self._banks[bank_idx]
        finish = cycle + config.t_cl + config.t_burst
        self._bus_free_at = cycle + config.t_burst
        self.busy_bus_cycles += config.t_burst
        bank.ready_at = cycle + config.t_burst  # CAS-to-CAS spacing
        bank.last_use = finish

        self._inflight.append((finish, self._serve(request, finish)))
        if finish < self._min_finish:
            self._min_finish = finish
        self.stats.add("transactions")
        self._acts += 1
        self.stats.add("write_txns" if request.is_write else "read_txns")
        self.stats.add("bytes", request.nbytes)

    def _serve(self, request: MemRequest, finish: int) -> MemResponse:
        if request.is_write:
            assert request.write_data is not None
            self.store.write_block(
                request.addr, request.write_data, request.write_mask
            )
            return MemResponse(request, None, finish)
        data = self.store.read_block(request.block_addr, request.nbytes)
        return MemResponse(request, data, finish)

    def _deliver_finished(self) -> None:
        if self.cycle < self._min_finish:
            return
        remaining = []
        nxt = FAR_FUTURE
        for finish, response in self._inflight:
            if finish <= self.cycle:
                self.rsp.push(response)
            else:
                remaining.append((finish, response))
                if finish < nxt:
                    nxt = finish
        self._inflight = remaining
        self._min_finish = nxt

    # -- batched-engine protocol ---------------------------------------------

    def next_event(self) -> int | None:
        config = self.config
        cycle = self.cycle
        # Cheap early-out first: while the channel is ingesting it is
        # due immediately and the frozen-state scans below are wasted.
        if self.req.can_pop() and len(self._pending) < config.queue_depth:
            return cycle
        pending = bool(self._pending)
        if pending and self._bank_q is None:
            acts = self._acts
            if acts != self._acts_seen:
                # The previous tick acted, so the frozen-state analysis
                # below would be stale: tick again and re-evaluate.
                # (Bulk mode skips this heuristic: the per-bank mirror
                # makes the service bound below exact enough to trust
                # straight after an action.)
                self._acts_seen = acts
                return cycle
        due = self._min_finish
        if config.t_refi > 0:
            due = min(due, self._next_refresh_at)
        horizon = config.close_idle_cycles
        for bank in self._banks:
            if bank.open_row is not None:
                close_at = bank.last_use + horizon + 1
                if close_at < due:
                    due = close_at
        if pending:
            if self._bank_q is not None:
                due = min(due, self._bulk_service_due())
            else:
                due = min(due, self._service_due())
        if due >= FAR_FUTURE:
            return None
        return due if due > cycle else cycle

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        # rsp is unbounded and write-only from this side; req commits
        # are the only FIFO activity that can change what tick does.
        return [self.req], []

    def _service_due(self) -> int:
        """Lower bound on the earliest cycle at or after ``self.cycle``
        at which :meth:`_service` could issue a column access or start a
        bank preparation, with current state frozen.

        Every service action on a bank happens at or after
        ``max(base, bank.ready_at)``: preparations start exactly there,
        column accesses additionally wait for the data bus.  So the min
        of that bound over banks with pending work never lands *after* a
        real action — the only direction that would lose events.
        Undershooting (bus still busy, preparation suppressed by a
        same-bank hit) merely re-ticks the channel a few extra cycles,
        bounded by the bus burst time, which the step engine pays on
        every one of those cycles anyway.
        """
        base = max(self.cycle, self._refresh_until)
        banks = self._banks
        ready = FAR_FUTURE
        for bank_idx, load in enumerate(self._bank_load):
            if load:
                at = banks[bank_idx].ready_at
                if at < ready:
                    ready = at
        return ready if ready > base else base

    # -- bulk-transfer fast path (batched engine only) -----------------------
    #
    # The oracle _service re-scans the whole pending queue every cycle:
    # O(queue_depth) with per-entry set lookups, ~35% of batched-engine
    # runtime on saturated streams.  Bulk mode mirrors the queue into
    # per-bank arrival-order lists and caches, per bank, exactly the two
    # frozen-state facts the FR-FCFS decision needs:
    #
    # * the minimum-seq *eligible* entry matching the open row (the
    #   bank's grant candidate — "first-ready" row hit), and
    # * the first eligible non-hit in arrival order (the bank's
    #   preparation candidate).
    #
    # Eligibility is the oracle's same-address hazard rule: only the
    # first arrival per wide block counts (younger same-block entries
    # are shadowed).  Same block implies same bank, so the oracle's
    # global shadow set partitions cleanly per bank and the per-bank
    # restriction of its arrival-order scan is this list walk.  A bank's
    # cache is invalidated only when its queue or its open row changes
    # (ingest, grant, preparation, refresh, idle close), so steady-state
    # service decisions are O(num_banks) with rare O(bank queue)
    # recomputes — and the same caches give next_event service bounds
    # tight enough to jump the quiet gaps between bus beats.

    def set_bulk(self, enabled: bool) -> None:
        if enabled:
            nb = self.config.num_banks
            bank_q: list[list] = [[] for _ in range(nb)]
            for entry in self._pending:
                bank_q[entry[1]].append(entry)
            self._bank_q = bank_q
            self._bank_dirty = [True] * nb
            self._bank_hit = [None] * nb
            self._bank_miss = [None] * nb
        else:
            self._bank_q = None

    def _recompute_bank(self, idx: int) -> None:
        """Rebuild the cached grant/preparation candidates for one bank
        from its arrival-order queue (frozen state)."""
        open_row = self._banks[idx].open_row
        hit = None
        hit_seq = -1
        miss = None
        seen_blocks: set[int] = set()
        for entry in self._bank_q[idx]:
            block = entry[3]
            if block in seen_blocks:
                continue
            seen_blocks.add(block)
            if entry[2] == open_row and open_row is not None:
                if hit is None or entry[0] < hit_seq:
                    hit, hit_seq = entry, entry[0]
            elif miss is None:
                miss = entry
        self._bank_hit[idx] = hit
        self._bank_miss[idx] = miss
        self._bank_dirty[idx] = False

    def _service_bulk(self) -> None:
        """Mirror-driven replica of :meth:`_service`: identical decision
        from the same frozen state, O(num_banks) instead of O(queue)."""
        config = self.config
        cycle = self.cycle
        banks = self._banks
        bank_q = self._bank_q
        dirty = self._bank_dirty
        hits = self._bank_hit
        misses = self._bank_miss

        best_hit = None
        best_seq = -1
        prep_entry = None
        prep_seq = -1
        prep_bank = -1
        for idx in range(len(banks)):
            if not bank_q[idx]:
                continue
            if dirty[idx]:
                self._recompute_bank(idx)
            if banks[idx].ready_at > cycle:
                continue
            hit = hits[idx]
            if hit is not None and (best_hit is None or hit[0] < best_seq):
                best_hit, best_seq = hit, hit[0]
            miss = misses[idx]
            if miss is not None and (prep_entry is None or miss[0] < prep_seq):
                prep_entry, prep_seq, prep_bank = miss, miss[0], idx

        # Background preparation, suppressed when the chosen bank also
        # has serviceable open-row work (oracle: prep_bank not in
        # seen_banks_hit — a bank has an eligible hit iff its cached
        # grant candidate is non-None, ready or not).
        if prep_entry is not None and hits[prep_bank] is None:
            bank = banks[prep_bank]
            act_start = max(cycle, bank.next_act_at)
            if bank.open_row is not None:
                act_start += config.t_rp
                self.stats.add("row_conflicts")
                self._acts += 1
            else:
                self.stats.add("row_misses")
                self._acts += 1
            bank.open_row = prep_entry[2]
            bank.ready_at = act_start + config.t_rcd
            bank.next_act_at = act_start + config.t_rc
            bank.last_use = bank.ready_at
            dirty[prep_bank] = True

        if cycle < self._bus_free_at or best_hit is None:
            return
        bank_idx = best_hit[1]
        # Identity removal: request payloads may hold numpy arrays, so
        # tuple == is off limits; seq uniqueness makes `is` sufficient.
        queue = bank_q[bank_idx]
        for pos, entry in enumerate(queue):
            if entry is best_hit:
                del queue[pos]
                break
        pending = self._pending
        for pos, entry in enumerate(pending):
            if entry is best_hit:
                del pending[pos]
                break
        dirty[bank_idx] = True
        self._bank_load[bank_idx] -= 1
        self._grant(bank_idx, best_hit[4])

    def _bulk_service_due(self) -> int:
        """Exact earliest cycle at which :meth:`_service` would act,
        from the per-bank mirror with state frozen (refresh, idle close
        and grant events all invalidate the answer, but each is its own
        due term, so the engine re-evaluates first).

        Column issue fires at ``max(bus_free_at, earliest ready among
        hit banks)`` — the FR-FCFS choice among ready hits affects only
        *which* request goes, never *when*.  Preparation fires at the
        first threshold cycle where the minimum-seq ready candidate sits
        on a bank without serviceable open-row work: as bank ready
        times pass, the candidate set only grows, so walking thresholds
        in ready order while tracking the running minimum-seq candidate
        reproduces the oracle's suppression behaviour exactly.
        """
        base = max(self.cycle, self._refresh_until)
        banks = self._banks
        bank_q = self._bank_q
        dirty = self._bank_dirty
        hits = self._bank_hit
        misses = self._bank_miss
        bus_free_at = self._bus_free_at
        due = FAR_FUTURE
        cands = None
        for idx in range(len(banks)):
            if not bank_q[idx]:
                continue
            if dirty[idx]:
                self._recompute_bank(idx)
            ready_at = banks[idx].ready_at
            hit = hits[idx]
            if hit is not None:
                at = ready_at if ready_at >= bus_free_at else bus_free_at
                if at < due:
                    due = at
            miss = misses[idx]
            if miss is not None:
                if cands is None:
                    cands = []
                cands.append(
                    (ready_at if ready_at > base else base, miss[0], hit is None)
                )
        if cands is not None:
            cands.sort()
            best_seq = FAR_FUTURE
            best_free = False
            pos = 0
            total = len(cands)
            while pos < total:
                threshold = cands[pos][0]
                if threshold >= due:
                    break  # a grant acts first; state changes there
                # Admit every candidate bank becoming ready at this
                # threshold before judging suppression (the oracle sees
                # all ready banks of a cycle at once).
                while pos < total and cands[pos][0] == threshold:
                    _at, seq, free = cands[pos]
                    if seq < best_seq:
                        best_seq, best_free = seq, free
                    pos += 1
                if best_free:
                    if threshold < due:
                        due = threshold
                    break
        return due if due > base else base

    def _grant_lower_bound(self) -> int:
        """Earliest cycle any column access could possibly be issued,
        allowing for preparations that have not started yet (a bank with
        only non-hit work must at least finish an activate: tRCD after
        the earliest legal activate start).  Never overshoots: ignoring
        tRP, preparation suppression and refresh stalls only makes this
        earlier than reality."""
        config = self.config
        base = max(self.cycle, self._refresh_until)
        banks = self._banks
        bank_q = self._bank_q
        dirty = self._bank_dirty
        hits = self._bank_hit
        misses = self._bank_miss
        earliest = FAR_FUTURE
        for idx in range(len(banks)):
            if not bank_q[idx]:
                continue
            if dirty[idx]:
                self._recompute_bank(idx)
            bank = banks[idx]
            if hits[idx] is not None:
                at = bank.ready_at
            elif misses[idx] is not None:
                at = max(base, bank.ready_at, bank.next_act_at) + config.t_rcd
            else:
                continue
            if at < earliest:
                earliest = at
        if earliest >= FAR_FUTURE:
            return FAR_FUTURE
        return max(base, earliest, self._bus_free_at)

    def max_bulk(self, limit: int) -> int:
        if self._bank_q is None:
            return 0
        cycle = self.cycle
        config = self.config
        span = limit
        # Response pushes bound the span: pending deliveries at their
        # earliest finish, and any grant issued *inside* the span at its
        # finish — lower-bounded by the earliest possible grant plus
        # CAS latency and burst time.
        if self._inflight:
            gap = self._min_finish - cycle
            if gap < span:
                span = gap
        ingestible = self.req.can_pop()
        if ingestible and len(self._pending) < config.queue_depth:
            return 0  # this tick pops the request FIFO
        if self._pending:
            grant_at = self._grant_lower_bound()
            if grant_at < FAR_FUTURE:
                if ingestible:
                    # Full queue: the first grant frees a slot and the
                    # next tick's ingest pops — keep that tick outside.
                    gap = grant_at + 1 - cycle
                    if gap < span:
                        span = gap
                gap = grant_at + config.t_cl + config.t_burst - cycle
                if gap < span:
                    span = gap
        return span if span > 1 else 0

    def bulk_tick(self, cycles: int) -> None:
        """Execute a FIFO-silent span as an internal mini event loop:
        jump between refresh / idle-close / service due times, with the
        service bound's undershoots degrading to single-cycle steps.
        Delivery and ingest are provably no-ops across the span (see
        :meth:`max_bulk`), so skipping them is exact."""
        end = self.cycle + cycles
        while True:
            due = self._internal_due()
            if due >= end:
                break
            self.cycle = due
            self._refresh()
            self._close_idle_rows()
            if self._pending and due >= self._refresh_until:
                self._service_bulk()
            # At most one preparation and one grant happen per cycle,
            # and _service_bulk did both in one call: next action > due.
            self.cycle = due + 1

    def _internal_due(self) -> int:
        """Next cycle at which refresh, idle close, or service could
        act, ignoring delivery and ingest (callers guarantee neither
        occurs in the window)."""
        cycle = self.cycle
        config = self.config
        due = FAR_FUTURE
        if config.t_refi > 0:
            due = self._next_refresh_at
        horizon = config.close_idle_cycles
        for bank in self._banks:
            if bank.open_row is not None:
                close_at = bank.last_use + horizon + 1
                if close_at < due:
                    due = close_at
        if self._pending:
            at = self._bulk_service_due()
            if at < due:
                due = at
        return due if due > cycle else cycle

    # -- reporting -----------------------------------------------------------

    @property
    def busy(self) -> bool:
        # The response FIFO is deliberately excluded: draining it is the
        # consumer's responsibility, not pending work of the channel.
        return bool(self._inflight) or bool(self._pending) or not self.req.is_empty

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of peak bandwidth actually used over a window."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_bus_cycles / elapsed_cycles)

    @property
    def row_hit_rate(self) -> float:
        """Column accesses served without a new activate."""
        txns = self.stats["transactions"]
        if txns == 0:
            return 0.0
        activates = self.stats["row_misses"] + self.stats["row_conflicts"]
        return max(0.0, 1.0 - activates / txns)
