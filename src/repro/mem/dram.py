"""Cycle-level HBM2 channel model (replaces DRAMSys).

One pseudo-channel with ``num_banks`` banks.  Consecutive wide blocks
interleave across banks; each bank keeps one open row.  The controller
implements FR-FCFS under an open-adaptive page policy with decoupled
*bank preparation* and *column issue*:

* **bank preparation** — when a bank has pending requests but none for
  its open row, the controller precharges/activates the row of the
  oldest pending request in the background (one activate start per
  cycle: command-bus limit, ``t_rc`` activate spacing per bank).
* **column issue** — each cycle the data bus, when free, is granted to
  the oldest pending request whose bank has its row open and ready
  (these are the "first-ready" row hits of FR-FCFS); data occupies the
  bus for ``t_burst`` cycles and returns ``t_cl`` later.

Because preparation overlaps with other banks' data bursts, a row miss
only costs bus bandwidth when no other bank can supply data — the gap
filling that gives real controllers their efficiency, and the property
the paper's coalescer interacts with.

The model reproduces the three characteristics the evaluation rests on:
512 b access granularity, 32 GB/s peak (one 64 B burst per two 1 GHz
cycles), and the row-hit/row-miss service-rate gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DramConfig
from ..sim.component import FAR_FUTURE, Component
from ..sim.fifo import Fifo
from ..sim.stats import StatSet
from .backing_store import BackingStore
from .request import MemRequest, MemResponse


@dataclass
class _BankState:
    open_row: int | None = None
    #: cycle at which the bank can accept its next column command.
    ready_at: int = 0
    #: earliest cycle the next activate may start (tRC spacing).
    next_act_at: int = 0
    last_use: int = 0


class DramChannel(Component):
    """One HBM2 pseudo-channel with an FR-FCFS controller."""

    def __init__(
        self,
        store: BackingStore,
        config: DramConfig | None = None,
        name: str = "dram",
        channel_stride: int = 1,
    ) -> None:
        super().__init__(name)
        if channel_stride < 1:
            raise ValueError("channel stride must be >= 1")
        self.store = store
        self.config = config or DramConfig()
        #: block-id divisor applied before the bank/row decode.  A
        #: channel behind an N-way block-interleaved router only sees
        #: every Nth wide block; stripping the channel-select bits
        #: (``block // N``) keeps all of its banks addressable instead
        #: of diluting them to ``num_banks / N`` (the standard
        #: interleaved-address decode, and the one the fast model's
        #: per-channel timelines assume).
        self.channel_stride = channel_stride
        self.req: Fifo[MemRequest] = self.make_fifo(self.config.queue_depth, "req")
        self.rsp: Fifo[MemResponse] = self.make_fifo(None, "rsp")
        self.stats = StatSet(name)
        self._banks = [_BankState() for _ in range(self.config.num_banks)]
        self._bus_free_at = 0
        self._inflight: list[tuple[int, MemResponse]] = []
        self._pending: list = []
        #: pending requests per bank (kept in lockstep with _pending) —
        #: lets next_event bound the service horizon without walking
        #: the queue.
        self._bank_load = [0] * self.config.num_banks
        self._next_refresh_at = self.config.t_refi
        self._refresh_until = 0
        #: cycles during which a data beat occupied the bus.
        self.busy_bus_cycles = 0
        #: scheduling-action counter (activates, column accesses,
        #: refreshes, idle closes) and the count observed by the last
        #: ``next_event`` call — used by the batched engine to tell
        #: "the previous tick acted" from "the queue is quiescent".
        self._acts = 0
        self._acts_seen = -1

    # -- address mapping -------------------------------------------------

    def bank_of(self, addr: int) -> int:
        block = addr // self.config.access_bytes // self.channel_stride
        return block % self.config.num_banks

    def row_of(self, addr: int) -> int:
        block = addr // self.config.access_bytes // self.channel_stride
        return block // (self.config.num_banks * self.config.blocks_per_row)

    # -- main loop ---------------------------------------------------------

    def tick(self) -> None:
        self._deliver_finished()
        self._ingest()
        self._refresh()
        self._close_idle_rows()
        if self._pending and self.cycle >= self._refresh_until:
            self._service()

    def _refresh(self) -> None:
        """All-bank refresh every tREFI: the channel stalls for tRFC and
        every row is closed (the next accesses pay fresh activates)."""
        config = self.config
        if config.t_refi <= 0:
            return
        if self.cycle >= self._next_refresh_at:
            self._refresh_until = self.cycle + config.t_rfc
            self._next_refresh_at = self.cycle + config.t_refi
            for bank in self._banks:
                bank.open_row = None
                bank.ready_at = max(bank.ready_at, self._refresh_until)
            self.stats.add("refreshes")
            self._acts += 1

    def _ingest(self) -> None:
        while self.req.can_pop() and len(self._pending) < self.config.queue_depth:
            request = self.req.pop()
            # Precompute the address decode once per request.
            bank = self.bank_of(request.addr)
            self._pending.append(
                (request.seq, bank, self.row_of(request.addr), request)
            )
            self._bank_load[bank] += 1

    def _close_idle_rows(self) -> None:
        horizon = self.config.close_idle_cycles
        cycle = self.cycle
        for bank in self._banks:
            if bank.open_row is not None and cycle - bank.last_use > horizon:
                bank.open_row = None
                bank.ready_at = max(bank.ready_at, cycle + self.config.t_rp)
                self.stats.add("idle_closes")
                self._acts += 1

    def _service(self) -> None:
        """One pass over the queue: find the oldest ready row hit for
        the data bus (FR-FCFS) and the best bank-preparation candidate
        (open-adaptive background activate)."""
        config = self.config
        cycle = self.cycle
        banks = self._banks
        bus_free = cycle >= self._bus_free_at

        best_hit_pos = -1
        best_hit_seq = -1
        prep_seq = -1
        prep_bank = -1
        seen_banks_hit: set[int] = set()
        oldest_bank_seen: set[int] = set()
        # Same-address hazard ordering: a request must not bypass an
        # older request to the same block (WAW/RAW correctness for the
        # scatter path) — standard controller hazard checking.
        blocked_blocks: set[int] = set()
        for pos, (seq, bank_idx, row, request) in enumerate(self._pending):
            block = request.addr // config.access_bytes
            if block in blocked_blocks:
                continue
            blocked_blocks.add(block)
            bank = banks[bank_idx]
            if bank.open_row == row:
                seen_banks_hit.add(bank_idx)
                if bank.ready_at <= cycle and (
                    best_hit_pos < 0 or seq < best_hit_seq
                ):
                    best_hit_pos, best_hit_seq = pos, seq
            elif bank_idx not in oldest_bank_seen:
                oldest_bank_seen.add(bank_idx)
                if bank.ready_at <= cycle and (prep_seq < 0 or seq < prep_seq):
                    prep_seq, prep_bank = seq, bank_idx

        # Background preparation: one activate start per cycle, only
        # for a bank with no serviceable open-row work.
        if prep_bank >= 0 and prep_bank not in seen_banks_hit:
            bank = banks[prep_bank]
            row = next(
                r for (s, b, r, _q) in self._pending if b == prep_bank and s == prep_seq
            )
            act_start = max(cycle, bank.next_act_at)
            if bank.open_row is not None:
                act_start += config.t_rp
                self.stats.add("row_conflicts")
                self._acts += 1
            else:
                self.stats.add("row_misses")
                self._acts += 1
            bank.open_row = row
            bank.ready_at = act_start + config.t_rcd
            bank.next_act_at = act_start + config.t_rc
            bank.last_use = bank.ready_at

        if not bus_free or best_hit_pos < 0:
            return
        _seq, bank_idx, _row, request = self._pending.pop(best_hit_pos)
        self._bank_load[bank_idx] -= 1
        bank = banks[bank_idx]
        finish = cycle + config.t_cl + config.t_burst
        self._bus_free_at = cycle + config.t_burst
        self.busy_bus_cycles += config.t_burst
        bank.ready_at = cycle + config.t_burst  # CAS-to-CAS spacing
        bank.last_use = finish

        self._inflight.append((finish, self._serve(request, finish)))
        self.stats.add("transactions")
        self._acts += 1
        self.stats.add("write_txns" if request.is_write else "read_txns")
        self.stats.add("bytes", request.nbytes)

    def _serve(self, request: MemRequest, finish: int) -> MemResponse:
        if request.is_write:
            assert request.write_data is not None
            self.store.write_block(
                request.addr, request.write_data, request.write_mask
            )
            return MemResponse(request, None, finish)
        data = self.store.read_block(request.block_addr, request.nbytes)
        return MemResponse(request, data, finish)

    def _deliver_finished(self) -> None:
        if not self._inflight:
            return
        remaining = []
        for finish, response in self._inflight:
            if finish <= self.cycle:
                self.rsp.push(response)
            else:
                remaining.append((finish, response))
        self._inflight = remaining

    # -- batched-engine protocol ---------------------------------------------

    def next_event(self) -> int | None:
        config = self.config
        cycle = self.cycle
        # Cheap early-outs first: while the channel is actively working
        # (ingesting or just acted) it is due immediately and the full
        # frozen-state scan below would be wasted.
        if self.req.can_pop() and len(self._pending) < config.queue_depth:
            return cycle
        pending = bool(self._pending)
        if pending:
            acts = self._acts
            if acts != self._acts_seen:
                # The previous tick acted, so the frozen-state analysis
                # below would be stale: tick again and re-evaluate.
                self._acts_seen = acts
                return cycle
        due = FAR_FUTURE
        if self._inflight:
            finish = min(f for f, _ in self._inflight)
            due = finish if finish > cycle else cycle
        if config.t_refi > 0:
            refresh = self._next_refresh_at
            due = min(due, refresh if refresh > cycle else cycle)
        horizon = config.close_idle_cycles
        for bank in self._banks:
            if bank.open_row is not None:
                close_at = bank.last_use + horizon + 1
                due = min(due, close_at if close_at > cycle else cycle)
        if pending:
            due = min(due, self._service_due())
        return None if due >= FAR_FUTURE else due

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        # rsp is unbounded and write-only from this side; req commits
        # are the only FIFO activity that can change what tick does.
        return [self.req], []

    def _service_due(self) -> int:
        """Lower bound on the earliest cycle at or after ``self.cycle``
        at which :meth:`_service` could issue a column access or start a
        bank preparation, with current state frozen.

        Every service action on a bank happens at or after
        ``max(base, bank.ready_at)``: preparations start exactly there,
        column accesses additionally wait for the data bus.  So the min
        of that bound over banks with pending work never lands *after* a
        real action — the only direction that would lose events.
        Undershooting (bus still busy, preparation suppressed by a
        same-bank hit) merely re-ticks the channel a few extra cycles,
        bounded by the bus burst time, which the step engine pays on
        every one of those cycles anyway.
        """
        base = max(self.cycle, self._refresh_until)
        banks = self._banks
        ready = FAR_FUTURE
        for bank_idx, load in enumerate(self._bank_load):
            if load:
                at = banks[bank_idx].ready_at
                if at < ready:
                    ready = at
        return ready if ready > base else base

    # -- reporting -----------------------------------------------------------

    @property
    def busy(self) -> bool:
        # The response FIFO is deliberately excluded: draining it is the
        # consumer's responsibility, not pending work of the channel.
        return bool(self._inflight) or bool(self._pending) or not self.req.is_empty

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of peak bandwidth actually used over a window."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_bus_cycles / elapsed_cycles)

    @property
    def row_hit_rate(self) -> float:
        """Column accesses served without a new activate."""
        txns = self.stats["transactions"]
        if txns == 0:
            return 0.0
        activates = self.stats["row_misses"] + self.stats["row_conflicts"]
        return max(0.0, 1.0 - activates / txns)
