"""Byte-addressable backing store behind the memory models.

A :class:`BackingStore` is a flat numpy byte buffer plus a bump
allocator.  The sparse-matrix layout code allocates the ``val``,
``col_idx``, ``vec`` ... arrays here, and both memory models serve reads
and writes from it, so the functional output of a simulation is the data
that actually moved through the modelled channel.
"""

from __future__ import annotations

import numpy as np

from ..errors import MemoryModelError


class BackingStore:
    """Flat little-endian memory image with a bump allocator."""

    def __init__(self, size: int = 1 << 26) -> None:
        if size <= 0:
            raise MemoryModelError("backing store size must be positive")
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self._next_free = 0

    # -- allocation ------------------------------------------------------

    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` and return the base address."""
        if nbytes < 0:
            raise MemoryModelError("negative allocation")
        base = -(-self._next_free // align) * align
        if base + nbytes > self.size:
            raise MemoryModelError(
                f"backing store exhausted: need {nbytes} bytes at {base}, "
                f"capacity {self.size}"
            )
        self._next_free = base + nbytes
        return base

    def alloc_array(self, array: np.ndarray, align: int = 64) -> int:
        """Allocate space for ``array``, copy it in, return the base."""
        flat = np.ascontiguousarray(array).view(np.uint8).reshape(-1)
        base = self.alloc(flat.nbytes, align)
        self.data[base : base + flat.nbytes] = flat
        return base

    @property
    def bytes_allocated(self) -> int:
        return self._next_free

    # -- raw access ------------------------------------------------------

    def _check_range(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise MemoryModelError(
                f"access [{addr}, {addr + nbytes}) outside store of {self.size} bytes"
            )

    def read_block(self, addr: int, nbytes: int) -> np.ndarray:
        """Copy out ``nbytes`` starting at ``addr``."""
        self._check_range(addr, nbytes)
        return self.data[addr : addr + nbytes].copy()

    def write_block(
        self, addr: int, block: np.ndarray, mask: np.ndarray | None = None
    ) -> None:
        """Copy a byte array into the store at ``addr``.

        ``mask`` (one bool per byte) models AXI write strobes: only
        asserted bytes are committed.
        """
        flat = np.ascontiguousarray(block).view(np.uint8).reshape(-1)
        self._check_range(addr, flat.nbytes)
        if mask is None:
            self.data[addr : addr + flat.nbytes] = flat
            return
        mask = np.asarray(mask, dtype=bool).reshape(-1)
        if mask.shape != flat.shape:
            raise MemoryModelError("write mask length must match data length")
        region = self.data[addr : addr + flat.nbytes]
        region[mask] = flat[mask]

    # -- typed views -------------------------------------------------------

    def read_typed(self, addr: int, count: int, dtype: np.dtype | str) -> np.ndarray:
        """Copy out ``count`` elements of ``dtype`` starting at ``addr``."""
        dtype = np.dtype(dtype)
        raw = self.read_block(addr, count * dtype.itemsize)
        return raw.view(dtype)

    def write_typed(self, addr: int, values: np.ndarray) -> None:
        """Alias of :meth:`write_block` for typed arrays."""
        self.write_block(addr, values)
