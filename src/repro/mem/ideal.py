"""Ideal memory: fixed latency, peak bandwidth, always in order.

Used in unit tests to isolate adapter behaviour from DRAM scheduling
effects, and as the "ideal" reference point in traffic experiments.
"""

from __future__ import annotations

from ..config import DramConfig
from ..sim.component import FAR_FUTURE, Component
from ..sim.fifo import Fifo
from ..sim.stats import StatSet
from .backing_store import BackingStore
from .request import MemRequest, MemResponse


class IdealMemory(Component):
    """Serves one wide transaction every ``t_burst`` cycles after a fixed
    pipeline latency, in arrival order."""

    def __init__(
        self,
        store: BackingStore,
        config: DramConfig | None = None,
        latency: int = 20,
        req_capacity: int = 32,
        name: str = "ideal_mem",
    ) -> None:
        super().__init__(name)
        self.store = store
        self.config = config or DramConfig()
        self.latency = latency
        self.req: Fifo[MemRequest] = self.make_fifo(req_capacity, "req")
        self.rsp: Fifo[MemResponse] = self.make_fifo(None, "rsp")
        self.stats = StatSet(name)
        self._bus_free_at = 0
        self._inflight: list[tuple[int, MemResponse]] = []

    def tick(self) -> None:
        self._deliver_finished()
        if not self.req.can_pop():
            return
        if self.cycle < self._bus_free_at:
            return
        request = self.req.pop()
        start = max(self.cycle, self._bus_free_at)
        finish = start + self.latency + self.config.t_burst
        self._bus_free_at = start + self.config.t_burst
        self._inflight.append((finish, self._serve(request, finish)))
        self.stats.add("transactions")
        self.stats.add("bytes", request.nbytes)

    def _serve(self, request: MemRequest, finish: int) -> MemResponse:
        if request.is_write:
            assert request.write_data is not None
            self.store.write_block(request.addr, request.write_data)
            return MemResponse(request, None, finish)
        data = self.store.read_block(request.block_addr, request.nbytes)
        return MemResponse(request, data, finish)

    def _deliver_finished(self) -> None:
        remaining = []
        for finish, response in self._inflight:
            if finish <= self.cycle:
                self.rsp.push(response)
            else:
                remaining.append((finish, response))
        self._inflight = remaining

    def next_event(self) -> int | None:
        due = FAR_FUTURE
        if self._inflight:
            finish = min(f for f, _ in self._inflight)
            due = finish if finish > self.cycle else self.cycle
        if self.req.can_pop():
            issue_at = max(self.cycle, self._bus_free_at)
            if issue_at < due:
                due = issue_at
        return None if due >= FAR_FUTURE else due

    def wake_fifos(self) -> tuple[list[Fifo], list[Fifo]]:
        # rsp is unbounded and write-only from this side.
        return [self.req], []

    @property
    def busy(self) -> bool:
        # Undrained responses are the consumer's job, not pending work.
        return bool(self._inflight) or not self.req.is_empty
