"""Persistent result store + diffable EXPERIMENTS.md regeneration.

The reporting layer between the sweep engine and the repository's
committed evaluation document:

* :mod:`repro.report.store` — :class:`ResultStore`: schema-versioned
  CSV tables + a JSON run manifest, written byte-deterministically;
* :mod:`repro.report.claims` — :data:`PAPER_CLAIMS` with per-claim
  tolerances and :func:`claim_verdicts` (pass/fail records);
* :mod:`repro.report.render` — :func:`render_document`, the
  deterministic EXPERIMENTS.md renderer (store in, markdown out);
* :mod:`repro.report.runner` — :func:`run_report`,
  :func:`render_report` and :func:`check_report` behind
  ``python -m repro report run|render|check``.

The committed reference lives in ``results/store/`` + ``EXPERIMENTS.md``
(quick scale); ``check_report`` re-runs the committed configuration and
fails on any table, verdict, manifest, or document drift.
"""

from .claims import PAPER_CLAIMS, PaperClaim, claim_tolerances, claim_verdicts
from .render import EXPERIMENT_ORDER, EXPERIMENT_TITLES, render_document
from .runner import (
    DEFAULT_DOC_PATH,
    DEFAULT_STORE_DIR,
    FULL_DOC_PATH,
    FULL_STORE_DIR,
    check_report,
    render_report,
    run_report,
)
from .store import (
    STORE_FORMATS,
    STORE_SCHEMA_VERSION,
    ResultStore,
    format_cell,
    manifest_identity,
    parse_cell,
)

__all__ = [
    "PAPER_CLAIMS",
    "PaperClaim",
    "claim_tolerances",
    "claim_verdicts",
    "EXPERIMENT_ORDER",
    "EXPERIMENT_TITLES",
    "render_document",
    "DEFAULT_DOC_PATH",
    "DEFAULT_STORE_DIR",
    "FULL_DOC_PATH",
    "FULL_STORE_DIR",
    "check_report",
    "render_report",
    "run_report",
    "STORE_FORMATS",
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "format_cell",
    "manifest_identity",
    "parse_cell",
]
