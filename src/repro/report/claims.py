"""Paper claims and machine-readable verdicts.

Each headline number the paper reports is one :class:`PaperClaim`:
the experiment that measures it, the summary metric key, the published
value, and a per-claim relative tolerance.  :func:`claim_verdicts`
turns a batch of experiment results into one verdict row per claim —
measured value, relative error, tolerance, pass/fail — which the
result store persists as ``claims.csv`` and ``report --check`` diffs
against the committed run.

Tolerances encode how closely this reproduction is expected to track
the paper *at full scale* (default 60k+ nonzeros per matrix).  The
committed store is a quick-scale canary, so scale-sensitive claims
(peak-bandwidth counts, system speedups) legitimately read ``fail``
there; the verdict table makes that visible instead of hiding it.
"""

from __future__ import annotations

from typing import NamedTuple


class PaperClaim(NamedTuple):
    """One tracked paper number.

    A ``NamedTuple`` so legacy consumers can keep unpacking it as the
    historic ``(experiment, metric, paper)`` triple prefix.
    """

    experiment: str
    metric: str
    paper: float
    #: accepted relative deviation of measured from paper (full scale).
    rel_tol: float = 0.25


#: Every paper number tracked by the report, figure order.
PAPER_CLAIMS: tuple[PaperClaim, ...] = (
    PaperClaim("fig3", "sell_mlpnc_mean_gbps", 2.9),
    PaperClaim("fig3", "sell_mlp256_boost", 8.4),
    PaperClaim("fig3", "csr_mlp256_boost", 8.6, 0.30),
    PaperClaim("fig3", "sell_above_70pct_peak", 12, 0.30),
    PaperClaim("fig3", "sell_seq256_boost_vs_nc", 2.9, 0.30),
    PaperClaim("fig3", "sell_mlp256_vs_seq256", 3.0, 0.25),
    PaperClaim("fig4", "af_shell10_mlp256_index_gbps", 13.2, 0.10),
    PaperClaim("fig4", "af_shell10_mlp256_reqs_per_cycle", 3.3, 0.10),
    PaperClaim("fig4", "seq256_mean_index_gbps", 4.0, 0.10),
    PaperClaim("fig5a", "pack0_speedup_geomean", 2.7, 0.60),
    PaperClaim("fig5a", "pack256_speedup_geomean", 10.0, 0.60),
    PaperClaim("fig5a", "pack256_vs_pack0", 3.0, 0.40),
    PaperClaim("fig5b", "base_util_min_pct", 5.9, 0.15),
    PaperClaim("fig5b", "pack0_util_mean_pct", 65.8, 0.40),
    PaperClaim("fig5b", "pack0_traffic_vs_ideal_mean", 5.6, 0.10),
    PaperClaim("fig5b", "pack256_traffic_vs_ideal_mean", 1.29, 0.10),
    PaperClaim("fig5b", "pack256_util_mean_pct", 61.0, 0.40),
    PaperClaim("fig6a", "coal_kge_w64", 307, 0.01),
    PaperClaim("fig6a", "coal_kge_w128", 617, 0.01),
    PaperClaim("fig6a", "coal_kge_w256", 1035, 0.01),
    PaperClaim("fig6a", "area_mm2_w64", 0.19, 0.01),
    PaperClaim("fig6a", "area_mm2_w256", 0.34, 0.01),
    PaperClaim("fig6b", "onchip_eff_vs_sx_aurora", 1.4, 0.10),
    PaperClaim("fig6b", "onchip_eff_vs_a64fx", 2.6, 0.10),
    PaperClaim("fig6b", "perf_eff_vs_sx_aurora", 1.0, 0.55),
    PaperClaim("fig6b", "perf_eff_vs_a64fx", 0.9, 0.55),
    PaperClaim("table1", "storage_kib", 27.0, 0.05),
)


#: Full-scale corpus-tier claims: the fig3 headline aggregates, restated
#: over the whole synthetic suite (every generator recipe at full
#: scale, not the three-matrix quick canary) with the tighter
#: tolerances appropriate to the larger sample.  The committed
#: ``results/full/`` tier stores these as ``corpus_claims.csv``.
CORPUS_CLAIMS: tuple[PaperClaim, ...] = (
    PaperClaim("corpus", "mlp256_boost_geomean", 8.4, 0.30),
    PaperClaim("corpus", "seq256_boost_vs_nc_geomean", 2.9, 0.35),
    PaperClaim("corpus", "mlp256_vs_seq256_geomean", 3.0, 0.30),
)


def claim_tolerances() -> dict[str, float]:
    """``"experiment.metric" -> rel_tol`` map, recorded in the manifest."""
    return {
        f"{claim.experiment}.{claim.metric}": claim.rel_tol
        for claim in PAPER_CLAIMS
    }


def corpus_claim_tolerances() -> dict[str, float]:
    """Corpus-tier tolerances, recorded in the corpus manifest."""
    return {
        f"{claim.experiment}.{claim.metric}": claim.rel_tol
        for claim in CORPUS_CLAIMS
    }


def _verdict_row(claim: PaperClaim, measured) -> dict:
    """One verdict row: measured vs paper under the claim's tolerance."""
    if isinstance(measured, (int, float)):
        rel_err = (
            abs(measured - claim.paper) / abs(claim.paper)
            if claim.paper
            else abs(measured - claim.paper)
        )
        rel_err = round(rel_err, 4)
        verdict = "pass" if rel_err <= claim.rel_tol else "fail"
    else:
        measured = "n/a"
        rel_err = "n/a"
        verdict = "missing"
    return {
        "experiment": claim.experiment,
        "metric": claim.metric,
        "paper": claim.paper,
        "measured": measured,
        "rel_err": rel_err,
        "rel_tol": claim.rel_tol,
        "verdict": verdict,
    }


def claim_verdicts(results: dict[str, dict]) -> list[dict]:
    """One verdict row per claim against a batch of experiment results.

    ``results`` maps experiment name to its runner output (the
    ``{"rows": ..., "summary": ...}`` dict).  Claims whose experiment
    or metric is absent get ``measured = "n/a"`` and verdict
    ``missing``; the rest get ``pass``/``fail`` against the claim's
    relative tolerance.
    """
    return [
        _verdict_row(
            claim,
            results.get(claim.experiment, {}).get("summary", {}).get(
                claim.metric, "n/a"
            ),
        )
        for claim in PAPER_CLAIMS
    ]


def corpus_claim_verdicts(summary: dict) -> list[dict]:
    """Verdict rows for :data:`CORPUS_CLAIMS` against a corpus summary
    (:func:`repro.report.rollup.corpus_claim_summary`)."""
    return [
        _verdict_row(claim, summary.get(claim.metric, "n/a"))
        for claim in CORPUS_CLAIMS
    ]


def paper_comparison(results: dict[str, dict]) -> list[dict]:
    """Legacy name for :func:`claim_verdicts` (kept for callers of the
    pre-store report module)."""
    return claim_verdicts(results)
