"""Report orchestration: ``report run`` / ``render`` / ``check``.

* :func:`run_report` executes the experiment runners (routing every
  figure/table's rows through the result store), writes the claim
  verdicts and run manifest, and renders EXPERIMENTS.md.
* :func:`render_report` rewrites EXPERIMENTS.md from the store alone —
  no experiment is re-run, so it is instant and scale-independent.
* :func:`check_report` re-runs the committed configuration into a
  temporary store and reports every table, verdict, manifest, or
  document drift as a human-readable message (empty list = clean).
"""

from __future__ import annotations

import sys
import tempfile
import time
from itertools import zip_longest
from pathlib import Path

from ..engine import SweepExecutor, resolve_shards, workers_from_env
from ..errors import ExperimentError
from ..obs import trace as obs_trace
from ..experiments import (
    adapter_model_from_env,
    run_fig3,
    run_fig4,
    run_fig5a,
    run_fig5b,
    run_fig6a,
    run_fig6b,
    run_table1,
    scale_from_env,
)
from ..experiments.common import QUICK_MATRICES, QUICK_NNZ
from ..sparse.suite import SUITE_SEED
from .claims import claim_tolerances, claim_verdicts
from .render import EXPERIMENT_ORDER, render_document
from .store import ResultStore, manifest_identity

#: Committed quick-scale store + document (the `--check` reference).
DEFAULT_STORE_DIR = Path("results/store")
DEFAULT_DOC_PATH = Path("EXPERIMENTS.md")

#: Defaults for full-scale runs — regenerable, never committed.
FULL_STORE_DIR = Path("results/full")
FULL_DOC_PATH = Path("results/full/EXPERIMENTS.md")

#: The experiment registry — the CLI and the report shim dispatch off
#: this single map, so a new experiment is added exactly once.
RUNNERS = {
    "table1": run_table1,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5a": run_fig5a,
    "fig5b": run_fig5b,
    "fig6a": run_fig6a,
    "fig6b": run_fig6b,
}

#: Runners with no matrix grid: they take no engine kwargs.
PARAMLESS = ("table1", "fig6a")


def _resolve(
    quick: bool,
    max_nnz: int | None,
    model: str | None,
    workers: int | None,
    matrices: tuple[str, ...] | None = None,
    shards: int | str | None = None,
) -> dict:
    """Turn CLI/env knobs into the manifest's run configuration."""
    if matrices is None and quick:
        matrices = QUICK_MATRICES
    resolved_workers = workers if workers is not None else workers_from_env()
    return {
        "matrices": list(matrices) if matrices else None,
        "scale_nnz": max_nnz or (QUICK_NNZ if quick else scale_from_env()),
        "adapter_model": model or adapter_model_from_env(),
        "workers": resolved_workers,
        "shards": resolve_shards(shards, resolved_workers),
        "seed": SUITE_SEED,
    }


def _runner_kwargs(name: str, config: dict, executor: SweepExecutor) -> dict:
    if name in PARAMLESS:
        return {}
    kwargs = {
        "max_nnz": config["scale_nnz"],
        "model": config["adapter_model"],
        "executor": executor,
    }
    if config["matrices"]:
        kwargs["matrices"] = tuple(config["matrices"])
    return kwargs


def run_report(
    store_dir: Path | str = DEFAULT_STORE_DIR,
    doc_path: Path | str = DEFAULT_DOC_PATH,
    *,
    quick: bool = False,
    max_nnz: int | None = None,
    model: str | None = None,
    workers: int | None = None,
    shards: int | str | None = None,
    matrices: tuple[str, ...] | None = None,
    experiments: tuple[str, ...] | None = None,
    corpus: str | None = None,
    stream=None,
) -> dict:
    """Run the experiments, persist the store, render the document.

    Returns the manifest that was written.  ``experiments`` restricts
    the run to a subset of :data:`repro.report.render.EXPERIMENT_ORDER`
    (tests use this to keep store round-trips fast); claims whose
    experiment is excluded are recorded as ``missing``.  The manifest
    records each experiment's sweep backends (drift-checked) alongside
    the volatile execution knobs (workers, shards, cache totals).

    ``corpus`` names a corpus whose family roll-up rides along in the
    store (``corpus_<kind>.csv`` + ``corpus_rollup.csv`` tables and a
    drift-checked ``corpus`` manifest record).  The default: canonical
    quick runs (``quick=True`` with the full experiment set) include
    the offline ``quick`` corpus, so the docs-drift gate validates the
    roll-up tables too; pass ``corpus=""`` to disable explicitly.
    """
    stream = sys.stdout if stream is None else stream
    names = experiments or EXPERIMENT_ORDER
    unknown = [n for n in names if n not in RUNNERS]
    if unknown:
        raise ExperimentError(f"unknown experiments {unknown}")
    if corpus is None:
        corpus = "quick" if (quick and experiments is None) else ""

    config = _resolve(quick, max_nnz, model, workers, matrices, shards)
    executor = SweepExecutor(config["workers"], shards=config["shards"])
    store = ResultStore(store_dir)

    results: dict[str, dict] = {}
    recorded: dict[str, dict] = {}
    started = time.time()
    print(
        f"# report run (scale={config['scale_nnz']}, "
        f"model={config['adapter_model']}, workers={config['workers']}, "
        f"shards={config['shards']})",
        file=stream,
    )
    try:
        for name in names:
            t0 = time.time()
            stats_before = dict(executor.stats)
            with obs_trace.span("report.experiment", name=name) as espan:
                result = RUNNERS[name](**_runner_kwargs(name, config, executor))
                espan.set(rows=len(result["rows"]))
            results[name] = result
            store.write_table(name, result["rows"])
            recorded[name] = {
                "rows": len(result["rows"]),
                # The sweep backends this experiment runs on — declared by
                # the runner, unioned with any `kind` column its rows kept
                # (empty for paramless experiments).  Part of the drift-
                # checked identity, so silently rerouting an experiment
                # onto a different backend fails `report check`.
                "backends": sorted(
                    set(result.get("backends", ()))
                    | {row["kind"] for row in result["rows"] if "kind" in row}
                ),
                "summary": result["summary"],
            }
            delta = {
                key: executor.stats[key] - stats_before[key]
                for key in executor.stats
            }
            print(
                f"  {name}: {len(result['rows'])} rows, {delta['tasks']} tasks, "
                f"cache {delta['cache_hits']}/{delta['cache_misses']} hit/miss "
                f"[{time.time() - t0:.1f}s]",
                file=stream,
            )
        corpus_record = None
        if corpus:
            # Imported lazily: repro.corpus builds on this module.
            from ..corpus import CorpusRunner
            from ..sparse.corpus import get_corpus

            t0 = time.time()
            runner = CorpusRunner(
                get_corpus(corpus),
                executor=executor,
                max_nnz=config["scale_nnz"],
                model=config["adapter_model"],
            )
            corpus_result = runner.run()
            store.write_table(f"corpus_{runner.kind}", corpus_result["rows"])
            store.write_table("corpus_rollup", corpus_result["rollup"])
            corpus_record = {
                "name": runner.corpus.name,
                "digest": runner.corpus.digest,
                "kind": runner.kind,
                "variants": list(runner.variants),
                "entries": len(runner.corpus.entries),
                "families": runner.corpus.families(),
                "rows": len(corpus_result["rows"]),
                "summary": corpus_result["summary"],
            }
            print(
                f"  corpus {runner.corpus.name!r}: "
                f"{len(corpus_result['rows'])} rows over "
                f"{len(runner.corpus.entries)} entries "
                f"[{time.time() - t0:.1f}s]",
                file=stream,
            )
    finally:
        # The persistent pool belongs to this run; release its workers.
        executor.close()

    store.write_table("claims", claim_verdicts(results))
    manifest = dict(config)
    manifest["tolerances"] = claim_tolerances()
    manifest["experiments"] = recorded
    if corpus_record is not None:
        manifest["corpus"] = corpus_record
    manifest["cache"] = {
        "hits": executor.stats["cache_hits"],
        "misses": executor.stats["cache_misses"],
        "evictions": executor.stats["cache_evictions"],
    }
    store.write_manifest(manifest)

    doc_path = Path(doc_path)
    doc_path.parent.mkdir(parents=True, exist_ok=True)
    doc_path.write_text(render_document(store))
    print(
        f"wrote {store.root}/ ({len(names)} tables + claims + manifest) "
        f"and {doc_path} "
        f"[{time.time() - started:.1f}s; {executor.stats['tasks']} tasks, "
        f"cache {executor.stats['cache_hits']}/{executor.stats['cache_misses']} "
        f"hit/miss]",
        file=stream,
    )
    return store.read_manifest()


def render_report(
    store_dir: Path | str = DEFAULT_STORE_DIR,
    doc_path: Path | str = DEFAULT_DOC_PATH,
    *,
    stream=None,
) -> Path:
    """Rewrite ``doc_path`` from the store alone (no experiment runs)."""
    stream = sys.stdout if stream is None else stream
    doc_path = Path(doc_path)
    doc_path.parent.mkdir(parents=True, exist_ok=True)
    doc_path.write_text(render_document(ResultStore(store_dir)))
    print(f"rendered {doc_path} from {store_dir}/", file=stream)
    return doc_path


def _first_diff(committed: str, fresh: str) -> str:
    pairs = zip_longest(committed.splitlines(), fresh.splitlines())
    for lineno, (old, new) in enumerate(pairs, 1):
        if old != new:
            return f"first difference at line {lineno}: {old!r} != {new!r}"
    return "content identical, trailing bytes differ"


def check_report(
    store_dir: Path | str = DEFAULT_STORE_DIR,
    doc_path: Path | str = DEFAULT_DOC_PATH,
    *,
    quick: bool = False,
    max_nnz: int | None = None,
    model: str | None = None,
    workers: int | None = None,
    shards: int | str | None = None,
    stream=None,
) -> list[str]:
    """Diff a fresh run against the committed store and document.

    With no explicit scale flags the committed manifest's own
    configuration is re-run, so a bare ``report check`` always compares
    like against like; explicit ``--quick``/``--nnz``/``--model`` are
    honoured and any disagreement with the committed manifest is
    itself reported as drift.  ``workers``/``shards`` only change how
    the fresh run executes (they are volatile manifest keys), so a
    sharded parallel check proves the committed store byte-stable under
    parallel execution.  Returns drift messages, empty if clean.
    """
    stream = sys.stdout if stream is None else stream
    committed = ResultStore(store_dir)
    doc_path = Path(doc_path)
    try:
        manifest = committed.read_manifest()
    except ExperimentError as exc:
        return [str(exc)]

    explicit_scale = quick or max_nnz is not None
    committed_matrices = manifest.get("matrices")
    run_kwargs = {
        "quick": quick,
        "max_nnz": max_nnz if explicit_scale else manifest.get("scale_nnz"),
        "model": model or manifest.get("adapter_model"),
        "workers": workers,
        "shards": shards,
        "matrices": None
        if explicit_scale
        else (tuple(committed_matrices) if committed_matrices else None),
        "experiments": tuple(
            n for n in EXPERIMENT_ORDER if n in manifest.get("experiments", {})
        ),
        # Re-run whatever corpus the committed manifest recorded (or
        # none), so the roll-up tables are part of the drift check.
        "corpus": manifest.get("corpus", {}).get("name", ""),
    }

    drift: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-report-check-") as tmp:
        fresh_store_dir = Path(tmp) / "store"
        fresh_doc = Path(tmp) / "EXPERIMENTS.md"
        fresh_manifest = run_report(
            fresh_store_dir, fresh_doc, stream=stream, **run_kwargs
        )
        fresh = ResultStore(fresh_store_dir)

        identity_old = manifest_identity(manifest)
        identity_new = manifest_identity(fresh_manifest)
        for key in sorted(set(identity_old) | set(identity_new)):
            if identity_old.get(key) != identity_new.get(key):
                drift.append(
                    f"manifest drift in {key!r}: committed "
                    f"{identity_old.get(key)!r} != fresh {identity_new.get(key)!r}"
                )

        committed_tables = committed.list_tables()
        fresh_tables = fresh.list_tables()
        for name in sorted(set(committed_tables) | set(fresh_tables)):
            if name not in committed_tables:
                drift.append(f"table {name!r} missing from committed store")
                continue
            if name not in fresh_tables:
                drift.append(f"stale table {name!r} in committed store")
                continue
            old = committed.table_path(name).read_text()
            new = fresh.table_path(name).read_text()
            if old != new:
                drift.append(f"table {name!r} drifted: {_first_diff(old, new)}")

        rendered = fresh_doc.read_text()
        if not doc_path.is_file():
            drift.append(f"document {doc_path} is missing")
        elif doc_path.read_text() != rendered:
            drift.append(
                f"document {doc_path} is stale: "
                f"{_first_diff(doc_path.read_text(), rendered)}"
            )

    for message in drift:
        print(f"DRIFT: {message}", file=stream)
    if not drift:
        print(f"check clean: {store_dir}/ and {doc_path} match a fresh run", file=stream)
    return drift
