"""Family × variant roll-ups over corpus sweep rows.

The corpus runner (:mod:`repro.corpus`) produces one engine row per
(matrix, variant) cell, tagged with the entry's ``family`` label.
:func:`family_rollup` aggregates those rows into the family × variant
table the report renders into EXPERIMENTS.md — geometric-mean/min/max
bandwidth plus mean coalescing rate per cell — and
:func:`corpus_claim_summary` distils the corpus-tier claim metrics
(the fig3 headline aggregates restated over the whole suite) that
``corpus_claims.csv`` is scored against.

Everything here is plain arithmetic over already-computed rows: no
engine calls, deterministic output order (families sorted, variants in
first-appearance order), values rounded to four digits so the tables
are byte-stable under the store's shortest-repr float serialisation.
"""

from __future__ import annotations

import math

#: bandwidth column per backend kind, probed in this order.
_BANDWIDTH_KEYS = ("indir_gbps", "scatter_gbps", "stream_gbps")


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _bandwidth_key(rows: list[dict]) -> str:
    for key in _BANDWIDTH_KEYS:
        if rows and key in rows[0]:
            return key
    raise KeyError(
        f"corpus rows carry none of the known bandwidth columns "
        f"{_BANDWIDTH_KEYS}"
    )


def family_rollup(rows: list[dict]) -> list[dict]:
    """Aggregate corpus rows into one row per (family, variant).

    Each input row must carry ``family``, ``variant`` and one of the
    backend bandwidth columns; ``coal_rate`` is aggregated when
    present.  Output columns: ``family``, ``variant``, ``n`` (matrix
    count), ``<bw>_geomean``/``_min``/``_max`` and ``coal_rate_mean``.
    """
    if not rows:
        return []
    bw_key = _bandwidth_key(rows)
    variant_order: list[str] = []
    cells: dict[tuple[str, str], list[dict]] = {}
    for row in rows:
        if row["variant"] not in variant_order:
            variant_order.append(row["variant"])
        cells.setdefault((row["family"], row["variant"]), []).append(row)
    out = []
    for family in sorted({family for family, _ in cells}):
        for variant in variant_order:
            members = cells.get((family, variant))
            if not members:
                continue
            values = [float(r[bw_key]) for r in members]
            cell = {
                "family": family,
                "variant": variant,
                "n": len(members),
                f"{bw_key}_geomean": round(_geomean(values), 4),
                f"{bw_key}_min": round(min(values), 4),
                f"{bw_key}_max": round(max(values), 4),
            }
            rates = [float(r["coal_rate"]) for r in members if "coal_rate" in r]
            if rates:
                cell["coal_rate_mean"] = round(sum(rates) / len(rates), 4)
            out.append(cell)
    return out


def corpus_claim_summary(rows: list[dict]) -> dict:
    """Corpus-tier claim metrics from adapter-kind corpus rows.

    Restricted to *synthetic* entries (the paper-suite generators) so
    fixture/SuiteSparse additions never move the claim verdicts; each
    metric is the geometric mean over matrices that carry both of its
    variants (``MLPnc``/``MLP256``/``SEQ256``).  Matrix counts are
    reported alongside so the manifest records the sample size.
    """
    bw: dict[tuple[str, str], float] = {}
    for row in rows:
        if row.get("source") != "synthetic":
            continue
        bw[(row["matrix"], row["variant"])] = float(row["indir_gbps"])
    matrices = sorted({matrix for matrix, _ in bw})

    def ratios(hi: str, lo: str) -> list[float]:
        return [
            bw[(m, hi)] / bw[(m, lo)]
            for m in matrices
            if (m, hi) in bw and (m, lo) in bw and bw[(m, lo)] > 0
        ]

    summary: dict = {"synthetic_matrices": len(matrices)}
    for metric, (hi, lo) in (
        ("mlp256_boost_geomean", ("MLP256", "MLPnc")),
        ("seq256_boost_vs_nc_geomean", ("SEQ256", "MLPnc")),
        ("mlp256_vs_seq256_geomean", ("MLP256", "SEQ256")),
    ):
        values = ratios(hi, lo)
        if values:
            summary[metric] = round(_geomean(values), 4)
    return summary
