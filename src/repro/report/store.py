"""Schema-versioned persistent result store.

One :class:`ResultStore` wraps one directory (``results/store/`` for
the committed quick-scale run, ``results/full/`` for full-scale runs)
holding

* ``<experiment>.csv`` — one tidy table per experiment, byte-stable
  across reruns of the same configuration (``fmt="parquet"`` swaps the
  table files for ``<experiment>.parquet`` behind an optional pyarrow
  import; CSV stays the dependency-free default);
* ``claims.csv`` — the machine-readable paper-claim verdicts
  (:func:`repro.report.claims.claim_verdicts`);
* ``manifest.json`` — the run manifest: schema version, scale,
  adapter model, matrix set, workers, shard setting, suite seed,
  per-claim tolerances, engine cache hit/miss totals, and each
  experiment's headline summary plus the sweep backends it ran on.

Byte stability is the store's core contract: cells are serialised with
:func:`format_cell` (shortest-repr floats, ``\\n`` line endings) and
parsed back with :func:`parse_cell`, so ``write → read → write``
reproduces the file exactly and ``python -m repro report --check`` can
diff stored tables against a fresh run.  The parquet backend keeps the
same contract by storing the :func:`format_cell` strings as string
columns (typed parsing happens on read, exactly as for CSV).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from ..errors import ExperimentError

#: Bump when the on-disk layout of tables or manifest changes shape.
#: v2: manifest gained ``shards``, ``cache`` and per-experiment
#: ``backends`` records.
STORE_SCHEMA_VERSION = 2

MANIFEST_NAME = "manifest.json"

#: Supported table serialisations.
STORE_FORMATS = ("csv", "parquet")

#: Manifest keys that may legitimately differ between two runs of the
#: same configuration (they do not affect any stored value): the
#: worker fan-out, the shard setting, and the cache hit/miss totals
#: (which depend on both).
VOLATILE_MANIFEST_KEYS = ("workers", "shards", "cache")


def _require_pyarrow():
    """The optional parquet dependency, or an actionable error."""
    try:
        import pyarrow
        import pyarrow.parquet
    except ImportError as exc:  # pragma: no cover - depends on env
        raise ExperimentError(
            "store format 'parquet' needs the optional pyarrow dependency; "
            "install pyarrow or use the default csv format"
        ) from exc
    return pyarrow


def format_cell(value) -> str:
    """Serialise one table cell deterministically.

    Floats use Python's shortest ``repr`` (``3.43`` not ``3.4300``),
    so a parsed-and-rewritten cell is byte-identical to the original.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


def parse_cell(text: str):
    """Inverse of :func:`format_cell`: int, then float, else str.

    A numeric parse is accepted only when re-serialising it reproduces
    the input exactly, so write → read → write is byte-stable by
    construction: lookalikes that Python's casts would accept but
    reformat (``"1_000"``, ``"  12"``, ``"1e3"``, ``"007"``) stay
    strings.
    """
    for cast in (int, float):
        try:
            value = cast(text)
        except ValueError:
            continue
        if format_cell(value) == text:
            return value
    return text


def _columns(rows: list[dict]) -> list[str]:
    """Union of row keys in first-occurrence order."""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


class ResultStore:
    """Tables + manifest in one directory, written deterministically.

    ``fmt`` selects the table serialisation (:data:`STORE_FORMATS`);
    the committed reference store is always CSV, parquet is an opt-in
    for downstream analysis pipelines and needs pyarrow.
    """

    def __init__(
        self,
        root: Path | str,
        fmt: str = "csv",
        manifest_name: str = MANIFEST_NAME,
    ) -> None:
        if fmt not in STORE_FORMATS:
            raise ExperimentError(
                f"unknown store format {fmt!r}; expected one of {STORE_FORMATS}"
            )
        self.root = Path(root)
        self.fmt = fmt
        #: the corpus runner co-locates its tier in ``results/full/``
        #: under ``corpus_manifest.json``, so a full report run and a
        #: corpus run never clobber each other's manifests.
        self.manifest_name = manifest_name

    # -- tables ---------------------------------------------------------

    def table_path(self, name: str) -> Path:
        return self.root / f"{name}.{self.fmt}"

    def list_tables(self) -> list[str]:
        """Stored table names, sorted (stable across filesystems)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob(f"*.{self.fmt}"))

    def write_table(self, name: str, rows: list[dict]) -> Path:
        """Persist one result table; returns the file written."""
        if not rows:
            raise ExperimentError(f"refusing to store empty table {name!r}")
        columns = _columns(rows)
        cells = [
            [format_cell(row.get(col, "")) for col in columns] for row in rows
        ]
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.table_path(name)
        if self.fmt == "parquet":
            pa = _require_pyarrow()
            table = pa.table(
                {col: [line[i] for line in cells] for i, col in enumerate(columns)}
            )
            pa.parquet.write_table(table, path)
            return path
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        writer.writerows(cells)
        path.write_text(buffer.getvalue())
        return path

    def read_table(self, name: str, parse: bool = True) -> list[dict]:
        """Load one table; ``parse=False`` keeps cells as raw strings."""
        path = self.table_path(name)
        if not path.is_file():
            raise ExperimentError(f"no stored table {name!r} in {self.root}")
        if self.fmt == "parquet":
            pa = _require_pyarrow()
            table = pa.parquet.read_table(path)
            columns = table.column_names
            return [
                {
                    col: (parse_cell(value) if parse else value)
                    for col, value in zip(columns, line)
                }
                for line in zip(*(table[col].to_pylist() for col in columns))
            ]
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            try:
                columns = next(reader)
            except StopIteration:
                raise ExperimentError(f"stored table {name!r} is empty") from None
            rows = [
                {
                    col: (parse_cell(value) if parse else value)
                    for col, value in zip(columns, line)
                }
                for line in reader
            ]
        return rows

    def write_summary(self, name: str, summary: dict) -> Path:
        """Sidecar ``<name>.summary.json`` for standalone table writers.

        Benchmarks record one figure at a time and have no whole-run
        manifest; this keeps their headline numbers next to the table
        in the same deterministic serialisation the manifest uses.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{name}.summary.json"
        path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        return path

    # -- manifest -------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / self.manifest_name

    def write_manifest(self, manifest: dict) -> Path:
        """Persist the run manifest (sorted keys, trailing newline)."""
        payload = dict(manifest)
        payload["schema_version"] = STORE_SCHEMA_VERSION
        self.root.mkdir(parents=True, exist_ok=True)
        self.manifest_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        return self.manifest_path

    def read_manifest(self) -> dict:
        """Load and validate the manifest (schema version must match)."""
        if not self.manifest_path.is_file():
            raise ExperimentError(
                f"no manifest in {self.root}; "
                "generate the store with `python -m repro report run --quick`"
            )
        manifest = json.loads(self.manifest_path.read_text())
        version = manifest.get("schema_version")
        if version != STORE_SCHEMA_VERSION:
            raise ExperimentError(
                f"store schema v{version} in {self.root} does not match "
                f"this code's v{STORE_SCHEMA_VERSION}; regenerate the store"
            )
        return manifest


def manifest_identity(manifest: dict) -> dict:
    """The manifest minus :data:`VOLATILE_MANIFEST_KEYS`.

    Two runs of the same configuration must agree on this subset;
    ``report --check`` compares identities, not raw manifests, so a
    different ``--workers`` fan-out never reads as drift.
    """
    return {
        key: value
        for key, value in manifest.items()
        if key not in VOLATILE_MANIFEST_KEYS
    }
