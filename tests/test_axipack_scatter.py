"""Indirect write (scatter) path: functional semantics and coalescing."""

import numpy as np
import pytest

from repro.axipack.scatter import fast_indirect_scatter, run_indirect_scatter
from repro.config import mlp_config, nocoalescer_config, seq_config
from repro.errors import SimulationError

from helpers import banded_stream


class TestFunctional:
    def test_unique_indices_scatter_exactly(self):
        rng = np.random.default_rng(1)
        idx = rng.permutation(600)[:400].astype(np.uint32)
        vals = rng.normal(size=400)
        metrics = run_indirect_scatter(idx, vals, mlp_config(64))
        assert metrics.count == 400  # verify=True checked memory

    def test_duplicate_indices_last_write_wins(self):
        idx = np.array([3, 7, 3, 7, 3], dtype=np.uint32)
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        run_indirect_scatter(idx, vals, mlp_config(8))  # verifies internally

    def test_heavy_duplication_across_windows(self):
        rng = np.random.default_rng(2)
        idx = rng.integers(0, 50, 2000).astype(np.uint32)
        run_indirect_scatter(idx, rng.normal(size=2000), mlp_config(64))

    def test_sequential_variant(self):
        rng = np.random.default_rng(3)
        idx = rng.integers(0, 300, 800).astype(np.uint32)
        run_indirect_scatter(idx, rng.normal(size=800), seq_config(64))

    def test_requires_coalescer(self):
        with pytest.raises(SimulationError):
            run_indirect_scatter(
                np.array([1], dtype=np.uint32), np.array([1.0]),
                nocoalescer_config(),
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            run_indirect_scatter(
                np.array([1, 2], dtype=np.uint32), np.array([1.0]), mlp_config(8)
            )


class TestCoalescing:
    def test_banded_scatter_coalesces(self):
        idx = banded_stream(3000)
        vals = np.arange(3000, dtype=np.float64)
        metrics = run_indirect_scatter(idx, vals, mlp_config(256))
        assert metrics.coalesce_rate > 1.0
        assert metrics.elem_txns < 3000 / 4

    def test_fast_model_matches_write_counts(self):
        idx = banded_stream(2500)
        vals = np.ones(2500)
        cycle = run_indirect_scatter(idx, vals, mlp_config(64))
        fast = fast_indirect_scatter(idx, mlp_config(64))
        assert abs(cycle.elem_txns - fast.elem_txns) <= 2

    def test_window_monotone(self):
        idx = banded_stream(4000)
        txns = [
            fast_indirect_scatter(idx, mlp_config(w)).elem_txns
            for w in (8, 32, 128)
        ]
        assert txns == sorted(txns, reverse=True)

    def test_scatter_and_gather_coalesce_identically(self):
        """Same index stream, same windows: the write coalescer must
        merge exactly as the read coalescer does."""
        from repro.axipack import fast_indirect_stream

        idx = banded_stream(3000)
        gather = fast_indirect_stream(idx, mlp_config(64))
        scatter = fast_indirect_scatter(idx, mlp_config(64))
        assert gather.elem_txns == scatter.elem_txns
