"""Two-phase FIFO semantics."""

import pytest

from repro.errors import ProtocolError
from repro.sim.fifo import Fifo, drain


def test_push_not_visible_until_commit():
    fifo = Fifo(4, "t")
    fifo.push(1)
    assert not fifo.can_pop()
    fifo.commit()
    assert fifo.can_pop()
    assert fifo.pop() == 1


def test_fifo_order_preserved():
    fifo = Fifo(8, "t")
    fifo.push_many([1, 2, 3])
    fifo.commit()
    assert drain(fifo) == [1, 2, 3]


def test_capacity_includes_staged():
    fifo = Fifo(2, "t")
    fifo.push(1)
    fifo.push(2)
    assert not fifo.can_push()
    with pytest.raises(ProtocolError):
        fifo.push(3)


def test_pop_frees_space_within_cycle():
    """Fall-through full side: a pop's slot is reusable immediately,
    but the new entry still only becomes visible after commit."""
    fifo = Fifo(1, "t")
    fifo.push("a")
    fifo.commit()
    assert fifo.pop() == "a"
    assert fifo.can_push()
    fifo.push("b")
    assert not fifo.can_pop()
    fifo.commit()
    assert fifo.pop() == "b"


def test_peek_does_not_consume():
    fifo = Fifo(2, "t")
    fifo.push(7)
    fifo.commit()
    assert fifo.peek() == 7
    assert fifo.pop() == 7


def test_peek_empty_raises():
    with pytest.raises(ProtocolError):
        Fifo(2, "t").peek()


def test_pop_empty_raises():
    with pytest.raises(ProtocolError):
        Fifo(2, "t").pop()


def test_push_many_overflow_rejected_atomically():
    fifo = Fifo(2, "t")
    with pytest.raises(ProtocolError):
        fifo.push_many([1, 2, 3])
    assert fifo.occupancy == 0


def test_unbounded_fifo():
    fifo = Fifo(None, "t")
    for i in range(10_000):
        fifo.push(i)
    assert fifo.can_push(1_000_000)


def test_capacity_validation():
    with pytest.raises(ValueError):
        Fifo(0, "t")


def test_occupancy_and_len():
    fifo = Fifo(4, "t")
    fifo.push(1)
    assert len(fifo) == 0  # committed only
    assert fifo.occupancy == 1  # committed + staged
    fifo.commit()
    assert len(fifo) == 1


def test_counters_and_max_occupancy():
    fifo = Fifo(4, "t")
    fifo.push_many([1, 2, 3])
    fifo.commit()
    fifo.pop()
    assert fifo.total_pushed == 3
    assert fifo.total_popped == 1
    assert fifo.max_occupancy == 3


def test_is_empty_accounts_staged():
    fifo = Fifo(4, "t")
    assert fifo.is_empty
    fifo.push(1)
    assert not fifo.is_empty


def test_ops_counter_is_per_instance():
    """Activity tracking must not leak across FIFOs (it used to be a
    class-level counter, which let two live simulators mask each
    other's idle detection)."""
    assert not hasattr(Fifo, "global_ops")
    a = Fifo(4, "a")
    b = Fifo(4, "b")
    a.push(1)
    a.commit()
    a.pop()
    assert a._ops[0] == 2
    assert b._ops[0] == 0


def test_max_occupancy_samples_staged_pushes():
    """A staged-only spike (pushed then drained before any commit
    merges it) must still register in max_occupancy."""
    fifo = Fifo(8, "t")
    fifo.push(1)
    fifo.commit()
    fifo.push_many([2, 3, 4])  # occupancy peaks at 1 committed + 3 staged
    fifo.pop()
    fifo.commit()
    drain(fifo)
    fifo.commit()
    assert fifo.max_occupancy == 4
