"""Two-phase FIFO semantics."""

import pytest

from repro.errors import ProtocolError
from repro.sim.fifo import Fifo, drain


def test_push_not_visible_until_commit():
    fifo = Fifo(4, "t")
    fifo.push(1)
    assert not fifo.can_pop()
    fifo.commit()
    assert fifo.can_pop()
    assert fifo.pop() == 1


def test_fifo_order_preserved():
    fifo = Fifo(8, "t")
    fifo.push_many([1, 2, 3])
    fifo.commit()
    assert drain(fifo) == [1, 2, 3]


def test_capacity_includes_staged():
    fifo = Fifo(2, "t")
    fifo.push(1)
    fifo.push(2)
    assert not fifo.can_push()
    with pytest.raises(ProtocolError):
        fifo.push(3)


def test_pop_frees_space_within_cycle():
    """Fall-through full side: a pop's slot is reusable immediately,
    but the new entry still only becomes visible after commit."""
    fifo = Fifo(1, "t")
    fifo.push("a")
    fifo.commit()
    assert fifo.pop() == "a"
    assert fifo.can_push()
    fifo.push("b")
    assert not fifo.can_pop()
    fifo.commit()
    assert fifo.pop() == "b"


def test_peek_does_not_consume():
    fifo = Fifo(2, "t")
    fifo.push(7)
    fifo.commit()
    assert fifo.peek() == 7
    assert fifo.pop() == 7


def test_peek_empty_raises():
    with pytest.raises(ProtocolError):
        Fifo(2, "t").peek()


def test_pop_empty_raises():
    with pytest.raises(ProtocolError):
        Fifo(2, "t").pop()


def test_push_many_overflow_rejected_atomically():
    fifo = Fifo(2, "t")
    with pytest.raises(ProtocolError):
        fifo.push_many([1, 2, 3])
    assert fifo.occupancy == 0


def test_unbounded_fifo():
    fifo = Fifo(None, "t")
    for i in range(10_000):
        fifo.push(i)
    assert fifo.can_push(1_000_000)


def test_capacity_validation():
    with pytest.raises(ValueError):
        Fifo(0, "t")


def test_occupancy_and_len():
    fifo = Fifo(4, "t")
    fifo.push(1)
    assert len(fifo) == 0  # committed only
    assert fifo.occupancy == 1  # committed + staged
    fifo.commit()
    assert len(fifo) == 1


def test_counters_and_max_occupancy():
    fifo = Fifo(4, "t")
    fifo.push_many([1, 2, 3])
    fifo.commit()
    fifo.pop()
    assert fifo.total_pushed == 3
    assert fifo.total_popped == 1
    assert fifo.max_occupancy == 3


def test_is_empty_accounts_staged():
    fifo = Fifo(4, "t")
    assert fifo.is_empty
    fifo.push(1)
    assert not fifo.is_empty


def test_global_ops_counter_advances():
    before = Fifo.global_ops
    fifo = Fifo(4, "t")
    fifo.push(1)
    fifo.commit()
    fifo.pop()
    assert Fifo.global_ops == before + 2
