"""Simulator loop: tick/commit ordering, idle detection, deadlock."""

import pytest

from repro.errors import BudgetExceededError, DeadlockError
from repro.sim.clock import Simulator
from repro.sim.component import Component


class Producer(Component):
    """Pushes an increasing counter every cycle."""

    def __init__(self, count: int):
        super().__init__("producer")
        self.out = self.make_fifo(4, "out")
        self.remaining = count
        self._next = 0

    def tick(self):
        if self.remaining and self.out.can_push():
            self.out.push(self._next)
            self._next += 1
            self.remaining -= 1

    @property
    def busy(self):
        return self.remaining > 0 or super().busy


class Consumer(Component):
    def __init__(self, source):
        super().__init__("consumer")
        self.source = source
        self.got = []

    def tick(self):
        if self.source.can_pop():
            self.got.append(self.source.pop())


class Stuck(Component):
    """Claims to be busy but never makes progress."""

    def tick(self):
        pass

    @property
    def busy(self):
        return True


def test_pipeline_transfers_in_order():
    producer = Producer(10)
    consumer = Consumer(producer.out)
    sim = Simulator([producer, consumer])
    sim.run_until(lambda: len(consumer.got) == 10, max_cycles=100)
    assert consumer.got == list(range(10))


def test_one_cycle_latency_through_fifo():
    """A value pushed in cycle k is poppable in cycle k+1, regardless of
    component registration order."""
    producer = Producer(1)
    consumer = Consumer(producer.out)
    # Consumer ticks first: same behaviour expected.
    sim = Simulator([consumer, producer])
    sim.step()
    assert consumer.got == []
    sim.step()
    assert consumer.got == [0]


def test_run_until_returns_elapsed_cycles():
    producer = Producer(5)
    consumer = Consumer(producer.out)
    sim = Simulator([producer, consumer])
    elapsed = sim.run_until(lambda: len(consumer.got) == 5, max_cycles=50)
    assert elapsed == sim.cycle
    assert 5 <= elapsed <= 10


def test_deadlock_detection_on_stuck_busy_component():
    sim = Simulator([Stuck("stuck")], deadlock_horizon=50)
    with pytest.raises(DeadlockError):
        sim.step(100)


def test_idle_components_do_not_trigger_deadlock():
    producer = Producer(1)
    consumer = Consumer(producer.out)
    sim = Simulator([producer, consumer], deadlock_horizon=10)
    sim.step(500)  # long idle tail: fine, nothing claims busy
    assert consumer.got == [0]


def test_run_until_max_cycles_guard():
    """A budget overrun is not a deadlock: it raises a distinct error
    carrying the elapsed cycles and the busy component names."""
    sim = Simulator([Stuck("stuck")], deadlock_horizon=10**9)
    with pytest.raises(BudgetExceededError) as excinfo:
        sim.run_until(lambda: False, max_cycles=100)
    assert not isinstance(excinfo.value, DeadlockError)
    assert excinfo.value.cycles_elapsed == 100
    assert excinfo.value.busy_components == ["stuck"]
    assert sim.cycle == 100


def test_two_simulators_do_not_mask_idle_detection():
    """Two live simulators in one process: constant FIFO traffic in one
    must not reset the other's idle counter (the old class-level
    Fifo.global_ops bug)."""
    stuck_sim = Simulator([Stuck("stuck")], deadlock_horizon=50)

    class Chatter(Component):
        def __init__(self):
            super().__init__("chatter")
            self.loop = self.make_fifo(2, "loop")

        def tick(self):
            if self.loop.can_pop():
                self.loop.pop()
            if self.loop.can_push():
                self.loop.push(0)

    busy_sim = Simulator([Chatter()])
    with pytest.raises(DeadlockError):
        for _ in range(100):
            busy_sim.step()  # interleaved activity elsewhere
            stuck_sim.step()


def test_add_component():
    sim = Simulator([])
    producer = Producer(1)
    sim.add(producer)
    sim.step(2)
    assert producer.remaining == 0
