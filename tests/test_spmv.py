"""Reference SpMV kernels (golden model checks)."""

import numpy as np

from repro.sparse.spmv import spmv_csr, spmv_csr_scalar, spmv_flops, spmv_sell
from repro.sparse.suite import get_matrix

from helpers import small_csr


def test_scalar_matches_vectorised():
    m = small_csr()
    x = np.random.default_rng(4).normal(size=m.ncols)
    assert np.allclose(spmv_csr_scalar(m, x), spmv_csr(m, x))


def test_sell_matches_scalar():
    m = small_csr(nrows=90, ncols=80)
    x = np.random.default_rng(5).normal(size=m.ncols)
    assert np.allclose(spmv_sell(m.to_sell(32), x), spmv_csr_scalar(m, x))


def test_flops_definition():
    assert spmv_flops(100) == 200


def test_suite_matrix_formats_agree():
    m = get_matrix("nasa4704", max_nnz=10_000)
    x = np.random.default_rng(6).normal(size=m.ncols)
    y_csr = spmv_csr(m, x)
    y_sell = spmv_sell(m.to_sell(32), x)
    assert np.allclose(y_csr, y_sell)


def test_zero_vector_gives_zero():
    m = small_csr()
    assert not spmv_csr(m, np.zeros(m.ncols)).any()
