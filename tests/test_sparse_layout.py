"""DRAM layout of SpMV working sets."""

import numpy as np

from repro.mem.backing_store import BackingStore
from repro.sparse.layout import layout_csr, layout_sell

from helpers import small_csr


def test_csr_layout_addresses_and_sizes():
    m = small_csr()
    store = BackingStore(1 << 20)
    layout = layout_csr(store, m)
    assert layout.fmt == "csr"
    assert layout.idx_bytes == 4 * m.nnz
    assert layout.val_bytes == 8 * m.nnz
    assert layout.vec_bytes == 8 * m.ncols
    assert layout.result_bytes == 8 * m.nrows
    assert layout.num_entries == m.nnz
    # all 64-byte aligned
    for base in (layout.ptr_base, layout.idx_base, layout.val_base,
                 layout.vec_base, layout.result_base):
        assert base % 64 == 0


def test_csr_layout_data_readable_back():
    m = small_csr()
    store = BackingStore(1 << 20)
    layout = layout_csr(store, m)
    idx = store.read_typed(layout.idx_base, m.nnz, np.uint32)
    val = store.read_typed(layout.val_base, m.nnz, np.float64)
    assert np.array_equal(idx, m.col_idx)
    assert np.array_equal(val, m.val)


def test_sell_layout_uses_padded_entries():
    m = small_csr(nrows=70)
    sell = m.to_sell(32)
    store = BackingStore(1 << 20)
    layout = layout_sell(store, sell)
    assert layout.fmt == "sell"
    assert layout.num_entries == sell.padded_nnz
    assert layout.idx_bytes == 4 * sell.padded_nnz


def test_ideal_traffic_accounting():
    m = small_csr()
    store = BackingStore(1 << 20)
    layout = layout_csr(store, m)
    expected = (
        layout.ptr_bytes + layout.idx_bytes + layout.val_bytes
        + layout.vec_bytes + layout.result_bytes
    )
    assert layout.ideal_traffic_bytes == expected


def test_custom_vector_respected():
    m = small_csr()
    store = BackingStore(1 << 20)
    vec = np.linspace(0, 1, m.ncols)
    layout = layout_csr(store, m, vec)
    assert np.allclose(store.read_typed(layout.vec_base, m.ncols, np.float64), vec)
