"""SweepExecutor: schema, dedup, determinism, experiment smoke runs.

Everything here runs at tiny scale (12k nonzeros, small suite
matrices) — the goal is pinning the engine's contract, not paper
numbers:

* result tables have a fixed schema and come back in input order;
* per-matrix analysis is deduplicated behind the keyed cache;
* a process pool returns bit-identical tables to serial execution;
* every refactored experiment runs end-to-end through an explicit
  executor.
"""

import pytest

from repro.engine import (
    ADAPTER_KIND,
    SYSTEM_KIND,
    AnalysisCache,
    SweepExecutor,
    SweepPoint,
    adapter_grid,
    system_grid,
    workers_from_env,
)
from repro.errors import ExperimentError
from repro.experiments import run_fig3, run_fig4, run_fig5a, run_fig5b, run_fig6b

TINY = 12_000
ADAPTER_COLUMNS = {
    "kind", "matrix", "format", "variant", "model", "max_nnz",
    "count", "cycles", "idx_txns", "elem_txns",
    "indir_gbps", "elem_gbps", "index_gbps", "loss_gbps", "coal_rate",
}
SYSTEM_COLUMNS = {
    "kind", "matrix", "system", "model", "max_nnz",
    "runtime_cycles", "indirect_fraction", "gflops",
    "traffic_vs_ideal", "bw_utilization",
}


class TestGrids:
    def test_adapter_grid_order_and_shape(self):
        points = adapter_grid(
            ("pwtk", "hood"), ("MLPnc", "MLP64"), ("sell", "csr"), TINY
        )
        assert len(points) == 2 * 2 * 2
        assert points[0] == SweepPoint("pwtk", "MLPnc", "sell", TINY)
        # format-major, then matrix, then variant — figure order.
        assert [p.fmt for p in points[:4]] == ["sell"] * 4
        assert points[1].variant == "MLP64"

    def test_system_grid_kind(self):
        points = system_grid(("pwtk",), ("base", "pack256"), TINY)
        assert all(p.kind == SYSTEM_KIND for p in points)

    def test_group_key_shares_matrix_work(self):
        a = SweepPoint("pwtk", "MLPnc", "sell", TINY)
        b = SweepPoint("pwtk", "MLP256", "sell", TINY)
        c = SweepPoint("pwtk", "MLPnc", "csr", TINY)
        assert a.group_key == b.group_key != c.group_key


class TestExecutor:
    def test_adapter_rows_schema_and_order(self):
        points = adapter_grid(("pwtk", "msc01440"), ("MLPnc", "MLP64"), max_nnz=TINY)
        rows = SweepExecutor(workers=1).run(points)
        assert len(rows) == len(points)
        for point, row in zip(points, rows):
            assert set(row) == ADAPTER_COLUMNS
            assert row["kind"] == ADAPTER_KIND
            assert (row["matrix"], row["variant"]) == (point.matrix, point.variant)
            assert row["cycles"] > 0 and row["elem_txns"] > 0

    def test_system_rows_schema(self):
        rows = SweepExecutor(workers=1).run(
            system_grid(("pwtk",), ("base", "pack0", "pack256"), TINY)
        )
        assert [set(r) for r in rows] == [SYSTEM_COLUMNS] * 3
        assert [r["system"] for r in rows] == ["base", "pack0", "pack256"]

    def test_duplicate_points_resolve_to_same_row(self):
        point = SweepPoint("pwtk", "MLP64", "sell", TINY)
        rows = SweepExecutor(workers=1).run([point, point])
        assert rows[0] == rows[1]
        assert rows[0] is not rows[1]  # caller-safe copies

    def test_pool_matches_serial_bit_exactly(self):
        points = adapter_grid(
            ("pwtk", "msc01440", "G3_circuit"), ("MLPnc", "MLP64", "MLP256"),
            max_nnz=TINY,
        ) + system_grid(("pwtk",), ("base", "pack256"), TINY)
        serial = SweepExecutor(workers=1).run(points)
        pooled = SweepExecutor(workers=2).run(points)
        assert serial == pooled

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ExperimentError):
            SweepExecutor(workers=0)

    def test_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert workers_from_env() == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert workers_from_env() == 3
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(ExperimentError):
            workers_from_env()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ExperimentError):
            workers_from_env()


class TestAnalysisCache:
    def test_stream_and_analysis_are_memoised(self):
        cache = AnalysisCache()
        s1 = cache.stream("pwtk", "sell", TINY)
        s2 = cache.stream("pwtk", "sell", TINY)
        assert s1 is s2
        a1 = cache.analysis("pwtk", "sell", TINY, 8)
        assert a1 is cache.analysis("pwtk", "sell", TINY, 8)
        assert a1 is not cache.analysis("pwtk", "sell", TINY, 16)
        assert a1.blocks.size == s1.size

    def test_layout_stats_schema(self):
        stats = AnalysisCache().layout_stats("msc01440", "csr", TINY)
        assert {"nrows", "ncols", "nnz", "avg_row", "stream_len"} <= set(stats)
        assert stats["stream_len"] == stats["nnz"]  # CSR stream = col_idx


class TestExperimentsThroughEngine:
    """Each refactored experiment, end-to-end, serial == pooled."""

    MATRICES = ("pwtk", "msc01440")

    @pytest.mark.parametrize(
        "runner,kwargs",
        [
            (run_fig3, {"matrices": MATRICES, "variants": ("MLPnc", "MLP256")}),
            (run_fig4, {"matrices": MATRICES}),
            (run_fig5a, {"matrices": MATRICES}),
            (run_fig5b, {"matrices": MATRICES}),
            (run_fig6b, {"matrices": MATRICES}),
        ],
        ids=["fig3", "fig4", "fig5a", "fig5b", "fig6b"],
    )
    def test_runs_and_is_deterministic_across_executors(self, runner, kwargs):
        serial = runner(max_nnz=TINY, executor=SweepExecutor(workers=1), **kwargs)
        pooled = runner(max_nnz=TINY, executor=SweepExecutor(workers=2), **kwargs)
        assert serial["rows"] == pooled["rows"]
        assert serial["summary"] == pooled["summary"]
        assert serial["rows"] and serial["summary"]


class TestCacheBound:
    def test_fifo_eviction_keeps_cache_bounded(self):
        cache = AnalysisCache(maxsize=2)
        first = cache.stream("pwtk", "sell", TINY)
        cache.stream("msc01440", "sell", TINY)
        cache.stream("G3_circuit", "sell", TINY)
        assert len(cache._streams) == 2
        # oldest entry was evicted; re-request rebuilds identically
        rebuilt = cache.stream("pwtk", "sell", TINY)
        assert rebuilt is not first
        assert (rebuilt == first).all()

    def test_evictions_are_counted(self):
        cache = AnalysisCache(maxsize=2)
        for matrix in ("pwtk", "msc01440", "G3_circuit"):
            cache.stream(matrix, "sell", TINY)
        counters = cache.counters()
        assert counters["evictions"] == 1
        assert set(counters) == {"hits", "misses", "evictions"}


class TestPersistentPool:
    """The executor is a reusable resource: one pool across runs."""

    def points(self):
        return adapter_grid(("msc01440",), ("MLPnc", "MLP64"), max_nnz=TINY)

    def test_pool_survives_across_runs(self):
        executor = SweepExecutor(workers=2, shards=2)
        try:
            first = executor.run(self.points())
            pool = executor._pool
            assert pool is not None
            second = executor.run(self.points())
            assert executor._pool is pool, "pool was respawned between runs"
            assert executor.stats["pool_spawns"] == 1
            assert first == second
        finally:
            executor.close()
        assert executor._pool is None

    def test_close_is_idempotent_and_respawns_on_demand(self):
        executor = SweepExecutor(workers=2, shards=2)
        first = executor.run(self.points())
        executor.close()
        executor.close()
        # A closed executor is still usable; the next run respawns.
        assert executor.run(self.points()) == first
        assert executor.stats["pool_spawns"] == 2
        executor.close()

    def test_context_manager_releases_the_pool(self):
        with SweepExecutor(workers=2, shards=2) as executor:
            executor.run(self.points())
            assert executor._pool is not None
        assert executor._pool is None

    def test_serial_executor_never_spawns(self):
        executor = SweepExecutor(workers=1)
        executor.run(self.points())
        assert executor._pool is None
        assert executor.stats["pool_spawns"] == 0

    def test_last_stats_include_eviction_counter(self):
        executor = SweepExecutor(workers=1)
        executor.run(self.points())
        stats = executor.last_stats
        assert {"cache_hits", "cache_misses", "cache_evictions"} <= set(stats)

    def test_add_stats_folds_external_counters(self):
        executor = SweepExecutor(workers=1)
        executor.run(self.points())
        executor.add_stats(corpus_groups=2, corpus_computed=1, corpus_skipped=1)
        assert executor.last_stats["corpus_groups"] == 2
        assert executor.stats["corpus_computed"] == 1
        # accumulates across calls, alongside the engine's own counters
        executor.add_stats(corpus_groups=3)
        assert executor.last_stats["corpus_groups"] == 5
        assert executor.stats["corpus_groups"] == 5
        assert executor.stats["groups"] >= 1  # engine counters untouched

    def test_corpus_run_reports_progress_through_executor_stats(self, tmp_path):
        from repro.corpus import CorpusRunner
        from repro.sparse.corpus import Corpus, MatrixCache, synthetic_entries

        executor = SweepExecutor(workers=1)
        runner = CorpusRunner(
            Corpus("counters", synthetic_entries(("msc01440", "pwtk"))),
            executor=executor,
            store_dir=tmp_path,
            cache=MatrixCache(tmp_path / "cache"),
            variants=("MLPnc",),
            max_nnz=TINY,
        )
        runner.run()
        assert executor.last_stats["corpus_groups"] == 2
        assert executor.last_stats["corpus_computed"] == 2
        assert executor.last_stats["corpus_skipped"] == 0
        assert executor.last_stats["corpus_failed"] == 0
        # a resumed run reports skips through the same counters
        resumed = SweepExecutor(workers=1)
        CorpusRunner(
            Corpus("counters", synthetic_entries(("msc01440", "pwtk"))),
            executor=resumed,
            store_dir=tmp_path,
            cache=MatrixCache(tmp_path / "cache"),
            variants=("MLPnc",),
            max_nnz=TINY,
        ).run()
        assert resumed.stats["corpus_skipped"] == 2
        assert resumed.stats["corpus_computed"] == 0

    def test_run_stream_covers_all_groups(self):
        executor = SweepExecutor(workers=1)
        points = adapter_grid(("msc01440", "pwtk"), ("MLP64",), max_nnz=TINY)
        streamed = list(executor.run_stream(points))
        assert {key[1] for key, _, _ in streamed} == {"msc01440", "pwtk"}
        rows = [row for _, _, group_rows in streamed for row in group_rows]
        assert sorted(r["matrix"] for r in rows) == ["msc01440", "pwtk"]
        # run() reassembles the same rows in input order.
        assert executor.run(points) == sorted(
            rows, key=lambda r: [p.matrix for p in points].index(r["matrix"])
        )
