"""The sweep service: protocol, single-flight, caching, front ends.

Canonicalization is property-tested (field order and spelled-out
defaults never split a job key), single-flight dedup is pinned under
real concurrent identical requests, and both front ends (stdio JSON
lines, HTTP NDJSON) are driven end-to-end.  The headline regression:
rows served through the warm path are byte-identical to a serial
``SweepExecutor`` run.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import SweepExecutor, adapter_grid
from repro.errors import ExperimentError, ServeError
from repro.experiments.common import QUICK_MATRICES, QUICK_NNZ
from repro.report.store import ResultStore
from repro.serve import (
    JobManager,
    ReproServer,
    ServeClient,
    canonicalize,
    serve_stdio,
)
from repro.sparse.suite import DEFAULT_MAX_NNZ

TINY = 12_000
SWEEP_REQ = {
    "cmd": "sweep",
    "matrices": ["msc01440"],
    "variants": ["MLPnc", "MLP64"],
    "max_nnz": TINY,
}


def serial_manager() -> JobManager:
    return JobManager(executor=SweepExecutor(workers=1))


class TestCanonicalize:
    def test_defaults_fill_in(self):
        req = canonicalize({"matrices": ["pwtk"], "variants": ["MLP64"]})
        assert req.kind == "adapter"
        assert req.formats == ("sell",)
        assert req.max_nnz == DEFAULT_MAX_NNZ
        assert req.model == "fast"

    def test_comma_strings_match_lists(self):
        a = canonicalize({"matrices": "pwtk,hood", "variants": "MLP64,MLP256"})
        b = canonicalize({"matrices": ["pwtk", "hood"], "variants": ["MLP64", "MLP256"]})
        assert a.job_key == b.job_key

    def test_quick_resolves_scale_but_explicit_nnz_wins(self):
        quick = canonicalize({"matrices": ["pwtk"], "variants": ["MLP64"], "quick": True})
        assert quick.max_nnz == QUICK_NNZ
        explicit = canonicalize(
            {"matrices": ["pwtk"], "variants": ["MLP64"], "quick": True, "max_nnz": 24_000}
        )
        assert explicit.max_nnz == 24_000

    # The satellite property: two requests that differ only in field
    # order or in spelling out defaulted knobs map to the same job key.
    @settings(max_examples=60, deadline=None)
    @given(
        data=st.data(),
        spell_out=st.sets(
            st.sampled_from(["cmd", "kind", "formats", "model", "max_nnz", "quick"])
        ),
    )
    def test_field_order_and_defaults_never_split_keys(self, data, spell_out):
        base = {"matrices": ["pwtk", "hood"], "variants": ["MLPnc", "MLP256"]}
        defaults = {
            "cmd": "sweep",
            "kind": "adapter",
            "formats": ["sell"],
            "model": "fast",
            "max_nnz": DEFAULT_MAX_NNZ,
            "quick": False,
        }
        payload = dict(base)
        for field in spell_out:
            payload[field] = defaults[field]
        shuffled_keys = data.draw(st.permutations(list(payload)))
        shuffled = {key: payload[key] for key in shuffled_keys}
        assert canonicalize(shuffled).job_key == canonicalize(base).job_key

    @pytest.mark.parametrize(
        "payload,fragment",
        [
            ({"matrices": ["pwtk"]}, "matrices and variants"),
            ({"matrices": ["pwtk"], "variants": ["MLP64"], "bogus": 1}, "unknown request fields"),
            ({"cmd": "frobnicate"}, "unknown cmd"),
            ({"matrices": ["pwtk"], "variants": ["x"], "kind": "nope"}, "unknown sweep backend"),
            ({"matrices": ["pwtk"], "variants": ["x"], "model": "rtl"}, "unknown adapter model"),
            ({"matrices": ["pwtk"], "variants": ["x"], "max_nnz": 10}, ">= 1000"),
            ({"matrices": ["pwtk"], "variants": ["x"], "max_nnz": True}, ">= 1000"),
            ({"matrices": ["pwtk"], "variants": ["x"], "quick": "yes"}, "boolean"),
            ({"matrices": [], "variants": ["x"]}, "non-empty list"),
            ({"kind": "system", "matrices": ["pwtk"], "variants": ["base"], "formats": ["sell"]},
             "does not apply"),
            ({"cmd": "experiment", "name": "fig99"}, "unknown experiment"),
            ({"cmd": "experiment", "name": "fig6a", "quick": True}, "no matrix grid"),
            ("not a dict", "JSON object"),
        ],
    )
    def test_malformed_requests_are_rejected(self, payload, fragment):
        with pytest.raises(ServeError, match=fragment):
            canonicalize(payload)

    def test_experiment_quick_matches_committed_identity(self):
        req = canonicalize({"cmd": "experiment", "name": "fig3", "quick": True})
        assert req.scale_nnz == QUICK_NNZ
        assert req.matrices == QUICK_MATRICES

    def test_paramless_experiment_key_ignores_scale_slots(self):
        assert canonicalize({"cmd": "experiment", "name": "fig6a"}).job_key == (
            "experiment", "fig6a",
        )

    def test_corpus_defaults_and_digest_in_key(self):
        from repro.corpus import DEFAULT_VARIANTS
        from repro.sparse.corpus import get_corpus

        req = canonicalize({"cmd": "corpus"})
        assert req.corpus == "quick"
        assert req.kind == "adapter"
        assert req.variants == DEFAULT_VARIANTS
        assert req.digest == get_corpus("quick").digest
        assert req.job_key[0] == "corpus"
        assert req.digest in req.job_key

    @pytest.mark.parametrize(
        "payload,fragment",
        [
            ({"cmd": "corpus", "corpus": "nope"}, "unknown corpus"),
            ({"cmd": "corpus", "kind": "system"}, "support kinds"),
            ({"cmd": "corpus", "fmt": ""}, "format name"),
            ({"cmd": "corpus", "max_nnz": 10}, ">= 1000"),
            ({"cmd": "corpus", "offline": False}, "unknown request fields"),
        ],
    )
    def test_malformed_corpus_requests(self, payload, fragment):
        with pytest.raises(ServeError, match=fragment):
            canonicalize(payload)


class TestServedCorpus:
    def test_corpus_job_computes_then_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_CACHE", str(tmp_path))
        manager = serial_manager()
        try:
            req = {"cmd": "corpus", "corpus": "quick", "quick": True}
            first = manager.submit(req)
            assert first["source"] == "computed"
            # 7 quick entries x 4 default variants, entry-named rows
            assert len(first["rows"]) == 28
            assert {r["matrix"] for r in first["rows"]} >= {
                "pwtk", "tiny_general", "tiny_banded",
            }
            assert {r["source"] for r in first["rows"]} == {
                "synthetic", "local",
            }
            again = manager.submit(req)
            assert again["source"] == "cache"
            assert again["rows"] == first["rows"]
            stats = manager.executor.stats
            assert stats["corpus_groups"] == 7
            assert stats["corpus_computed"] == 7
        finally:
            manager.close()


class TestServedRowsByteIdentical:
    def test_served_equals_serial_and_pooled(self):
        """Satellite regression: serial == pooled == served, byte-identical."""
        points = adapter_grid(("msc01440", "pwtk"), ("MLPnc", "MLP64"), max_nnz=TINY)
        serial = SweepExecutor(workers=1).run(points)
        with SweepExecutor(workers=2, shards="auto") as pooled_exec:
            pooled = pooled_exec.run(points)
        served = serial_manager().submit(
            {"cmd": "sweep", "matrices": ["msc01440", "pwtk"],
             "variants": ["MLPnc", "MLP64"], "max_nnz": TINY}
        )
        # Served chunks arrive per matrix group; reassemble in point order.
        by_key = {(row["matrix"], row["variant"]): row for row in served["rows"]}
        reassembled = [by_key[(p.matrix, p.variant)] for p in points]
        assert reassembled == serial == pooled

    def test_streamed_chunks_cover_rows_exactly_once(self):
        manager = serial_manager()
        events = list(manager.stream(SWEEP_REQ))
        assert events[0]["event"] == "accepted"
        assert events[-1]["event"] == "done"
        chunks = [e for e in events if e["event"] == "rows"]
        rows = [row for chunk in chunks for row in chunk["rows"]]
        assert events[-1]["row_count"] == len(rows) == 2


class TestResponseCache:
    def test_repeat_request_hits_cache(self):
        manager = serial_manager()
        first = manager.submit(SWEEP_REQ)
        second = manager.submit(SWEEP_REQ)
        assert first["source"] == "computed"
        assert second["source"] == "cache"
        assert first["rows"] == second["rows"]
        assert manager.stats["computed"] == 1
        assert manager.stats["response_hits"] == 1

    def test_returned_rows_are_copies(self):
        manager = serial_manager()
        manager.submit(SWEEP_REQ)["rows"][0]["cycles"] = -1
        assert manager.submit(SWEEP_REQ)["rows"][0]["cycles"] != -1

    def test_cache_is_bounded_lru(self, monkeypatch):
        manager = JobManager(executor=SweepExecutor(workers=1), cache_size=2)
        monkeypatch.setattr(
            JobManager, "_compute_chunks", lambda self, request: iter([[{"ok": 1}]])
        )
        for variant in ("MLP8", "MLP16", "MLP32"):
            manager.submit({"matrices": ["pwtk"], "variants": [variant]})
        assert manager.stats["response_evictions"] == 1
        # Oldest key recomputes, newest two still hit.
        assert manager.submit({"matrices": ["pwtk"], "variants": ["MLP8"]})["source"] == "computed"
        assert manager.submit({"matrices": ["pwtk"], "variants": ["MLP32"]})["source"] == "cache"

    def test_rejects_zero_cache(self):
        with pytest.raises(ExperimentError):
            JobManager(executor=SweepExecutor(workers=1), cache_size=0)


class TestSingleFlight:
    def _race(self, manager: JobManager, payload: dict, threads: int):
        results: list[dict] = [None] * threads  # type: ignore[list-item]
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                results[slot] = manager.submit(payload)
            except BaseException as exc:  # noqa: BLE001 - collected for asserts
                errors.append(exc)

        pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        return results, errors

    @staticmethod
    def _release_once_coalesced(manager: JobManager, release: threading.Event, count: int):
        """Unblock the leader only after `count` followers have piled on,
        so no thread can arrive late and hit the response cache instead."""

        def waiter() -> None:
            deadline = time.monotonic() + 10
            while manager.stats["coalesced"] < count and time.monotonic() < deadline:
                time.sleep(0.005)
            release.set()

        threading.Thread(target=waiter, daemon=True).start()

    def test_concurrent_identical_requests_compute_once(self, monkeypatch):
        manager = serial_manager()
        release = threading.Event()
        calls = []

        def slow_compute(self, request):
            calls.append(request.job_key)
            release.wait(timeout=10)
            yield [{"matrix": "pwtk", "variant": "MLP64", "cycles": 7}]

        monkeypatch.setattr(JobManager, "_compute_chunks", slow_compute)
        self._release_once_coalesced(manager, release, count=5)
        results, errors = self._race(
            manager, {"matrices": ["pwtk"], "variants": ["MLP64"]}, threads=6
        )
        assert not errors
        assert len(calls) == 1, "duplicate in-flight requests recomputed"
        assert {tuple(sorted(r["rows"][0].items())) for r in results} == {
            (("cycles", 7), ("matrix", "pwtk"), ("variant", "MLP64"))
        }
        sources = sorted(r["source"] for r in results)
        assert sources.count("computed") == 1
        assert sources.count("coalesced") == 5
        assert manager.stats["coalesced"] == 5
        assert not manager._inflight

    def test_leader_failure_propagates_to_followers(self, monkeypatch):
        manager = serial_manager()
        release = threading.Event()

        def failing_compute(self, request):
            release.wait(timeout=10)
            raise ExperimentError("synthetic failure")
            yield  # pragma: no cover - makes this a generator

        monkeypatch.setattr(JobManager, "_compute_chunks", failing_compute)
        self._release_once_coalesced(manager, release, count=2)
        results, errors = self._race(
            manager, {"matrices": ["pwtk"], "variants": ["MLP64"]}, threads=3
        )
        assert all(r is None for r in results)
        assert len(errors) == 3
        assert all(isinstance(e, ExperimentError) for e in errors)
        assert not manager._inflight  # failed key fully retired
        # The key is not poisoned: a later request computes fresh.
        monkeypatch.setattr(
            JobManager, "_compute_chunks", lambda self, request: iter([[{"ok": 1}]])
        )
        assert manager.submit({"matrices": ["pwtk"], "variants": ["MLP64"]})[
            "source"
        ] == "computed"


class TestStoreBacked:
    """The committed results/store/ acts as the experiment response
    cache: a request matching the manifest is a disk read."""

    def test_quick_experiment_serves_from_committed_store(self):
        manager = serial_manager()
        result = manager.submit({"cmd": "experiment", "name": "fig3", "quick": True})
        assert result["source"] == "store"
        assert result["rows"] == ResultStore("results/store").read_table("fig3")
        assert manager.submit({"cmd": "experiment", "name": "fig3", "quick": True})[
            "source"
        ] == "cache"

    def test_paramless_experiment_serves_from_store(self):
        result = serial_manager().submit({"cmd": "experiment", "name": "fig6a"})
        assert result["source"] == "store"
        assert len(result["rows"]) == 3

    def test_mismatched_identity_skips_the_store(self):
        manager = serial_manager()
        for payload in (
            {"cmd": "experiment", "name": "fig3", "quick": True, "model": "cycle"},
            {"cmd": "experiment", "name": "fig3", "quick": True, "max_nnz": 24_000},
            {"cmd": "experiment", "name": "fig3"},  # full scale
        ):
            assert manager._store_lookup(canonicalize(payload)) is None

    def test_missing_store_is_not_an_error(self, tmp_path):
        manager = JobManager(
            executor=SweepExecutor(workers=1), store_dir=tmp_path / "nope"
        )
        req = canonicalize({"cmd": "experiment", "name": "fig6a"})
        assert manager._store_lookup(req) is None


class TestStdioFrontEnd:
    def run_lines(self, manager: JobManager, *lines: str):
        out = io.StringIO()
        serve_stdio(manager, io.StringIO("\n".join(lines) + "\n"), out)
        return [json.loads(line) for line in out.getvalue().splitlines()]

    def test_request_bad_json_and_shutdown(self):
        events = self.run_lines(
            serial_manager(),
            json.dumps(SWEEP_REQ),
            "{this is not json",
            json.dumps({"matrices": ["pwtk"]}),  # missing variants
            json.dumps({"cmd": "shutdown"}),
        )
        kinds = [event["event"] for event in events]
        assert kinds[0] == "accepted" and "rows" in kinds
        done = next(e for e in events if e["event"] == "done")
        assert done["source"] == "computed" and done["row_count"] == 2
        error_events = [e for e in events if e["event"] == "error"]
        assert len(error_events) == 2  # bad JSON, then bad request
        assert "bad JSON" in error_events[0]["error"]
        assert events[-1] == {"event": "bye", "served": 1}


class TestHttpFrontEnd:
    @pytest.fixture()
    def server(self):
        manager = serial_manager()
        server = ReproServer(("127.0.0.1", 0), manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        manager.close()

    def _post(self, server, path: str, payload: dict) -> list[dict]:
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            return [json.loads(line) for line in response.read().decode().splitlines()]

    def _get(self, server, path: str):
        port = server.server_address[1]
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
            return json.loads(response.read().decode())

    def test_sweep_round_trip_second_is_cache_hit(self, server):
        first = self._post(server, "/sweep", SWEEP_REQ)
        second = self._post(server, "/sweep", SWEEP_REQ)
        assert first[-1]["event"] == "done" and first[-1]["source"] == "computed"
        assert second[-1]["source"] == "cache"
        rows = [row for e in first if e["event"] == "rows" for row in e["rows"]]
        cached = [row for e in second if e["event"] == "rows" for row in e["rows"]]
        assert rows == cached  # JSON round trip preserves every cell

    def test_path_supplies_the_cmd(self, server):
        events = self._post(server, "/experiment", {"name": "fig6a"})
        assert events[-1]["source"] in ("store", "computed")

    def test_probes_and_errors(self, server):
        assert self._get(server, "/healthz") == {"ok": True}
        stats = self._get(server, "/stats")
        assert {"jobs", "engine", "workers"} <= set(stats)
        with pytest.raises(urllib.error.HTTPError) as bad:
            self._post(server, "/sweep", {"matrices": ["pwtk"]})
        assert bad.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as missing:
            self._post(server, "/nope", {})
        assert missing.value.code == 404
        assert self._get(server, "/stats")["jobs"]["errors"] >= 1


class TestServeClient:
    """The shipped HTTP client: streamed events, local job-key reuse."""

    @pytest.fixture()
    def served(self):
        manager = serial_manager()
        server = ReproServer(("127.0.0.1", 0), manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{server.server_address[1]}")
        yield client, manager
        server.shutdown()
        server.server_close()
        manager.close()

    def test_stream_yields_protocol_events(self, served):
        client, _manager = served
        events = list(client.stream(SWEEP_REQ))
        assert events[0]["event"] == "accepted"
        assert events[-1] == {"event": "done", "source": "computed", "row_count": 2}
        rows = [r for e in events if e["event"] == "rows" for r in e["rows"]]
        assert len(rows) == 2

    def test_submit_reuses_job_key_without_round_trip(self, served):
        client, manager = served
        first = client.submit(SWEEP_REQ)
        assert first["source"] == "computed"
        # The client's key is the locally canonicalized one — identical
        # to what the server computed and streamed back.
        assert first["key"] == canonicalize(SWEEP_REQ).job_key
        requests_before = manager.stats["requests"]
        # Same job, defaults spelled out and fields reordered: the memo
        # still answers it, and no request reaches the server.
        spelled = {"max_nnz": TINY, "variants": ["MLPnc", "MLP64"],
                   "matrices": ["msc01440"], "kind": "adapter", "model": "fast"}
        memoized = client.submit(spelled)
        assert memoized["source"] == "client"
        assert memoized["rows"] == first["rows"]
        assert manager.stats["requests"] == requests_before
        # Forcing the wire lands in the server's response cache.
        wired = client.submit(SWEEP_REQ, reuse=False)
        assert wired["source"] == "cache"
        assert wired["rows"] == first["rows"]
        client.forget()
        assert client.submit(SWEEP_REQ)["source"] == "cache"

    def test_returned_rows_are_copies(self, served):
        client, _manager = served
        client.submit(SWEEP_REQ)["rows"][0]["cycles"] = -1
        assert client.submit(SWEEP_REQ)["rows"][0]["cycles"] != -1

    def test_malformed_request_raises_client_side(self, served):
        client, manager = served
        requests_before = manager.stats["requests"]
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="matrices and variants"):
            client.submit({"matrices": ["pwtk"]})
        # Rejected before any bytes hit the wire.
        assert manager.stats["requests"] == requests_before
        # stream() has no local canonicalization; the server's 400
        # surfaces as the same error type.
        with pytest.raises(ServeError, match="matrices and variants"):
            list(client.stream({"matrices": ["pwtk"]}))

    def test_probes(self, served):
        client, _manager = served
        assert client.healthy()
        assert {"jobs", "engine", "workers"} <= set(client.stats())
        assert not ServeClient("http://127.0.0.1:9").healthy()


class TestServeCli:
    def test_serve_flag_validation(self, capsys):
        from repro.__main__ import main

        assert main(["serve", "--port", "nope"]) == 1
        assert "integer" in capsys.readouterr().err
        assert main(["serve", "--workers", "0"]) == 1
        assert ">= 1" in capsys.readouterr().err
        assert main(["serve", "--frobnicate"]) == 1
        assert "serve does not understand" in capsys.readouterr().err

    def test_serve_stdio_end_to_end(self, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(json.dumps(SWEEP_REQ) + "\n" + '{"cmd": "shutdown"}\n'),
        )
        assert main(["serve", "--stdio", "--workers", "1"]) == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert lines[0]["event"] == "accepted"
        assert lines[-1]["event"] == "bye"
