"""Adapter sub-component behaviour: fetcher credits, splitter routing,
request generation modes, CSHR/window bookkeeping, packer."""

import numpy as np
import pytest

from repro.axipack.burst import IndirectBurst, NarrowRequest
from repro.axipack.cshr import Cshr, Window
from repro.axipack.adapter import build_indirect_system
from repro.config import mlp_config, nocoalescer_config

from helpers import banded_stream


class TestBurstDescriptors:
    def test_burst_byte_accounting(self):
        burst = IndirectBurst(index_base=0, count=100, element_base=4096)
        assert burst.index_stream_bytes == 400
        assert burst.effective_bytes == 800

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            IndirectBurst(index_base=0, count=0, element_base=0)
        with pytest.raises(ValueError):
            IndirectBurst(index_base=-1, count=1, element_base=0)

    def test_narrow_request_block_math(self):
        req = NarrowRequest(seq=0, lane=0, addr=200)
        assert req.block_addr(64) == 192
        assert req.offset_in_block(64, 8) == 1


class TestCshr:
    def test_arm_merge_reset(self):
        cshr = Cshr()
        assert not cshr.armed
        cshr.arm(0x1000)
        cshr.merge(3, 5)
        cshr.merge(3, 6)
        assert cshr.armed and cshr.has_hits
        assert cshr.slot_counts[3] == 2
        assert cshr.entries == [(3, 5), (3, 6)]
        cshr.reset()
        assert not cshr.armed and not cshr.has_hits


class TestWindow:
    def _reqs(self, addrs, start_seq=0):
        return [
            NarrowRequest(seq=start_seq + i, lane=i % 8, addr=a)
            for i, a in enumerate(addrs)
        ]

    def test_groups_by_block(self):
        window = Window(self._reqs([0, 8, 64, 72, 0]), 64, 16)
        assert len(window.groups) == 2
        assert window.remaining == 5

    def test_take_group_absorbs_all_matching(self):
        window = Window(self._reqs([0, 8, 64, 72, 0]), 64, 16)
        taken = window.take_group(0)
        assert len(taken) == 3
        assert window.remaining == 2
        assert not window.exhausted

    def test_oldest_unabsorbed_in_stream_order(self):
        window = Window(self._reqs([64, 0, 64]), 64, 16)
        assert window.oldest_unabsorbed().seq == 0
        window.take_group(0)  # absorbs the middle entry
        assert window.oldest_unabsorbed().seq == 0
        window.take_group(64)
        assert window.exhausted
        with pytest.raises(IndexError):
            window.oldest_unabsorbed()

    def test_slot_budget_limits_merges(self):
        from collections import Counter

        window = Window(self._reqs([0] * 4), 64, 16)
        # All four land in different slots (seq 0..3) -> budget per slot.
        counts = Counter({0: 1})  # slot 0 already has 1 of depth 1
        taken = window.take_group(0, counts, 1)
        assert len(taken) == 3  # slot 0 blocked
        assert window.remaining == 1

    def test_slot_of_uses_window_size(self):
        window = Window(self._reqs([0], start_seq=19), 64, 16)
        assert window.slot_of(window.order[0]) == 3


class TestIndexFetcherCredits:
    def test_outstanding_indices_bounded_by_queue_capacity(self):
        idx = banded_stream(3000)
        sim, adapter, _, _ = build_indirect_system(idx, mlp_config(64))
        limit = adapter.fetcher.credit_limit
        for _ in range(2000):
            sim.step()
            assert 0 <= adapter.fetcher.credits_used <= limit
            if adapter.done:
                break

    def test_fetcher_issues_whole_index_range(self):
        idx = banded_stream(1000)
        sim, adapter, _, _ = build_indirect_system(idx, mlp_config(64))
        sim.run_until(lambda: adapter.done, max_cycles=1_000_000)
        assert adapter.fetcher.blocks_issued == int(np.ceil(1000 * 4 / 64))
        assert adapter.fetcher.credits_used == 0  # all returned


class TestSplitterRouting:
    def test_lane_assignment_round_robin(self):
        """Stream position j must land in lane j mod N (what lets the
        packer reassemble beats with one pop per lane)."""
        idx = np.arange(64, dtype=np.uint32)
        sim, adapter, _, _ = build_indirect_system(
            idx, nocoalescer_config(), ideal_memory=True
        )
        # Let indices arrive but stall element generation by filling
        # nothing: just run some cycles and inspect lane queues.
        sim.step(60)
        lanes = adapter.splitter.lane_queues
        seen = [list(q) for q in lanes]
        for lane, values in enumerate(seen):
            for k, v in enumerate(values):
                assert v % 8 == lane or v == idx[v]  # identity stream
        total = sum(len(v) for v in seen) + adapter.request_gen.generated
        assert total >= 0


class TestPackerBeats:
    def test_beat_count(self):
        idx = banded_stream(1000)
        sim, adapter, _, _ = build_indirect_system(idx, mlp_config(64))
        sim.run_until(lambda: adapter.done, max_cycles=1_000_000)
        assert adapter.packer.beats == int(np.ceil(1000 / 8))
        assert adapter.packer.emitted == 1000

    def test_output_length_matches_count(self):
        idx = banded_stream(123)
        sim, adapter, _, expected = build_indirect_system(idx, mlp_config(16))
        sim.run_until(lambda: adapter.done, max_cycles=1_000_000)
        assert len(adapter.output) == 123
        assert adapter.output == expected.tolist()
