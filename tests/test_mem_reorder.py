"""Reorder buffer: per-ID AXI ordering over an out-of-order memory."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.mem.backing_store import BackingStore
from repro.mem.dram import DramChannel
from repro.mem.reorder import ReorderBuffer
from repro.mem.request import MemRequest, MemResponse
from repro.sim.clock import Simulator
from repro.sim.component import Component
from repro.sim.fifo import Fifo


class ShuffleMemory(Component):
    """Responds out of order (newest first) after a short delay."""

    def __init__(self):
        super().__init__("shuffle")
        self.req = self.make_fifo(16, "req")
        self.rsp = self.make_fifo(None, "rsp")
        self._hold = []

    def tick(self):
        while self.req.can_pop():
            self._hold.append(self.req.pop())
        if len(self._hold) >= 2:
            # Release newest-first: a worst case for ordering.
            for request in reversed(self._hold):
                self.rsp.push(MemResponse(request, None, self.cycle))
            self._hold.clear()

    @property
    def busy(self):
        return bool(self._hold) or super().busy


def test_single_id_order_restored():
    mem = ShuffleMemory()
    reorder = ReorderBuffer(mem.req, mem.rsp)
    sim = Simulator([reorder, mem])
    requests = [MemRequest(addr=64 * i, nbytes=64, axi_id=0) for i in range(8)]
    for request in requests:
        reorder.req.push(request)
    sim.run_until(lambda: len(reorder.rsp) == 8, max_cycles=1000)
    seqs = [reorder.rsp.pop().request.seq for _ in range(8)]
    assert seqs == sorted(seqs)


def test_per_id_sinks_are_independent():
    mem = ShuffleMemory()
    sink0: Fifo = Fifo(None, "sink0")
    sink1: Fifo = Fifo(1, "sink1")  # tiny: will back up
    reorder = ReorderBuffer(mem.req, mem.rsp, sinks={0: sink0, 1: sink1})
    reorder.adopt_fifo(sink0)
    reorder.adopt_fifo(sink1)
    sim = Simulator([reorder, mem])
    for i in range(4):
        reorder.req.push(MemRequest(addr=64 * i, nbytes=64, axi_id=i % 2))
    sim.step(100)
    # ID 0 responses must flow even though ID 1's sink is clogged.
    assert len(sink0) == 2
    assert len(sink1) == 1  # capacity-limited


def test_inflight_budget_enforced():
    mem = ShuffleMemory()
    reorder = ReorderBuffer(mem.req, mem.rsp, max_inflight_per_id=2)
    sim = Simulator([reorder, mem])
    for i in range(6):
        reorder.req.push(MemRequest(addr=64 * i, nbytes=64, axi_id=0))
    sim.step(3)
    # Only 2 may be downstream at once.
    assert mem.req.total_pushed <= 2 + len(mem._hold)
    sim.run_until(lambda: len(reorder.rsp) == 6, max_cycles=2000)


def test_unknown_response_rejected():
    mem_req: Fifo = Fifo(4, "req")
    mem_rsp: Fifo = Fifo(4, "rsp")
    reorder = ReorderBuffer(mem_req, mem_rsp)
    reorder.adopt_fifo(mem_req)
    reorder.adopt_fifo(mem_rsp)
    bogus = MemRequest(addr=0, nbytes=64, axi_id=3)
    mem_rsp.push(MemResponse(bogus, None, 0))
    mem_rsp.commit()
    with pytest.raises(ProtocolError):
        reorder.tick()


def test_end_to_end_with_dram_preserves_per_id_order():
    store = BackingStore(1 << 20)
    dram = DramChannel(store)
    sink0: Fifo = Fifo(None, "s0")
    sink1: Fifo = Fifo(None, "s1")
    reorder = ReorderBuffer(dram.req, dram.rsp, sinks={0: sink0, 1: sink1})
    reorder.adopt_fifo(sink0)
    reorder.adopt_fifo(sink1)
    sim = Simulator([reorder, dram])
    rng = np.random.default_rng(3)
    addrs = rng.integers(0, (1 << 20) // 64, 64) * 64
    for i, addr in enumerate(addrs):
        while not reorder.req.can_push():
            sim.step()
        reorder.req.push(MemRequest(addr=int(addr), nbytes=64, axi_id=i % 2))
        sim.step()
    sim.run_until(lambda: len(sink0) + len(sink1) == 64, max_cycles=100_000)
    for sink in (sink0, sink1):
        seqs = [sink.pop().request.seq for _ in range(len(sink))]
        assert seqs == sorted(seqs)
