"""COO/CSR/SELL format semantics and conversions."""

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.sell import SellMatrix

from helpers import small_csr


class TestCoo:
    def test_to_csr_sorts_and_sums_duplicates(self):
        coo = CooMatrix(2, 3, rows=[1, 0, 1], cols=[2, 1, 2], vals=[1.0, 2.0, 3.0])
        csr = coo.to_csr()
        assert csr.nnz == 2
        assert csr.to_dense()[1, 2] == pytest.approx(4.0)
        assert csr.to_dense()[0, 1] == pytest.approx(2.0)

    def test_empty_matrix(self):
        csr = CooMatrix(3, 3).to_csr()
        assert csr.nnz == 0
        assert csr.spmv(np.ones(3)).tolist() == [0.0, 0.0, 0.0]

    def test_bounds_validated(self):
        with pytest.raises(SparseFormatError):
            CooMatrix(2, 2, rows=[2], cols=[0], vals=[1.0])
        with pytest.raises(SparseFormatError):
            CooMatrix(2, 2, rows=[0], cols=[-1], vals=[1.0])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(SparseFormatError):
            CooMatrix(2, 2, rows=[0], cols=[0, 1], vals=[1.0])

    def test_dense_roundtrip(self):
        coo = CooMatrix(2, 2, rows=[0, 1], cols=[1, 0], vals=[5.0, -3.0])
        dense = coo.to_dense()
        assert dense[0, 1] == 5.0 and dense[1, 0] == -3.0


class TestCsr:
    def test_dtypes_match_paper(self):
        """32 b indices, 64 b values (paper Sec. III)."""
        m = small_csr()
        assert m.col_idx.dtype == np.uint32
        assert m.val.dtype == np.float64
        assert m.row_ptr.dtype == np.int64

    def test_row_ptr_validation(self):
        with pytest.raises(SparseFormatError):
            CsrMatrix(2, 2, np.array([0, 1]), np.array([0]), np.array([1.0]))
        with pytest.raises(SparseFormatError):
            CsrMatrix(2, 2, np.array([0, 2, 1]), np.array([0]), np.array([1.0]))

    def test_col_bounds_validation(self):
        with pytest.raises(SparseFormatError):
            CsrMatrix(1, 2, np.array([0, 1]), np.array([5]), np.array([1.0]))

    def test_spmv_matches_dense(self):
        m = small_csr()
        x = np.random.default_rng(0).normal(size=m.ncols)
        assert np.allclose(m.spmv(x), m.to_dense() @ x)

    def test_spmv_shape_check(self):
        m = small_csr()
        with pytest.raises(SparseFormatError):
            m.spmv(np.ones(m.ncols + 1))

    def test_row_lengths_and_stats(self):
        m = small_csr()
        assert m.row_lengths().sum() == m.nnz
        assert m.avg_row_length == pytest.approx(m.nnz / m.nrows)
        assert 0 < m.density < 1

    def test_index_stream_is_col_idx(self):
        m = small_csr()
        assert np.array_equal(m.index_stream(), m.col_idx)

    def test_footprint_uses_paper_widths(self):
        m = small_csr()
        footprint = m.footprint_bytes()
        assert footprint["col_idx"] == 4 * m.nnz
        assert footprint["val"] == 8 * m.nnz


class TestSell:
    def test_roundtrip_to_csr(self):
        m = small_csr(nrows=70)  # not a multiple of the chunk
        back = m.to_sell(32).to_csr()
        assert np.allclose(m.to_dense(), back.to_dense())

    def test_spmv_matches_csr(self):
        m = small_csr(nrows=100, ncols=90)
        sell = m.to_sell(32)
        x = np.random.default_rng(1).normal(size=m.ncols)
        assert np.allclose(sell.spmv(x), m.spmv(x))

    def test_slice_count_and_padding(self):
        m = small_csr(nrows=70)
        sell = m.to_sell(32)
        assert sell.nslices == 3
        assert sell.padded_nnz >= m.nnz
        assert sell.padding_overhead >= 1.0
        assert sell.true_nnz == m.nnz

    def test_storage_is_column_of_slice_major(self):
        """Within a slice, consecutive stored entries belong to
        consecutive rows at the same slice-column."""
        row_ptr = np.array([0, 2, 3])
        col_idx = np.array([0, 2, 1], dtype=np.uint32)
        val = np.array([10.0, 20.0, 30.0])
        csr = CsrMatrix(2, 3, row_ptr, col_idx, val)
        sell = csr.to_sell(2)
        # slice width 2, chunk 2: layout [r0c0, r1c0, r0c1, r1c1]
        assert sell.val.tolist() == [10.0, 30.0, 20.0, 0.0]
        assert sell.col_idx.tolist() == [0, 1, 2, 1]  # pad repeats last idx

    def test_padding_repeats_last_index(self):
        """Padded entries reuse the row's last column index with a zero
        value (keeps indirect accesses local and SpMV exact)."""
        row_ptr = np.array([0, 3, 4])
        col_idx = np.array([0, 1, 2, 7], dtype=np.uint32)
        val = np.array([1.0, 2.0, 3.0, 4.0])
        sell = CsrMatrix(2, 8, row_ptr, col_idx, val).to_sell(2)
        # Row 1 has width 3 padding 2: indices must repeat 7.
        stream = sell.index_stream()
        assert np.count_nonzero(stream == 7) == 3
        x = np.arange(8, dtype=np.float64)
        assert np.allclose(sell.spmv(x), CsrMatrix(2, 8, row_ptr, col_idx, val).spmv(x))

    def test_empty_rows_pad_with_zero_index(self):
        row_ptr = np.array([0, 0, 1])
        col_idx = np.array([3], dtype=np.uint32)
        val = np.array([2.0])
        sell = CsrMatrix(2, 4, row_ptr, col_idx, val).to_sell(2)
        assert 0 in sell.index_stream().tolist()
        x = np.ones(4)
        assert sell.spmv(x).tolist() == [0.0, 2.0]

    def test_chunk_32_default_paper_config(self):
        m = small_csr(nrows=64)
        sell = m.to_sell()
        assert sell.chunk == 32

    def test_index_stream_dtype(self):
        m = small_csr()
        assert m.to_sell(32).index_stream().dtype == np.uint32
