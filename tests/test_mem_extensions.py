"""Memory extensions: masked writes, hazard ordering, multi-channel,
refresh stats."""

import numpy as np
import pytest

from repro.config import DramConfig
from repro.errors import MemoryModelError
from repro.mem.backing_store import BackingStore
from repro.mem.dram import DramChannel
from repro.mem.multichannel import MultiChannelMemory
from repro.mem.request import MemRequest
from repro.sim.clock import Simulator


class TestMaskedWrites:
    def test_partial_write_preserves_unmasked_bytes(self):
        store = BackingStore(256)
        store.write_block(0, np.arange(64, dtype=np.uint8))
        data = np.full(64, 0xFF, dtype=np.uint8)
        mask = np.zeros(64, dtype=bool)
        mask[8:16] = True
        store.write_block(0, data, mask)
        got = store.read_block(0, 64)
        assert (got[8:16] == 0xFF).all()
        assert (got[:8] == np.arange(8)).all()
        assert (got[16:] == np.arange(16, 64)).all()

    def test_mask_length_checked(self):
        store = BackingStore(256)
        with pytest.raises(MemoryModelError):
            store.write_block(0, np.zeros(64, dtype=np.uint8),
                              np.ones(8, dtype=bool))

    def test_request_mask_validation(self):
        with pytest.raises(ValueError):
            MemRequest(addr=0, nbytes=64, write_mask=np.ones(64, dtype=bool))

    def test_dram_applies_strobes(self):
        store = BackingStore(1 << 12)
        store.write_block(0, np.arange(64, dtype=np.uint8))
        dram = DramChannel(store)
        sim = Simulator([dram])
        data = np.full(64, 0xAB, dtype=np.uint8)
        mask = np.zeros(64, dtype=bool)
        mask[0:8] = True
        dram.req.push(
            MemRequest(addr=0, nbytes=64, is_write=True, write_data=data,
                       write_mask=mask)
        )
        sim.run_until(lambda: not dram.busy, max_cycles=10_000)
        got = store.read_block(0, 64)
        assert (got[:8] == 0xAB).all()
        assert (got[8:] == np.arange(8, 64)).all()


class TestHazardOrdering:
    def test_same_block_requests_commit_in_order(self):
        """Two writes to one block must commit oldest-first even though
        FR-FCFS would otherwise be free to reorder."""
        store = BackingStore(1 << 12)
        dram = DramChannel(store)
        sim = Simulator([dram])
        first = np.full(64, 1, dtype=np.uint8)
        second = np.full(64, 2, dtype=np.uint8)
        dram.req.push(MemRequest(addr=0, nbytes=64, is_write=True,
                                 write_data=first))
        dram.req.push(MemRequest(addr=0, nbytes=64, is_write=True,
                                 write_data=second))
        sim.run_until(lambda: not dram.busy, max_cycles=10_000)
        assert (store.read_block(0, 64) == 2).all()

    def test_read_after_write_sees_the_write(self):
        store = BackingStore(1 << 12)
        dram = DramChannel(store)
        sim = Simulator([dram])
        payload = np.full(64, 7, dtype=np.uint8)
        dram.req.push(MemRequest(addr=128, nbytes=64, is_write=True,
                                 write_data=payload))
        dram.req.push(MemRequest(addr=128, nbytes=64))
        sim.run_until(lambda: len(dram.rsp) == 2, max_cycles=10_000)
        responses = [dram.rsp.pop(), dram.rsp.pop()]
        read = next(r for r in responses if r.data is not None)
        assert (read.data == 7).all()

    def test_different_blocks_still_reorder(self):
        """Hazard ordering must not serialise independent blocks: a row
        hit younger than a conflicting request still goes first."""
        store = BackingStore(1 << 20)
        dram = DramChannel(store)
        sim = Simulator([dram])
        conflict_addr = dram.config.num_banks * dram.config.blocks_per_row * 64
        dram.req.push(MemRequest(addr=0, nbytes=64))
        sim.step(40)
        dram.req.push(MemRequest(addr=conflict_addr, nbytes=64))  # older, row miss
        dram.req.push(MemRequest(addr=64 * dram.config.num_banks, nbytes=64))
        sim.run_until(lambda: len(dram.rsp) == 3, max_cycles=100_000)
        finishes = {}
        while dram.rsp.can_pop():
            r = dram.rsp.pop()
            finishes[r.request.addr] = r.finish_cycle
        assert finishes[64 * dram.config.num_banks] < finishes[conflict_addr]


class TestMultiChannel:
    def _run_stream(self, memory, sim, count):
        issued = 0
        while issued < count:
            if memory.req.can_push():
                memory.req.push(MemRequest(addr=issued * 64, nbytes=64))
                issued += 1
            sim.step()
        sim.run_until(lambda: not memory.busy, max_cycles=200_000)
        return sim.cycle

    def test_two_channels_nearly_double_throughput(self):
        store = BackingStore(1 << 20)
        single = DramChannel(store)
        sim1 = Simulator([single])
        t_single = self._run_stream(single, sim1, 512)

        store2 = BackingStore(1 << 20)
        multi = MultiChannelMemory(store2, num_channels=2)
        sim2 = Simulator(multi.components())
        t_multi = self._run_stream(multi, sim2, 512)
        assert t_multi < 0.7 * t_single

    def test_block_interleaving(self):
        store = BackingStore(1 << 16)
        multi = MultiChannelMemory(store, num_channels=4)
        assert [multi.channel_of(i * 64) for i in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3
        ]

    def test_all_responses_return(self):
        store = BackingStore(1 << 16)
        multi = MultiChannelMemory(store, num_channels=2)
        sim = Simulator(multi.components())
        for i in range(16):
            multi.req.push(MemRequest(addr=i * 64, nbytes=64))
        sim.run_until(lambda: len(multi.rsp) == 16, max_cycles=50_000)
        assert len(multi.rsp) == 16

    def test_peak_bandwidth_scales(self):
        store = BackingStore(1 << 16)
        multi = MultiChannelMemory(store, num_channels=4)
        assert multi.peak_bandwidth_gbps == pytest.approx(128.0)

    def test_channel_count_validated(self):
        with pytest.raises(ValueError):
            MultiChannelMemory(BackingStore(1024), num_channels=0)


class TestRefresh:
    def test_refresh_counter_advances(self):
        store = BackingStore(1 << 16)
        dram = DramChannel(store, DramConfig(t_refi=100, t_rfc=20))
        sim = Simulator([dram])
        sim.step(450)
        assert dram.stats["refreshes"] >= 4

    def test_refresh_disabled(self):
        store = BackingStore(1 << 16)
        dram = DramChannel(store, DramConfig(t_refi=0, t_rfc=0))
        sim = Simulator([dram])
        sim.step(500)
        assert dram.stats["refreshes"] == 0
