"""Cycle model vs fast model cross-validation.

The fast model must reproduce the cycle model's coalescing decisions
exactly (wide element access counts, modulo the ±2 stream-tail
watchdog slack documented below) on realistic streams, and its
analytic cycle counts must stay within a tight band of the cycle
model's.

Tolerance bands (referenced by README):

* wide element accesses: exact up to ±2 — the cycle model's final
  open warp retires through the watchdog, the fast model counts it at
  arming time;
* cycles: ratio within [0.85, 1.25] for every variant and window.
  Before the bank-state timeline (:mod:`repro.mem.timeline`) replaced
  the analytic ``max(bus, t_rc * activates)`` DRAM bound, these bands
  were [0.7, 1.6] for windows up to 64 and [0.5, 2.0] at W=256 —
  queue-aware service pricing is what tightened them.

The deep tier sweeps a real FEM suite stream (the structure class the
paper's coalescer targets) through the slow cycle model; deselect it
with ``-m "not slow"``.
"""

import numpy as np
import pytest

from repro.axipack import fast_indirect_stream, run_indirect_stream
from repro.config import mlp_config, nocoalescer_config, seq_config, variant_config

from helpers import banded_stream, fem_stream, random_stream


STREAMS = {
    "banded": banded_stream(8000, jitter=20, span=4),
    "dense": (np.arange(8000) // 2).astype(np.uint32),
    "random": random_stream(3000, 20_000),
}


@pytest.mark.parametrize("stream_name", list(STREAMS))
@pytest.mark.parametrize("label", ["MLPnc", "MLP8", "MLP64", "MLP256", "SEQ256"])
def test_elem_txns_match(stream_name, label):
    """Wide element access counts agree (tail watchdog effects allow a
    couple of accesses of slack)."""
    idx = STREAMS[stream_name]
    cfg = variant_config(label)
    cycle = run_indirect_stream(idx, cfg)
    fast = fast_indirect_stream(idx, cfg)
    assert abs(cycle.elem_txns - fast.elem_txns) <= max(2, 0.01 * fast.elem_txns)


@pytest.mark.parametrize("stream_name", list(STREAMS))
@pytest.mark.parametrize("label", ["MLPnc", "MLP8", "MLP64", "MLP256", "SEQ256"])
def test_cycles_within_band(stream_name, label):
    idx = STREAMS[stream_name]
    cfg = variant_config(label)
    cycle = run_indirect_stream(idx, cfg)
    fast = fast_indirect_stream(idx, cfg)
    ratio = cycle.cycles / fast.cycles
    assert 0.85 <= ratio <= 1.25, (
        f"{label}/{stream_name}: cycle={cycle.cycles} fast={fast.cycles}"
    )


def test_mlp256_long_stream_stays_in_band():
    """The large-window case used to need a looser 2x band (index
    supply vs window fill); the timeline-backed fast model holds the
    common band on a long stream too."""
    idx = banded_stream(20_000, jitter=20, span=4)
    cfg = mlp_config(256)
    cycle = run_indirect_stream(idx, cfg)
    fast = fast_indirect_stream(idx, cfg)
    assert 0.85 <= cycle.cycles / fast.cycles <= 1.25


def test_idx_txns_identical():
    idx = STREAMS["banded"]
    for label in ("MLPnc", "MLP64"):
        cfg = variant_config(label)
        assert (
            run_indirect_stream(idx, cfg).idx_txns
            == fast_indirect_stream(idx, cfg).idx_txns
        )


class TestFemDeepTier:
    """FEM-structured suite stream through the cycle model (slow)."""

    LABELS = ["MLPnc", "MLP8", "MLP64", "MLP256", "SEQ256"]

    @pytest.fixture(scope="class")
    def fem(self):
        return fem_stream(6000)

    @pytest.mark.slow
    @pytest.mark.parametrize("label", LABELS)
    def test_fem_elem_txns_exact(self, fem, label):
        """Wide-access counts match up to the documented ±2 watchdog
        tail slack (the last open warp's arming-vs-retire accounting)."""
        cfg = variant_config(label)
        cycle = run_indirect_stream(fem, cfg)
        fast = fast_indirect_stream(fem, cfg)
        assert abs(cycle.elem_txns - fast.elem_txns) <= 2

    @pytest.mark.slow
    @pytest.mark.parametrize("label", ["MLPnc", "MLP8", "MLP64", "SEQ256"])
    def test_fem_cycles_within_band(self, fem, label):
        cfg = variant_config(label)
        cycle = run_indirect_stream(fem, cfg)
        fast = fast_indirect_stream(fem, cfg)
        assert 0.85 <= cycle.cycles / fast.cycles <= 1.25

    @pytest.mark.slow
    def test_fem_mlp256_band(self, fem):
        cfg = mlp_config(256)
        cycle = run_indirect_stream(fem, cfg)
        fast = fast_indirect_stream(fem, cfg)
        assert 0.85 <= cycle.cycles / fast.cycles <= 1.25

    @pytest.mark.slow
    def test_fem_idx_txns_identical(self, fem):
        for label in ("MLPnc", "MLP64"):
            cfg = variant_config(label)
            assert (
                run_indirect_stream(fem, cfg).idx_txns
                == fast_indirect_stream(fem, cfg).idx_txns
            )
