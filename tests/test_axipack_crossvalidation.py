"""Cycle model vs fast model cross-validation.

The fast model must reproduce the cycle model's coalescing decisions
exactly (wide element access counts) on realistic streams, and its
analytic cycle counts must stay within a modest band of the cycle
model's (it is a max-of-bottlenecks lower-bound construction).
"""

import numpy as np
import pytest

from repro.axipack import fast_indirect_stream, run_indirect_stream
from repro.config import mlp_config, nocoalescer_config, seq_config, variant_config

from conftest import banded_stream, random_stream


STREAMS = {
    "banded": banded_stream(8000, jitter=20, span=4),
    "dense": (np.arange(8000) // 2).astype(np.uint32),
    "random": random_stream(3000, 20_000),
}


@pytest.mark.parametrize("stream_name", list(STREAMS))
@pytest.mark.parametrize("label", ["MLPnc", "MLP8", "MLP64", "MLP256", "SEQ256"])
def test_elem_txns_match(stream_name, label):
    """Wide element access counts agree (tail watchdog effects allow a
    couple of accesses of slack)."""
    idx = STREAMS[stream_name]
    cfg = variant_config(label)
    cycle = run_indirect_stream(idx, cfg)
    fast = fast_indirect_stream(idx, cfg)
    assert abs(cycle.elem_txns - fast.elem_txns) <= max(2, 0.01 * fast.elem_txns)


@pytest.mark.parametrize("label", ["MLPnc", "MLP8", "MLP64", "SEQ256"])
def test_cycles_within_band(label):
    idx = STREAMS["banded"]
    cfg = variant_config(label)
    cycle = run_indirect_stream(idx, cfg)
    fast = fast_indirect_stream(idx, cfg)
    ratio = cycle.cycles / fast.cycles
    assert 0.7 <= ratio <= 1.6, f"{label}: cycle={cycle.cycles} fast={fast.cycles}"


def test_mlp256_band_is_looser_but_bounded():
    """At large windows secondary effects (index supply vs window fill)
    grow; the models must still agree within 2x."""
    idx = banded_stream(20_000, jitter=20, span=4)
    cfg = mlp_config(256)
    cycle = run_indirect_stream(idx, cfg)
    fast = fast_indirect_stream(idx, cfg)
    assert 0.5 <= cycle.cycles / fast.cycles <= 2.0


def test_idx_txns_identical():
    idx = STREAMS["banded"]
    for label in ("MLPnc", "MLP64"):
        cfg = variant_config(label)
        assert (
            run_indirect_stream(idx, cfg).idx_txns
            == fast_indirect_stream(idx, cfg).idx_txns
        )
