"""Command-line entry point."""

import pytest

from repro.__main__ import main


def test_no_args_prints_usage(capsys):
    assert main([]) == 2
    assert "python -m repro" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert main(["frobnicate"]) == 2


def test_suite_listing(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "af_shell10" in out
    assert "thermal2" in out


def test_fig6a_table(capsys):
    assert main(["fig6a"]) == 0
    out = capsys.readouterr().out
    assert "AP256" in out
    assert "coal_kge_w64 = 307.0" in out


def test_stream_command(capsys):
    assert main(["stream", "msc01440", "MLP64"]) == 0
    out = capsys.readouterr().out
    assert "indirect_bw_gbps" in out


def test_sweep_command(capsys):
    assert main(["sweep", "msc01440,pwtk", "MLPnc,MLP64", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "MLP64" in out
    assert "msc01440" in out


def test_fig4_quick_canary(capsys):
    assert main(["fig4", "--quick"]) == 0
    assert "coal_rate" in capsys.readouterr().out


def test_unknown_flag_is_an_error(capsys):
    assert main(["fig4", "--frobnicate"]) == 1
    assert "unknown flag" in capsys.readouterr().err


def test_workers_flag_requires_integer(capsys):
    assert main(["fig4", "--workers", "two"]) == 1
    assert "integer" in capsys.readouterr().err


def test_stream_honors_model_and_nnz(capsys):
    assert main(["stream", "msc01440", "MLP64", "--model", "cycle", "--nnz", "2000"]) == 0
    assert "indirect_bw_gbps" in capsys.readouterr().out
    assert main(["stream", "msc01440", "MLP64", "--workers", "2"]) == 1
    assert "only --nnz/--model apply" in capsys.readouterr().err


def test_paramless_experiments_reject_engine_flags(capsys):
    assert main(["table1", "--quick"]) == 1
    assert "no matrix grid" in capsys.readouterr().err
    assert main(["fig6a"]) == 0


def test_zero_workers_flag_is_an_error(capsys):
    assert main(["fig4", "--workers", "0"]) == 1
    assert "--workers must be >= 1" in capsys.readouterr().err
    assert main(["fig4", "--nnz", "500"]) == 1
    assert "--nnz must be >= 1000" in capsys.readouterr().err


def test_suite_rejects_flags(capsys):
    assert main(["suite", "--nnz", "2000"]) == 1
    assert "takes no flags" in capsys.readouterr().err


def test_help_flag(capsys):
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    assert "report run --quick" in out
    assert "--store DIR" in out


def test_report_rejects_unknown_subcommand(capsys):
    assert main(["report", "frobnicate"]) == 1
    assert "run/render/check" in capsys.readouterr().err


def test_report_render_rejects_engine_flags(capsys):
    assert main(["report", "render", "--workers", "2"]) == 1
    assert "store alone" in capsys.readouterr().err
    assert main(["report", "render", "--check"]) == 1
    assert "does not combine" in capsys.readouterr().err


def test_report_flag_validation_matches_sweep(capsys):
    assert main(["report", "--nnz", "500"]) == 1
    assert "--nnz must be >= 1000" in capsys.readouterr().err
    assert main(["report", "--workers", "0"]) == 1
    assert "--workers must be >= 1" in capsys.readouterr().err
    assert main(["report", "--model", "rtl"]) == 1
    assert "unknown adapter model" in capsys.readouterr().err


def test_experiments_reject_report_flags(capsys):
    assert main(["fig4", "--store", "somewhere"]) == 1
    assert "belong to the report command" in capsys.readouterr().err


def test_report_run_render_check_round_trip(tmp_path, capsys):
    store = str(tmp_path / "store")
    doc = str(tmp_path / "EXPERIMENTS.md")
    args = ["--store", store, "--out", doc]
    assert main(["report", "run", "--quick", *args]) == 0
    out = capsys.readouterr().out
    assert "claims + manifest" in out

    before = (tmp_path / "EXPERIMENTS.md").read_bytes()
    assert main(["report", "render", *args]) == 0
    capsys.readouterr()
    assert (tmp_path / "EXPERIMENTS.md").read_bytes() == before

    assert main(["report", "--quick", "--check", *args]) == 0
    assert "check clean" in capsys.readouterr().out

    (tmp_path / "EXPERIMENTS.md").write_text("tampered\n")
    assert main(["report", "check", *args]) == 1
    assert "DRIFT" in capsys.readouterr().out


def test_report_render_with_store_defaults_doc_beside_it(tmp_path, capsys, monkeypatch):
    # An explicit --store without --out must write the document next to
    # that store, never onto the committed EXPERIMENTS.md.
    store = str(tmp_path / "store")
    assert main(["report", "run", "--quick", "--store", store]) == 0
    capsys.readouterr()
    assert (tmp_path / "store" / "EXPERIMENTS.md").is_file()
    monkeypatch.chdir(tmp_path)  # a committed doc here would be clobbered
    assert main(["report", "render", "--store", store]) == 0
    capsys.readouterr()
    assert not (tmp_path / "EXPERIMENTS.md").exists()


def test_stray_positionals_are_rejected(capsys):
    assert main(["fig6a", "garbage", "-workers", "4"]) == 1
    assert "no positional arguments" in capsys.readouterr().err
    assert main(["suite", "extra"]) == 1


def test_corpus_list(capsys):
    assert main(["corpus", "list"]) == 0
    out = capsys.readouterr().out
    assert "quick" in out and "full" in out and "suitesparse-demo" in out
    assert main(["corpus", "list", "quick"]) == 0
    out = capsys.readouterr().out
    assert "tiny_banded" in out and "generator" in out


def test_corpus_run_offline_smoke(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CORPUS_CACHE", str(tmp_path / "cache"))
    args = [
        "corpus", "run", "--quick", "--offline",
        "--store", str(tmp_path / "store"), "--variants", "MLPnc,MLP64",
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "corpus: 7 groups — 7 computed, 0 skipped, 0 failed" in out
    assert "fixture" in out  # roll-up table includes the fixture family
    # resume: everything journaled, nothing recomputed
    assert main(args) == 0
    assert "0 computed, 7 skipped" in capsys.readouterr().out


def test_corpus_flag_validation(capsys):
    assert main(["corpus"]) == 1
    assert "list/run/check" in capsys.readouterr().err
    assert main(["corpus", "run", "--full", "--quick"]) == 1
    assert "mutually exclusive" in capsys.readouterr().err
    assert main(["corpus", "run", "--kind", "system"]) == 1
    assert "support kinds" in capsys.readouterr().err
    assert main(["corpus", "run", "--nnz", "12"]) == 1
    assert "--nnz must be >= 1000" in capsys.readouterr().err
    assert main(["corpus", "frobnicate"]) == 1
    assert main(["corpus", "run", "--frobnicate"]) == 1
