"""Command-line entry point."""

import pytest

from repro.__main__ import main


def test_no_args_prints_usage(capsys):
    assert main([]) == 2
    assert "python -m repro" in capsys.readouterr().out


def test_unknown_command(capsys):
    assert main(["frobnicate"]) == 2


def test_suite_listing(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "af_shell10" in out
    assert "thermal2" in out


def test_fig6a_table(capsys):
    assert main(["fig6a"]) == 0
    out = capsys.readouterr().out
    assert "AP256" in out
    assert "coal_kge_w64 = 307.0" in out


def test_stream_command(capsys):
    assert main(["stream", "msc01440", "MLP64"]) == 0
    out = capsys.readouterr().out
    assert "indirect_bw_gbps" in out
