"""Pack and baseline system models: Fig. 5 behaviours."""

import numpy as np
import pytest

from repro.config import BaselineConfig, VpcConfig
from repro.errors import ExperimentError
from repro.sparse.suite import get_matrix, get_spec
from repro.vpc import BaselineSystem, PackSystem, PACK_SYSTEMS
from repro.vpc.ara import AraTimingModel
from repro.vpc.baseline import scaled_llc_bytes
from repro.vpc.prefetcher import plan_tiles

from helpers import small_csr


MAX_NNZ = 120_000


def _runs(name):
    spec = get_spec(name)
    matrix = get_matrix(name, max_nnz=MAX_NNZ)
    scale = matrix.nrows / spec.n
    base = BaselineSystem().run(matrix, name, llc_scale=scale)
    packs = {
        system: PackSystem(label, name=system).run(matrix, name)
        for system, label in PACK_SYSTEMS.items()
    }
    return base, packs


class TestPaperShapeFig5:
    def test_pack0_beats_base(self):
        base, packs = _runs("pwtk")
        assert packs["pack0"].runtime_cycles < base.runtime_cycles

    def test_pack256_beats_pack0_substantially(self):
        base, packs = _runs("pwtk")
        assert packs["pack256"].runtime_cycles < 0.5 * packs["pack0"].runtime_cycles

    def test_speedup_ordering_monotone(self):
        base, packs = _runs("G3_circuit")
        runtimes = [
            packs["pack0"].runtime_cycles,
            packs["pack64"].runtime_cycles,
            packs["pack256"].runtime_cycles,
        ]
        assert runtimes[0] >= runtimes[1] >= runtimes[2]

    def test_base_bandwidth_utilization_is_poor(self):
        base, _ = _runs("circuit5M_dc")
        assert base.bandwidth_utilization() < 0.15

    def test_pack_traffic_overhead_shrinks_with_window(self):
        _, packs = _runs("pwtk")
        assert packs["pack0"].traffic_vs_ideal > 4.0  # paper: 5.6x avg
        assert packs["pack256"].traffic_vs_ideal < 2.5  # paper: 1.29x avg
        assert packs["pack256"].traffic_vs_ideal < packs["pack0"].traffic_vs_ideal

    def test_base_traffic_is_near_ideal(self):
        base, _ = _runs("G3_circuit")
        assert base.traffic_vs_ideal < 2.0

    def test_indirect_time_shrinks_with_coalescing(self):
        _, packs = _runs("af_shell10")
        assert (
            packs["pack256"].indirect_cycles < 0.5 * packs["pack0"].indirect_cycles
        )

    def test_result_metrics_consistent(self):
        base, packs = _runs("HPCG")
        for result in [base, *packs.values()]:
            assert result.runtime_cycles > 0
            assert 0 <= result.indirect_fraction <= 1
            assert result.gflops > 0
            assert result.traffic_vs_ideal >= 0.99


class TestBaselineInternals:
    def test_llc_scaling_floors_and_rounds(self):
        config = BaselineConfig()
        assert scaled_llc_bytes(config, 1.0) == config.llc_bytes
        small = scaled_llc_bytes(config, 1e-6)
        assert small >= 4096
        assert small % (config.llc_ways * config.line_bytes) == 0

    def test_llc_scale_monotone(self):
        config = BaselineConfig()
        sizes = [scaled_llc_bytes(config, s) for s in (0.01, 0.1, 0.5, 1.0)]
        assert sizes == sorted(sizes)

    def test_small_vector_mostly_hits(self):
        matrix = small_csr(nrows=200, ncols=50)  # vec = 400 B
        base = BaselineSystem().run(matrix, "tiny", llc_scale=1.0)
        assert base.breakdown["vec_misses"] < 0.2 * matrix.nnz

    def test_breakdown_fields_present(self):
        base = BaselineSystem().run(small_csr(), "t")
        for key in ("gather_cycles", "compute_cycles", "vec_misses", "llc_bytes"):
            assert key in base.breakdown


class TestPackInternals:
    def test_pack_systems_mapping(self):
        assert PACK_SYSTEMS == {
            "pack0": "MLPnc",
            "pack64": "MLP64",
            "pack256": "MLP256",
        }

    def test_cycle_adapter_model_option(self):
        matrix = get_matrix("msc01440", max_nnz=8_000)
        fast = PackSystem("MLP64", adapter_model="fast").run(matrix, "m")
        cyc = PackSystem("MLP64", adapter_model="cycle").run(matrix, "m")
        ratio = cyc.runtime_cycles / fast.runtime_cycles
        assert 0.4 <= ratio <= 2.5

    def test_invalid_adapter_model_rejected(self):
        with pytest.raises(ExperimentError):
            PackSystem("MLP64", adapter_model="rtl")

    def test_tile_plan_covers_all_entries(self):
        from repro.axipack.metrics import AdapterMetrics

        metrics = AdapterMetrics(
            variant="MLP64", count=100_000, cycles=50_000, idx_txns=6250,
            elem_txns=20_000,
        )
        schedule = plan_tiles(100_000, metrics, total_stream_bytes=800_000)
        assert schedule.num_tiles * schedule.entries_per_tile >= 100_000

    def test_prefetch_time_at_least_dram_time(self):
        from repro.axipack.metrics import AdapterMetrics

        metrics = AdapterMetrics(
            variant="MLPnc", count=10_000, cycles=25_000, idx_txns=625,
            elem_txns=10_000,
        )
        schedule = plan_tiles(10_000, metrics, total_stream_bytes=80_000)
        assert schedule.prefetch_cycles_per_tile >= schedule.indirect_cycles_per_tile


class TestAraTiming:
    def test_sell_compute_scales_with_entries(self):
        ara = AraTimingModel(VpcConfig())
        small = ara.sell_compute_cycles(1000, nslices=4)
        large = ara.sell_compute_cycles(10_000, nslices=40)
        assert large > 8 * small

    def test_sixteen_lanes_throughput(self):
        ara = AraTimingModel(VpcConfig())
        cycles = ara.sell_compute_cycles(16_000, nslices=1)
        assert cycles >= 1000  # 16k entries / 16 lanes
        assert cycles < 3000

    def test_zero_entries(self):
        ara = AraTimingModel(VpcConfig())
        assert ara.sell_compute_cycles(0, nslices=0) == 0.0

    def test_gather_cpi(self):
        ara = AraTimingModel(VpcConfig())
        assert ara.gather_cycles_on_hit(100, cpi=4.0) == 400.0
