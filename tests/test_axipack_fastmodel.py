"""Fast model: window-exact coalescing and analytic timing."""

import numpy as np
import pytest

from repro.axipack.fastmodel import (
    coalesce_window_exact,
    estimate_dram_cycles,
    fast_indirect_stream,
)
from repro.config import DramConfig, mlp_config, nocoalescer_config, seq_config

from helpers import banded_stream, random_stream


class TestWindowExactCoalescing:
    def test_all_unique_blocks(self):
        blocks = np.arange(100, dtype=np.int64) * 7  # no two share a block
        count, tags = coalesce_window_exact(blocks, 16)
        assert count == 100
        assert np.array_equal(tags, blocks)

    def test_all_same_block(self):
        blocks = np.zeros(1000, dtype=np.int64)
        count, _ = coalesce_window_exact(blocks, 64)
        assert count == 0 or count == 1  # single open warp carries forever
        # (flushed once at stream end by the watchdog -> one access)

    def test_duplicates_within_window_merge(self):
        blocks = np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=np.int64)
        count, tags = coalesce_window_exact(blocks, 8)
        assert count == 2
        assert tags.tolist() == [0, 1]

    def test_duplicates_across_windows_do_not_merge(self):
        """Except via the single carried CSHR, separate windows cannot
        share a warp."""
        blocks = np.array([0, 1, 0, 1], dtype=np.int64)
        count, _ = coalesce_window_exact(blocks, 2)
        # windows [0,1], [0,1]: warp 0, warp 1 carried -> absorbs nothing
        # of window 2 (tag 1 matches window2's second entry!) ...
        # window1: tags [0,1], carry=1; window2: {0,1}: 1 merges into
        # carry, 0 is new -> 3 total.
        assert count == 3

    def test_carry_merges_consecutive_window_tail(self):
        blocks = np.array([5, 5, 5, 5, 5, 5, 5, 5], dtype=np.int64)
        count, _ = coalesce_window_exact(blocks, 4)
        assert count <= 1

    def test_first_occurrence_order(self):
        blocks = np.array([3, 1, 3, 2], dtype=np.int64)
        _, tags = coalesce_window_exact(blocks, 4)
        assert tags.tolist() == [3, 1, 2]

    def test_empty_stream(self):
        count, tags = coalesce_window_exact(np.empty(0, dtype=np.int64), 8)
        assert count == 0 and len(tags) == 0


class TestDramEstimate:
    def test_sequential_is_bus_bound(self):
        dram = DramConfig()
        blocks = np.arange(1000, dtype=np.int64)
        cycles, stats = estimate_dram_cycles(blocks, dram)
        assert cycles == 1000 * dram.t_burst

    def test_single_bank_hammer_is_trc_bound(self):
        dram = DramConfig()
        stride = dram.num_banks * dram.blocks_per_row  # same bank, new row
        blocks = np.arange(64, dtype=np.int64) * stride
        cycles, stats = estimate_dram_cycles(blocks, dram)
        assert cycles == 64 * dram.t_rc

    def test_empty(self):
        cycles, _ = estimate_dram_cycles(np.empty(0, dtype=np.int64), DramConfig())
        assert cycles == 0


class TestFastMetrics:
    def test_mlpnc_element_txn_per_request(self):
        idx = random_stream(2000, 100_000)
        m = fast_indirect_stream(idx, nocoalescer_config())
        assert m.elem_txns == 2000
        assert m.coalesce_rate == pytest.approx(0.125, abs=1e-9)

    def test_seq_same_coalescing_lower_bw(self):
        idx = banded_stream(4000)
        mlp = fast_indirect_stream(idx, mlp_config(256))
        seq = fast_indirect_stream(idx, seq_config(256))
        assert seq.elem_txns == mlp.elem_txns
        assert seq.indirect_bw_gbps <= 8.0
        assert mlp.indirect_bw_gbps > seq.indirect_bw_gbps

    def test_window_monotonicity(self):
        idx = banded_stream(8000)
        txns = [fast_indirect_stream(idx, mlp_config(w)).elem_txns
                for w in (8, 16, 32, 64, 128, 256)]
        assert all(a >= b for a, b in zip(txns, txns[1:]))

    def test_idx_txn_count(self):
        idx = banded_stream(1600)
        m = fast_indirect_stream(idx, mlp_config(64))
        assert m.idx_txns == 100  # 1600*4/64

    def test_marks_fast_model(self):
        m = fast_indirect_stream(banded_stream(100), mlp_config(8))
        assert m.extras["model"] == 1.0


class TestStaleAnalysisGuard:
    def test_mismatched_analysis_is_recomputed(self):
        """A stale analysis (wrong stream length or geometry) must be
        ignored, not silently mixed with the new stream."""
        from repro.axipack.fastmodel import analyze_stream

        short = banded_stream(1000)
        full = banded_stream(4000)
        stale = analyze_stream(short, 8)
        cfg = mlp_config(64)
        with_stale = fast_indirect_stream(full, cfg, analysis=stale)
        clean = fast_indirect_stream(full, cfg)
        assert with_stale.elem_txns == clean.elem_txns
        assert with_stale.cycles == clean.cycles


    def test_equal_length_different_stream_is_rejected(self):
        """The sampled content fingerprint catches a stale analysis
        from a different stream of identical length and geometry."""
        from repro.axipack.fastmodel import analyze_stream

        a = banded_stream(4000, seed=1)
        b = banded_stream(4000, seed=99)
        stale = analyze_stream(a, 8)
        cfg = mlp_config(64)
        with_stale = fast_indirect_stream(b, cfg, analysis=stale)
        clean = fast_indirect_stream(b, cfg)
        assert with_stale.elem_txns == clean.elem_txns
        assert with_stale.cycles == clean.cycles
