"""Experiment runners: structure, knobs, and paper-shape summaries.

Runs at deliberately tiny scale (the benchmark harness covers realistic
scales); these tests pin the runners' interfaces and invariants.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    format_table,
    run_fig3,
    run_fig4,
    run_fig5a,
    run_fig5b,
    run_fig6a,
    run_fig6b,
    run_table1,
)
from repro.experiments.common import (
    adapter_model_from_env,
    geomean,
    scale_from_env,
)
from repro.experiments.report import PAPER_CLAIMS, paper_comparison

TINY = 12_000
THREE = ("pwtk", "G3_circuit", "msc01440")


class TestKnobs:
    def test_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE_NNZ", raising=False)
        assert scale_from_env() == 60_000

    def test_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_NNZ", "123456")
        assert scale_from_env() == 123456

    def test_scale_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_NNZ", "lots")
        with pytest.raises(ExperimentError):
            scale_from_env()

    def test_scale_rejects_tiny(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_NNZ", "10")
        with pytest.raises(ExperimentError):
            scale_from_env()

    def test_model_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPTER_MODEL", "cycle")
        assert adapter_model_from_env() == "cycle"

    def test_model_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_ADAPTER_MODEL", "rtl")
        with pytest.raises(ExperimentError):
            adapter_model_from_env()


class TestHelpers:
    def test_format_table_alignment(self):
        table = format_table([{"a": 1, "bb": 2.5}, {"a": 333, "bb": 4.25}])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert "333" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0


class TestRunners:
    def test_fig3_grid_shape_and_columns(self):
        result = run_fig3(
            matrices=THREE, variants=("MLPnc", "MLP64"), max_nnz=TINY
        )
        assert len(result["rows"]) == len(THREE) * 2  # two formats
        for row in result["rows"]:
            assert {"matrix", "format", "MLPnc", "MLP64"} <= set(row)
            assert row["MLP64"] >= row["MLPnc"] * 0.9

    def test_fig3_summary_keys(self):
        result = run_fig3(matrices=THREE, max_nnz=TINY)
        assert "sell_mlp256_boost" in result["summary"]
        assert "csr_mlp256_boost" in result["summary"]

    def test_fig4_bandwidth_identity(self):
        result = run_fig4(matrices=("pwtk",), max_nnz=TINY)
        for row in result["rows"]:
            total = row["elem_gbps"] + row["index_gbps"] + row["loss_gbps"]
            assert total == pytest.approx(32.0, abs=0.05)

    def test_fig5a_base_row_normalised(self):
        result = run_fig5a(matrices=("pwtk",), max_nnz=TINY)
        base_rows = [r for r in result["rows"] if r["system"] == "base"]
        assert base_rows[0]["speedup_vs_base"] == 1.0
        assert base_rows[0]["norm_runtime"] == 1.0

    def test_fig5a_summary_speedups_positive(self):
        result = run_fig5a(matrices=("pwtk", "G3_circuit"), max_nnz=TINY)
        assert result["summary"]["pack256_speedup_geomean"] > 1.0

    def test_fig5b_rows_have_both_metrics(self):
        result = run_fig5b(matrices=("G3_circuit",), max_nnz=TINY)
        for row in result["rows"]:
            assert 0 <= row["bw_utilization_pct"] <= 100
            assert row["traffic_vs_ideal"] > 0.9

    def test_fig6a_rows(self):
        result = run_fig6a()
        assert [r["adapter"] for r in result["rows"]] == ["AP64", "AP128", "AP256"]

    def test_fig6b_has_our_system(self):
        result = run_fig6b(matrices=("msc01440",), max_nnz=TINY)
        assert any(r["machine"] == "This Work" for r in result["rows"])

    def test_table1_values(self):
        result = run_table1()
        assert result["summary"]["dram_peak_gbps"] == 32.0
        assert len(result["rows"]) == 5


class TestReport:
    def test_every_claim_has_a_runner(self):
        experiments = {claim[0] for claim in PAPER_CLAIMS}
        assert experiments <= {
            "fig3", "fig4", "fig5a", "fig5b", "fig6a", "fig6b", "table1"
        }

    def test_paper_comparison_rows(self):
        fake = {"fig6a": {"summary": {"coal_kge_w64": 307.0}}}
        rows = paper_comparison(fake)
        row = next(r for r in rows if r["metric"] == "coal_kge_w64")
        assert row["paper"] == 307
        assert row["measured"] == 307.0
        missing = next(r for r in rows if r["experiment"] == "fig3")
        assert missing["measured"] == "n/a"
