"""AdapterMetrics: the paper's derived quantities."""

import pytest

from repro.axipack.metrics import AdapterMetrics
from repro.config import DramConfig


def _metrics(**overrides):
    defaults = dict(
        variant="MLP64",
        count=1000,
        cycles=500,
        idx_txns=63,
        elem_txns=200,
    )
    defaults.update(overrides)
    return AdapterMetrics(**defaults)


def test_effective_bytes_is_count_times_element():
    assert _metrics().effective_bytes == 8000


def test_fetch_byte_accounting():
    m = _metrics()
    assert m.elem_fetch_bytes == 200 * 64
    assert m.idx_fetch_bytes == 63 * 64
    assert m.total_fetch_bytes == 263 * 64


def test_indirect_bandwidth_definition():
    # 8000 B in 500 ns = 16 GB/s.
    assert _metrics().indirect_bw_gbps == pytest.approx(16.0)


def test_coalesce_rate_definition():
    """Effective element bytes per fetched element byte (Fig. 4)."""
    m = _metrics()
    assert m.coalesce_rate == pytest.approx(8000 / (200 * 64))


def test_coalesce_rate_zero_when_nothing_fetched():
    assert _metrics(elem_txns=0).coalesce_rate == 0.0


def test_loss_plus_used_equals_peak():
    # 263 txns x 64 B over 600 cycles uses ~28 GB/s of the 32 peak.
    m = _metrics(cycles=600)
    total = m.elem_bw_gbps + m.idx_bw_gbps + m.loss_gbps()
    assert total == pytest.approx(DramConfig().peak_bandwidth_gbps)


def test_loss_clamps_at_zero():
    m = _metrics(elem_txns=2000, cycles=100)  # "uses" more than peak
    assert m.loss_gbps() == 0.0


def test_requests_per_cycle():
    assert _metrics().requests_per_cycle == pytest.approx(2.0)


def test_bandwidth_utilization_capped():
    assert _metrics().bandwidth_utilization() <= 1.0


def test_summary_round_trips_variant():
    summary = _metrics().summary()
    assert summary["variant"] == "MLP64"
    assert summary["count"] == 1000
    assert set(summary) >= {
        "cycles",
        "indirect_bw_gbps",
        "coalesce_rate",
        "requests_per_cycle",
    }
