"""Unit-conversion helpers."""

import pytest

from repro.units import (
    bandwidth_gbps,
    bits_to_bytes,
    bytes_to_bits,
    ceil_div,
    format_bytes,
    is_power_of_two,
)


def test_bits_to_bytes_exact():
    assert bits_to_bytes(512) == 64
    assert bits_to_bytes(32) == 4


def test_bits_to_bytes_rejects_partial_bytes():
    with pytest.raises(ValueError):
        bits_to_bytes(9)


def test_bytes_to_bits_roundtrip():
    assert bytes_to_bits(bits_to_bytes(512)) == 512


def test_bandwidth_full_bus():
    # 32 bytes per 1 GHz cycle = 32 GB/s, the paper's ideal channel.
    assert bandwidth_gbps(32, 1) == pytest.approx(32.0)


def test_bandwidth_scales_with_cycles():
    assert bandwidth_gbps(64, 4) == pytest.approx(16.0)


def test_bandwidth_rejects_zero_cycles():
    with pytest.raises(ValueError):
        bandwidth_gbps(1, 0)


def test_ceil_div():
    assert ceil_div(0, 4) == 0
    assert ceil_div(1, 4) == 1
    assert ceil_div(4, 4) == 1
    assert ceil_div(5, 4) == 2


def test_ceil_div_rejects_bad_divisor():
    with pytest.raises(ValueError):
        ceil_div(3, 0)


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(256)
    assert not is_power_of_two(0)
    assert not is_power_of_two(12)
    assert not is_power_of_two(-4)


def test_format_bytes():
    assert format_bytes(27 * 1024) == "27.0 KiB"
    assert format_bytes(512) == "512.0 B"
