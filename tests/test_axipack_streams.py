"""Matrix-to-index-stream mapping."""

import numpy as np
import pytest

from repro.axipack.streams import FORMATS, matrix_index_stream
from repro.errors import ExperimentError

from helpers import small_csr


def test_formats_are_paper_formats():
    assert FORMATS == ("sell", "csr")


def test_csr_stream_is_row_major_col_idx():
    m = small_csr()
    assert np.array_equal(matrix_index_stream(m, "csr"), m.col_idx)


def test_sell_stream_matches_sell_storage_order():
    m = small_csr(nrows=70)
    sell = m.to_sell(32)
    assert np.array_equal(matrix_index_stream(m, "sell"), sell.col_idx)


def test_sell_stream_longer_due_to_padding():
    m = small_csr(nrows=70)
    assert len(matrix_index_stream(m, "sell")) >= len(matrix_index_stream(m, "csr"))


def test_unknown_format_rejected():
    with pytest.raises(ExperimentError):
        matrix_index_stream(small_csr(), "ellpack")


def test_streams_reference_same_columns():
    """Both orders visit the same multiset of real column indices
    (SELL adds padding repeats of in-row indices)."""
    m = small_csr()
    csr_set = set(matrix_index_stream(m, "csr").tolist())
    sell_set = set(matrix_index_stream(m, "sell").tolist())
    assert csr_set <= sell_set | {0}
