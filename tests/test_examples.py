"""Headless smoke runs of every ``examples/*.py`` script.

The examples are documentation that executes; without a test they rot
into dead code paths the moment an API they showcase moves.  Each
script is run in-process (``runpy``, real ``main()`` execution) at a
quick scale passed through its command-line arguments, and the test
asserts it completes and prints its headline output.  A new
``examples/*.py`` must be registered here — the completeness test
fails otherwise.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: script name -> (quick-scale argv, substring its output must contain).
SCRIPTS = {
    "quickstart.py": (["3000"], "fast model (MLP256)"),
    "cg_solver.py": (["3000", "3"], "CG solver speedup"),
    "design_space_exploration.py": (["4000"], "GB/s per kGE"),
    "indirect_stream_analysis.py": (
        ["pwtk", "--nnz", "4000"], "all bandwidths in GB/s",
    ),
    "sparse_transpose.py": (["G3_circuit", "2000"], "wide writes"),
    "spmv_system_comparison.py": (["G3_circuit", "3000"], "pack256"),
}


def test_every_example_is_registered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(SCRIPTS), (
        "examples/ and the smoke-test registry drifted apart; "
        f"only on disk: {on_disk - set(SCRIPTS)}, "
        f"only registered: {set(SCRIPTS) - on_disk}"
    )


@pytest.mark.parametrize("script", sorted(SCRIPTS))
def test_example_runs_headless(script, capsys, monkeypatch):
    argv, expected = SCRIPTS[script]
    path = EXAMPLES_DIR / script
    monkeypatch.setattr(sys, "argv", [str(path), *argv])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert expected in out, f"{script} output lost its headline: {out[-500:]}"
