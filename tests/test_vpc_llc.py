"""LRU cache model."""

import pytest

from repro.config import BaselineConfig
from repro.errors import ConfigError
from repro.vpc.llc import LruCache


def test_cold_miss_then_hit():
    cache = LruCache(4096, ways=4)
    assert not cache.access(0)
    assert cache.access(0)
    assert cache.access(63)  # same line
    assert not cache.access(64)  # next line


def test_lru_eviction_order():
    cache = LruCache(4 * 64, ways=4)  # one set, 4 ways
    for i in range(4):
        cache.access(i * 64 * 1)  # hmm: one set -> all map to set 0
    # Re-touch line 0 so line 1 is LRU.
    cache.access(0)
    cache.access(4 * 64)  # evicts line 1
    assert cache.access(0)
    assert not cache.access(1 * 64)


def test_set_mapping_isolates_sets():
    cache = LruCache(2 * 64 * 2, ways=2)  # 2 sets
    # Lines 0, 2, 4 map to set 0; lines 1, 3 to set 1.
    cache.access(0 * 64)
    cache.access(1 * 64)
    cache.access(2 * 64)
    cache.access(4 * 64)  # evicts line 0 in set 0
    assert cache.access(1 * 64)  # set 1 untouched
    assert not cache.access(0)


def test_hit_rate_and_reset():
    cache = LruCache(4096)
    cache.access(0)
    cache.access(0)
    assert cache.hit_rate == pytest.approx(0.5)
    cache.reset()
    assert cache.hit_rate == 0.0
    assert not cache.access(0)


def test_working_set_behaviour():
    """A working set within capacity hits; beyond capacity it thrashes."""
    cache = LruCache(64 * 64, ways=8)  # 64 lines
    lines_fit = list(range(32))
    for _ in range(3):
        for line in lines_fit:
            cache.access(line * 64)
    assert cache.hit_rate > 0.6

    cache.reset()
    lines_large = list(range(256))
    for _ in range(3):
        for line in lines_large:
            cache.access(line * 64)
    assert cache.hit_rate < 0.05


def test_from_config():
    cache = LruCache.from_config(BaselineConfig())
    assert cache.size_bytes == 1 << 20
    assert cache.num_sets == 2048


def test_geometry_validation():
    with pytest.raises(ConfigError):
        LruCache(1000, ways=3)
