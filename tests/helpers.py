"""Stream and matrix builders shared across the test suite.

These used to live in ``tests/conftest.py``, but ``from conftest
import ...`` is ambiguous the moment any other collected directory
(e.g. ``benchmarks/``) also has a ``conftest.py`` — Python caches the
first one imported under the bare module name ``conftest``.  Keeping
the helpers in a distinctly named module makes the import unambiguous;
``tests/conftest.py`` re-exports the fixtures built on top of them.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix


def banded_stream(count: int, jitter: int = 20, span: int = 4, seed: int = 1) -> np.ndarray:
    """An index stream with FEM-like locality: a slowly advancing base
    plus bounded jitter (good coalescing within small windows)."""
    rng = np.random.default_rng(seed)
    base = np.arange(count) // span
    idx = base + rng.integers(-jitter, jitter + 1, count)
    return np.clip(idx, 0, base.max() + jitter).astype(np.uint32)


def random_stream(count: int, ncols: int, seed: int = 2) -> np.ndarray:
    """Uniformly random indices (worst-case locality)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, ncols, count, dtype=np.uint32)


def fem_stream(count: int = 6000, max_nnz: int = 8000) -> np.ndarray:
    """A real FEM-structured suite stream (pwtk, SELL traversal order),
    truncated to ``count`` indices — the locality class the paper's
    coalescer is built for."""
    from repro.axipack.streams import matrix_index_stream
    from repro.sparse.suite import get_matrix

    stream = matrix_index_stream(get_matrix("pwtk", max_nnz), "sell")
    return stream[:count]


def small_csr(nrows: int = 37, ncols: int = 41, density: float = 0.15, seed: int = 3) -> CsrMatrix:
    """A small random CSR matrix with at least one entry per row."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for r in range(nrows):
        count = max(1, rng.binomial(ncols, density))
        cs = rng.choice(ncols, size=count, replace=False)
        rows.extend([r] * count)
        cols.extend(cs.tolist())
        vals.extend(rng.normal(size=count).tolist())
    return CooMatrix(nrows, ncols, rows, cols, vals).to_csr()
