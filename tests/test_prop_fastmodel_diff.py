"""Property-based differential tests: vectorized hot paths vs oracles.

The fast model's coalescing kernel and DRAM walk were rewritten as
NumPy segment operations; the original per-window / per-transaction
loops are retained in :mod:`repro.axipack.reference` as oracles.  The
vectorized implementations must be *bit-exact* against them — same
wide-access counts, same warp tags in the same issue order, same cycle
estimates — on arbitrary block streams and window sizes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axipack.fastmodel import (
    analyze_stream,
    block_sort_order,
    coalesce_window_exact,
    estimate_dram_cycles,
)
from repro.axipack.reference import (
    coalesce_window_reference,
    estimate_dram_cycles_reference,
)
from repro.config import DramConfig


@st.composite
def block_streams(draw):
    """Block-id streams spanning the shapes sweeps actually produce:
    dense reuse, wandering locality, constants, and sparse far ids."""
    count = draw(st.integers(min_value=0, max_value=500))
    kind = draw(st.sampled_from(["dense", "walk", "constant", "sparse"]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if kind == "dense":
        blocks = rng.integers(0, draw(st.integers(1, 30)), count)
    elif kind == "walk":
        blocks = np.cumsum(rng.integers(-2, 3, count)) + 50
    elif kind == "constant":
        blocks = np.full(count, rng.integers(0, 100))
    else:
        blocks = rng.integers(0, 1 << 40, count)
    return blocks.astype(np.int64)


windows = st.integers(min_value=1, max_value=300)


class TestCoalescerDifferential:
    @given(blocks=block_streams(), window=windows)
    @settings(max_examples=300, deadline=None)
    def test_bit_exact_vs_reference(self, blocks, window):
        """Wide-access count AND warp-tag issue order match the oracle
        exactly — no tolerance."""
        count_vec, tags_vec = coalesce_window_exact(blocks, window)
        count_ref, tags_ref = coalesce_window_reference(blocks, window)
        assert count_vec == count_ref
        assert np.array_equal(tags_vec, tags_ref)

    @given(blocks=block_streams(), window=windows)
    @settings(max_examples=100, deadline=None)
    def test_precomputed_order_is_equivalent(self, blocks, window):
        """Passing the cached by-value sort (the sweep path) changes
        nothing versus computing it in-call."""
        order = block_sort_order(blocks) if blocks.size else None
        count_a, tags_a = coalesce_window_exact(blocks, window, order)
        count_b, tags_b = coalesce_window_exact(blocks, window)
        assert count_a == count_b
        assert np.array_equal(tags_a, tags_b)

    @given(blocks=block_streams(), window=windows)
    @settings(max_examples=100, deadline=None)
    def test_tag_multiset_is_subset_of_windows(self, blocks, window):
        """Sanity invariants independent of the oracle: never more
        warps than requests, never fewer than distinct blocks."""
        count, tags = coalesce_window_exact(blocks, window)
        assert count == len(tags) <= blocks.size
        if blocks.size:
            assert count >= len(np.unique(blocks)) - 1  # carry may hide one
            assert set(tags.tolist()) <= set(blocks.tolist())

    @given(blocks=block_streams())
    @settings(max_examples=50, deadline=None)
    def test_analyze_stream_geometry(self, blocks):
        """analyze_stream derives blocks/order consistently."""
        analysis = analyze_stream(blocks * 8, 8)
        assert np.array_equal(analysis.blocks, blocks)
        assert np.array_equal(analysis.order, block_sort_order(blocks))


class TestDramWalkDifferential:
    @given(blocks=block_streams())
    @settings(max_examples=200, deadline=None)
    def test_cycles_and_stats_match_reference(self, blocks):
        dram = DramConfig()
        cycles_vec, stats_vec = estimate_dram_cycles(blocks, dram)
        cycles_ref, stats_ref = estimate_dram_cycles_reference(blocks, dram)
        assert cycles_vec == cycles_ref
        assert stats_vec == stats_ref

    @given(blocks=block_streams())
    @settings(max_examples=50, deadline=None)
    def test_no_refresh_config_matches_too(self, blocks):
        dram = DramConfig(t_refi=0, t_rfc=0)
        assert estimate_dram_cycles(blocks, dram) == (
            estimate_dram_cycles_reference(blocks, dram)
        )
