"""Property-based differential tests: vectorized hot paths vs oracles.

The fast model's coalescing kernel and its DRAM pricing were rewritten
as NumPy segment operations; naive per-window / per-transaction loops
are retained in :mod:`repro.axipack.reference` as oracles.  The
vectorized implementations must be *bit-exact* against them — same
wide-access counts, same warp tags in the same issue order, same cycle
counts and service stats — on arbitrary block streams, window sizes,
and queue depths.

Three vectorized kernels are pinned here:

* :func:`~repro.axipack.fastmodel.coalesce_window_exact` against the
  seed per-window loop;
* :func:`~repro.mem.timeline.service_timeline` (the bank-state DRAM
  timeline) against its walking oracle, including adversarial
  single-bank and row-thrash streams where the bank dimension
  degenerates;
* :func:`~repro.mem.timeline.analytic_dram_bound` (the legacy two-term
  bound the timeline replaced, kept for benchmarks and bounds checks)
  against its open-row loop.

The legacy bound also serves as a *lower-bound check*: on row-thrash
streams — globally distinct rows, so FR-FCFS reordering has nothing to
merge — the timeline's queue-serial replay can never undercut the
legacy ``max(bus, t_rc * activates)``, and the pure bus-occupancy term
is a floor on every stream.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axipack.fastmodel import (
    analyze_stream,
    block_sort_order,
    coalesce_window_exact,
    estimate_dram_cycles,
)
from repro.axipack.reference import (
    coalesce_window_reference,
    estimate_dram_cycles_reference,
    service_timeline_reference,
)
from repro.config import DramConfig
from repro.mem.timeline import analytic_dram_bound, service_timeline


@st.composite
def block_streams(draw):
    """Block-id streams spanning the shapes sweeps actually produce:
    dense reuse, wandering locality, constants, and sparse far ids."""
    count = draw(st.integers(min_value=0, max_value=500))
    kind = draw(st.sampled_from(["dense", "walk", "constant", "sparse"]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if kind == "dense":
        blocks = rng.integers(0, draw(st.integers(1, 30)), count)
    elif kind == "walk":
        blocks = np.cumsum(rng.integers(-2, 3, count)) + 50
    elif kind == "constant":
        blocks = np.full(count, rng.integers(0, 100))
    else:
        blocks = rng.integers(0, 1 << 40, count)
    return blocks.astype(np.int64)


@st.composite
def single_bank_streams(draw):
    """Adversarial streams confined to one bank: every block maps to
    the same bank (``block % num_banks`` constant), rows arbitrary —
    the regime where the per-bank activate chain is the whole service
    time and any per-bank accounting slip shows up at full magnitude."""
    dram = DramConfig()
    count = draw(st.integers(min_value=1, max_value=400))
    bank = draw(st.integers(0, dram.num_banks - 1))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    kind = draw(st.sampled_from(["hammer", "few_rows", "bursty"]))
    if kind == "hammer":  # every request a fresh row
        rows = np.arange(count, dtype=np.int64)
    elif kind == "few_rows":  # ping-pong over a handful of rows
        rows = rng.integers(0, draw(st.integers(1, 4)), count)
    else:  # runs of row hits with occasional jumps
        rows = np.cumsum(rng.integers(0, 2, count))
    return bank + rows * dram.num_banks * dram.blocks_per_row


@st.composite
def row_thrash_streams(draw):
    """Globally distinct rows (strictly increasing per bank): FR-FCFS
    reordering has nothing to merge, so the timeline's activate count
    equals the legacy walk's and the legacy bound is a true floor."""
    dram = DramConfig()
    count = draw(st.integers(min_value=1, max_value=400))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    banks = rng.integers(0, draw(st.integers(1, dram.num_banks)) , count)
    rows = np.arange(count, dtype=np.int64)  # new row for every request
    return banks + rows * dram.num_banks * dram.blocks_per_row


windows = st.integers(min_value=1, max_value=300)
queue_depths = st.integers(min_value=1, max_value=80)


class TestCoalescerDifferential:
    @given(blocks=block_streams(), window=windows)
    @settings(max_examples=300, deadline=None)
    def test_bit_exact_vs_reference(self, blocks, window):
        """Wide-access count AND warp-tag issue order match the oracle
        exactly — no tolerance."""
        count_vec, tags_vec = coalesce_window_exact(blocks, window)
        count_ref, tags_ref = coalesce_window_reference(blocks, window)
        assert count_vec == count_ref
        assert np.array_equal(tags_vec, tags_ref)

    @given(blocks=block_streams(), window=windows)
    @settings(max_examples=100, deadline=None)
    def test_precomputed_order_is_equivalent(self, blocks, window):
        """Passing the cached by-value sort (the sweep path) changes
        nothing versus computing it in-call."""
        order = block_sort_order(blocks) if blocks.size else None
        count_a, tags_a = coalesce_window_exact(blocks, window, order)
        count_b, tags_b = coalesce_window_exact(blocks, window)
        assert count_a == count_b
        assert np.array_equal(tags_a, tags_b)

    @given(blocks=block_streams(), window=windows)
    @settings(max_examples=100, deadline=None)
    def test_tag_multiset_is_subset_of_windows(self, blocks, window):
        """Sanity invariants independent of the oracle: never more
        warps than requests, never fewer than distinct blocks."""
        count, tags = coalesce_window_exact(blocks, window)
        assert count == len(tags) <= blocks.size
        if blocks.size:
            assert count >= len(np.unique(blocks)) - 1  # carry may hide one
            assert set(tags.tolist()) <= set(blocks.tolist())

    @given(blocks=block_streams())
    @settings(max_examples=50, deadline=None)
    def test_analyze_stream_geometry(self, blocks):
        """analyze_stream derives blocks/order consistently."""
        analysis = analyze_stream(blocks * 8, 8)
        assert np.array_equal(analysis.blocks, blocks)
        assert np.array_equal(analysis.order, block_sort_order(blocks))


def assert_timeline_matches_oracle(blocks, dram, queue_depth=None):
    vec = service_timeline(blocks, dram, queue_depth)
    ref = service_timeline_reference(blocks, dram, queue_depth)
    assert vec.cycles == ref.cycles
    assert vec.stats == ref.stats
    assert np.array_equal(vec.bank_busy, ref.bank_busy)
    return vec


class TestTimelineDifferential:
    @given(blocks=block_streams(), queue_depth=queue_depths)
    @settings(max_examples=200, deadline=None)
    def test_bit_exact_vs_walking_oracle(self, blocks, queue_depth):
        """Cycles, every stat counter, and the per-bank busy vector
        match the walking oracle exactly — no tolerance."""
        assert_timeline_matches_oracle(blocks, DramConfig(), queue_depth)

    @given(blocks=single_bank_streams(), queue_depth=queue_depths)
    @settings(max_examples=150, deadline=None)
    def test_single_bank_adversarial(self, blocks, queue_depth):
        """One-bank streams: the whole service time rides on one bank
        chain; the replay must still match the oracle bit-exactly and
        never report work on any other bank."""
        dram = DramConfig()
        result = assert_timeline_matches_oracle(blocks, dram, queue_depth)
        bank = int(blocks[0] % dram.num_banks)
        assert result.bank_busy[bank] > 0
        others = np.delete(result.bank_busy, bank)
        assert not others.any()
        assert result.cold_activates == 1

    @given(blocks=row_thrash_streams(), queue_depth=queue_depths)
    @settings(max_examples=150, deadline=None)
    def test_row_thrash_never_undercuts_legacy_bound(self, blocks, queue_depth):
        """Globally distinct rows: reordering merges nothing, so the
        timeline's activate count equals the legacy walk's and the
        legacy two-term bound is a floor on the replay."""
        dram = DramConfig()
        result = assert_timeline_matches_oracle(blocks, dram, queue_depth)
        legacy_cycles, legacy_stats = analytic_dram_bound(blocks, dram)
        assert result.activates == legacy_stats["activates"]
        assert result.row_hits == 0
        assert result.cycles >= legacy_cycles

    @given(blocks=block_streams(), queue_depth=queue_depths)
    @settings(max_examples=100, deadline=None)
    def test_invariants(self, blocks, queue_depth):
        """Oracle-independent floors and conservation laws: the bus
        occupancy is a lower bound, reordering only ever removes
        activates versus the legacy in-order walk, hits + activates
        account for every transaction, and no bank is busier than the
        whole channel."""
        dram = DramConfig()
        result = service_timeline(blocks, dram, queue_depth)
        n = int(blocks.size)
        assert result.cycles >= n * dram.t_burst
        assert result.transactions == n
        _, legacy_stats = analytic_dram_bound(blocks, dram)
        if n:
            assert result.activates <= legacy_stats["activates"]
            assert result.bank_busy.max() <= result.cycles
            assert (result.occupancy() <= 1.0).all()

    @given(blocks=block_streams())
    @settings(max_examples=50, deadline=None)
    def test_estimate_dram_cycles_is_a_timeline_wrapper(self, blocks):
        """The fastmodel entry point is a thin compatibility shim: same
        cycles as the timeline, stats in the legacy two-counter shape."""
        dram = DramConfig()
        cycles, stats = estimate_dram_cycles(blocks, dram)
        result = service_timeline(blocks, dram)
        assert cycles == result.cycles
        assert stats == {
            "row_changes": result.row_conflicts,
            "activates": result.activates,
        }


class TestLegacyBoundDifferential:
    """The retired analytic bound stays pinned to its own oracle (it
    still anchors the lower-bound checks and the timeline benchmark)."""

    @given(blocks=block_streams())
    @settings(max_examples=100, deadline=None)
    def test_cycles_and_stats_match_reference(self, blocks):
        dram = DramConfig()
        cycles_vec, stats_vec = analytic_dram_bound(blocks, dram)
        if blocks.size == 0:
            assert cycles_vec == 0
            return
        cycles_ref, stats_ref = estimate_dram_cycles_reference(blocks, dram)
        assert cycles_vec == cycles_ref
        assert stats_vec == stats_ref

    @given(blocks=block_streams())
    @settings(max_examples=50, deadline=None)
    def test_no_refresh_config_matches_too(self, blocks):
        dram = DramConfig(t_refi=0, t_rfc=0)
        if blocks.size == 0:
            assert analytic_dram_bound(blocks, dram)[0] == 0
            return
        assert analytic_dram_bound(blocks, dram) == (
            estimate_dram_cycles_reference(blocks, dram)
        )
