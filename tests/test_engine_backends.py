"""Backend registry and sharding: registration contract, exact merges.

The engine's dispatch is a registry of :class:`SweepBackend` objects;
these tests pin its contract:

* unknown kinds fail loudly (``repro.errors`` type, message lists the
  registered kinds) at both point construction and lookup;
* duplicate registration is rejected unless explicitly replaced;
* for **every** registered backend, any shard count produces tables
  byte-identical to the serial run (property-based over shard counts),
  including the adapter backends' window-aligned stream chunking;
* shard/chunk identity is part of the analysis-cache key, so a chunk
  analysis can never be served where the whole-matrix one belongs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    AnalysisCache,
    ShardTask,
    SweepExecutor,
    SweepPoint,
    get_backend,
    grid_points,
    register_backend,
    registered_kinds,
    resolve_shards,
    shards_from_env,
)
from repro.engine.backends import AdapterBackend
from repro.errors import ExperimentError, ReproError

TINY = 12_000

#: One tiny grid per registered kind — every backend must appear here
#: (the completeness test below fails when a new backend forgets to).
GRIDS = {
    "adapter": lambda: grid_points(
        "adapter", ("pwtk",), ("MLPnc", "MLP64", "MLP256"), max_nnz=TINY
    ),
    "system": lambda: grid_points(
        "system", ("pwtk",), ("base", "pack256"), max_nnz=TINY
    ),
    "multichannel": lambda: grid_points(
        "multichannel", ("pwtk",), ("ch1", "ch2", "ch4"), max_nnz=TINY
    ),
    "scatter": lambda: grid_points(
        "scatter", ("pwtk",), ("MLP64", "MLP256"), max_nnz=TINY
    ),
    "strided": lambda: grid_points(
        "strided", ("linear",), ("s8", "s16", "s32"), max_nnz=4096
    ),
}


class TestRegistry:
    def test_every_registered_backend_has_a_test_grid(self):
        assert set(GRIDS) == set(registered_kinds())

    def test_unknown_kind_raises_with_registered_names(self):
        with pytest.raises(ExperimentError) as excinfo:
            SweepPoint("pwtk", "MLP64", kind="warp")
        message = str(excinfo.value)
        assert "warp" in message
        for kind in registered_kinds():
            assert kind in message

    def test_unknown_kind_is_a_repro_error(self):
        with pytest.raises(ReproError):
            get_backend("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentError) as excinfo:
            register_backend(AdapterBackend())
        assert "already registered" in str(excinfo.value)
        # the registry is unchanged and replace=True swaps deliberately
        original = get_backend("adapter")
        replacement = AdapterBackend()
        try:
            assert register_backend(replacement, replace=True) is replacement
            assert get_backend("adapter") is replacement
        finally:
            register_backend(original, replace=True)

    def test_kindless_backend_rejected(self):
        class Anonymous(AdapterBackend):
            kind = ""

        with pytest.raises(ExperimentError):
            register_backend(Anonymous())

    def test_grid_points_dispatches_per_kind(self):
        for kind, build in GRIDS.items():
            points = build()
            assert points, kind
            assert all(p.kind == kind for p in points)


class TestShardingMatchesSerial:
    """merge(split(...)) == run_group(...) for every backend."""

    @pytest.mark.parametrize("kind", sorted(GRIDS))
    @settings(max_examples=6, deadline=None)
    @given(shards=st.integers(min_value=1, max_value=9))
    def test_sharded_equals_serial(self, kind, shards):
        points = GRIDS[kind]()
        serial = SweepExecutor(workers=1, shards=1).run(points)
        sharded = SweepExecutor(workers=1, shards=shards).run(points)
        assert serial == sharded

    def test_single_variant_stream_chunking_is_exact(self):
        # One variant, many shards: the adapter backend must chunk the
        # stream itself (window-aligned) and the merged row must be
        # bit-identical — floats and all — to the serial row.
        for variant in ("MLP256", "MLP8", "SEQ256", "MLPnc"):
            points = grid_points("adapter", ("pwtk",), (variant,), max_nnz=TINY)
            serial = SweepExecutor(workers=1, shards=1).run(points)
            chunked = SweepExecutor(workers=1, shards=5).run(points)
            assert serial == chunked, variant

    def test_pooled_sharded_equals_serial(self):
        points = (
            GRIDS["adapter"]() + GRIDS["system"]() + GRIDS["multichannel"]()
        )
        serial = SweepExecutor(workers=1, shards=1).run(points)
        pooled = SweepExecutor(workers=2, shards=4).run(points)
        assert serial == pooled

    def test_adapter_split_shapes(self):
        backend = get_backend("adapter")
        key = ("adapter", "pwtk", "sell", TINY, "fast")
        # shard budget below the variant count: contiguous variant chunks
        tasks = backend.split(key, ("a", "b", "c"), 2)
        assert [t.variants for t in tasks] == [("a",), ("b", "c")]
        assert all(t.chunk is None for t in tasks)
        # budget beyond the variant count (fast model): stream chunks
        tasks = backend.split(key, ("a", "b"), 4)
        assert [(t.variants, t.chunk) for t in tasks] == [
            (("a",), (0, 2)), (("a",), (1, 2)),
            (("b",), (0, 2)), (("b",), (1, 2)),
        ]
        # the cycle model never stream-chunks (not exactly mergeable)
        cycle_key = ("adapter", "pwtk", "sell", TINY, "cycle")
        tasks = backend.split(cycle_key, ("a",), 4)
        assert [t.chunk for t in tasks] == [None]

    def test_chunked_task_on_chunkless_backend_rejected(self):
        backend = get_backend("system")
        task = ShardTask(("system", "pwtk", "", TINY, "fast"), ("base",), (0, 2))
        with pytest.raises(ExperimentError):
            backend.run_shard(task, AnalysisCache())


class TestShardKnobs:
    def test_shards_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert shards_from_env() == 1
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert shards_from_env() == 4
        monkeypatch.setenv("REPRO_SHARDS", "auto")
        assert shards_from_env() == "auto"
        monkeypatch.setenv("REPRO_SHARDS", "many")
        with pytest.raises(ExperimentError):
            shards_from_env()
        monkeypatch.setenv("REPRO_SHARDS", "0")
        with pytest.raises(ExperimentError):
            shards_from_env()

    def test_resolve_shards(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None, 3) == 1
        assert resolve_shards("auto", 3) == 3
        assert resolve_shards(2, 3) == 2
        monkeypatch.setenv("REPRO_SHARDS", "auto")
        assert resolve_shards(None, 5) == 5
        with pytest.raises(ExperimentError):
            resolve_shards(0, 3)

    def test_executor_counts_tasks_and_cache_traffic(self):
        executor = SweepExecutor(workers=1, shards=4)
        executor.run(grid_points("adapter", ("pwtk",), ("MLP256",), max_nnz=TINY))
        assert executor.last_stats["groups"] == 1
        assert executor.last_stats["tasks"] == 4
        total = executor.last_stats["cache_hits"] + executor.last_stats["cache_misses"]
        assert total > 0
        assert executor.stats["tasks"] == executor.last_stats["tasks"]


class TestChunkedCacheKeys:
    def test_chunk_is_part_of_the_key(self):
        cache = AnalysisCache()
        whole = cache.stream("pwtk", "sell", TINY)
        chunk = cache.stream("pwtk", "sell", TINY, chunk=(0, 512))
        assert chunk.size == 512
        assert chunk is not whole
        assert chunk is cache.stream("pwtk", "sell", TINY, chunk=(0, 512))
        assert (chunk == whole[:512]).all()

    def test_chunk_analysis_never_aliases_whole_analysis(self):
        cache = AnalysisCache()
        whole = cache.analysis("pwtk", "sell", TINY, 8)
        chunk = cache.analysis("pwtk", "sell", TINY, 8, chunk=(256, 1024))
        assert chunk is not whole
        assert chunk.blocks.size == 1024 - 256
        assert (chunk.blocks == whole.blocks[256:1024]).all()

    def test_counters_track_hits_and_misses(self):
        cache = AnalysisCache()
        assert cache.counters() == {"hits": 0, "misses": 0, "evictions": 0}
        cache.stream("pwtk", "sell", TINY)
        misses = cache.counters()["misses"]
        assert misses >= 1
        cache.stream("pwtk", "sell", TINY)
        assert cache.counters() == {"hits": 1, "misses": misses, "evictions": 0}


class TestBackendValidation:
    def test_multichannel_rejects_bad_labels(self):
        backend = get_backend("multichannel")
        with pytest.raises(ExperimentError):
            backend.variant_setup("MLP64")
        with pytest.raises(ExperimentError):
            backend.variant_setup("ch0")

    def test_multichannel_cycle_model_runs(self):
        """model='cycle' wires the adapter to MultiChannelMemory (the
        historic rejection is lifted); the fast per-channel timelines
        must land near the cycle run on the same point."""
        points = [
            SweepPoint("pwtk", "ch2", "sell", 3000, model, "multichannel")
            for model in ("cycle", "fast")
        ]
        cycle_row, fast_row = SweepExecutor(workers=1).run(points)
        assert cycle_row["model"] == "cycle" and cycle_row["channels"] == 2
        assert cycle_row["cycles"] > 0
        assert 0.7 <= cycle_row["cycles"] / fast_row["cycles"] <= 1.6

    def test_strided_rejects_bad_labels(self):
        backend = get_backend("strided")
        with pytest.raises(ExperimentError):
            backend.stride_bytes("x16")

    def test_multichannel_bandwidth_never_degrades(self):
        rows = SweepExecutor(workers=1).run(GRIDS["multichannel"]())
        gbps = [row["indir_gbps"] for row in rows]
        assert gbps == sorted(gbps)
        assert rows[0]["channels"] == 1 and rows[-1]["channels"] == 4
        assert rows[-1]["peak_gbps"] == 4 * rows[0]["peak_gbps"]


def test_multichannel_ch1_matches_single_channel_fast_model():
    """The mem-layer entry point degenerates exactly at one channel."""
    from repro.axipack.fastmodel import fast_indirect_stream
    from repro.config import variant_config
    from repro.mem.multichannel import fast_multichannel_stream

    rng = np.random.default_rng(7)
    idx = rng.integers(0, 50_000, 20_000)
    single = fast_indirect_stream(idx, variant_config("MLP256"))
    multi = fast_multichannel_stream(idx, 1)
    assert (single.cycles, single.elem_txns) == (multi.cycles, multi.elem_txns)
