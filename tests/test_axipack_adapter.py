"""End-to-end adapter correctness and paper-shape behaviour.

The central invariant: for any index stream, the packed output equals
``vec[indices]`` in stream order — for every adapter variant, over the
cycle-accurate DRAM model.
"""

import numpy as np
import pytest

from repro.axipack import run_indirect_stream
from repro.axipack.adapter import build_indirect_system
from repro.config import mlp_config, nocoalescer_config, seq_config, variant_config

from helpers import banded_stream, random_stream


class TestFunctionalCorrectness:
    @pytest.mark.parametrize(
        "label", ["MLPnc", "MLP8", "MLP16", "MLP64", "MLP256", "SEQ64", "SEQ256"]
    )
    def test_output_matches_gather_banded(self, label):
        idx = banded_stream(1500)
        # verify=True raises on any mismatch.
        metrics = run_indirect_stream(idx, variant_config(label), variant=label)
        assert metrics.count == 1500

    @pytest.mark.parametrize("label", ["MLPnc", "MLP64", "SEQ64"])
    def test_output_matches_gather_random(self, label):
        idx = random_stream(800, 5000)
        run_indirect_stream(idx, variant_config(label), variant=label)

    def test_single_element_stream(self):
        idx = np.array([7], dtype=np.uint32)
        metrics = run_indirect_stream(idx, mlp_config(64))
        assert metrics.count == 1

    def test_stream_not_multiple_of_lanes_or_window(self):
        idx = banded_stream(333)  # 333 = 41*8+5: ragged tail everywhere
        run_indirect_stream(idx, mlp_config(64))

    def test_all_same_index(self):
        """Pathological reuse: every request hits one block."""
        idx = np.full(700, 42, dtype=np.uint32)
        metrics = run_indirect_stream(idx, mlp_config(64))
        # Metadata budgets bound per-warp merges: 2048/W per slot.
        assert metrics.elem_txns < 700 // 8

    def test_strictly_ascending_dense(self):
        idx = np.arange(2048, dtype=np.uint32)
        metrics = run_indirect_stream(idx, mlp_config(256))
        # 8 consecutive 64 b elements share one wide block.
        assert metrics.elem_txns == 2048 // 8

    def test_ideal_memory_backend(self):
        idx = banded_stream(600)
        metrics = run_indirect_stream(idx, mlp_config(64), ideal_memory=True)
        assert metrics.count == 600

    def test_output_values_are_vector_entries(self):
        idx = np.array([3, 1, 4, 1, 5], dtype=np.uint32)
        _, adapter, _, expected = build_indirect_system(idx, mlp_config(8))
        from repro.sim.clock import Simulator  # wiring returns its own sim

        sim, adapter, _, expected = build_indirect_system(idx, mlp_config(8))
        sim.run_until(lambda: adapter.done, max_cycles=100_000)
        assert adapter.output == expected.tolist()


class TestPaperShape:
    """Relative behaviours the paper's Figs. 3-4 report."""

    def test_coalescer_beats_no_coalescer(self):
        idx = banded_stream(4000)
        nc = run_indirect_stream(idx, nocoalescer_config())
        mlp = run_indirect_stream(idx, mlp_config(256))
        assert mlp.indirect_bw_gbps > 3 * nc.indirect_bw_gbps

    def test_bandwidth_grows_with_window(self):
        idx = banded_stream(12_000)
        bws = [
            run_indirect_stream(idx, mlp_config(w)).indirect_bw_gbps
            for w in (8, 64, 256)
        ]
        assert bws[0] < bws[1]
        assert bws[2] >= 0.9 * bws[1]  # large windows at least hold the gain

    def test_seq_matches_mlp_coalesce_rate_but_slower(self):
        """Sec. IV-A: the sequential coalescer reaches the same coalesce
        rate yet is throughput-capped by its single input port."""
        idx = banded_stream(4000)
        mlp = run_indirect_stream(idx, mlp_config(256))
        seq = run_indirect_stream(idx, seq_config(256))
        assert seq.coalesce_rate == pytest.approx(mlp.coalesce_rate, rel=0.05)
        assert seq.indirect_bw_gbps < 8.1  # paper: capped under 8 GB/s
        assert mlp.indirect_bw_gbps > 1.5 * seq.indirect_bw_gbps

    def test_mlpnc_coalesce_rate_is_element_fraction(self):
        """Without coalescing every 64 B access serves one 8 B element."""
        idx = random_stream(1000, 100_000)
        nc = run_indirect_stream(idx, nocoalescer_config())
        assert nc.coalesce_rate == pytest.approx(8 / 64, abs=0.001)
        assert nc.elem_txns == 1000

    def test_indirect_bw_can_exceed_channel_peak(self):
        """Fig. 3: effective indirect bandwidth above 32 GB/s through
        data reuse (dense local stream)."""
        idx = (np.arange(20_000, dtype=np.uint32) // 16)  # 16x reuse per element
        metrics = run_indirect_stream(idx, mlp_config(256))
        assert metrics.coalesce_rate > 1.5
        assert metrics.indirect_bw_gbps > 20.0

    def test_metrics_bandwidth_identity(self):
        idx = banded_stream(2000)
        m = run_indirect_stream(idx, mlp_config(64))
        # elem + idx + loss == peak
        total = m.elem_bw_gbps + m.idx_bw_gbps + m.loss_gbps()
        assert total == pytest.approx(32.0, abs=0.01)

    def test_idx_txns_cover_stream(self):
        idx = banded_stream(1600)
        m = run_indirect_stream(idx, mlp_config(64))
        assert m.idx_txns == int(np.ceil(1600 * 4 / 64))


class TestBackpressureRobustness:
    """Tiny queues and degenerate configurations must not deadlock."""

    def test_tiny_metadata_queues(self):
        from repro.config import AdapterConfig, CoalescerConfig

        cfg = AdapterConfig(
            lanes=4,
            coalescer=CoalescerConfig(
                window=16,
                hitmap_queue_depth=2,
                offsets_total_entries=32,
                sizer_queue_depth=2,
            ),
        )
        idx = banded_stream(500)
        metrics = run_indirect_stream(idx, cfg)
        assert metrics.count == 500

    def test_window_equals_lanes(self):
        cfg = mlp_config(8)
        idx = banded_stream(500)
        run_indirect_stream(idx, cfg)

    def test_two_lanes(self):
        cfg = mlp_config(16, lanes=2)
        idx = banded_stream(400)
        run_indirect_stream(idx, cfg)

    def test_high_duplication_with_shallow_offsets(self):
        from repro.config import AdapterConfig, CoalescerConfig

        cfg = AdapterConfig(
            lanes=8,
            coalescer=CoalescerConfig(
                window=64, offsets_total_entries=64  # depth 1 per slot
            ),
        )
        idx = np.full(512, 3, dtype=np.uint32)
        run_indirect_stream(idx, cfg)
