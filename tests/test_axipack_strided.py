"""Strided AXI-Pack bursts through the coalescer."""

import numpy as np
import pytest

from repro.axipack.strided import (
    StridedBurst,
    fast_strided_stream,
    run_strided_stream,
)
from repro.config import mlp_config, nocoalescer_config, seq_config


class TestBurstDescriptor:
    def test_addressing(self):
        burst = StridedBurst(base=128, count=4, stride_bytes=16)
        assert [burst.address_of(j) for j in range(4)] == [128, 144, 160, 176]

    def test_validation(self):
        with pytest.raises(ValueError):
            StridedBurst(base=0, count=0, stride_bytes=8)
        with pytest.raises(ValueError):
            StridedBurst(base=0, count=4, stride_bytes=4)  # < element


class TestCycleModel:
    def test_unit_stride_coalesces_to_one_block_per_8(self):
        burst = StridedBurst(base=0, count=1024, stride_bytes=8)
        metrics = run_strided_stream(burst, mlp_config(64))
        assert metrics.elem_txns == 1024 // 8

    def test_block_stride_cannot_coalesce(self):
        burst = StridedBurst(base=0, count=512, stride_bytes=64)
        metrics = run_strided_stream(burst, mlp_config(64))
        assert metrics.elem_txns == 512

    def test_intermediate_stride(self):
        burst = StridedBurst(base=0, count=512, stride_bytes=16)
        metrics = run_strided_stream(burst, mlp_config(64))
        assert metrics.elem_txns == 512 // 4

    def test_no_coalescer_direct_path(self):
        burst = StridedBurst(base=0, count=300, stride_bytes=8)
        metrics = run_strided_stream(burst, nocoalescer_config())
        assert metrics.elem_txns == 300

    def test_sequential_variant(self):
        burst = StridedBurst(base=0, count=400, stride_bytes=8)
        seq = run_strided_stream(burst, seq_config(64))
        par = run_strided_stream(burst, mlp_config(64))
        assert seq.elem_txns == par.elem_txns
        assert seq.cycles >= par.cycles

    def test_no_index_traffic(self):
        burst = StridedBurst(base=0, count=256, stride_bytes=8)
        metrics = run_strided_stream(burst, mlp_config(64))
        assert metrics.idx_txns == 0
        assert metrics.idx_fetch_bytes == 0

    def test_unaligned_base(self):
        burst = StridedBurst(base=24, count=200, stride_bytes=8)
        metrics = run_strided_stream(burst, mlp_config(16))
        assert metrics.count == 200


class TestFastModelAgreement:
    @pytest.mark.parametrize("stride", [8, 16, 32, 64])
    def test_txn_counts_match(self, stride):
        burst = StridedBurst(base=0, count=1000, stride_bytes=stride)
        cycle = run_strided_stream(burst, mlp_config(64))
        fast = fast_strided_stream(burst, mlp_config(64))
        assert abs(cycle.elem_txns - fast.elem_txns) <= 2

    def test_cycles_within_band(self):
        burst = StridedBurst(base=0, count=2000, stride_bytes=16)
        cycle = run_strided_stream(burst, mlp_config(64))
        fast = fast_strided_stream(burst, mlp_config(64))
        assert 0.6 <= cycle.cycles / fast.cycles <= 1.7

    def test_bandwidth_inverse_in_stride(self):
        bws = []
        for stride in (8, 16, 32, 64):
            burst = StridedBurst(base=0, count=2000, stride_bytes=stride)
            bws.append(fast_strided_stream(burst, mlp_config(64)).indirect_bw_gbps)
        assert bws == sorted(bws, reverse=True)
