"""Corpus subsystem: manifests, cache, and the resumable runner.

The heart of this file is the crash/resume contract: a run killed by
the fault-injection hook after N computed groups must, on resume, skip
exactly those N groups and still produce a result tier byte-identical
to an uninterrupted run — across serial, pooled, and sharded
executors.  Everything runs on a four-entry corpus (two synthetic
recipes, two committed MatrixMarket fixtures) at tiny scale.
"""

import json
import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import (
    CORPUS_MANIFEST_NAME,
    CorpusRunner,
    InjectedFault,
    check_corpus,
    fault_hook_from_env,
)
from repro.engine import SweepExecutor
from repro.errors import CorpusError
from repro.sparse.corpus import (
    Corpus,
    CorpusEntry,
    MatrixCache,
    corpus_names,
    fixture_entries,
    get_corpus,
    load_corpus_name,
    load_fastload,
    matrix_name,
    save_fastload,
    synthetic_entries,
)

from helpers import small_csr

TINY = 4_000
VARIANTS = ("MLPnc", "MLP64")
TIER_FILES = ("corpus_adapter.csv", "corpus_rollup.csv", CORPUS_MANIFEST_NAME)


def tiny_corpus() -> Corpus:
    return Corpus(
        "tiny",
        synthetic_entries(("msc01440", "pwtk")) + fixture_entries()[:2],
    )


def run_tier(store_dir, cache_dir, fault_hook=None, **kwargs) -> CorpusRunner:
    runner = CorpusRunner(
        tiny_corpus(),
        store_dir=store_dir,
        cache=MatrixCache(cache_dir),
        variants=VARIANTS,
        max_nnz=TINY,
        fault_hook=fault_hook,
        **kwargs,
    )
    runner.run()
    return runner


def tier_bytes(store_dir) -> dict[str, bytes]:
    return {name: (store_dir / name).read_bytes() for name in TIER_FILES}


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted serial run: the byte-identity yardstick."""
    root = tmp_path_factory.mktemp("corpus-ref")
    run_tier(root / "store", root / "cache")
    return tier_bytes(root / "store")


class TestManifests:
    def test_registered_corpora(self):
        assert set(corpus_names()) == {
            "quick", "builtin", "full", "suitesparse-demo",
        }
        quick = get_corpus("quick")
        assert {e.source for e in quick.entries} == {"synthetic", "local"}
        assert len(get_corpus("full").entries) == len(
            get_corpus("builtin").entries
        ) + len(fixture_entries())

    def test_unknown_corpus_rejected(self):
        with pytest.raises(CorpusError, match="unknown corpus"):
            get_corpus("nope")

    def test_digest_tracks_entry_identity(self):
        base = tiny_corpus()
        renamed = Corpus("tiny2", base.entries)
        assert base.digest == renamed.digest  # corpus name is not identity
        fewer = Corpus("tiny", base.entries[:-1])
        assert base.digest != fewer.digest

    def test_duplicate_entries_rejected(self):
        entry = CorpusEntry(name="pwtk", family="stiffness")
        with pytest.raises(CorpusError, match="repeats"):
            Corpus("dup", (entry, entry))

    def test_entry_validation(self):
        with pytest.raises(CorpusError, match="unknown source"):
            CorpusEntry(name="x", family="f", source="carrier-pigeon")
        with pytest.raises(CorpusError, match="needs a path"):
            CorpusEntry(name="x", family="f", source="local")
        with pytest.raises(CorpusError, match="needs a url"):
            CorpusEntry(name="x", family="f", source="suitesparse")
        with pytest.raises(CorpusError):
            CorpusEntry(name="not-a-suite-matrix", family="f")

    def test_json_manifest_round_trip(self, tmp_path):
        path = tmp_path / "mine.json"
        path.write_text(json.dumps({
            "name": "mine",
            "entries": [
                {"name": "pwtk", "family": "stiffness"},
                {"name": "tiny_general", "family": "fixture",
                 "source": "local", "path": "tests/data/corpus/tiny_general.mtx"},
            ],
        }))
        corpus = get_corpus(str(path))
        assert corpus.name == "mine"
        assert [e.name for e in corpus.entries] == ["pwtk", "tiny_general"]

    def test_json_manifest_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "entries": [{"name": "pwtk", "family": "s", "surprise": 1}],
        }))
        with pytest.raises(CorpusError, match="unknown entry fields"):
            get_corpus(str(path))


class TestFastload:
    def test_round_trip(self, tmp_path):
        m = small_csr()
        path = save_fastload(m, tmp_path / "m.npz", source_digest="abc")
        back = load_fastload(path)
        assert back.shape == m.shape
        assert np.array_equal(back.to_dense(), m.to_dense())

    def test_missing_file(self, tmp_path):
        with pytest.raises(CorpusError, match="no fast-load artifact"):
            load_fastload(tmp_path / "absent.npz")

    def test_truncated_artifact(self, tmp_path):
        path = save_fastload(small_csr(), tmp_path / "m.npz")
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CorpusError, match="unreadable"):
            load_fastload(path)

    def test_checksum_detects_flipped_bits(self, tmp_path):
        path = save_fastload(small_csr(), tmp_path / "m.npz")
        with np.load(path) as data:
            arrays = dict(data)
        arrays["val"] = arrays["val"] + 1.0  # meta checksum now stale
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(CorpusError, match="checksum"):
            load_fastload(path)

    def test_version_gate(self, tmp_path):
        path = save_fastload(small_csr(), tmp_path / "m.npz")
        with np.load(path) as data:
            arrays = dict(data)
        meta = json.loads(bytes(arrays["meta"]).decode())
        meta["version"] = 99
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        with open(path, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(CorpusError, match="format v99"):
            load_fastload(path)

    def test_engine_name_scheme(self, tmp_path):
        path = save_fastload(small_csr(), tmp_path / "m.npz")
        name = matrix_name(path)
        assert name.startswith("corpus:")
        assert load_corpus_name(name).nnz == small_csr().nnz
        with pytest.raises(CorpusError, match="not a corpus matrix name"):
            load_corpus_name("pwtk")


class TestMatrixCache:
    def local_entry(self) -> CorpusEntry:
        return fixture_entries()[0]

    def test_local_ingest_offline(self, tmp_path):
        cache = MatrixCache(tmp_path)
        path, digest = cache.ensure(self.local_entry(), offline=True)
        assert path.is_file() and len(digest) == 64
        first = path.read_bytes()
        again, _ = cache.ensure(self.local_entry(), offline=True)
        assert again == path and path.read_bytes() == first

    def test_corrupt_local_artifact_reingested_offline(self, tmp_path):
        cache = MatrixCache(tmp_path)
        path, _ = cache.ensure(self.local_entry(), offline=True)
        path.write_bytes(b"garbage")
        again, _ = cache.ensure(self.local_entry(), offline=True)
        assert load_fastload(again).nnz > 0

    def test_suitesparse_offline_requires_cache(self, tmp_path):
        entry = CorpusEntry(
            name="bcsstk14", family="hb", source="suitesparse",
            url="https://example.invalid/bcsstk14.tar.gz",
        )
        cache = MatrixCache(tmp_path)
        with pytest.raises(CorpusError, match="offline mode forbids fetching"):
            cache.ensure(entry, offline=True)

    def test_suitesparse_fetch_then_offline_reuse(self, tmp_path):
        import io
        import tarfile

        mtx = (tmp_path / "src.mtx")
        mtx.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n1 1 1.5\n2 2 -2.5\n"
        )
        blob = io.BytesIO()
        with tarfile.open(fileobj=blob, mode="w:gz") as archive:
            archive.add(mtx, arcname="HB/fake/fake.mtx")
        calls = []

        def fetcher(url: str) -> bytes:
            calls.append(url)
            return blob.getvalue()

        entry = CorpusEntry(
            name="fake", family="hb", source="suitesparse",
            url="https://example.invalid/fake.tar.gz",
        )
        cache = MatrixCache(tmp_path / "cache", fetcher=fetcher)
        path, _ = cache.ensure(entry, offline=False)
        assert calls == [entry.url]
        assert load_fastload(path).nnz == 2
        # cached artifact now serves offline, without the fetcher
        again, _ = cache.ensure(entry, offline=True)
        assert again == path and calls == [entry.url]
        # a corrupt cache offline is a clear refusal, not a refetch
        path.write_bytes(b"garbage")
        with pytest.raises(CorpusError, match="corrupt"):
            cache.ensure(entry, offline=True)

    def test_pinned_sha256_mismatch(self, tmp_path):
        entry = CorpusEntry(
            name="fake", family="hb", source="suitesparse",
            url="https://example.invalid/fake.mtx", sha256="0" * 64,
        )
        cache = MatrixCache(tmp_path, fetcher=lambda url: b"payload")
        with pytest.raises(CorpusError, match="hashes to"):
            cache.ensure(entry, offline=False)

    def test_synthetic_entries_are_never_cached(self, tmp_path):
        with pytest.raises(CorpusError, match="generated, not cached"):
            MatrixCache(tmp_path).source_digest(CorpusEntry("pwtk", "s"))


class TestCrashResume:
    """The tentpole contract: interrupted + resumed == uninterrupted."""

    @pytest.mark.parametrize("fault_after", [1, 2, 3])
    def test_resume_skips_completed_and_is_byte_identical(
        self, tmp_path, reference, fault_after
    ):
        store, cache = tmp_path / "store", tmp_path / "cache"

        def fault(computed: int) -> None:
            if computed >= fault_after:
                raise InjectedFault(f"boom after {computed}")

        with pytest.raises(InjectedFault):
            run_tier(store, cache, fault_hook=fault)
        # the interrupted run journaled exactly the computed groups and
        # left the tier marked incomplete
        manifest = json.loads((store / CORPUS_MANIFEST_NAME).read_text())
        assert manifest["complete"] is False
        assert len(manifest["completed"]) == fault_after

        resumed = run_tier(store, cache)
        assert resumed.counts["corpus_skipped"] == fault_after
        assert resumed.counts["corpus_computed"] == 4 - fault_after
        assert tier_bytes(store) == reference

    def test_rerun_of_a_complete_tier_skips_everything(self, tmp_path, reference):
        store, cache = tmp_path / "store", tmp_path / "cache"
        run_tier(store, cache)
        rerun = run_tier(store, cache)
        assert rerun.counts["corpus_skipped"] == 4
        assert rerun.counts["corpus_computed"] == 0
        assert tier_bytes(store) == reference

    def test_pooled_and_sharded_match_serial(self, tmp_path, reference):
        store, cache = tmp_path / "store", tmp_path / "cache"
        run_tier(store, cache, executor=SweepExecutor(workers=2, shards="auto"))
        assert tier_bytes(store) == reference

    def test_identity_change_invalidates_the_journal(self, tmp_path):
        store, cache = tmp_path / "store", tmp_path / "cache"
        run_tier(store, cache)
        rerun = CorpusRunner(
            tiny_corpus(), store_dir=store, cache=MatrixCache(cache),
            variants=VARIANTS, max_nnz=TINY * 2,  # different scale
        )
        rerun.run()
        assert rerun.counts["corpus_computed"] == 4
        assert rerun.counts["corpus_skipped"] == 0

    def test_edited_fixture_recomputes_its_group(self, tmp_path):
        fixture = tmp_path / "edit.mtx"
        shutil.copy("tests/data/corpus/tiny_general.mtx", fixture)
        corpus = Corpus(
            "edit",
            (CorpusEntry(name="edit", family="fixture", source="local",
                         path=str(fixture)),),
        )

        def run() -> CorpusRunner:
            runner = CorpusRunner(
                corpus, store_dir=tmp_path / "store",
                cache=MatrixCache(tmp_path / "cache"),
                variants=VARIANTS, max_nnz=TINY,
            )
            runner.run()
            return runner

        assert run().counts["corpus_computed"] == 1
        assert run().counts["corpus_skipped"] == 1
        fixture.write_text(fixture.read_text().replace("1.0", "7.0", 1))
        assert run().counts["corpus_computed"] == 1  # digest moved

    def test_corrupt_journal_recomputes_instead_of_replaying(
        self, tmp_path, reference
    ):
        store, cache = tmp_path / "store", tmp_path / "cache"
        run_tier(store, cache)
        for journal in (store / "corpus").glob("*.json"):
            journal.write_text("{not json")
        rerun = run_tier(store, cache)
        assert rerun.counts["corpus_computed"] == 4
        assert tier_bytes(store) == reference


class TestRunnerErrors:
    def broken_corpus(self) -> Corpus:
        return Corpus(
            "broken",
            synthetic_entries(("msc01440",)) + (
                CorpusEntry(name="ghost", family="fixture", source="local",
                            path="nowhere/ghost.mtx"),
            ),
        )

    def test_failures_raise_by_default(self, tmp_path):
        runner = CorpusRunner(
            self.broken_corpus(), cache=MatrixCache(tmp_path),
            variants=VARIANTS, max_nnz=TINY,
        )
        with pytest.raises(CorpusError, match="no file at"):
            runner.run()

    def test_keep_going_counts_failures(self, tmp_path):
        runner = CorpusRunner(
            self.broken_corpus(), cache=MatrixCache(tmp_path),
            variants=VARIANTS, max_nnz=TINY, keep_going=True,
        )
        result = runner.run()
        assert runner.counts["corpus_failed"] == 1
        assert {row["matrix"] for row in result["rows"]} == {"msc01440"}

    def test_all_failed_is_an_error_even_with_keep_going(self, tmp_path):
        corpus = Corpus("ghosts", (self.broken_corpus().entries[1],))
        runner = CorpusRunner(
            corpus, cache=MatrixCache(tmp_path),
            variants=VARIANTS, max_nnz=TINY, keep_going=True,
        )
        with pytest.raises(CorpusError, match="produced no rows"):
            runner.run()

    def test_bad_kind_and_empty_variants(self):
        with pytest.raises(CorpusError, match="support kinds"):
            CorpusRunner(tiny_corpus(), kind="system")
        with pytest.raises(CorpusError, match="at least one variant"):
            CorpusRunner(tiny_corpus(), variants=())

    def test_fault_hook_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CORPUS_FAULT_AFTER", raising=False)
        assert fault_hook_from_env() is None
        monkeypatch.setenv("REPRO_CORPUS_FAULT_AFTER", "two")
        with pytest.raises(CorpusError, match="not an integer"):
            fault_hook_from_env()
        monkeypatch.setenv("REPRO_CORPUS_FAULT_AFTER", "2")
        hook = fault_hook_from_env()
        hook(1)
        with pytest.raises(InjectedFault):
            hook(2)


class TestCheckCorpus:
    def test_clean_tier_then_tampered_tier(self, tmp_path):
        # check_corpus resolves the corpus by its recorded name, so the
        # tier under test must use a registered corpus.
        store, cache = tmp_path / "store", MatrixCache(tmp_path / "cache")
        CorpusRunner(
            get_corpus("quick"), store_dir=store, cache=cache,
            variants=VARIANTS, max_nnz=TINY, claims=True,
        ).run()
        assert check_corpus(store, cache=cache) == []
        table = store / "corpus_rollup.csv"
        table.write_text(table.read_text() + "tampered\n")
        drift = check_corpus(store, cache=cache)
        assert drift == ["corpus_rollup: table differs from a fresh run"]

    def test_incomplete_tier_is_refused(self, tmp_path):
        store = tmp_path / "store"

        def fault(computed: int) -> None:
            raise InjectedFault("immediately")

        with pytest.raises(InjectedFault):
            run_tier(store, tmp_path / "cache", fault_hook=fault)
        with pytest.raises(CorpusError, match="incomplete"):
            check_corpus(store, cache=MatrixCache(tmp_path / "cache"))

    def test_ad_hoc_tier_checkable_without_manifest_path(self, tmp_path):
        # A tier built from `--corpus path.json` embeds its definition
        # in corpus_manifest.json; check_corpus must rebuild the corpus
        # from that even after the original JSON manifest is deleted.
        manifest_path = tmp_path / "mine.json"
        manifest_path.write_text(json.dumps({
            "name": "mine",
            "entries": [
                {"name": "pwtk", "family": "stiffness"},
                {"name": "msc01440", "family": "dense_block"},
            ],
        }))
        store, cache = tmp_path / "store", MatrixCache(tmp_path / "cache")
        CorpusRunner(
            get_corpus(str(manifest_path)), store_dir=store, cache=cache,
            variants=VARIANTS, max_nnz=TINY,
        ).run()
        tier_manifest = json.loads(
            (store / CORPUS_MANIFEST_NAME).read_text()
        )
        assert tier_manifest["corpus_definition"]["name"] == "mine"
        manifest_path.unlink()
        assert check_corpus(store, cache=cache) == []

    def test_registered_tier_manifest_stays_lean(self, tmp_path):
        # Registered corpora resolve by name; their tiers must not
        # embed a definition (keeps the committed manifests byte-stable
        # across code revisions).
        store, cache = tmp_path / "store", tmp_path / "cache"
        run_tier(store, cache)  # "tiny" is unregistered -> embedded
        assert "corpus_definition" in json.loads(
            (store / CORPUS_MANIFEST_NAME).read_text()
        )
        registered = tmp_path / "registered"
        CorpusRunner(
            get_corpus("quick"), store_dir=registered,
            cache=MatrixCache(cache), variants=VARIANTS, max_nnz=TINY,
        ).run()
        assert "corpus_definition" not in json.loads(
            (registered / CORPUS_MANIFEST_NAME).read_text()
        )


class TestCommittedCycleTier:
    def test_manifest_is_complete_and_cycle_model(self):
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        manifest = json.loads(
            (root / "results" / "cycle" / CORPUS_MANIFEST_NAME).read_text()
        )
        assert manifest["complete"] is True
        assert manifest["model"] == "cycle"
        assert manifest["kind"] == "adapter"
        assert manifest["corpus"] == "quick"
        assert len(manifest["completed"]) == len(manifest["entries"]) == 7


class TestKeyProperties:
    @given(st.integers(min_value=1000, max_value=10**7),
           st.sampled_from(["fast", "cycle"]))
    @settings(max_examples=30, deadline=None)
    def test_group_key_survives_json_round_trip(self, nnz, model):
        runner = CorpusRunner(
            tiny_corpus(), variants=VARIANTS, max_nnz=nnz, model=model,
        )
        entry = tiny_corpus().entries[0]
        key = runner.group_key(entry, "digest")
        assert json.loads(json.dumps(key)) == key
        assert CorpusRunner._slug(key) == CorpusRunner._slug(
            json.loads(json.dumps(key))
        )

    def test_key_separates_configs_and_sources(self):
        runner = CorpusRunner(tiny_corpus(), variants=VARIANTS, max_nnz=TINY)
        other = CorpusRunner(tiny_corpus(), variants=VARIANTS, max_nnz=TINY * 2)
        entry = tiny_corpus().entries[0]
        assert runner.group_key(entry, "d") != other.group_key(entry, "d")
        assert runner.group_key(entry, "d1") != runner.group_key(entry, "d2")
