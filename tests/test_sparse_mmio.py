"""MatrixMarket IO."""

import gzip

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse.mmio import read_matrix_market, write_matrix_market

from helpers import small_csr


def test_write_read_roundtrip(tmp_path):
    m = small_csr()
    path = tmp_path / "m.mtx"
    write_matrix_market(m, path)
    back = read_matrix_market(path)
    assert back.shape == m.shape
    assert back.nnz == m.nnz
    assert np.allclose(back.to_dense(), m.to_dense())


def test_read_symmetric_expands(tmp_path):
    path = tmp_path / "sym.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n"
        "1 1 2.0\n"
        "2 1 5.0\n"
        "3 2 -1.0\n"
    )
    m = read_matrix_market(path)
    dense = m.to_dense()
    assert dense[0, 1] == dense[1, 0] == 5.0
    assert dense[1, 2] == dense[2, 1] == -1.0
    assert dense[0, 0] == 2.0
    assert m.nnz == 5


def test_read_pattern_field(tmp_path):
    path = tmp_path / "pat.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n"
    )
    m = read_matrix_market(path)
    assert m.to_dense()[0, 1] == 1.0


def test_read_gzipped(tmp_path):
    path = tmp_path / "m.mtx.gz"
    content = (
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "2 2 1\n"
        "2 2 4.5\n"
    )
    with gzip.open(path, "wt") as handle:
        handle.write(content)
    m = read_matrix_market(path)
    assert m.to_dense()[1, 1] == 4.5


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "c.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% comment\n"
        "\n"
        "1 1 1\n"
        "1 1 3.0\n"
    )
    assert read_matrix_market(path).to_dense()[0, 0] == 3.0


@pytest.mark.parametrize(
    "header",
    [
        "%%MatrixMarket matrix array real general",
        "%%MatrixMarket matrix coordinate complex general",
        "%%MatrixMarket matrix coordinate real hermitian",
        "not a header at all",
    ],
)
def test_unsupported_headers_rejected(tmp_path, header):
    path = tmp_path / "bad.mtx"
    path.write_text(header + "\n1 1 1\n1 1 1.0\n")
    with pytest.raises(SparseFormatError):
        read_matrix_market(path)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "trunc.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 1.0\n"
    )
    with pytest.raises(SparseFormatError):
        read_matrix_market(path)
