"""MatrixMarket IO."""

import gzip

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, SparseFormatError
from repro.sparse.coo import CooMatrix
from repro.sparse.mmio import read_matrix_market, write_matrix_market

from helpers import small_csr


def test_write_read_roundtrip(tmp_path):
    m = small_csr()
    path = tmp_path / "m.mtx"
    write_matrix_market(m, path)
    back = read_matrix_market(path)
    assert back.shape == m.shape
    assert back.nnz == m.nnz
    assert np.allclose(back.to_dense(), m.to_dense())


def test_read_symmetric_expands(tmp_path):
    path = tmp_path / "sym.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n"
        "1 1 2.0\n"
        "2 1 5.0\n"
        "3 2 -1.0\n"
    )
    m = read_matrix_market(path)
    dense = m.to_dense()
    assert dense[0, 1] == dense[1, 0] == 5.0
    assert dense[1, 2] == dense[2, 1] == -1.0
    assert dense[0, 0] == 2.0
    assert m.nnz == 5


def test_read_pattern_field(tmp_path):
    path = tmp_path / "pat.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n"
    )
    m = read_matrix_market(path)
    assert m.to_dense()[0, 1] == 1.0


def test_read_gzipped(tmp_path):
    path = tmp_path / "m.mtx.gz"
    content = (
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "2 2 1\n"
        "2 2 4.5\n"
    )
    with gzip.open(path, "wt") as handle:
        handle.write(content)
    m = read_matrix_market(path)
    assert m.to_dense()[1, 1] == 4.5


def test_comments_and_blank_lines_skipped(tmp_path):
    path = tmp_path / "c.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% comment\n"
        "\n"
        "1 1 1\n"
        "1 1 3.0\n"
    )
    assert read_matrix_market(path).to_dense()[0, 0] == 3.0


@pytest.mark.parametrize(
    "header",
    [
        "%%MatrixMarket matrix array real general",
        "%%MatrixMarket matrix coordinate complex general",
        "%%MatrixMarket matrix coordinate real hermitian",
        "not a header at all",
    ],
)
def test_unsupported_headers_rejected(tmp_path, header):
    path = tmp_path / "bad.mtx"
    path.write_text(header + "\n1 1 1\n1 1 1.0\n")
    with pytest.raises(SparseFormatError):
        read_matrix_market(path)


def test_truncated_file_rejected(tmp_path):
    path = tmp_path / "trunc.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n"
        "1 1 1.0\n"
    )
    with pytest.raises(SparseFormatError):
        read_matrix_market(path)


@pytest.mark.parametrize(
    "body,fragment",
    [
        ("", "missing size line"),
        ("2 2\n", "expected 'nrows ncols nnz'"),
        ("two 2 1\n1 1 1.0\n", "must be integers"),
        ("-2 2 1\n1 1 1.0\n", "must be non-negative"),
        ("2 2 1\n1\n", "expected at least"),
        ("2 2 1\n1 1 lots\n", "bad entry line"),
        ("2 2 1\n3 1 1.0\n", "outside the declared"),
        ("2 2 1\n1 1 1.0\n2 2 2.0\n", "found more"),
    ],
    ids=[
        "no-size", "short-size", "alpha-size", "negative-dim",
        "short-entry", "alpha-value", "out-of-range", "surplus",
    ],
)
def test_malformed_bodies_raise_sparse_format_error(tmp_path, body, fragment):
    path = tmp_path / "bad.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real general\n" + body
    )
    with pytest.raises(SparseFormatError, match=fragment) as excinfo:
        read_matrix_market(path)
    # callers catch the repro hierarchy, never bare ValueError
    assert isinstance(excinfo.value, ReproError)


@st.composite
def coo_matrices(draw):
    nrows = draw(st.integers(min_value=1, max_value=40))
    ncols = draw(st.integers(min_value=1, max_value=40))
    nnz = draw(st.integers(min_value=0, max_value=80))
    rows = draw(st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz))
    vals = draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return CooMatrix(nrows, ncols, rows, cols, vals)


@given(coo_matrices(), st.booleans())
@settings(max_examples=60, deadline=None)
def test_write_read_roundtrip_property(tmp_path_factory, coo, compress):
    csr = coo.to_csr()
    root = tmp_path_factory.mktemp("mmio")
    path = root / "m.mtx"
    write_matrix_market(csr, path)
    if compress:
        gz = root / "m.mtx.gz"
        gz.write_bytes(gzip.compress(path.read_bytes()))
        path = gz
    back = read_matrix_market(path)
    assert back.shape == csr.shape
    assert back.nnz == csr.nnz
    assert np.allclose(back.to_dense(), csr.to_dense(), rtol=1e-12, atol=0)


@given(coo_matrices())
@settings(max_examples=40, deadline=None)
def test_symmetric_read_equals_general_expansion(tmp_path_factory, coo):
    # write the lower triangle as `symmetric`; reading must equal the
    # full general matrix built by mirroring it
    csr = coo.to_csr()
    n = min(csr.nrows, csr.ncols)
    dense = csr.to_dense()[:n, :n]
    lower = np.tril(dense)
    full = lower + np.tril(dense, -1).T
    entries = [
        (r + 1, c + 1, lower[r, c])
        for r in range(n)
        for c in range(r + 1)
        if lower[r, c] != 0.0
    ]
    path = tmp_path_factory.mktemp("mmio-sym") / "sym.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        + f"{n} {n} {len(entries)}\n"
        + "".join(f"{r} {c} {v:.17g}\n" for r, c, v in entries)
    )
    back = read_matrix_market(path)
    assert np.allclose(back.to_dense(), full, rtol=1e-12, atol=0)


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=30))
@settings(max_examples=40, deadline=None)
def test_pattern_read_is_indicator_matrix(tmp_path_factory, n, nnz):
    rng = np.random.default_rng(n * 1000 + nnz)
    coords = {
        (int(rng.integers(n)), int(rng.integers(n))) for _ in range(nnz)
    }
    path = tmp_path_factory.mktemp("mmio-pat") / "pat.mtx"
    path.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        + f"{n} {n} {len(coords)}\n"
        + "".join(f"{r + 1} {c + 1}\n" for r, c in sorted(coords))
    )
    dense = read_matrix_market(path).to_dense()
    expected = np.zeros((n, n))
    for r, c in coords:
        expected[r, c] = 1.0
    assert np.array_equal(dense, expected)
