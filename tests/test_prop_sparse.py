"""Property-based tests: sparse format invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.coo import CooMatrix


@st.composite
def coo_matrices(draw):
    nrows = draw(st.integers(min_value=1, max_value=80))
    ncols = draw(st.integers(min_value=1, max_value=80))
    nnz = draw(st.integers(min_value=0, max_value=150))
    rows = draw(
        st.lists(st.integers(0, nrows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, ncols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return CooMatrix(nrows, ncols, rows, cols, vals)


@given(coo_matrices())
@settings(max_examples=150, deadline=None)
def test_csr_equals_dense_semantics(coo):
    csr = coo.to_csr()
    assert np.allclose(csr.to_dense(), coo.to_dense())


@given(coo_matrices())
@settings(max_examples=100, deadline=None)
def test_spmv_matches_dense_matvec(coo):
    csr = coo.to_csr()
    x = np.linspace(-1, 1, csr.ncols)
    assert np.allclose(csr.spmv(x), csr.to_dense() @ x, atol=1e-9)


@given(coo_matrices(), st.sampled_from([2, 4, 8, 32]))
@settings(max_examples=100, deadline=None)
def test_sell_roundtrip_and_spmv(coo, chunk):
    csr = coo.to_csr()
    sell = csr.to_sell(chunk)
    x = np.linspace(-1, 1, csr.ncols)
    assert np.allclose(sell.spmv(x), csr.spmv(x), atol=1e-9)
    # Padding never shrinks below the true nonzero count.
    assert sell.padded_nnz >= csr.nnz
    back = sell.to_csr()
    assert np.allclose(back.to_dense(), csr.to_dense(), atol=1e-12)


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_row_ptr_monotone_and_consistent(coo):
    csr = coo.to_csr()
    assert csr.row_ptr[0] == 0
    assert csr.row_ptr[-1] == csr.nnz
    assert (np.diff(csr.row_ptr) >= 0).all()
    assert (csr.row_lengths().sum()) == csr.nnz
