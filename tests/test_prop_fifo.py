"""Property-based tests: FIFO order and occupancy invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.fifo import Fifo


@st.composite
def fifo_scripts(draw):
    """A capacity plus a sequence of push/pop/commit operations."""
    capacity = draw(st.integers(min_value=1, max_value=8))
    ops = draw(
        st.lists(
            st.sampled_from(["push", "pop", "commit"]), min_size=1, max_size=200
        )
    )
    return capacity, ops


@given(fifo_scripts())
@settings(max_examples=200, deadline=None)
def test_fifo_preserves_order_and_bounds(script):
    capacity, ops = script
    fifo = Fifo(capacity, "prop")
    pushed = []
    popped = []
    next_value = 0
    for op in ops:
        if op == "push" and fifo.can_push():
            fifo.push(next_value)
            pushed.append(next_value)
            next_value += 1
        elif op == "pop" and fifo.can_pop():
            popped.append(fifo.pop())
        elif op == "commit":
            fifo.commit()
        # Invariant: occupancy never exceeds capacity.
        assert fifo.occupancy <= capacity
    fifo.commit()
    while fifo.can_pop():
        popped.append(fifo.pop())
    # FIFO order: what came out is a prefix-order copy of what went in.
    assert popped == pushed


@given(
    st.lists(st.integers(), min_size=0, max_size=50),
    st.integers(min_value=1, max_value=10),
)
@settings(max_examples=100, deadline=None)
def test_push_many_equivalent_to_pushes(items, capacity):
    if len(items) > capacity:
        items = items[:capacity]
    a = Fifo(capacity, "a")
    b = Fifo(capacity, "b")
    a.push_many(items)
    for item in items:
        b.push(item)
    a.commit()
    b.commit()
    assert list(a) == list(b)
