"""Shared fixtures for the test suite.

Stream/matrix builders live in :mod:`helpers` (``tests/helpers.py``) —
importable without the conftest module-name ambiguity that used to
break root-level collection.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import small_csr
from repro.sparse.csr import CsrMatrix


@pytest.fixture
def csr_small() -> CsrMatrix:
    return small_csr()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
