"""Shared fixtures and stream builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix


def banded_stream(count: int, jitter: int = 20, span: int = 4, seed: int = 1) -> np.ndarray:
    """An index stream with FEM-like locality: a slowly advancing base
    plus bounded jitter (good coalescing within small windows)."""
    rng = np.random.default_rng(seed)
    base = np.arange(count) // span
    idx = base + rng.integers(-jitter, jitter + 1, count)
    return np.clip(idx, 0, base.max() + jitter).astype(np.uint32)


def random_stream(count: int, ncols: int, seed: int = 2) -> np.ndarray:
    """Uniformly random indices (worst-case locality)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, ncols, count, dtype=np.uint32)


def small_csr(nrows: int = 37, ncols: int = 41, density: float = 0.15, seed: int = 3) -> CsrMatrix:
    """A small random CSR matrix with at least one entry per row."""
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for r in range(nrows):
        count = max(1, rng.binomial(ncols, density))
        cs = rng.choice(ncols, size=count, replace=False)
        rows.extend([r] * count)
        cols.extend(cs.tolist())
        vals.extend(rng.normal(size=count).tolist())
    return CooMatrix(nrows, ncols, rows, cols, vals).to_csr()


@pytest.fixture
def csr_small() -> CsrMatrix:
    return small_csr()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
