"""Differential suite: event-batched engine vs the step-wise oracle.

The batched engine (:mod:`repro.sim.batched`) must be *bit-exact*
against the step engine — identical final cycle counts, stats, FIFO
counters and error behaviour — on every registered system, because the
slow tier runs batched by default and the step engine is the oracle.
Every test here runs the same workload under both engines and compares
complete metric structures, not spot values.

Coverage: the adapter variant grid on locality-diverse streams, ideal
and multi-channel memory substrates, the scatter and strided element
paths, the adversarial single-bank / row-thrash DRAM streams from the
PR-4 timeline work driven through a raw :class:`DramChannel`, and
hypothesis-generated index streams.
"""

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import banded_stream, random_stream
from repro.axipack.adapter import run_indirect_stream
from repro.axipack.scatter import run_indirect_scatter
from repro.axipack.strided import StridedBurst, run_strided_stream
from repro.config import (
    DramConfig,
    mlp_config,
    nocoalescer_config,
    seq_config,
)
from repro.errors import ConfigError
from repro.mem.backing_store import BackingStore
from repro.mem.dram import DramChannel
from repro.mem.request import MemRequest
from repro.sim import Simulator, default_engine
from repro.sim.component import Component

#: quick-scale stream length: long enough to cross several refresh
#: intervals (t_refi = 3900 cycles) and fill every queue, short enough
#: for tier-1.
QUICK_N = 1024

VARIANTS = {
    "MLPnc": nocoalescer_config(),
    "MLP8": mlp_config(8),
    "MLP64": mlp_config(64),
    "MLP256": mlp_config(256),
    "SEQ256": seq_config(256),
}


def _streams(n: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    return {
        "banded": banded_stream(n, jitter=20, span=4),
        "dense": (np.arange(n) // 4).astype(np.uint32),
        "random": random_stream(n, n * 4, seed=3),
    }


def _metrics_dict(metrics) -> dict:
    return dataclasses.asdict(metrics)


def both_engines(run):
    """Run ``run(engine)`` under both engines, assert identical metrics."""
    step = run("step")
    batched = run("batched")
    assert _metrics_dict(step) == _metrics_dict(batched)
    return step


# -- the adapter variant grid -------------------------------------------


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("stream", sorted(_streams(8)))
def test_variant_grid_bit_exact(variant, stream):
    idx = _streams(QUICK_N)[stream]
    config = VARIANTS[variant]
    both_engines(lambda engine: run_indirect_stream(idx, config, engine=engine))


def test_ideal_memory_bit_exact():
    idx = _streams(QUICK_N)["random"]
    both_engines(
        lambda engine: run_indirect_stream(
            idx, mlp_config(64), ideal_memory=True, engine=engine
        )
    )


def test_multichannel_bit_exact():
    idx = _streams(QUICK_N)["random"]
    both_engines(
        lambda engine: run_indirect_stream(
            idx, mlp_config(64), channels=2, engine=engine
        )
    )


# -- scatter and strided element paths ----------------------------------


def test_scatter_bit_exact():
    rng = np.random.default_rng(5)
    idx = rng.permutation(QUICK_N).astype(np.uint32)
    values = rng.standard_normal(QUICK_N)
    both_engines(
        lambda engine: run_indirect_scatter(idx, values, mlp_config(64), engine=engine)
    )


@pytest.mark.parametrize("variant", ["MLPnc", "MLP64", "SEQ256"])
@pytest.mark.parametrize("stride", [8, 72])
def test_strided_bit_exact(variant, stride):
    burst = StridedBurst(base=0, count=600, stride_bytes=stride)
    both_engines(
        lambda engine: run_strided_stream(
            burst, VARIANTS[variant], engine=engine
        )
    )


# -- adversarial DRAM streams through a raw channel ---------------------


class _Driver(Component):
    """Pushes a block stream into a raw DRAM channel and drains
    responses; ``depth`` bounds the requests kept in flight (1 models a
    dependent pointer-chase chain)."""

    def __init__(self, blocks, dram: DramChannel, access_bytes: int, depth: int):
        super().__init__("driver")
        self.addrs = [int(b) * access_bytes for b in blocks]
        self.dram = dram
        self.depth = depth
        self.sent = 0
        self.received = 0

    def tick(self) -> None:
        while self.dram.rsp.can_pop():
            self.dram.rsp.pop()
            self.received += 1
        while (
            self.sent < len(self.addrs)
            and self.sent - self.received < self.depth
            and self.dram.req.can_push()
        ):
            self.dram.req.push(
                MemRequest(addr=self.addrs[self.sent], nbytes=64, seq=self.sent)
            )
            self.sent += 1

    def next_event(self):
        if self.dram.rsp.can_pop():
            return self.cycle
        if (
            self.sent < len(self.addrs)
            and self.sent - self.received < self.depth
            and self.dram.req.can_push()
        ):
            return self.cycle
        return None

    def wake_fifos(self):
        return [self.dram.req, self.dram.rsp], []

    @property
    def done(self) -> bool:
        return self.received == len(self.addrs)

    @property
    def busy(self) -> bool:
        return not self.done


def _run_raw_dram(engine: str, blocks, depth: int = 1 << 30):
    cfg = DramConfig()
    store = BackingStore(1 << 22)
    dram = DramChannel(store, cfg)
    driver = _Driver(blocks, dram, cfg.access_bytes, depth)
    sim = Simulator([driver, dram], engine=engine)
    cycles = sim.run_until(lambda: driver.done, max_cycles=10_000_000)
    return cycles, dict(dram.stats.as_dict()), dram.req.max_occupancy


def _adversarial_streams(n: int) -> dict[str, np.ndarray]:
    """Bank/row patterns from the PR-4 timeline tests: a single-bank
    row hammer, a reorderable two-row ping-pong, and scattered
    traffic."""
    cfg = DramConfig()
    bank_stride = cfg.num_banks * cfg.blocks_per_row
    rng = np.random.default_rng(11)
    return {
        "single-bank-hammer": (np.arange(n) % 250) * bank_stride,
        "two-row-pingpong": np.tile(np.array([0, bank_stride]), n // 2),
        "uniform-random": rng.integers(0, 1 << 14, n),
    }


@pytest.mark.parametrize("stream", sorted(_adversarial_streams(8)))
@pytest.mark.parametrize("depth", [1, 1 << 30], ids=["chase", "full"])
def test_raw_dram_adversarial_bit_exact(stream, depth):
    blocks = _adversarial_streams(1500)[stream]
    step = _run_raw_dram("step", blocks, depth)
    batched = _run_raw_dram("batched", blocks, depth)
    assert step == batched


# -- saturated pipelines (bulk fast-forward coverage) --------------------
#
# At 4x quick scale the adapter keeps the DRAM request queue standing
# full, so the batched engine's bulk path (DramChannel.max_bulk /
# bulk_tick over the incremental FR-FCFS mirror) engages on most spans.
# These cells would pass trivially if bulk mode never fired; their value
# is that they compare the bulk machinery — not just the skip logic —
# against the per-cycle oracle, stats-for-stats and counter-for-counter.


@pytest.mark.parametrize("stream", ["banded", "dense", "random"])
def test_saturated_adapter_bit_exact(stream):
    idx = _streams(4 * QUICK_N)[stream]
    both_engines(
        lambda engine: run_indirect_stream(idx, mlp_config(64), engine=engine)
    )


def test_saturated_scatter_bit_exact():
    rng = np.random.default_rng(9)
    n = 4 * QUICK_N
    idx = rng.permutation(n).astype(np.uint32)
    values = rng.standard_normal(n)
    both_engines(
        lambda engine: run_indirect_scatter(idx, values, mlp_config(64), engine=engine)
    )


# -- burst-boundary adversaries ------------------------------------------
#
# Depths straddling the DRAM queue depth (32) steer max_bulk through
# each of its guard paths in turn: below depth the request FIFO stays
# poppable (span refused), at depth the queue stands full (ingest-capped
# span), above depth the driver saturates the FIFO (grant-delivery cap
# bounds the span).  Sequential blocks put a grant every t_burst cycles
# so span edges coincide with grants; the bank stripe holds one open row
# per bank, maximizing cross-bank hit scheduling inside bulk_tick.


def _boundary_streams(n: int) -> dict[str, np.ndarray]:
    cfg = DramConfig()
    return {
        "seq-blocks": np.arange(n) % (1 << 13),
        "bank-stripe": (np.arange(n) % cfg.num_banks) * cfg.blocks_per_row,
    }


@pytest.mark.parametrize("stream", sorted(_boundary_streams(8)))
@pytest.mark.parametrize("depth", [31, 32, 33])
def test_raw_dram_burst_boundary_bit_exact(stream, depth):
    blocks = _boundary_streams(6000)[stream]
    step = _run_raw_dram("step", blocks, depth)
    batched = _run_raw_dram("batched", blocks, depth)
    assert step == batched


# -- coalescer bulk-span contract ----------------------------------------


def _ticked(component, cycles: int) -> None:
    for _ in range(cycles):
        component.tick()
        component.commit()


@pytest.mark.parametrize("kind", ["read", "write"])
def test_coalescer_max_bulk_regulator_span(kind):
    """With a partial upsizer window queued and all inputs frozen, the
    coalescers must declare exactly the span up to (excluding) the
    regulator timeout boundary, and bulk_tick over it must replay the
    per-cycle ticks counter-for-counter with zero FIFO operations."""
    import copy

    from repro.axipack.burst import NarrowRequest
    from repro.axipack.coalescer import RequestCoalescer
    from repro.axipack.scatter import WriteCoalescer
    from repro.sim.fifo import Fifo

    config = mlp_config(8)
    dram_cfg = DramConfig()
    if kind == "read":
        coal = RequestCoalescer(config, dram_cfg, Fifo(8, "er"), Fifo(8, "es"))
    else:
        coal = WriteCoalescer(
            config, dram_cfg, np.zeros(64), Fifo(8, "wr"), Fifo(8, "ws")
        )
    for seq in range(3):  # partial window: 3 of W=8 queues filled
        coal.accept(NarrowRequest(seq=seq, lane=seq, addr=seq * 8))
    coal.commit()
    _ticked(coal, 2)  # let the regulator start aging

    timeout = config.coalescer.regulator_timeout
    span = coal.max_bulk(1 << 30)
    assert span == timeout - coal._regulator_wait
    assert coal.max_bulk(3) == 3  # limit-capped

    oracle = copy.deepcopy(coal)
    ops_before = [
        (f.total_pushed, f.total_popped, f.max_occupancy) for f in coal.fifos
    ]
    coal.bulk_tick(span)
    _ticked(oracle, span)
    assert coal._regulator_wait == oracle._regulator_wait == timeout
    assert coal._watchdog_wait == oracle._watchdog_wait
    for fifo, oracle_fifo, before in zip(coal.fifos, oracle.fifos, ops_before):
        counters = (fifo.total_pushed, fifo.total_popped, fifo.max_occupancy)
        assert counters == before  # FIFO-silent span
        assert counters == (
            oracle_fifo.total_pushed,
            oracle_fifo.total_popped,
            oracle_fifo.max_occupancy,
        )
    # The very next per-cycle tick crosses the boundary and acts: the
    # regulator pops the partial window (a FIFO operation).
    _ticked(oracle, 1)
    assert oracle._window is not None
    assert any(f.total_popped for f in oracle.fifos)


# -- hypothesis-generated streams ---------------------------------------


@st.composite
def index_streams(draw):
    count = draw(st.integers(min_value=1, max_value=300))
    ncols = draw(st.integers(min_value=1, max_value=1500))
    kind = draw(st.sampled_from(["random", "walk", "constant", "ramp"]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    if kind == "random":
        idx = rng.integers(0, ncols, count)
    elif kind == "walk":
        steps = rng.integers(-4, 5, count)
        idx = np.clip(np.cumsum(steps) + ncols // 2, 0, ncols - 1)
    elif kind == "constant":
        idx = np.full(count, rng.integers(0, ncols))
    else:
        idx = np.arange(count) % ncols
    return idx.astype(np.uint32)


@given(index_streams(), st.sampled_from(sorted(VARIANTS)))
@settings(max_examples=30, deadline=None)
def test_hypothesis_streams_bit_exact(idx, variant):
    config = VARIANTS[variant]
    both_engines(lambda engine: run_indirect_stream(idx, config, engine=engine))


@st.composite
def dram_block_streams(draw):
    """Raw-DRAM adversaries for the bulk fast path: few-bank traffic so
    refresh, row close (64 idle cycles) and act spacing (t_rc) land on
    arbitrary offsets inside candidate bulk spans, with in-flight depths
    clustered around the queue-depth boundary."""
    cfg = DramConfig()
    bank_stride = cfg.num_banks * cfg.blocks_per_row
    n = draw(st.integers(min_value=1, max_value=120))
    kind = draw(st.sampled_from(["tight", "hammer", "scatter"]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    if kind == "tight":
        blocks = rng.integers(0, 4 * cfg.blocks_per_row, n)
    elif kind == "hammer":
        blocks = rng.integers(0, 8, n) * bank_stride
    else:
        blocks = rng.integers(0, 1 << 12, n)
    depth = draw(st.sampled_from([1, 2, 31, 32, 33, 1 << 30]))
    return blocks, depth


@given(dram_block_streams())
@settings(max_examples=20, deadline=None)
def test_hypothesis_raw_dram_bit_exact(stream):
    blocks, depth = stream
    assert _run_raw_dram("step", blocks, depth) == _run_raw_dram(
        "batched", blocks, depth
    )


# -- engine selection plumbing ------------------------------------------


def test_default_engine_env_knob(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    assert default_engine() == "batched"
    monkeypatch.setenv("REPRO_SIM_ENGINE", "step")
    assert default_engine() == "step"
    monkeypatch.setenv("REPRO_SIM_ENGINE", "turbo")
    with pytest.raises(ConfigError):
        default_engine()


def test_unknown_engine_rejected():
    with pytest.raises(ConfigError):
        Simulator([], engine="turbo")
