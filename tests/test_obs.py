"""The telemetry subsystem: metrics, traces, cycle attribution.

Four contracts pinned here.  **Names**: every stat dict in the system
spells its keys exactly as :mod:`repro.obs.names` declares (the
spellings leak into committed manifests and the ``/stats`` wire
schema, so drift is corruption).  **Exactness**: the cycle profiler's
per-component bins sum bit-exactly to the cycles the simulator says
elapsed, on both engines, across the differential grid.
**Propagation**: spans cross the process pool — worker ``engine.shard``
spans come back re-parented under the requesting run span, one trace
id end to end.  **Zero cost off**: disabled tracing hands out one
shared no-op object (the benchmark guard in ``benchmarks/bench_obs.py``
bounds the wall-clock side).
"""

from __future__ import annotations

import importlib.util
import json
import logging
import threading
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from helpers import banded_stream, random_stream
from repro import obs
from repro.__main__ import main
from repro.axipack.adapter import run_indirect_stream
from repro.config import mlp_config, nocoalescer_config, seq_config
from repro.corpus import CorpusRunner
from repro.engine import SweepExecutor, adapter_grid
from repro.engine.cache import AnalysisCache
from repro.errors import ServeError
from repro.obs import names, profiler, trace
from repro.serve import JobManager, ReproServer, ServeClient
from repro.sim import Simulator
from repro.sim.component import Component
from repro.sparse.corpus import Corpus, MatrixCache, synthetic_entries

TINY = 12_000
SWEEP_REQ = {
    "cmd": "sweep",
    "matrices": ["msc01440"],
    "variants": ["MLPnc", "MLP64"],
    "max_nnz": TINY,
}

_SUMMARY_PATH = Path(__file__).resolve().parent.parent / "tools" / "trace_summary.py"
_spec = importlib.util.spec_from_file_location("trace_summary", _SUMMARY_PATH)
trace_summary = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trace_summary)


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with telemetry fully off."""
    obs.reset_registry()
    trace.shutdown()
    profiler.disable()
    yield
    obs.reset_registry()
    trace.shutdown()
    profiler.disable()


# -- metrics registry ----------------------------------------------------


class TestMetricsRegistry:
    def test_counter_round_trip(self):
        registry = obs.MetricsRegistry()
        registry.inc("repro_demo_total", help="demo")
        registry.inc("repro_demo_total", 2)
        assert registry.value("repro_demo_total") == 3
        text = registry.render()
        assert "# HELP repro_demo_total demo" in text
        assert "# TYPE repro_demo_total counter" in text
        assert "repro_demo_total 3" in text.splitlines()

    def test_labeled_series_are_independent(self):
        registry = obs.MetricsRegistry()
        registry.inc("repro_demo_total", flavor="a")
        registry.inc("repro_demo_total", 4, flavor="b")
        assert registry.value("repro_demo_total", flavor="a") == 1
        assert registry.value("repro_demo_total", flavor="b") == 4
        assert registry.value("repro_demo_total", flavor="c") == 0
        assert registry.series_count() == 2
        assert 'repro_demo_total{flavor="a"} 1' in registry.render()

    def test_gauge_sets_not_adds(self):
        registry = obs.MetricsRegistry()
        registry.set_gauge("repro_demo_workers", 4)
        registry.set_gauge("repro_demo_workers", 2)
        assert registry.value("repro_demo_workers") == 2
        assert "# TYPE repro_demo_workers gauge" in registry.render()

    def test_histogram_buckets_are_cumulative(self):
        registry = obs.MetricsRegistry()
        for value in (0.003, 0.003, 0.05, 30.0):
            registry.observe("repro_demo_seconds", value)
        lines = registry.render().splitlines()
        bucket = {
            line.split(" ")[0]: int(line.split(" ")[1])
            for line in lines
            if line.startswith("repro_demo_seconds_bucket")
        }
        assert bucket['repro_demo_seconds_bucket{le="0.001"}'] == 0
        assert bucket['repro_demo_seconds_bucket{le="0.005"}'] == 2
        assert bucket['repro_demo_seconds_bucket{le="0.1"}'] == 3
        assert bucket['repro_demo_seconds_bucket{le="60.0"}'] == 4
        assert bucket['repro_demo_seconds_bucket{le="+Inf"}'] == 4
        assert "repro_demo_seconds_count 4" in lines
        (series,) = registry.snapshot()["repro_demo_seconds"]["series"]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(30.056)

    def test_kind_conflicts_and_bad_values_raise(self):
        registry = obs.MetricsRegistry()
        registry.inc("repro_demo_total")
        with pytest.raises(ValueError, match="is a counter"):
            registry.set_gauge("repro_demo_total", 1)
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.inc("repro_demo_total", -1)
        with pytest.raises(ValueError, match="bad metric name"):
            registry.inc("0bad name")
        registry.observe("repro_demo_seconds", 0.1)
        with pytest.raises(ValueError, match="histogram"):
            registry.value("repro_demo_seconds")

    def test_inc_stats_mirrors_under_canonical_names(self):
        obs.inc_stats({"groups": 2, "cache_hits": 5, "cache_misses": 0})
        registry = obs.get_registry()
        assert registry.value("repro_engine_groups_total") == 2
        assert registry.value("repro_engine_cache_hits_total") == 5
        # zero values are skipped: no empty series clutter
        assert "repro_engine_cache_misses_total" not in registry.snapshot()


# -- canonical names -----------------------------------------------------


class TestCanonicalNames:
    """The stat-dict spellings are load-bearing (committed manifests,
    the ``/stats`` wire schema) — every producer must emit exactly the
    pinned keys."""

    def test_executor_stats_keys(self):
        executor = SweepExecutor(workers=1)
        assert tuple(executor.stats) == names.ENGINE_TOTAL_STATS
        executor.run(adapter_grid(("msc01440",), ("MLPnc",), max_nnz=TINY))
        assert tuple(executor.last_stats) == names.ENGINE_RUN_STATS

    def test_job_manager_stats_keys(self):
        manager = JobManager(executor=SweepExecutor(workers=1))
        assert tuple(manager.stats) == names.SERVE_STATS

    def test_corpus_counts_keys(self):
        runner = CorpusRunner(
            Corpus("tiny", synthetic_entries(("msc01440",))),
            variants=("MLPnc",),
            max_nnz=4_000,
        )
        assert tuple(runner.counts) == names.CORPUS_STATS

    def test_cache_delta_keys(self):
        assert tuple(AnalysisCache().counters()) == names.CACHE_DELTA_KEYS

    def test_every_stat_key_has_a_metric_name(self):
        all_keys = (
            names.ENGINE_TOTAL_STATS + names.CORPUS_STATS + names.SERVE_STATS
        )
        assert set(names.STAT_METRICS) == set(all_keys)
        for key in all_keys:
            metric = names.stat_metric(key)
            layer = key.split("_")[0] if key.startswith("corpus") else None
            assert metric.startswith("repro_")
            assert metric.endswith("_total")
        # unknown driver tallies still get a stable fallback spelling
        assert names.stat_metric("novel") == "repro_engine_novel_total"


# -- span tracing --------------------------------------------------------


class TestTracing:
    def test_disabled_span_is_the_shared_noop(self):
        assert obs.span("anything") is obs.NULL_SPAN
        with obs.span("anything", attr=1) as span:
            span.set(more=2)  # no-op, no error
        assert obs.current_trace_id() is None

    def test_ndjson_nesting_and_error_status(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        trace.configure(path)
        with obs.span("outer", layer="test") as outer:
            with obs.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert obs.current_trace_id() == outer.trace_id
            with pytest.raises(RuntimeError):
                with obs.span("broken"):
                    raise RuntimeError("boom")
        trace.shutdown()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {record["name"]: record for record in records}
        assert set(by_name) == {"outer", "inner", "broken"}
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["broken"]["status"] == "error"
        assert by_name["broken"]["attrs"]["error"] == "RuntimeError"
        assert by_name["outer"]["attrs"] == {"layer": "test"}
        assert all(record["trace"] == by_name["outer"]["trace"] for record in records)
        # spans close inner-first, and duration nests inside the parent
        assert by_name["inner"]["dur_s"] <= by_name["outer"]["dur_s"]

    def test_sampling_keeps_roots(self):
        sink = obs.CollectingSink()
        trace.configure(sink, sample=0.0001)
        for _ in range(20):
            with obs.span("root"):
                with obs.span("child"):
                    pass
        recorded = [record["name"] for record in sink.records]
        assert recorded.count("root") == 20  # roots are never sampled out
        assert recorded.count("child") < 20
        with pytest.raises(ValueError, match="sample"):
            trace.configure(obs.CollectingSink(), sample=0)

    def test_event_is_stamped_with_the_current_trace(self):
        sink = obs.CollectingSink()
        trace.configure(sink)
        with obs.span("root") as root:
            obs.trace.event({"event": "profile", "bins": {}})
        assert sink.records[0] == {
            "event": "profile",
            "bins": {},
            "trace": root.trace_id,
        }

    def test_adopt_spans_reparents_worker_roots(self):
        sink = obs.CollectingSink()
        trace.configure(sink)
        shipped = [
            {"event": "span", "name": "w.root", "trace": "t0",
             "span": "s1", "parent": None},
            {"event": "span", "name": "w.child", "trace": "t0",
             "span": "s2", "parent": "s1"},
        ]
        with obs.span("request") as request:
            obs.adopt_spans(shipped)
        by_name = {record["name"]: record for record in sink.records}
        assert by_name["w.root"]["parent"] == request.span_id
        assert by_name["w.root"]["trace"] == request.trace_id
        # intra-batch parentage is preserved, only the trace id moves
        assert by_name["w.child"]["parent"] == "s1"
        assert by_name["w.child"]["trace"] == request.trace_id


class TestWorkerPropagation:
    def test_pooled_sharded_run_yields_one_trace_tree(self):
        sink = obs.CollectingSink()
        trace.configure(sink)
        # cycle model: the shard simulations profile in the workers and
        # the bins must ship back with the spans
        points = adapter_grid(
            ("msc01440",), ("MLPnc", "MLP64"), max_nnz=4_000, model="cycle"
        )
        with profiler.profiled() as cycles:
            with SweepExecutor(workers=2, shards="auto") as executor:
                with obs.span("request") as request:
                    rows = executor.run(points)
        assert len(rows) == 2
        records = sink.drain()
        runs = [r for r in records if r["name"] == "engine.run"]
        shards = [r for r in records if r["name"] == "engine.shard"]
        assert len(runs) == 1
        assert len(shards) >= 2  # sharded: several worker tasks
        # one connected tree: every span on the request's trace, worker
        # shard spans re-parented under the run span
        assert {r["trace"] for r in records} == {request.trace_id}
        assert runs[0]["parent"] == request.span_id
        assert all(shard["parent"] == runs[0]["span"] for shard in shards)
        assert all(shard["status"] == "ok" for shard in shards)
        # worker profiler bins came back with the shard results
        assert cycles.total() > 0

    def test_serial_run_traces_in_process(self):
        sink = obs.CollectingSink()
        trace.configure(sink)
        points = adapter_grid(("msc01440",), ("MLPnc",), max_nnz=TINY)
        SweepExecutor(workers=1).run(points)
        names_seen = [record["name"] for record in sink.drain()]
        assert names_seen.count("engine.run") == 1
        assert names_seen.count("engine.shard") == 1


# -- cycle attribution ---------------------------------------------------


class _Worker(Component):
    """Always-due component: finishes after ``budget`` ticks."""

    def __init__(self, budget: int):
        super().__init__("worker")
        self.left = budget

    def tick(self):
        self.left -= 1

    def next_event(self):
        return self.cycle if self.left else None

    @property
    def busy(self):
        return self.left > 0


class _Sleeper(Component):
    """Wakes every ``period`` cycles; counts replayed quiet cycles."""

    def __init__(self, period: int):
        super().__init__("sleeper")
        self.period = period
        self.replayed = 0

    def tick(self):
        pass

    def next_event(self):
        return self.cycle + self.period - 1

    def advance(self, cycles):
        self.replayed += cycles

    @property
    def busy(self):
        return False


PROFILE_VARIANTS = {
    "MLPnc": nocoalescer_config(),
    "MLP64": mlp_config(64),
    "SEQ256": seq_config(256),
}


def _profile_streams(n: int) -> dict[str, np.ndarray]:
    return {
        "banded": banded_stream(n, jitter=20, span=4),
        "random": random_stream(n, n * 4, seed=3),
    }


class TestCycleProfiler:
    def test_bins_api(self):
        bins = obs.CycleProfiler()
        bins.add("a", "tick", 3)
        bins.add("a", "bulk", 2)
        bins.add("b", "advance", 5)
        bins.add("b", "tick", 0)  # ignored
        bins.merge({"a": {"tick": 1}})
        assert bins.component_totals() == {"a": 6, "b": 5}
        assert bins.total() == 11
        assert bins.as_rows() == [("a", 4, 0, 2, 6), ("b", 0, 5, 0, 5)]
        drained = bins.drain()
        assert bins.total() == 0 and drained["b"]["advance"] == 5

    @pytest.mark.parametrize("engine", ["step", "batched"])
    def test_sleeper_cycles_are_attributed(self, engine):
        worker, sleeper = _Worker(100), _Sleeper(7)
        with profiler.profiled() as cycles:
            sim = Simulator([worker, sleeper], engine=engine)
            elapsed = sim.run_until(lambda: worker.left == 0, max_cycles=1000)
        assert elapsed == 100
        totals = cycles.component_totals()
        assert totals == {"worker": 100, "sleeper": 100}
        if engine == "step":
            assert cycles.bins["sleeper"] == {"tick": 100, "advance": 0, "bulk": 0}
        else:
            # the batched engine replayed the quiet spans it skipped,
            # and the component's own accounting agrees with the bins
            assert cycles.bins["sleeper"]["advance"] == sleeper.replayed > 0

    @pytest.mark.parametrize("variant", sorted(PROFILE_VARIANTS))
    @pytest.mark.parametrize("stream", sorted(_profile_streams(8)))
    @pytest.mark.parametrize("engine", ["step", "batched"])
    def test_bins_sum_to_elapsed_cycles(self, variant, stream, engine):
        """The exactness contract on the differential grid: for every
        component, tick + advance + bulk equals the cycles the run
        elapsed — the engines may split the work differently (that is
        the attribution), but never lose or invent a cycle."""
        idx = _profile_streams(768)[stream]
        with profiler.profiled() as cycles:
            metrics = run_indirect_stream(
                idx, PROFILE_VARIANTS[variant], engine=engine
            )
        totals = cycles.component_totals()
        assert totals  # the grid actually profiled something
        assert set(totals.values()) == {metrics.cycles}
        if engine == "step":
            for actions in cycles.bins.values():
                assert actions["advance"] == 0 and actions["bulk"] == 0

    def test_both_engines_profile_identical_components(self):
        idx = _profile_streams(768)["random"]
        per_engine = {}
        for engine in ("step", "batched"):
            with profiler.profiled() as cycles:
                run_indirect_stream(idx, mlp_config(64), engine=engine)
            per_engine[engine] = cycles.component_totals()
        assert per_engine["step"] == per_engine["batched"]


# -- serve surface -------------------------------------------------------


class TestServeSurface:
    @pytest.fixture()
    def server(self):
        manager = JobManager(executor=SweepExecutor(workers=1))
        server = ReproServer(("127.0.0.1", 0), manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        manager.close()

    def _url(self, server, path: str) -> str:
        return f"http://127.0.0.1:{server.server_address[1]}{path}"

    def _post(self, server, path: str, payload: dict) -> list[dict]:
        request = urllib.request.Request(
            self._url(server, path),
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return [json.loads(line) for line in response.read().decode().splitlines()]

    def test_stats_and_metrics_round_trip(self, server):
        self._post(server, "/sweep", SWEEP_REQ)
        self._post(server, "/sweep", SWEEP_REQ)

        with urllib.request.urlopen(self._url(server, "/stats")) as response:
            stats = json.loads(response.read().decode())
        assert {"jobs", "engine", "workers", "trace", "metrics"} <= set(stats)
        assert stats["trace"] is None  # no tracer configured
        metrics = stats["metrics"]
        assert metrics["repro_serve_requests_total"]["series"][0]["value"] == 2
        assert metrics["repro_serve_requests_total"]["type"] == "counter"

        with urllib.request.urlopen(self._url(server, "/metrics")) as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = response.read().decode()
        lines = text.splitlines()
        # at least one counter from each layer, plus latency + gauges
        assert "repro_serve_requests_total 2" in lines
        assert "repro_serve_computed_total 1" in lines
        assert "repro_serve_response_hits_total 1" in lines
        assert "repro_engine_groups_total 1" in lines
        assert "repro_engine_tasks_total 1" in lines
        assert "# TYPE repro_serve_request_seconds histogram" in lines
        assert 'repro_serve_request_seconds_count{source="computed"} 1' in lines
        assert 'repro_serve_request_seconds_count{source="cache"} 1' in lines
        assert "# TYPE repro_engine_workers gauge" in lines
        assert "repro_engine_workers 1" in lines
        assert "repro_serve_response_cache_entries 1" in lines

        client = ServeClient(self._url(server, ""))
        assert client.metrics() == text

    def test_request_events_echo_the_trace_id(self):
        sink = obs.CollectingSink()
        trace.configure(sink)
        manager = JobManager(executor=SweepExecutor(workers=1))
        try:
            events = list(manager.stream(SWEEP_REQ))
        finally:
            manager.close()
        accepted, done = events[0], events[-1]
        assert accepted["event"] == "accepted" and done["event"] == "done"
        request_spans = [r for r in sink.records if r["name"] == "serve.request"]
        assert len(request_spans) == 1
        assert accepted["trace"] == done["trace"] == request_spans[0]["trace"]
        # the engine's spans joined the same trace (the serve compute
        # path streams groups, so the shard spans carry the engine side)
        assert any(
            r["name"] == "engine.shard" and r["trace"] == done["trace"]
            for r in sink.records
        )

    def test_request_latency_is_recorded_even_on_errors(self):
        manager = JobManager(executor=SweepExecutor(workers=1))
        try:
            with pytest.raises(ServeError):
                list(manager.stream({"cmd": "frobnicate"}))
        finally:
            manager.close()
        snapshot = obs.get_registry().snapshot()
        (series,) = snapshot[names.SERVE_REQUEST_SECONDS]["series"]
        assert series["labels"] == {"source": "error"}
        assert series["count"] == 1
        assert obs.get_registry().value("repro_serve_errors_total") == 1


# -- warn-level logging --------------------------------------------------


class TestLogging:
    def test_logging_setup_is_idempotent(self):
        root = obs.logging_setup(0)
        again = obs.logging_setup(2)
        assert root is again
        assert root.level == logging.DEBUG
        assert sum(isinstance(h, logging.StreamHandler) for h in root.handlers) == 1
        obs.logging_setup(0)
        assert root.level == logging.WARNING

    def test_leader_failure_is_logged(self, caplog, monkeypatch):
        manager = JobManager(executor=SweepExecutor(workers=1))
        monkeypatch.setattr(
            manager,
            "_compute_chunks",
            lambda request: (_ for _ in ()).throw(ServeError("rigged")),
        )
        logging.getLogger("repro").propagate = True
        try:
            with caplog.at_level(logging.WARNING, logger="repro"):
                with pytest.raises(ServeError, match="rigged"):
                    list(manager.stream(SWEEP_REQ))
        finally:
            logging.getLogger("repro").propagate = False
            manager.close()
        assert any(
            "single-flight leader failed" in record.message
            for record in caplog.records
        )

    def test_corrupt_journal_is_logged(self, caplog, tmp_path):
        runner = CorpusRunner(
            Corpus("tiny", synthetic_entries(("msc01440",))),
            store_dir=tmp_path / "store",
            cache=MatrixCache(tmp_path / "cache"),
            variants=("MLPnc",),
            max_nnz=4_000,
        )
        path = runner._journal_path("feedbeef")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        logging.getLogger("repro").propagate = True
        try:
            with caplog.at_level(logging.WARNING, logger="repro"):
                assert runner._replay("feedbeef", ["key"]) is None
                path.write_text(json.dumps({"key": ["other"], "rows": []}))
                assert runner._replay("feedbeef", ["key"]) is None
        finally:
            logging.getLogger("repro").propagate = False
        messages = [record.message for record in caplog.records]
        assert any("unreadable" in message for message in messages)
        assert any("does not match its job key" in message for message in messages)


# -- the CLI surface and trace_summary -----------------------------------


class TestTraceFiles:
    def test_cli_sweep_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "sweep.ndjson"
        argv = [
            "sweep", "msc01440", "MLPnc",
            "--model", "cycle", "--nnz", "2000", "--trace", str(path),
        ]
        assert main(argv) == 0
        spans, profiles = trace_summary.load_trace(path)
        by_name = {record["name"]: record for record in spans}
        assert by_name["cli.sweep"]["parent"] is None
        assert by_name["engine.run"]["parent"] == by_name["cli.sweep"]["span"]
        # the cycle model ran under the profiler: bins landed in the trace
        assert len(profiles) == 1 and profiles[0]["bins"]
        assert trace_summary.render(path, None) == 0
        assert "cycle attribution" in capsys.readouterr().out

    def test_cli_trace_env_fallback(self, tmp_path, capsys, monkeypatch):
        path = tmp_path / "stream.ndjson"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        assert main(["stream", "msc01440", "MLP64", "--nnz", "2000"]) == 0
        spans, _profiles = trace_summary.load_trace(path)
        assert any(record["name"] == "cli.stream" for record in spans)

    def test_corpus_trace_meets_the_coverage_gate(
        self, tmp_path, capsys, monkeypatch
    ):
        """The acceptance criterion: a traced corpus run attributes at
        least 95% of its wall-time to named child spans."""
        # cold-start the per-process analysis cache: earlier tests in a
        # full-suite run may have warmed the same (matrix, nnz) entries,
        # and a pure-hit run never opens a cache.analysis span
        from repro.engine import executor as executor_mod

        monkeypatch.setattr(executor_mod, "_PROCESS_CACHE", AnalysisCache())
        path = tmp_path / "corpus.ndjson"
        runner = CorpusRunner(
            Corpus("tiny", synthetic_entries(("msc01440", "pwtk"))),
            store_dir=tmp_path / "store",
            cache=MatrixCache(tmp_path / "cache"),
            variants=("MLPnc", "MLP64"),
            max_nnz=4_000,
        )
        with obs.tracing(path, root="cli.corpus"):
            runner.run()
        spans, _profiles = trace_summary.load_trace(path)
        share = trace_summary.coverage(spans)
        assert share is not None and share >= 0.95
        names_seen = {record["name"] for record in spans}
        assert {
            "cli.corpus", "corpus.run", "corpus.entry",
            "corpus.finalize", "cache.analysis",
        } <= names_seen
        entries = [r for r in spans if r["name"] == "corpus.entry"]
        assert {r["attrs"]["status"] for r in entries} == {"computed"}
        # the renderer agrees and the gate passes
        assert trace_summary.render(path, min_coverage=95.0) == 0
        out = capsys.readouterr().out
        assert "per-phase wall-time" in out
        assert "OK: coverage" in out

    def test_summary_gate_fails_below_threshold(self, tmp_path, capsys):
        path = tmp_path / "thin.ndjson"
        records = [
            {"event": "span", "name": "root", "trace": "t", "span": "a",
             "parent": None, "ts": 0.0, "dur_s": 10.0, "status": "ok", "attrs": {}},
            {"event": "span", "name": "child", "trace": "t", "span": "b",
             "parent": "a", "ts": 1.0, "dur_s": 2.0, "status": "ok", "attrs": {}},
            {"event": "span", "name": "child", "trace": "t", "span": "c",
             "parent": "a", "ts": 2.0, "dur_s": 3.0, "status": "ok", "attrs": {}},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        spans, _profiles = trace_summary.load_trace(path)
        # overlapping children count once: union of [1,3) and [2,5) is 4s
        assert trace_summary.coverage(spans) == pytest.approx(0.4)
        assert trace_summary.render(path, min_coverage=95.0) == 1
        assert "FAIL: coverage" in capsys.readouterr().err

    def test_tracing_none_path_is_a_noop(self):
        with obs.tracing(None) as root:
            assert root is None
        assert not trace.active()
        assert profiler.active() is None
