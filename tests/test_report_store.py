"""Result store: round-trips, claim verdicts, renderer, drift checks.

The fast tests restrict ``run_report`` to the paramless experiments
(``table1``/``fig6a``) so no matrix is ever synthesised; the committed
quick-scale store is validated render-only (no recompute), and CI's
docs-drift job covers the full quick re-run.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.report import (
    PAPER_CLAIMS,
    STORE_FORMATS,
    STORE_SCHEMA_VERSION,
    ResultStore,
    check_report,
    claim_tolerances,
    claim_verdicts,
    format_cell,
    manifest_identity,
    parse_cell,
    render_document,
    render_report,
    run_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Paramless experiments: no matrix grid, so these run in milliseconds.
FAST_EXPERIMENTS = ("table1", "fig6a")


def fast_run(tmp_path, sub="a", **kwargs):
    store_dir = tmp_path / sub / "store"
    doc = tmp_path / sub / "EXPERIMENTS.md"
    kwargs.setdefault("experiments", FAST_EXPERIMENTS)
    with open(tmp_path / f"{sub}.log", "w") as log:
        manifest = run_report(store_dir, doc, stream=log, **kwargs)
    return store_dir, doc, manifest


class TestCells:
    @pytest.mark.parametrize(
        "value", [0, 42, -7, 3.43, 27.0, 0.125, 1e-4, "MLP256", "n/a", ""]
    )
    def test_round_trip(self, value):
        text = format_cell(value)
        assert format_cell(parse_cell(text)) == text
        if isinstance(value, (int, float)):
            assert parse_cell(text) == value

    def test_floats_keep_shortest_repr(self):
        assert format_cell(3.43) == "3.43"
        assert format_cell(27.0) == "27.0"

    def test_strings_stay_strings(self):
        assert parse_cell("exdata_1") == "exdata_1"
        assert isinstance(parse_cell("27.0"), float)

    @pytest.mark.parametrize("text", ["1_000", "  12", "1e3", "007", "+5"])
    def test_numeric_lookalikes_stay_strings(self, text):
        # Python's int()/float() would accept these but reformat them,
        # breaking write → read → write byte-stability.
        assert parse_cell(text) == text


class TestStoreRoundTrip:
    ROWS = [
        {"matrix": "pwtk", "gbps": 3.43, "txns": 12},
        {"matrix": "hood", "gbps": 27.0, "txns": 7},
    ]

    def test_write_read_write_is_byte_stable(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.write_table("t", self.ROWS)
        first = path.read_bytes()
        store.write_table("t", store.read_table("t"))
        assert path.read_bytes() == first

    def test_read_restores_types(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write_table("t", self.ROWS)
        rows = store.read_table("t")
        assert rows == self.ROWS
        assert isinstance(rows[0]["gbps"], float)
        assert isinstance(rows[0]["txns"], int)

    def test_heterogeneous_rows_union_columns(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write_table("t", [{"a": 1}, {"a": 2, "b": 3}])
        assert store.read_table("t") == [{"a": 1, "b": ""}, {"a": 2, "b": 3}]

    def test_empty_table_is_refused(self, tmp_path):
        with pytest.raises(ExperimentError):
            ResultStore(tmp_path).write_table("t", [])

    def test_missing_table_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            ResultStore(tmp_path).read_table("nope")

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            ResultStore(tmp_path, fmt="xlsx")
        assert set(STORE_FORMATS) == {"csv", "parquet"}

    def test_manifest_schema_is_enforced(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.read_manifest()  # missing
        store.write_manifest({"scale_nnz": 12000})
        assert store.read_manifest()["schema_version"] == STORE_SCHEMA_VERSION
        bad = json.loads(store.manifest_path.read_text())
        bad["schema_version"] = STORE_SCHEMA_VERSION + 1
        store.manifest_path.write_text(json.dumps(bad))
        with pytest.raises(ExperimentError):
            store.read_manifest()


@pytest.mark.skipif(
    importlib.util.find_spec("pyarrow") is None,
    reason="pyarrow not installed (parquet store format is optional)",
)
class TestParquetStore:
    """Optional pyarrow-backed table format (CSV stays the default).

    Skipped wholesale when pyarrow is absent — the parquet backend is
    strictly opt-in and the library never imports pyarrow otherwise.
    """

    ROWS = TestStoreRoundTrip.ROWS

    def test_round_trip_restores_types(self, tmp_path):
        store = ResultStore(tmp_path, fmt="parquet")
        path = store.write_table("t", self.ROWS)
        assert path.suffix == ".parquet"
        assert store.read_table("t") == self.ROWS
        assert store.read_table("t", parse=False)[0]["gbps"] == "3.43"

    def test_rewrite_is_byte_stable(self, tmp_path):
        store = ResultStore(tmp_path, fmt="parquet")
        path = store.write_table("t", self.ROWS)
        first = path.read_bytes()
        store.write_table("t", store.read_table("t"))
        assert path.read_bytes() == first

    def test_formats_do_not_shadow_each_other(self, tmp_path):
        ResultStore(tmp_path, fmt="parquet").write_table("t", self.ROWS)
        csv_store = ResultStore(tmp_path)
        assert csv_store.list_tables() == []
        with pytest.raises(ExperimentError):
            csv_store.read_table("t")
        assert ResultStore(tmp_path, fmt="parquet").list_tables() == ["t"]


def test_parquet_needs_pyarrow_error_is_actionable(tmp_path, monkeypatch):
    """Without pyarrow the parquet store raises a repro error telling
    the user what to install (CSV stays dependency-free)."""
    import builtins

    real_import = builtins.__import__

    def no_pyarrow(name, *args, **kwargs):
        if name.startswith("pyarrow"):
            raise ImportError(name)
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_pyarrow)
    store = ResultStore(tmp_path, fmt="parquet")
    with pytest.raises(ExperimentError) as excinfo:
        store.write_table("t", [{"a": 1}])
    assert "pyarrow" in str(excinfo.value)


class TestClaims:
    def test_verdict_states(self):
        results = {
            "fig6a": {"summary": {"coal_kge_w64": 307.0, "area_mm2_w64": 0.5}}
        }
        rows = {
            (r["experiment"], r["metric"]): r for r in claim_verdicts(results)
        }
        assert rows[("fig6a", "coal_kge_w64")]["verdict"] == "pass"
        assert rows[("fig6a", "area_mm2_w64")]["verdict"] == "fail"
        assert rows[("fig3", "sell_mlp256_boost")]["verdict"] == "missing"
        assert rows[("fig3", "sell_mlp256_boost")]["measured"] == "n/a"

    def test_one_row_per_claim(self):
        assert len(claim_verdicts({})) == len(PAPER_CLAIMS)

    def test_tolerances_cover_every_claim(self):
        tolerances = claim_tolerances()
        assert len(tolerances) == len(PAPER_CLAIMS)
        for claim in PAPER_CLAIMS:
            assert tolerances[f"{claim.experiment}.{claim.metric}"] == claim.rel_tol

    def test_claims_still_unpack_as_triples(self):
        experiment, metric, paper = PAPER_CLAIMS[0][:3]
        assert experiment == "fig3"
        assert isinstance(paper, float)


class TestRunAndRender:
    def test_two_runs_are_byte_identical(self, tmp_path):
        store_a, doc_a, _ = fast_run(tmp_path, "a")
        store_b, doc_b, _ = fast_run(tmp_path, "b")
        for path in sorted(store_a.iterdir()):
            assert path.read_bytes() == (store_b / path.name).read_bytes()
        assert doc_a.read_bytes() == doc_b.read_bytes()

    def test_manifest_captures_knobs(self, tmp_path):
        _, _, manifest = fast_run(
            tmp_path, max_nnz=24_000, model="cycle", workers=3
        )
        assert manifest["schema_version"] == STORE_SCHEMA_VERSION
        assert manifest["scale_nnz"] == 24_000
        assert manifest["adapter_model"] == "cycle"
        assert manifest["workers"] == 3
        assert manifest["seed"] == 2024
        assert manifest["tolerances"] == claim_tolerances()
        assert set(manifest["experiments"]) == set(FAST_EXPERIMENTS)
        assert manifest["experiments"]["fig6a"]["rows"] == 3

    def test_workers_are_volatile_in_identity(self, tmp_path):
        _, _, one = fast_run(tmp_path, "a", workers=1)
        _, _, two = fast_run(tmp_path, "b", workers=2)
        assert one != two
        assert manifest_identity(one) == manifest_identity(two)

    def test_manifest_records_shards_backends_and_cache(self, tmp_path):
        _, _, manifest = fast_run(tmp_path, "a", workers=2, shards="auto")
        assert manifest["shards"] == 2  # auto resolves to the workers
        assert set(manifest["cache"]) == {"hits", "misses", "evictions"}
        # paramless experiments never touch the engine
        assert manifest["experiments"]["fig6a"]["backends"] == []
        assert manifest["experiments"]["table1"]["backends"] == []

    def test_shards_and_cache_are_volatile_in_identity(self, tmp_path):
        _, _, one = fast_run(tmp_path, "a", shards=1)
        _, _, two = fast_run(tmp_path, "b", shards=4)
        assert one["shards"] != two["shards"]
        assert manifest_identity(one) == manifest_identity(two)

    def test_render_report_reproduces_document(self, tmp_path):
        store_dir, doc, _ = fast_run(tmp_path)
        original = doc.read_bytes()
        doc.unlink()
        with open(tmp_path / "r.log", "w") as log:
            render_report(store_dir, doc, stream=log)
        assert doc.read_bytes() == original

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            run_report(
                tmp_path / "s", tmp_path / "d.md", experiments=("nope",)
            )


class TestCheck:
    def test_clean_check(self, tmp_path):
        store_dir, doc, _ = fast_run(tmp_path)
        with open(tmp_path / "check.log", "w") as log:
            assert check_report(store_dir, doc, stream=log) == []

    def test_mutated_table_is_drift(self, tmp_path):
        store_dir, doc, _ = fast_run(tmp_path)
        table = store_dir / "fig6a.csv"
        table.write_text(table.read_text().replace("AP64", "AP65"))
        with open(tmp_path / "check.log", "w") as log:
            drift = check_report(store_dir, doc, stream=log)
        assert any("fig6a" in message for message in drift)

    def test_stale_document_is_drift(self, tmp_path):
        store_dir, doc, _ = fast_run(tmp_path)
        doc.write_text(doc.read_text() + "hand edit\n")
        with open(tmp_path / "check.log", "w") as log:
            drift = check_report(store_dir, doc, stream=log)
        assert any("stale" in message for message in drift)

    def test_missing_store_is_reported(self, tmp_path):
        with open(tmp_path / "check.log", "w") as log:
            drift = check_report(tmp_path / "void", tmp_path / "d.md", stream=log)
        assert drift and "manifest" in drift[0]

    def test_config_mismatch_is_drift(self, tmp_path):
        store_dir, doc, _ = fast_run(tmp_path, max_nnz=12_000)
        with open(tmp_path / "check.log", "w") as log:
            drift = check_report(store_dir, doc, max_nnz=24_000, stream=log)
        assert any("scale_nnz" in message for message in drift)


class TestCommittedStore:
    """The committed quick-scale reference under results/store/."""

    STORE = ResultStore(REPO_ROOT / "results" / "store")
    DOC = REPO_ROOT / "EXPERIMENTS.md"

    def test_document_renders_byte_identically_from_store(self):
        assert self.DOC.read_text() == render_document(self.STORE)

    def test_manifest_is_current_schema_and_quick_scale(self):
        manifest = self.STORE.read_manifest()
        assert manifest["schema_version"] == STORE_SCHEMA_VERSION
        assert manifest["scale_nnz"] == 12_000
        assert set(manifest["experiments"]) == {
            "table1", "fig3", "fig4", "fig5a", "fig5b", "fig6a", "fig6b"
        }

    def test_claims_table_matches_claim_list(self):
        rows = self.STORE.read_table("claims")
        assert len(rows) == len(PAPER_CLAIMS)
        tracked = {(c.experiment, c.metric) for c in PAPER_CLAIMS}
        assert {(r["experiment"], r["metric"]) for r in rows} == tracked
