"""Area, storage, and state-of-the-art comparison models (Fig. 6)."""

import pytest

from repro.config import AdapterConfig, CoalescerConfig, VpcConfig
from repro.hw.area import (
    AreaModel,
    PUBLISHED_IMPLEMENTATIONS,
    adapter_area_breakdown,
)
from repro.hw.soa import SOA_PROCESSORS, efficiency_comparison, our_processor_datum
from repro.hw.storage import (
    adapter_storage_breakdown,
    adapter_storage_bytes,
    system_onchip_storage,
)


class TestAreaModel:
    def test_published_coalescer_points_exact(self):
        """Sec. IV-C: 307 / 617 / 1035 kGE for W = 64 / 128 / 256."""
        for window, kge in ((64, 307.0), (128, 617.0), (256, 1035.0)):
            model = AreaModel(AdapterConfig(coalescer=CoalescerConfig(window=window)))
            assert model.coalescer_kge() == pytest.approx(kge, rel=0.02)

    def test_published_mm2_points_exact(self):
        for window, (mm2, util) in PUBLISHED_IMPLEMENTATIONS.items():
            model = AreaModel(AdapterConfig(coalescer=CoalescerConfig(window=window)))
            assert model.area_mm2() == pytest.approx(mm2)
            assert model.utilization_percent() == pytest.approx(util)

    def test_area_in_paper_range(self):
        """Abstract: 0.2-0.3 mm^2 class implementation."""
        for window in (64, 128, 256):
            model = AreaModel(AdapterConfig(coalescer=CoalescerConfig(window=window)))
            assert 0.15 <= model.area_mm2() <= 0.35

    def test_coalescer_area_grows_with_window(self):
        kges = [
            AreaModel(
                AdapterConfig(coalescer=CoalescerConfig(window=w))
            ).coalescer_kge()
            for w in (16, 32, 64, 128, 256, 512)
        ]
        assert kges == sorted(kges)
        # Extrapolation above W=256 keeps the last published slope.
        slope = (kges[-1] - kges[-2]) / 256
        assert slope == pytest.approx((1035 - 617) / 128, rel=0.02)

    def test_index_queues_dominate(self):
        """Sec. IV-C: the index queues take the largest share (754 kGE)."""
        breakdown = adapter_area_breakdown(64)
        assert breakdown["idx_que"] == pytest.approx(754.0)
        assert breakdown["idx_que"] > breakdown["coal"]
        assert breakdown["idx_que"] > breakdown["others"] + breakdown["ele_gen"]

    def test_no_coalescer_area(self):
        breakdown = adapter_area_breakdown(0)
        assert breakdown["coal"] == 0.0
        assert breakdown["total"] < adapter_area_breakdown(64)["total"]

    def test_breakdown_sums_to_total(self):
        breakdown = adapter_area_breakdown(128)
        parts = (
            breakdown["others"] + breakdown["ele_gen"]
            + breakdown["idx_que"] + breakdown["coal"]
        )
        assert parts == pytest.approx(breakdown["total"])


class TestStorageModel:
    def test_paper_27kb_configuration(self):
        """Table I: on-chip storage = 27 KB at W = 256 (within 15 %)."""
        total = adapter_storage_bytes(AdapterConfig())
        assert total == pytest.approx(27 * 1024, rel=0.15)

    def test_index_queues_are_8kib(self):
        breakdown = adapter_storage_breakdown(AdapterConfig())
        assert breakdown["index_queues"] == 8 * 256 * 4

    def test_hitmap_queue_is_4kib_at_w256(self):
        breakdown = adapter_storage_breakdown(AdapterConfig())
        assert breakdown["hitmap_queue"] == 128 * 256 / 8

    def test_no_coalescer_storage_smaller(self):
        from repro.config import nocoalescer_config

        with_coal = adapter_storage_bytes(AdapterConfig())
        without = adapter_storage_bytes(nocoalescer_config())
        assert without < 0.6 * with_coal

    def test_storage_scales_with_window(self):
        small = adapter_storage_bytes(
            AdapterConfig(coalescer=CoalescerConfig(window=64))
        )
        large = adapter_storage_bytes(
            AdapterConfig(coalescer=CoalescerConfig(window=256))
        )
        assert large > small

    def test_system_storage_breakdown(self):
        breakdown = system_onchip_storage()
        assert breakdown["l2_spm"] == 384 * 1024
        assert breakdown["ara_vrf"] == 64 * 1024  # 32 regs x 16Kib VLEN
        assert breakdown["total"] == pytest.approx(
            sum(v for k, v in breakdown.items() if k != "total")
        )
        # Fig. 6b: our system's on-chip cost per GB/s ~ 17 kB/(GB/s).
        assert 14 <= breakdown["total"] / 1024 / 32 <= 20


class TestSoaComparison:
    def test_cited_machines_present(self):
        assert set(SOA_PROCESSORS) == {"SX-Aurora", "A64FX"}
        for datum in SOA_PROCESSORS.values():
            assert datum.source

    def test_onchip_efficiency_ratios_match_paper(self):
        """Sec. IV-C: 1.4x and 2.6x better on-chip efficiency than
        SX-Aurora and A64FX respectively."""
        ours = our_processor_datum(measured_avg_gflops=3.0)
        sx = SOA_PROCESSORS["SX-Aurora"].onchip_cost_kb_per_gbps
        a64 = SOA_PROCESSORS["A64FX"].onchip_cost_kb_per_gbps
        assert sx / ours.onchip_cost_kb_per_gbps == pytest.approx(1.4, abs=0.25)
        assert a64 / ours.onchip_cost_kb_per_gbps == pytest.approx(2.6, abs=0.4)

    def test_perf_efficiency_close_to_soa(self):
        """Sec. IV-C: 1x of SX-Aurora and 0.9x of A64FX."""
        ours = our_processor_datum(measured_avg_gflops=3.0)
        ratio_sx = (
            ours.perf_efficiency_gflops_per_gbps
            / SOA_PROCESSORS["SX-Aurora"].perf_efficiency_gflops_per_gbps
        )
        ratio_a64 = (
            ours.perf_efficiency_gflops_per_gbps
            / SOA_PROCESSORS["A64FX"].perf_efficiency_gflops_per_gbps
        )
        assert ratio_sx == pytest.approx(1.0, abs=0.2)
        assert ratio_a64 == pytest.approx(0.9, abs=0.2)

    def test_comparison_rows(self):
        rows = efficiency_comparison(measured_avg_gflops=3.0)
        names = [row["name"] for row in rows]
        assert names == ["SX-Aurora", "A64FX", "This Work"]
        ours = rows[-1]
        assert ours["onchip_efficiency_vs_ours"] == pytest.approx(1.0)
